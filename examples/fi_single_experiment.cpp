// Inject one fault and watch it propagate: runs the GhostCutIn scenario with
// a permanent GPU fault of your choice and reports activation, outcome,
// safety impact and whether the DiverseAV detector caught it.
//
// Usage: fi_single_experiment [opcode-index] [bit]
//   opcode-index in [0, 41): see fi/opcodes.h (default 24 = FMACC)
//   bit in [0, 32): destination-register bit to flip (default 21)
#include <cstdio>
#include <cstdlib>

#include "campaign/campaign.h"
#include "campaign/metrics.h"

int main(int argc, char** argv) {
  using namespace dav;

  const int opcode = argc > 1 ? std::atoi(argv[1]) : 24;
  const int bit = argc > 2 ? std::atoi(argv[2]) : 21;
  if (opcode < 0 || opcode >= kNumGpuOpcodes || bit < 0 || bit > 31) {
    std::fprintf(stderr, "opcode must be in [0,%d), bit in [0,32)\n",
                 kNumGpuOpcodes);
    return 2;
  }

  CampaignScale scale;
  scale.training_runs_per_scenario = 1;
  scale.long_route_duration_sec = 45.0;
  CampaignManager mgr(scale, 2022);

  std::printf("Training the DiverseAV error detector on the long scenarios "
              "(fault-free)...\n");
  const ThresholdLut lut =
      train_lut(mgr.training_observations(AgentMode::kRoundRobin), /*rw=*/3);
  std::printf("  %llu observations, %zu trained bins\n\n",
              static_cast<unsigned long long>(lut.observations()),
              lut.trained_bins());

  std::printf("Golden runs (baseline trajectory)...\n");
  const auto golden =
      mgr.golden(ScenarioId::kGhostCutIn, AgentMode::kRoundRobin, 5);
  const Trajectory baseline = golden_baseline(golden);

  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = opcode;
  plan.bit = bit;

  RunConfig cfg = mgr.base_config(ScenarioId::kGhostCutIn,
                                  AgentMode::kRoundRobin);
  cfg.fault = plan;
  cfg.run_seed = 99;

  std::printf("Injecting: permanent GPU fault, opcode %s, bit %d\n",
              std::string(to_string(static_cast<GpuOpcode>(opcode))).c_str(),
              bit);
  const RunResult r = run_experiment(cfg);
  const Detection det = detect_run(r, lut, 3);

  std::printf("\n--- run record -------------------------------------\n");
  std::printf("fault activated : %s\n", r.fault_activated ? "yes" : "no");
  std::printf("outcome         : %s\n", to_string(r.outcome).c_str());
  std::printf("duration        : %.1f s\n", r.duration);
  std::printf("collision       : %s\n", r.collision ? "YES" : "no");
  std::printf("traj divergence : %.2f m (violation at td=2: %s)\n",
              run_divergence(r, baseline),
              is_positive(r, baseline, 2.0) ? "YES" : "no");
  std::printf("platform DUE    : %s%s\n", r.due ? "yes" : "no",
              r.due ? " (hang/crash/validator)" : "");
  std::printf("detector alarm  : %s", det.alarm ? "YES" : "no");
  if (det.alarm) std::printf(" at t=%.2f s", det.time);
  std::printf("\n");
  return 0;
}
