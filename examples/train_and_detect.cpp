// End-to-end DiverseAV workflow on the public API:
//   1. run the three long training scenarios fault-free and train the
//      rolling-window threshold LUT (paper §III-D),
//   2. run golden safety-critical scenarios and verify zero false alarms,
//   3. run a small permanent-GPU fault sweep and report precision/recall.
#include <cstdio>

#include "campaign/campaign.h"
#include "campaign/env_options.h"
#include "campaign/metrics.h"

int main() {
  using namespace dav;

  CampaignScale scale;
  scale.transient_runs = 6;
  scale.permanent_repeats = 1;
  scale.golden_runs = 5;
  scale.training_runs_per_scenario = 1;
  scale.long_route_duration_sec = 45.0;
  // Custom sizing + the validated env snapshot (DAV_JOBS, DAV_JOURNAL, ...)
  // for executor routing; CampaignManager(scale, seed) alone is env-free.
  CampaignManager mgr(scale, EnvOptions::from_env(), 2022);

  std::printf("[1/3] training detector on %zu long-scenario runs...\n",
              training_scenarios().size());
  const auto obs = mgr.training_observations(AgentMode::kRoundRobin);
  const ThresholdLut lut = train_lut(obs, /*rw=*/3);
  std::printf("      %llu observations -> %zu trained bins\n",
              static_cast<unsigned long long>(lut.observations()),
              lut.trained_bins());

  std::printf("[2/3] golden safety-critical runs (must not alarm)...\n");
  int false_alarms = 0;
  for (ScenarioId scenario : safety_scenarios()) {
    const auto golden =
        mgr.golden(scenario, AgentMode::kRoundRobin, scale.golden_runs);
    for (const auto& run : golden) {
      false_alarms += detect_run(run, lut, 3).alarm ? 1 : 0;
    }
    std::printf("      %-16s %d golden runs ok\n",
                to_string(scenario).c_str(), scale.golden_runs);
  }
  std::printf("      golden false alarms: %d\n", false_alarms);

  std::printf("[3/3] permanent GPU fault sweep on LeadSlowdown...\n");
  const auto golden =
      mgr.golden(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin,
                 scale.golden_runs);
  const Trajectory baseline = golden_baseline(golden);
  const auto runs =
      mgr.fi_campaign(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin,
                      FaultDomain::kGpu, FaultModelKind::kPermanent);
  const DetectionEval eval =
      evaluate_detection(runs, golden, baseline, lut, 3, 2.0);
  std::printf("      %zu injections: precision %.2f, recall %.2f, F1 %.2f\n",
              runs.size(), eval.precision(), eval.recall(), eval.f1());
  std::printf("      (paper's full campaign: P = 0.87, R = 0.87)\n");
  return false_alarms == 0 ? 0 : 1;
}
