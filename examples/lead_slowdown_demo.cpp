// LeadSlowdown walk-through: runs the scenario open-box, printing what the
// agent perceives (obstacle distance) against ground truth (CVIP), together
// with the actuation decisions — a window into the perception -> waypoints ->
// PID pipeline on the instrumented engines.
#include <cstdio>

#include "core/ads_system.h"
#include "sensors/sensor_rig.h"
#include "sim/world.h"

int main() {
  using namespace dav;

  Scenario scenario = make_scenario(ScenarioId::kLeadSlowdown);
  World world(std::move(scenario));

  const auto cams = front_camera_rig();
  SensorRig rig(cams, /*noise_seed=*/7);

  GpuEngine gpu;
  CpuEngine cpu;
  gpu.configure({}, 0);
  cpu.configure({}, 0);

  AgentConfig agent_cfg;
  agent_cfg.perception.center_cam = cams[1];
  agent_cfg.mission_speed = world.scenario().target_speed;

  AdsSystem ads(AgentMode::kRoundRobin, agent_cfg, gpu, cpu, nullptr, nullptr,
                &world.map());

  const double dt = 0.05;
  std::printf(" t[s]  v[m/s]  CVIP[m]  perceived[m]  lane_off  thr   brk\n");
  int step = 0;
  while (!world.done()) {
    const SensorFrame frame = rig.capture(world, step);
    const auto sr = ads.step(frame, dt);
    if (step % 10 == 0) {
      const auto& p = ads.agent(sr.acting_agent).last_perception();
      std::printf("%5.1f  %6.2f  %7.2f  %12.2f  %+8.2f  %4.2f  %4.2f\n",
                  world.time(), world.ego().v,
                  world.cvip() > 150 ? 999.0 : world.cvip(),
                  p.obstacle_distance > 150 ? 999.0 : p.obstacle_distance,
                  p.lane_offset, sr.applied.throttle, sr.applied.brake);
    }
    world.step(sr.applied, dt);
    ++step;
  }
  std::printf("\ncollision: %s   min distance kept: ok=%s\n",
              world.flags().collision ? "YES" : "no",
              world.flags().collision ? "no" : "yes");
  std::printf("GPU dyn instructions: %llu   CPU: %llu\n",
              static_cast<unsigned long long>(gpu.total_dyn_instructions()),
              static_cast<unsigned long long>(cpu.total_dyn_instructions()));
  return world.flags().collision ? 1 : 0;
}
