// Quickstart: run one golden (fault-free) experiment of the LeadSlowdown
// scenario with the DiverseAV-enabled ADS and print the safety outcome and a
// short actuation trace.
#include <cstdio>

#include "campaign/driver.h"

int main() {
  const dav::RunConfig cfg = dav::RunConfigBuilder()
                                 .scenario(dav::ScenarioId::kLeadSlowdown)
                                 .mode(dav::AgentMode::kRoundRobin)  // DiverseAV
                                 .run_seed(42)
                                 .record_traces()
                                 .build();

  const dav::RunResult result = dav::run_experiment(cfg);

  std::printf("scenario      : %s\n", dav::to_string(cfg.scenario).c_str());
  std::printf("mode          : %s\n", dav::to_string(cfg.mode).c_str());
  std::printf("duration      : %.1f s (%d steps)\n", result.duration,
              result.steps);
  std::printf("collision     : %s\n", result.collision ? "YES" : "no");
  std::printf("rule violation: %s\n", result.flags.any() ? "YES" : "no");
  std::printf("  (red light %d, speeding %d, off-road %d)\n",
              result.flags.red_light_violation, result.flags.speeding,
              result.flags.off_road);

  std::printf("\n t[s]  throttle brake  steer   CVIP[m]\n");
  for (std::size_t i = 0; i < result.time_trace.size(); i += 20) {
    std::printf("%5.1f  %6.2f  %5.2f  %+5.2f  %7.2f\n", result.time_trace[i],
                result.throttle_trace[i], result.brake_trace[i],
                result.steer_trace[i],
                result.cvip_trace[i] > 150.0 ? 999.0 : result.cvip_trace[i]);
  }
  std::printf("\nfinal comparison-stream length: %zu observations\n",
              result.observations.size());
  return result.collision ? 1 : 0;
}
