# Central compile/link policy for every DiverseAV target.
#
# All options live on one INTERFACE library, `dav_build_flags`, that every
# target links PRIVATE.  Keeping the policy in one place means a sanitizer or
# warning change takes effect across src/, tests/, bench/, examples/ and tools/
# without touching nine CMakeLists.

option(DAV_WERROR "Treat warnings as errors" ON)

# Semicolon-separated sanitizer list, e.g. -DDAV_SANITIZE=address;undefined
# or -DDAV_SANITIZE=thread (for the future parallel campaign driver).
set(DAV_SANITIZE "" CACHE STRING
    "Sanitizers to enable (any of: address;undefined;thread;leak)")

add_library(dav_build_flags INTERFACE)

target_compile_options(dav_build_flags INTERFACE
  -Wall
  -Wextra
  -Wshadow
  -Wnon-virtual-dtor
)
if(DAV_WERROR)
  target_compile_options(dav_build_flags INTERFACE -Werror)
endif()

if(DAV_SANITIZE)
  set(_dav_san_flags "")
  foreach(_san IN LISTS DAV_SANITIZE)
    if(_san STREQUAL "thread" AND ("address" IN_LIST DAV_SANITIZE OR
                                   "leak" IN_LIST DAV_SANITIZE))
      message(FATAL_ERROR "DAV_SANITIZE: 'thread' cannot be combined with "
                          "'address' or 'leak'")
    endif()
    list(APPEND _dav_san_flags "-fsanitize=${_san}")
  endforeach()
  # Abort on the first UBSan report so ctest fails instead of scrolling past
  # diagnostics, and keep frames for readable ASan stacks.
  list(APPEND _dav_san_flags -fno-sanitize-recover=all -fno-omit-frame-pointer)
  target_compile_options(dav_build_flags INTERFACE ${_dav_san_flags})
  target_link_options(dav_build_flags INTERFACE ${_dav_san_flags})
  message(STATUS "DiverseAV: sanitizers enabled: ${DAV_SANITIZE}")
endif()

# clang-tidy gate (the `tidy` configure preset).  The container running CI or
# a dev box may lack clang-tidy; gate on find_program so the preset degrades
# to a plain build with a warning instead of a configure error.
option(DAV_CLANG_TIDY "Run clang-tidy on every compiled TU" OFF)
if(DAV_CLANG_TIDY)
  find_program(DAV_CLANG_TIDY_EXE clang-tidy)
  if(DAV_CLANG_TIDY_EXE)
    set(CMAKE_CXX_CLANG_TIDY "${DAV_CLANG_TIDY_EXE};--warnings-as-errors=*")
    message(STATUS "DiverseAV: clang-tidy gate enabled (${DAV_CLANG_TIDY_EXE})")
  else()
    message(WARNING "DAV_CLANG_TIDY=ON but clang-tidy was not found; "
                    "building without the tidy gate")
  endif()
endif()
