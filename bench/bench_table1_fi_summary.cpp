// Table I: summary of the twelve fault-injection campaigns in DUAL agent
// mode — {GPU, CPU} x {transient, permanent} x {LeadSlowdown, GhostCutIn,
// FrontAccident}. Columns: #Active, #Hang/Crash, #Total, #Accidents,
// #Trajectory violations (without accident, td = 2 m).
//
// Also prints the paper's headline fault-propagation rates (§V-C) and the
// §VI-A missed-safety-hazard probability. Run counts are scaled (DAV_SCALE);
// the campaign STRUCTURE matches the paper (transient: uniform dynamic-
// instruction sampling; permanent: full ISA sweep with repeats).
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Table I — fault-injection campaign summary (DUAL mode)",
               "DiverseAV (DSN'22) §V-C, Table I");

  CampaignManager mgr = make_manager();
  constexpr double kTd = 2.0;

  TextTable table({"FI Target", "DS", "#Active", "Hang/Crash", "Total",
                   "#Acc.", "#TrajViol"});

  struct Agg {
    int total = 0, active = 0, due = 0, acc = 0, viol = 0;
  };
  Agg gpu_trans, gpu_perm, cpu_trans, cpu_perm;

  // Detector stats for the §VI-A missed-hazard probability.
  auto train = mgr.training_observations(AgentMode::kRoundRobin);
  ThresholdLut lut = train_lut(train, /*rw=*/3);
  int missed_hazards = 0;
  int total_fi_runs = 0;

  const auto run_campaign = [&](FaultDomain domain, FaultModelKind kind,
                                Agg& agg, const char* label) {
    for (ScenarioId scenario : safety_scenarios()) {
      const GoldenSet g =
          golden_set(mgr, scenario, AgentMode::kRoundRobin,
                     mgr.scale().golden_runs);
      const auto runs =
          mgr.fi_campaign(scenario, AgentMode::kRoundRobin, domain, kind);
      const CampaignSummary s = summarize_campaign(runs, g.baseline, kTd);
      table.add_row({label, to_string(scenario),
                     std::to_string(s.active), std::to_string(s.hang_crash),
                     std::to_string(s.total), std::to_string(s.accidents),
                     std::to_string(s.traj_violations)});
      agg.total += s.total;
      agg.active += s.active;
      agg.due += s.hang_crash;
      agg.acc += s.accidents;
      agg.viol += s.traj_violations;
      total_fi_runs += s.total;
      for (const auto& r : runs) {
        if (is_positive(r, g.baseline, kTd) &&
            !detect_run(r, lut, 3).alarm) {
          ++missed_hazards;
        }
      }
    }
  };

  run_campaign(FaultDomain::kGpu, FaultModelKind::kPermanent, gpu_perm,
               "GPU-permanent");
  run_campaign(FaultDomain::kCpu, FaultModelKind::kPermanent, cpu_perm,
               "CPU-permanent");
  run_campaign(FaultDomain::kGpu, FaultModelKind::kTransient, gpu_trans,
               "GPU-transient");
  run_campaign(FaultDomain::kCpu, FaultModelKind::kTransient, cpu_trans,
               "CPU-transient");

  std::printf("%s\n", table.render().c_str());

  const auto pct = [](int num, int den) {
    return den > 0 ? 100.0 * num / den : 0.0;
  };
  std::printf("Fault propagation rates (activated runs):\n");
  std::printf("  CPU transient hang/crash: %5.1f%%  [paper: 41.2%%]\n",
              pct(cpu_trans.due, cpu_trans.active));
  std::printf("  CPU permanent hang/crash: %5.1f%%  [paper: 72.9%%]\n",
              pct(cpu_perm.due, cpu_perm.active));
  std::printf("  GPU transient hang/crash: %5.1f%%  [paper:  8.3%%]\n",
              pct(gpu_trans.due, gpu_trans.active));
  std::printf("  GPU permanent hang/crash: %5.1f%%  [paper: 16.0%%]\n",
              pct(gpu_perm.due, gpu_perm.active));
  std::printf("  CPU accidents+violations: %d     [paper: 0]\n",
              cpu_trans.acc + cpu_trans.viol + cpu_perm.acc + cpu_perm.viol);
  std::printf("  GPU transient acc+viol:   %5.1f%%  [paper:  0.4%%]\n",
              pct(gpu_trans.acc + gpu_trans.viol, gpu_trans.total));
  std::printf("  GPU permanent accidents:  %5.1f%%  [paper:  1.1%%]\n",
              pct(gpu_perm.acc, gpu_perm.total));
  std::printf("  GPU permanent violations: %5.1f%%  [paper:  0.9%%]\n",
              pct(gpu_perm.viol, gpu_perm.total));
  std::printf("\n§VI-A missed safety hazards: %d / %d = %.4f "
              "[paper: 4/3189 = 0.001]\n",
              missed_hazards, total_fi_runs,
              total_fi_runs ? static_cast<double>(missed_hazards) /
                                  total_fi_runs
                            : 0.0);
  return 0;
}
