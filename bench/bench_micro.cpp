// Engineering microbenchmarks (google-benchmark): throughput of the
// simulator, renderer, instrumented engines, agent pipeline and detector.
#include <benchmark/benchmark.h>

#include "campaign/driver.h"
#include "campaign/env_options.h"
#include "core/ads_system.h"
#include "core/detector.h"
#include "sensors/sensor_rig.h"
#include "sim/world.h"

namespace {

using namespace dav;

void BM_WorldStep(benchmark::State& state) {
  World world(make_scenario(ScenarioId::kLongRoute02));
  for (auto _ : state) {
    world.step({0.3, 0.0, 0.0}, 0.05);
    benchmark::DoNotOptimize(world.ego());
  }
}
BENCHMARK(BM_WorldStep);

void BM_CameraRender(benchmark::State& state) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  CameraRenderer renderer(front_camera_rig()[1]);
  Rng noise(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(world, noise));
  }
}
BENCHMARK(BM_CameraRender);

void BM_EngineExecClean(benchmark::State& state) {
  GpuEngine eng;
  eng.configure({}, 0);
  float v = 1.0f;
  for (auto _ : state) {
    v = eng.exec(GpuOpcode::kFFma, v * 1.0000001f);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineExecClean);

void BM_EngineExecArmedPermanent(benchmark::State& state) {
  GpuEngine eng;
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kFAdd);  // not kFFma
  eng.configure(plan, 1);
  float v = 1.0f;
  for (auto _ : state) {
    v = eng.exec(GpuOpcode::kFFma, v * 1.0000001f);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineExecArmedPermanent);

void BM_AgentStep(benchmark::State& state) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  const auto cams = front_camera_rig();
  SensorRig rig(cams, 7);
  GpuEngine gpu;
  CpuEngine cpu;
  gpu.configure({}, 0);
  cpu.configure({}, 0);
  AgentConfig cfg;
  cfg.perception.center_cam = cams[1];
  SensorimotorAgent agent("bench", cfg, gpu, cpu, &world.map());
  const SensorFrame frame = rig.capture(world, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act(frame, 0.05));
  }
}
BENCHMARK(BM_AgentStep);

void BM_DetectorObserve(benchmark::State& state) {
  ThresholdLut lut;
  VehicleState s;
  s.v = 10.0;
  lut.observe(s, {0.1, 0.1, 0.1});
  ErrorDetector det(lut, {});
  StepObservation obs{0.0, s, {0.01, 0.01, 0.01}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.observe(obs));
    obs.time += 0.05;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorObserve);

void BM_GoldenRunLeadSlowdown(benchmark::State& state) {
  for (auto _ : state) {
    RunConfig cfg;
    cfg.scenario = ScenarioId::kLeadSlowdown;
    cfg.mode = AgentMode::kRoundRobin;
    cfg.run_seed = 5;
    // Honors DAV_TRACE so CI can measure flight-recorder overhead: the same
    // binary runs traced and untraced and the medians are compared.
    cfg.trace = EnvOptions::from_env().trace_options();
    benchmark::DoNotOptimize(run_experiment(cfg));
  }
}
BENCHMARK(BM_GoldenRunLeadSlowdown)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
