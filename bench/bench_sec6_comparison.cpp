// §VI-B / §VI-C: DiverseAV vs a loosely-coupled fully-duplicated ADS (FD-ADS)
// vs a single-agent temporal-outlier detector, on the same GPU fault-
// injection campaign structure. Each configuration trains its own detector
// on fault-free long-scenario runs of the SAME configuration.
//
// Paper results:               precision  recall
//   DiverseAV (td=2, rw=3)        0.87     0.87
//   FD-ADS                        0.18     0.84   (over-sensitive -> low P)
//   Single agent (temporal)       0.17     0.52
// and zero golden-run false alarms for DiverseAV and FD.
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("§VI-B/C — DiverseAV vs FD-ADS vs single-agent detector",
               "DiverseAV (DSN'22) §VI-B, §VI-C");

  CampaignManager mgr = make_manager();

  TextTable table({"Configuration", "Precision", "Recall", "F1",
                   "Golden FAs"});

  const auto evaluate_mode = [&](AgentMode mode, const char* label) {
    const ThresholdLut lut = train_lut(mgr.training_observations(mode), 3);
    Confusion conf;
    int golden_fa = 0;
    for (ScenarioId scenario : safety_scenarios()) {
      const GoldenSet g =
          golden_set(mgr, scenario, mode, mgr.scale().golden_runs);
      for (FaultModelKind kind :
           {FaultModelKind::kPermanent, FaultModelKind::kTransient}) {
        const auto runs =
            mgr.fi_campaign(scenario, mode, FaultDomain::kGpu, kind);
        const DetectionEval ev =
            evaluate_detection(runs, g.runs, g.baseline, lut, 3, 2.0);
        conf.tp += ev.confusion.tp;
        conf.fp += ev.confusion.fp;
        conf.tn += ev.confusion.tn;
        conf.fn += ev.confusion.fn;
        if (kind == FaultModelKind::kPermanent) {
          golden_fa += ev.golden_false_alarms;
        }
      }
    }
    table.add_row({label, TextTable::fmt(conf.precision()),
                   TextTable::fmt(conf.recall()), TextTable::fmt(conf.f1()),
                   std::to_string(golden_fa)});
    return conf;
  };

  evaluate_mode(AgentMode::kRoundRobin, "DiverseAV (round-robin)");
  evaluate_mode(AgentMode::kDuplicate, "FD-ADS (loosely coupled)");
  evaluate_mode(AgentMode::kSingle, "Single agent (temporal outlier)");

  std::printf("%s\n", table.render().c_str());
  std::printf("Paper: DiverseAV P=0.87 R=0.87; FD-ADS P=0.18 R=0.84; "
              "single agent P=0.17 R=0.52.\n");
  std::printf("Expected shape: DiverseAV dominates on precision; FD recall\n"
              "close to DiverseAV's; the single agent trails on both.\n");
  return 0;
}
