// §VIII extension: DiverseAV on a UAV (the paper's named future work).
// Trains the rolling-window detector on fault-free training flights, then
// sweeps permanent CPU faults over the full CPU ISA on the gusty mission and
// reports detection quality — the same methodology as the car campaigns, on
// a different dynamical system whose compute profile is CPU-dominated.
#include <cstdio>

#include "bench_common.h"
#include "fi/plan_generator.h"
#include "uav/uav.h"

namespace {

using namespace dav;
using namespace dav::uav;

double max_abs_alt_err(const UavRunResult& r) { return r.max_alt_error; }

bool uav_positive(const UavRunResult& r) {
  return r.crashed || r.max_alt_error > 8.0;
}

}  // namespace

int main() {
  using namespace dav::bench;
  print_header("UAV extension — DiverseAV on a quadrotor mission",
               "DiverseAV (DSN'22) §VIII future work");

  // Train on fault-free flights (seeded sensor noise is the nondeterminism).
  std::vector<std::vector<StepObservation>> train;
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    UavRunConfig cfg;
    cfg.run_seed = seed;
    train.push_back(run_uav_experiment(cfg).observations);
  }
  const ThresholdLut lut = train_lut(train, /*rw=*/3);
  std::printf("trained on %zu flights: %llu observations\n", train.size(),
              static_cast<unsigned long long>(lut.observations()));

  // Golden flights must not alarm.
  int golden_fa = 0;
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    UavRunConfig cfg;
    cfg.run_seed = seed;
    const UavRunResult r = run_uav_experiment(cfg);
    golden_fa += replay_detector(r.observations, lut, {3}).alarmed;
  }
  std::printf("golden flights false alarms: %d / 6\n", golden_fa);

  // Permanent CPU fault sweep over the full ISA.
  InjectionPlanGenerator gen(77);
  const auto plans = gen.permanent_plans(FaultDomain::kCpu, 1);
  Confusion conf;
  int dues = 0;
  int crashes = 0;
  Accumulator alt_err;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    UavRunConfig cfg;
    cfg.fault = plans[i];
    cfg.run_seed = 300 + i;
    const UavRunResult r = run_uav_experiment(cfg);
    if (r.due) {
      ++dues;
      continue;  // platform-detected
    }
    crashes += r.crashed;
    alt_err.add(max_abs_alt_err(r));
    const bool alarm = replay_detector(r.observations, lut, {3}).alarmed;
    conf.add(alarm, uav_positive(r));
  }

  TextTable table({"Metric", "Value"});
  table.add_row({"ISA opcodes swept", std::to_string(plans.size())});
  table.add_row({"platform DUEs (crash/hang/validator)", std::to_string(dues)});
  table.add_row({"UAV crashes (ground impact)", std::to_string(crashes)});
  table.add_row({"max altitude error (surviving runs, mean)",
                 TextTable::fmt(alt_err.mean(), 2) + " m"});
  table.add_row({"detector precision", TextTable::fmt(conf.precision())});
  table.add_row({"detector recall", TextTable::fmt(conf.recall())});
  std::printf("%s\n", table.render().c_str());
  std::printf("Observed shape: as in the car campaigns, most CPU faults are\n"
              "platform-detected DUEs; the few surviving violations corrupt\n"
              "both time-multiplexed replicas near-identically (the PID\n"
              "pipeline has single scalar bottlenecks), so actuation\n"
              "comparison alone catches few of them — consistent with the\n"
              "paper's note that proving coverage in other dynamical systems\n"
              "is exactly the open question this extension probes (§VIII).\n");
  return 0;
}
