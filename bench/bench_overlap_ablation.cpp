// Partial-duplication ablation (paper §III-D footnote 5): sending a fraction
// of frames to BOTH agents raises the per-agent data rate (smaller safety-
// margin cost) at the price of compute overhead. Sweeps the overlap ratio
// and reports compute overhead, golden trajectory divergence and detection
// quality on the LeadSlowdown GPU permanent campaign.
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Ablation — partial duplication (overlap ratio)",
               "DiverseAV (DSN'22) §III-D footnote 5");

  CampaignManager mgr = make_manager();

  // Reference: single-agent instruction count for overhead normalization.
  RunConfig single_cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kSingle);
  single_cfg.run_seed = 17;
  const RunResult single = run_experiment(single_cfg);
  const double single_gpu = static_cast<double>(single.gpu_instructions);

  const GoldenSet orig = golden_set(mgr, ScenarioId::kLeadSlowdown,
                                    AgentMode::kSingle, 5);

  TextTable table({"Overlap", "GPU overhead", "Golden div [m]", "Precision",
                   "Recall", "F1"});
  for (double overlap : {0.0, 0.25, 0.5, 1.0}) {
    // The detector must be trained at the overlap it will run with (the
    // fault-free divergence statistics change with the comparison pattern).
    std::vector<std::vector<StepObservation>> train_obs;
    for (ScenarioId scenario : training_scenarios()) {
      RunConfig cfg = mgr.base_config(scenario, AgentMode::kRoundRobin);
      cfg.overlap_ratio = overlap;
      cfg.run_seed = 900 + static_cast<std::uint64_t>(overlap * 100);
      train_obs.push_back(run_experiment(cfg).observations);
    }
    const ThresholdLut lut = train_lut(train_obs, 3);

    // Golden runs at this overlap.
    std::vector<RunResult> golden;
    for (int i = 0; i < 5; ++i) {
      RunConfig cfg =
          mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
      cfg.overlap_ratio = overlap;
      cfg.run_seed = 300 + static_cast<std::uint64_t>(i);
      golden.push_back(run_experiment(cfg));
    }
    const Trajectory baseline = golden_baseline(golden);
    double worst_vs_orig = 0.0;
    for (const auto& g : golden) {
      worst_vs_orig =
          std::max(worst_vs_orig, run_divergence(g, orig.baseline));
    }
    const double overhead =
        static_cast<double>(golden[0].gpu_instructions) / single_gpu;

    // FI sweep at this overlap.
    InjectionPlanGenerator gen(41);
    const auto plans = gen.permanent_plans(FaultDomain::kGpu, 1);
    std::vector<RunResult> runs;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      RunConfig cfg =
          mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
      cfg.overlap_ratio = overlap;
      cfg.fault = plans[i];
      cfg.run_seed = 400 + i;
      runs.push_back(run_experiment(cfg));
    }
    const DetectionEval ev =
        evaluate_detection(runs, golden, baseline, lut, 3, 2.0);
    table.add_row({TextTable::fmt(overlap, 2),
                   TextTable::fmt(overhead, 2) + "x",
                   TextTable::fmt(worst_vs_orig, 2),
                   TextTable::fmt(ev.precision()), TextTable::fmt(ev.recall()),
                   TextTable::fmt(ev.f1())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Overhead grows from ~1x (pure round-robin) to ~2x (every\n"
              "frame duplicated). Detection degrades as overlap -> 1: with\n"
              "identical inputs on the SAME processor the replicas converge\n"
              "to identical state, and a permanent fault corrupts both\n"
              "identically — exactly the paper's §VI-B argument for why\n"
              "time-multiplexed FULL duplication cannot detect permanent\n"
              "faults. Footnote 5's dial therefore trades margin against\n"
              "BOTH overhead and coverage.\n");
  return 0;
}
