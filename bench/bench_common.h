// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.
//
// Every sweep goes through CampaignManager::run_all, so all bench binaries
// inherit the process-isolated executor: DAV_JOBS parallelizes the campaign
// across sandboxed workers and DAV_JOURNAL makes it resumable after an
// interruption, with bit-identical output (DESIGN.md §9).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/env_options.h"
#include "campaign/metrics.h"
#include "util/text_report.h"

namespace dav::bench {

inline CampaignManager make_manager() {
  // One env read (the typed façade), injected explicitly: sizing, executor
  // routing and trace opt-in all come from the same validated snapshot.
  return CampaignManager(EnvOptions::from_env(), /*seed=*/2022);
}

inline void print_header(const std::string& what, const std::string& paper) {
  std::printf("==========================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Paper reference: %s\n", paper.c_str());
  std::printf("==========================================================\n");
}

/// Golden runs + baseline for one scenario/mode.
struct GoldenSet {
  std::vector<RunResult> runs;
  Trajectory baseline;
};

inline GoldenSet golden_set(CampaignManager& mgr, ScenarioId scenario,
                            AgentMode mode, int count) {
  GoldenSet g;
  g.runs = mgr.golden(scenario, mode, count);
  g.baseline = golden_baseline(g.runs);
  return g;
}

}  // namespace dav::bench
