// Ablation of the detector's design choices (DESIGN.md §5): the state-indexed
// threshold LUT vs a single global threshold, the exceedance debounce, and
// the low-speed evaluation gate — all evaluated on the LeadSlowdown GPU
// permanent-fault campaign at td = 2, rw = 3.
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"

namespace {

using namespace dav;

/// Collapse a LUT to a single global threshold by widening every bin axis to
/// one bin (everything falls into the same cell).
ThresholdLut train_global(const std::vector<std::vector<StepObservation>>& obs,
                          std::size_t rw) {
  LutConfig cfg;
  cfg.speed.bins = 1;
  cfg.accel.bins = 1;
  cfg.yaw_rate.bins = 1;
  cfg.yaw_accel.bins = 1;
  return train_lut(obs, rw, cfg);
}

struct Variant {
  const char* name;
  ThresholdLut lut;
  DetectorConfig det;
};

}  // namespace

int main() {
  using namespace dav::bench;
  print_header("Ablation — detector design choices (LSD, GPU permanent)",
               "DiverseAV (DSN'22) §III-D design decisions");

  CampaignManager mgr = make_manager();
  const auto train = mgr.training_observations(AgentMode::kRoundRobin);
  const GoldenSet g = golden_set(mgr, ScenarioId::kLeadSlowdown,
                                 AgentMode::kRoundRobin,
                                 mgr.scale().golden_runs);
  const auto runs =
      mgr.fi_campaign(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin,
                      FaultDomain::kGpu, FaultModelKind::kPermanent);

  DetectorConfig base;
  DetectorConfig no_debounce = base;
  no_debounce.debounce = 1;
  DetectorConfig no_gate = base;
  no_gate.min_eval_speed = 0.0;

  std::vector<Variant> variants;
  variants.push_back({"state-indexed LUT (paper design)", train_lut(train, 3),
                      base});
  variants.push_back({"single global threshold", train_global(train, 3), base});
  variants.push_back({"no debounce (alarm on first exceedance)",
                      train_lut(train, 3), no_debounce});
  variants.push_back({"no low-speed gate", train_lut(train, 3), no_gate});

  TextTable table({"Variant", "Precision", "Recall", "F1", "Golden FAs"});
  for (const auto& v : variants) {
    Confusion conf;
    int golden_fa = 0;
    for (const auto& run : runs) {
      if (run.due && !run.collision) continue;
      const bool positive = is_positive(run, g.baseline, 2.0);
      ReplayResult rr = replay_detector(run.observations, v.lut, v.det);
      const bool alarm = rr.alarmed || run.due;
      conf.add(alarm, positive);
    }
    for (const auto& run : g.runs) {
      golden_fa += replay_detector(run.observations, v.lut, v.det).alarmed;
    }
    table.add_row({v.name, TextTable::fmt(conf.precision()),
                   TextTable::fmt(conf.recall()), TextTable::fmt(conf.f1()),
                   std::to_string(golden_fa)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: the LUT variant dominates — a global threshold must\n"
              "sit above the worst-case fault-free divergence of ANY state,\n"
              "losing recall; removing debounce or the gate costs precision\n"
              "and golden-run cleanliness (availability).\n");
  return 0;
}
