// Fig 5 + §V-A: temporal bit diversity and semantic consistency.
//
// Paper results reproduced here:
//   Fig 5a  KITTI camera bit diversity: p50 = 8, p90 = 13 (of 24 bits/pixel)
//           IMU/GPS float diversity:    p50 = 11, p90 = 15 (of 32 bits)
//           LiDAR float diversity:      p50 = 14, p90 = 18 (of 32 bits)
//   Fig 5b  simulator camera diversity: p50 = 5, p90 = 9  (of 24 bits/pixel)
//   §V-A    bbox-center shift between frames: p50 = 5 px, p90 = 22 px
//           LiDAR object-center shift:       p50 = 0.48 m, p90 = 1.26 m
#include <cstdio>

#include "bench_common.h"
#include "sensors/diversity.h"
#include "sensors/kitti_synth.h"
#include "sensors/sensor_rig.h"
#include "sim/world.h"

namespace {

using namespace dav;

/// Drive the world with a simple reference controller to record frames (the
/// diversity analysis is about the sensor stream, not the agent).
Actuation cruise_controller(const World& world, double target) {
  Actuation cmd;
  const double err = target - world.ego().v;
  if (world.cvip() < 12.0) {
    cmd.brake = clamp(0.25 + (12.0 - world.cvip()) * 0.1, 0.0, 1.0);
  } else if (err > 0.0) {
    cmd.throttle = clamp(0.4 * err, 0.0, 0.8);
  }
  const double head_err = wrap_angle(
      world.map().heading_at(world.ego_route_s()) - world.ego().pose.yaw);
  cmd.steer = clamp(-0.35 * world.ego_lateral() + 1.2 * head_err, -1.0, 1.0);
  return cmd;
}

void simulator_camera_diversity() {
  CountHistogram hist(25);
  for (ScenarioId id : safety_scenarios()) {
    Scenario sc = make_scenario(id);
    World world(std::move(sc));
    SensorRig rig(front_camera_rig(), /*noise_seed=*/99);
    std::vector<Image> prev;
    for (int step = 0; step < 400 && !world.done(); ++step) {
      SensorFrame frame = rig.capture(world, step);
      if (!prev.empty()) {
        for (std::size_t c = 0; c < frame.cameras.size(); ++c) {
          accumulate_image_bit_diversity(prev[c], frame.cameras[c], hist);
        }
      }
      prev = std::move(frame.cameras);
      world.step(cruise_controller(world, world.scenario().target_speed),
                 0.05);
    }
  }
  std::printf("Fig 5b  simulator camera (40 Hz equivalent, 3 cameras)\n");
  std::printf("  bits differing per 24-bit pixel: p50=%zu p90=%zu"
              "   [paper: p50=5, p90=9]\n",
              hist.percentile(50), hist.percentile(90));
}

void kitti_like_diversity() {
  const KittiLikeSequence seq = generate_kitti_like();

  CountHistogram cam_hist(25);
  for (std::size_t i = 1; i < seq.frames.size(); ++i) {
    accumulate_image_bit_diversity(seq.frames[i - 1], seq.frames[i], cam_hist);
  }
  CountHistogram imu_hist(33);
  for (std::size_t i = 1; i < seq.imu_gps.size(); ++i) {
    accumulate_float_bit_diversity(seq.imu_gps[i - 1], seq.imu_gps[i],
                                   imu_hist);
  }
  CountHistogram lidar_hist(33);
  for (std::size_t i = 1; i < seq.lidar.size(); ++i) {
    accumulate_float_bit_diversity(seq.lidar[i - 1], seq.lidar[i], lidar_hist);
  }

  std::printf("Fig 5a  KITTI-like real-world traces (10 Hz)\n");
  std::printf("  camera: bits/24-bit pixel     p50=%zu p90=%zu"
              "   [paper: p50=8,  p90=13]\n",
              cam_hist.percentile(50), cam_hist.percentile(90));
  std::printf("  IMU+GPS: bits/32-bit float    p50=%zu p90=%zu"
              "   [paper: p50=11, p90=15]\n",
              imu_hist.percentile(50), imu_hist.percentile(90));
  std::printf("  LiDAR:  bits/32-bit float     p50=%zu p90=%zu"
              "   [paper: p50=14, p90=18]\n",
              lidar_hist.percentile(50), lidar_hist.percentile(90));

  // Semantic consistency: object-center shifts between consecutive frames.
  // Pixel shifts are reported in KITTI-equivalent units (the paper's frames
  // are 1242 px wide; ours are cfg.width).
  const double px_scale = 1242.0 / KittiLikeConfig{}.width;
  // KITTI's ground-truth labels only cover objects near the recording
  // vehicle; mirror that annotation range so the statistics are comparable.
  constexpr double kAnnotationRange = 45.0;
  std::vector<double> bbox_shifts;
  std::vector<double> center_shifts;
  for (const auto& track : seq.tracks) {
    for (std::size_t i = 1; i < track.bboxes.size(); ++i) {
      if (track.ego_centers[i].norm() > kAnnotationRange) continue;
      if (track.bboxes[i - 1].valid() && track.bboxes[i].valid()) {
        bbox_shifts.push_back(
            px_scale * bbox_center_shift(track.bboxes[i - 1], track.bboxes[i]));
      }
      center_shifts.push_back(
          distance(track.ego_centers[i - 1], track.ego_centers[i]));
    }
  }
  std::printf("Semantic consistency (KITTI-like ground truth)\n");
  std::printf("  2-D bbox center shift [px, KITTI-scale]: p50=%.1f p90=%.1f"
              "  [paper: p50=5, p90=22 of ~1296 max]\n",
              percentile(bbox_shifts, 50), percentile(bbox_shifts, 90));
  std::printf("  object center shift [m]:      p50=%.2f p90=%.2f"
              "  [paper: p50=0.48, p90=1.26 of 240 max]\n",
              percentile(center_shifts, 50), percentile(center_shifts, 90));
}

}  // namespace

int main() {
  dav::bench::print_header(
      "Fig 5 / §V-A — sensor data diversity & semantic consistency",
      "DiverseAV (DSN'22) §V-A, Fig 5a/5b");
  kitti_like_diversity();
  std::printf("\n");
  simulator_camera_diversity();
  return 0;
}
