// Fig 2 (3)/(4): throttle and CVIP traces for the LeadSlowdown scenario.
//   (3) fault-free: original single-agent ADS vs DiverseAV-enabled ADS —
//       actuation differs slightly, CVIP nearly identical (§V-B).
//   (4) permanent GPU fault: the single agent's throttle shows no visible
//       anomaly (PID smooths it), while the DiverseAV agents' outputs
//       visibly diverge — the signal the error detector thrives on.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace dav;

RunResult traced_run(CampaignManager& mgr, AgentMode mode,
                     const FaultPlan& fault) {
  // Builder over the campaign's base config: scenario/mode come from the
  // manager, the run-specific cluster is chained fluently.
  const RunConfig cfg =
      RunConfigBuilder(mgr.base_config(ScenarioId::kLeadSlowdown, mode))
          .fault(fault)
          .run_seed(31)
          .record_traces()
          .build();
  return run_experiment(cfg);
}

void print_series(const char* name, const RunResult& run, int stride) {
  std::printf("%s\n  t[s]:     ", name);
  for (std::size_t i = 0; i < run.time_trace.size(); i += stride) {
    std::printf("%6.1f", run.time_trace[i]);
  }
  std::printf("\n  throttle: ");
  for (std::size_t i = 0; i < run.throttle_trace.size(); i += stride) {
    std::printf("%6.2f", run.throttle_trace[i]);
  }
  std::printf("\n  CVIP[m]:  ");
  for (std::size_t i = 0; i < run.cvip_trace.size(); i += stride) {
    std::printf("%6.1f", std::min(run.cvip_trace[i], 99.0));
  }
  std::printf("\n");
}

/// Per-agent smoothed throttle divergence trace (Fig 2(4)(b)'s visible
/// divergence between the two agents).
void print_divergence(const char* name, const RunResult& run, int stride) {
  std::printf("%s\n  |du| thr: ", name);
  for (std::size_t i = 0; i < run.observations.size();
       i += static_cast<std::size_t>(stride)) {
    std::printf("%6.2f", run.observations[i].delta.throttle);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Fig 2 (3)/(4) — LeadSlowdown actuation & CVIP traces",
               "DiverseAV (DSN'22) §III-D, Fig 2");

  CampaignManager mgr = make_manager();
  const int stride = 40;  // 2 s at 20 Hz

  FaultPlan none;
  std::printf("--- Fig 2(3): fault-free ---------------------------------\n");
  const RunResult orig = traced_run(mgr, AgentMode::kSingle, none);
  const RunResult ours = traced_run(mgr, AgentMode::kRoundRobin, none);
  print_series("(a) original single-agent ADS", orig, stride);
  print_series("(b) DiverseAV-enabled ADS", ours, stride);

  // A permanent GPU fault in a data opcode that propagates but does not
  // crash: corrupt FMACC (conv accumulate), a high-frequency opcode.
  FaultPlan fault;
  fault.kind = FaultModelKind::kPermanent;
  fault.domain = FaultDomain::kGpu;
  fault.target_opcode = static_cast<int>(GpuOpcode::kFMacc);
  fault.bit = 21;

  std::printf("\n--- Fig 2(4): permanent GPU fault (FMACC bit 21) ---------\n");
  const RunResult forig = traced_run(mgr, AgentMode::kSingle, fault);
  const RunResult fours = traced_run(mgr, AgentMode::kRoundRobin, fault);
  print_series("(a) single agent under fault (PID smooths the anomaly)",
               forig, stride);
  print_series("(b) DiverseAV under fault", fours, stride);
  print_divergence("    inter-agent throttle divergence (fault-free)", ours,
                   stride);
  print_divergence("    inter-agent throttle divergence (faulty)", fours,
                   stride);
  std::printf("\nExpected shape: fault-free traces of (3)(a) and (3)(b) are\n"
              "close with near-identical CVIP; under the fault the single\n"
              "agent's throttle stays plausible-looking while the DiverseAV\n"
              "inter-agent divergence becomes clearly visible.\n");
  return 0;
}
