// Fig 6: impact of DiverseAV on the vehicle trajectory.
//
// Box plots of the maximum trajectory divergence delta_pos^{E,B} of golden
// runs against the mean original-ADS trajectory, for the original single-
// agent ADS ("orig") and the DiverseAV-enabled ADS ("ours"), across the three
// safety-critical scenarios. Paper: maximum divergence < 50 cm everywhere,
// no collisions, no traffic-law violations.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Fig 6 — trajectory divergence of DiverseAV vs original ADS",
               "DiverseAV (DSN'22) §V-B, Fig 6");

  CampaignManager mgr = make_manager();
  const int n = mgr.scale().golden_runs;

  bool all_safe = true;
  double worst = 0.0;
  for (ScenarioId id : safety_scenarios()) {
    const GoldenSet orig = golden_set(mgr, id, AgentMode::kSingle, n);
    const auto ours_runs = mgr.golden(id, AgentMode::kRoundRobin, n);

    std::vector<double> orig_div;
    std::vector<double> ours_div;
    for (const auto& r : orig.runs) {
      orig_div.push_back(run_divergence(r, orig.baseline));
      all_safe = all_safe && !r.collision && !r.flags.any();
    }
    for (const auto& r : ours_runs) {
      ours_div.push_back(run_divergence(r, orig.baseline));
      all_safe = all_safe && !r.collision && !r.flags.any();
      worst = std::max(worst, ours_div.back());
    }

    const BoxStats ob = box_stats(orig_div);
    const BoxStats ub = box_stats(ours_div);
    const double hi = std::max(0.5, std::max(ob.max, ub.max));
    std::printf("\n%s (n=%d golden runs each, meters)\n",
                to_string(id).c_str(), n);
    std::printf("  orig  min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f  |%s|\n",
                ob.min, ob.q1, ob.median, ob.q3, ob.max,
                render_box(ob, 0.0, hi, 44).c_str());
    std::printf("  ours  min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f  |%s|\n",
                ub.min, ub.q1, ub.median, ub.q3, ub.max,
                render_box(ub, 0.0, hi, 44).c_str());
  }

  std::printf("\nMax divergence of DiverseAV vs original baseline: %.2f m "
              "[paper: < 0.50 m]\n", worst);
  std::printf("All golden runs collision- and violation-free: %s "
              "[paper: yes]\n", all_safe ? "yes" : "NO");
  return all_safe ? 0 : 1;
}
