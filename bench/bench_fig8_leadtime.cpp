// Fig 8: lead detection time of the DiverseAV detector (td = 2 m, rw = 3)
// over the safety-critical GPU fault-injection runs. Lead detection time =
// collision time - alarm time; the paper finds it significantly above 1.0 s
// (human braking reaction: 0.82 s, AV: 0.85 s), leaving time for the
// fail-back system to act.
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Fig 8 — lead detection time (td=2, rw=3)",
               "DiverseAV (DSN'22) §V-D, Fig 8");

  CampaignManager mgr = make_manager();
  const ThresholdLut lut =
      train_lut(mgr.training_observations(AgentMode::kRoundRobin), 3);

  std::vector<double> lead_times;
  for (ScenarioId scenario : safety_scenarios()) {
    const GoldenSet g = golden_set(mgr, scenario, AgentMode::kRoundRobin,
                                   mgr.scale().golden_runs);
    for (FaultModelKind kind :
         {FaultModelKind::kPermanent, FaultModelKind::kTransient}) {
      const auto runs = mgr.fi_campaign(scenario, AgentMode::kRoundRobin,
                                        FaultDomain::kGpu, kind);
      const DetectionEval ev =
          evaluate_detection(runs, g.runs, g.baseline, lut, 3, 2.0);
      lead_times.insert(lead_times.end(), ev.lead_times_sec.begin(),
                        ev.lead_times_sec.end());
    }
  }

  std::printf("%s\n",
              render_cdf("Cumulative lead detection time", lead_times,
                         "lead time [s]").c_str());
  if (!lead_times.empty()) {
    std::printf("min lead time: %.2f s, median: %.2f s"
                "   [paper: significantly above 1.0 s]\n",
                min_of(lead_times), median(lead_times));
    std::printf("reference reaction times: human 0.82 s, AV 0.85 s\n");
  } else {
    std::printf("no accident runs with pre-collision alarms at this scale; "
                "increase DAV_SCALE for a denser CDF\n");
  }
  return 0;
}
