// Sensor-fault mitigation comparison: fail-degraded multi-sensor fusion vs
// the whole-agent restart ladder under a single-sensor (center camera)
// blackout (DESIGN.md §14, paper §I framing: sensor faults are common-mode —
// both temporal agents consume the same corrupted frames, so the divergence
// detector that catches compute faults is structurally blind to them).
//
// Both arms run the SAME blackout plans, seeds, online detector and restart
// ladder; the only difference is FusionConfig::enabled. Reported per
// scenario: availability, collisions, restart activity, sensor-degradation
// episodes and sensor MTTR. Exit code asserts the headline claim: fusion
// sustains strictly higher mean availability than whole-agent restart, with
// zero hazards after a degradation onset.
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"
#include "fi/plan_generator.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Sensor blackout — fusion degradation vs whole-agent restart",
               "DiverseAV (DSN'22) §I (sensor-fault blind spot), DESIGN.md "
               "§14");

  CampaignManager mgr = make_manager();

  auto train = mgr.training_observations(AgentMode::kRoundRobin);
  const ThresholdLut lut = train_lut(train, /*rw=*/3);

  MitigationSetup restart;
  restart.policy = MitigationPolicy::kRestartRecovery;
  restart.online_lut = &lut;
  restart.online_detector.rw = 3;

  // Blackout runs per scenario per arm: ride the campaign scale so DAV_SCALE
  // shrinks CI sweeps the same way it shrinks every other bench.
  const int runs = std::max(4, mgr.scale().transient_runs / 50);
  const int onset = 100, duration = 200;

  TextTable table({"Scenario", "Arm", "Runs", "Collide", "Restarts",
                   "SensEp", "SensMTTR(s)", "HazAfterDeg", "Avail"});

  struct Arm {
    double avail_sum = 0.0;
    int scenarios = 0;
    int collisions = 0;
    int hazard_after_degrade = 0;
  };
  Arm plain_arm, fused_arm;

  const auto run_arm = [&](ScenarioId scenario, bool fused, Arm& arm) {
    // Deterministic per-scenario plan sweep, shared verbatim by both arms.
    InjectionPlanGenerator gen(0x5E450uLL ^
                               (static_cast<std::uint64_t>(scenario) << 8));
    auto plans = gen.sensor_plans({SensorFaultModel::kCameraBlackout}, runs,
                                  onset, duration);
    std::vector<RunConfig> cfgs;
    cfgs.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      plans[i].sensor_index = 1;  // center camera: the ranging-critical one
      RunConfig cfg;
      cfg.scenario = scenario;
      cfg.mode = AgentMode::kRoundRobin;
      cfg.sensor_fault = plans[i];
      cfg.fusion.enabled = fused;
      cfg.run_seed = 0x5EB10C0uLL + i;
      restart.apply(cfg);
      cfgs.push_back(cfg);
    }
    const auto results = mgr.run_all(cfgs);
    const RecoverySummary s = summarize_recovery(results);
    int collisions = 0, restarts = 0;
    for (const RunResult& r : results) {
      if (r.collision) ++collisions;
      restarts += r.recovery.attempts;
    }
    char mttr[32], avail[32];
    std::snprintf(mttr, sizeof(mttr), "%.2f", s.mean_sensor_mttr_sec);
    std::snprintf(avail, sizeof(avail), "%.3f", s.mean_availability);
    table.add_row({to_string(scenario), fused ? "fusion" : "restart",
                   std::to_string(results.size()), std::to_string(collisions),
                   std::to_string(restarts), std::to_string(s.sensor_episodes),
                   mttr, std::to_string(s.hazard_after_sensor_degrade),
                   avail});
    arm.avail_sum += s.mean_availability;
    ++arm.scenarios;
    arm.collisions += collisions;
    arm.hazard_after_degrade += s.hazard_after_sensor_degrade;
  };

  for (ScenarioId scenario : safety_scenarios()) {
    run_arm(scenario, /*fused=*/false, plain_arm);
    run_arm(scenario, /*fused=*/true, fused_arm);
  }

  std::printf("%s\n", table.render().c_str());

  const double plain_avail = plain_arm.avail_sum / plain_arm.scenarios;
  const double fused_avail = fused_arm.avail_sum / fused_arm.scenarios;
  std::printf("Mean availability:      restart %.3f   fusion %.3f\n",
              plain_avail, fused_avail);
  std::printf("Collisions:             restart %d       fusion %d\n",
              plain_arm.collisions, fused_arm.collisions);
  std::printf("Hazard after degrade:   restart %d       fusion %d\n",
              plain_arm.hazard_after_degrade, fused_arm.hazard_after_degrade);
  std::printf(
      "\nThe divergence detector never fires on a blackout (both agents eat "
      "the same\nblack frames, so the restart ladder has nothing to restart "
      "around), and the\nall-dark mask reads as a phantom wall: the no-fusion "
      "agent hard-stops and\nforfeits the rest of the mission. The fusion arm "
      "drops the dead camera,\ncovers ranging with the LiDAR corridor, and "
      "drives through the outage.\n");

  const bool fused_strictly_better = fused_avail > plain_avail;
  const bool fused_safe = fused_arm.hazard_after_degrade == 0;
  if (!fused_strictly_better) {
    std::printf("FAIL: fusion availability not strictly higher\n");
  }
  if (!fused_safe) {
    std::printf("FAIL: hazards observed after sensor degradation\n");
  }
  return fused_strictly_better && fused_safe ? 0 : 1;
}
