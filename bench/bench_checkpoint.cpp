// Checkpoint-tree payoff: a fault-variant sweep sharing one fault-free
// prefix, run through the real run_experiment with the deep checkpoint tier
// off vs on (campaign/checkpoint.h, DESIGN.md §16).
//
// The sweep is the shape the tier exists for: every variant has the same
// scenario, seed and world evolution up to the injection onset and differs
// only in its sensor-fault plan. Checkpoint-off replays the shared prefix
// once per variant; checkpoint-on simulates it once, captures at the onset
// tick, and every sibling resumes from the snapshot and pays only for its
// own suffix. With the onset at 90% of the run the ideal payoff for K
// variants is K / (1 + (K-1)/10); the CI gate (--assert-min-speedup) holds
// the realized speedup to >= 3x against the pool+warm-cache baseline.
//
// Restored runs are pinned byte-identical to straight-through runs
// (test_checkpoint.cpp), and this benchmark re-verifies that on every
// invocation before it reports a single number.
//
// Usage: bench_checkpoint [--jobs=N] [--assert-min-speedup=X]
// Env:   DAV_SCALE scales the sweep width (same knob as the campaigns).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/driver.h"
#include "campaign/env_options.h"
#include "campaign/executor.h"
#include "campaign/serialize.h"
#include "fi/sensor_fault.h"

namespace {

using namespace dav;

// 160 ticks of simulated time with injection at tick 144: the shared prefix
// is 90% of every run, so the deep tier elides almost all repeated work.
constexpr double kDurationSec = 8.0;
constexpr int kOnsetTick = 144;

std::vector<RunConfig> sweep(std::size_t n) {
  std::vector<RunConfig> cfgs;
  cfgs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RunConfig cfg = RunConfigBuilder()
                        .scenario(ScenarioId::kLeadSlowdown)
                        .mode(AgentMode::kRoundRobin)
                        .run_seed(777)
                        .build();
    cfg.scenario_opts.safety_duration_sec = kDurationSec;
    cfg.fusion.enabled = true;
    cfg.sensor_fault.model = (i % 2 == 0) ? SensorFaultModel::kCameraBlackout
                                          : SensorFaultModel::kCameraFrozen;
    cfg.sensor_fault.sensor_index = 1;
    cfg.sensor_fault.onset_tick = kOnsetTick;
    cfg.sensor_fault.duration_ticks = 10;
    cfg.sensor_fault.seed = 4000 + i;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

struct Measurement {
  double runs_per_sec = 0.0;
  std::vector<std::string> result_bytes;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

Measurement measure(int jobs, bool checkpoint,
                    const std::vector<RunConfig>& cfgs) {
  ExecutorOptions o;
  o.jobs = jobs;
  o.pool = true;
  o.warm_cache = true;
  o.checkpoint = checkpoint;
  o.run_timeout_sec = 600.0;
  o.max_retries = 0;
  CampaignExecutor exec(o);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = exec.run_all(cfgs);
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();

  Measurement m;
  m.runs_per_sec = sec > 0.0 ? static_cast<double>(cfgs.size()) / sec : 0.0;
  m.hits = exec.stats().checkpoint_hits;
  m.misses = exec.stats().checkpoint_misses;
  m.result_bytes.reserve(results.size());
  for (const auto& r : results) {
    m.result_bytes.push_back(serialize_run_result(r));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 1;
  double assert_min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--assert-min-speedup=", 0) == 0) {
      assert_min_speedup = std::atof(arg.c_str() + 21);
    } else {
      std::fprintf(stderr,
                   "usage: bench_checkpoint [--jobs=N] "
                   "[--assert-min-speedup=X]\n");
      return 2;
    }
  }
  if (jobs < 1) jobs = 1;

  const EnvOptions env = EnvOptions::from_env();
  const std::size_t n = std::max<std::size_t>(
      8, static_cast<std::size_t>(12.0 * env.scale));
  const auto cfgs = sweep(n);

  std::printf("==========================================================\n");
  std::printf("Checkpoint trees: shared-prefix sweep, deep tier off vs on\n");
  std::printf("jobs=%d  variants=%zu  prefix=%d/%d ticks\n", jobs, n,
              kOnsetTick, static_cast<int>(kDurationSec / 0.05));
  std::printf("==========================================================\n");

  const Measurement off = measure(jobs, /*checkpoint=*/false, cfgs);
  const Measurement on = measure(jobs, /*checkpoint=*/true, cfgs);

  // The tier must never change a byte of any result.
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (on.result_bytes[i] != off.result_bytes[i]) {
      std::fprintf(stderr,
                   "FAIL: checkpointed run %zu differs from the "
                   "straight-through run — results must be bit-identical\n",
                   i);
      return 1;
    }
  }

  const double speedup = on.runs_per_sec / off.runs_per_sec;
  std::printf("checkpoint off : %8.2f runs/sec\n", off.runs_per_sec);
  std::printf("checkpoint on  : %8.2f runs/sec  (%.2fx, %llu hits / %llu "
              "misses)\n",
              on.runs_per_sec, speedup,
              static_cast<unsigned long long>(on.hits),
              static_cast<unsigned long long>(on.misses));
  std::printf("results bit-identical with the tier on: yes\n");

  if (assert_min_speedup > 0.0 && speedup < assert_min_speedup) {
    std::fprintf(stderr, "FAIL: checkpoint speedup %.2fx < required %.2fx\n",
                 speedup, assert_min_speedup);
    return 1;
  }
  return 0;
}
