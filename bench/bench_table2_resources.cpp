// Table II: average system resources used by the single-agent, DiverseAV and
// fully-duplicated (FD) configurations. Paper: DiverseAV matches the single-
// agent system's per-processor compute utilization (slightly higher) with 2x
// the memory; FD matches per-processor utilization but needs 2x processors
// AND 2x memory. Utilization is normalized so the single-agent configuration
// sits at the paper's nominal operating point (4% CPU, 14% GPU).
#include <cstdio>

#include "bench_common.h"
#include "campaign/resources.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Table II — resource usage by configuration",
               "DiverseAV (DSN'22) §V-E, Table II");

  CampaignManager mgr = make_manager();

  RunConfig single_cfg = mgr.base_config(ScenarioId::kLeadSlowdown,
                                         AgentMode::kSingle);
  single_cfg.run_seed = 77;
  const RunResult single_run = run_experiment(single_cfg);

  TextTable table({"Config", "CPU/proc", "GPU/proc", "RAM", "VRAM", "#Proc"});
  for (AgentMode mode : {AgentMode::kSingle, AgentMode::kRoundRobin,
                         AgentMode::kDuplicate}) {
    RunConfig cfg = mgr.base_config(ScenarioId::kLeadSlowdown, mode);
    cfg.run_seed = 77;
    const RunResult run = run_experiment(cfg);
    const ResourceUsage u = measure_resources(run, single_run);
    table.add_row({u.config, TextTable::fmt(u.cpu_util_pct, 1) + "%",
                   TextTable::fmt(u.gpu_util_pct, 1) + "%",
                   TextTable::fmt(u.ram_kb, 0) + " KB",
                   TextTable::fmt(u.vram_kb, 0) + " KB",
                   std::to_string(u.processors)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper Table II (their testbed):\n");
  std::printf("  Single Agent:  CPU 4%%, GPU 14%%, RAM 431 MB, VRAM 198 MB\n");
  std::printf("  DiverseAV:     CPU 5%%, GPU 15%%, RAM 862 MB, VRAM 396 MB\n");
  std::printf("  FD (per proc): CPU 4%%, GPU 14%%, 2x processors, 2x memory\n");
  std::printf("\nReproduced shape: DiverseAV ~= single-agent compute on one\n"
              "processor pair with ~2x memory; FD needs two processor pairs.\n");
  return 0;
}
