// Fig 7: precision and recall heat maps of the DiverseAV error detector over
// the trajectory-violation threshold td (1..5 m) and the rolling window size
// rw (3..40). The detector is trained on the three long scenarios (fault-
// free) and tested on GPU fault-injection runs of the three safety-critical
// scenarios. Paper: robust for td >= 2, rw <= 30; best P = 0.87, R = 0.87 at
// td = 2, rw = 3; zero alarms on golden runs.
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Fig 7 — detector precision/recall over (td, rw)",
               "DiverseAV (DSN'22) §V-D, Fig 7a/7b");

  CampaignManager mgr = make_manager();
  const auto train = mgr.training_observations(AgentMode::kRoundRobin);

  struct ScenarioData {
    GoldenSet golden;
    std::vector<RunResult> fi;
  };
  std::vector<ScenarioData> data;
  for (ScenarioId scenario : safety_scenarios()) {
    ScenarioData d;
    d.golden = golden_set(mgr, scenario, AgentMode::kRoundRobin,
                          mgr.scale().golden_runs);
    auto perm = mgr.fi_campaign(scenario, AgentMode::kRoundRobin,
                                FaultDomain::kGpu, FaultModelKind::kPermanent);
    auto trans = mgr.fi_campaign(scenario, AgentMode::kRoundRobin,
                                 FaultDomain::kGpu, FaultModelKind::kTransient);
    d.fi = std::move(perm);
    d.fi.insert(d.fi.end(), trans.begin(), trans.end());
    data.push_back(std::move(d));
  }

  const std::vector<std::size_t> rws = {3, 5, 10, 15, 20, 30, 40};
  const std::vector<double> tds = {1.0, 2.0, 3.0, 4.0, 5.0};

  std::vector<std::vector<double>> precision(
      tds.size(), std::vector<double>(rws.size(), 0.0));
  std::vector<std::vector<double>> recall = precision;
  std::vector<std::vector<double>> f1 = precision;
  int golden_false_alarms_total = 0;

  double best_f1 = -1.0;
  double best_td = 0.0;
  std::size_t best_rw = 0;
  for (std::size_t ri = 0; ri < rws.size(); ++ri) {
    const ThresholdLut lut = train_lut(train, rws[ri]);
    for (std::size_t ti = 0; ti < tds.size(); ++ti) {
      Confusion conf;
      int golden_fa = 0;
      for (const auto& d : data) {
        const DetectionEval ev = evaluate_detection(
            d.fi, d.golden.runs, d.golden.baseline, lut, rws[ri], tds[ti]);
        conf.tp += ev.confusion.tp;
        conf.fp += ev.confusion.fp;
        conf.tn += ev.confusion.tn;
        conf.fn += ev.confusion.fn;
        golden_fa += ev.golden_false_alarms;
      }
      precision[ti][ri] = conf.precision();
      recall[ti][ri] = conf.recall();
      f1[ti][ri] = conf.f1();
      if (ti == 1 && ri == 0) golden_false_alarms_total = golden_fa;
      if (conf.f1() > best_f1) {
        best_f1 = conf.f1();
        best_td = tds[ti];
        best_rw = rws[ri];
      }
    }
  }

  std::vector<std::string> col_labels;
  for (auto rw : rws) col_labels.push_back("rw=" + std::to_string(rw));
  std::vector<std::string> row_labels;
  for (auto td : tds) row_labels.push_back("td=" + std::to_string(int(td)));

  std::printf("%s\n", render_heatmap("Fig 7a — precision", row_labels,
                                     col_labels, precision).c_str());
  std::printf("%s\n", render_heatmap("Fig 7b — recall", row_labels,
                                     col_labels, recall).c_str());
  std::printf("%s\n", render_heatmap("F1 (selection metric, §III-D)",
                                     row_labels, col_labels, f1).c_str());
  std::printf("Best F1 = %.2f at td = %.0f m, rw = %zu"
              "   [paper: P = 0.87, R = 0.87 at td = 2, rw = 3]\n",
              best_f1, best_td, best_rw);
  std::printf("Golden-run false alarms at (td=2, rw=3): %d  [paper: 0]\n",
              golden_false_alarms_total);
  return 0;
}
