// Mitigation comparison: safe-stop-only failback vs DiverseAV restart
// recovery on the Table-I GPU campaigns (paper §I/§VII: the value of
// identifying the faulty agent is that the vehicle can keep driving instead
// of stopping on every alarm).
//
// Both arms run the SAME sweep structure, seeds and fault plans, with the
// same in-run online detector; only the mitigation policy differs, so every
// row is run-for-run comparable. Reported per campaign: availability (mean
// fraction of the scheduled mission spent under closed-loop control),
// recovered runs, completed-recovery MTTR, escalations to failback, and
// hazard-after-recovery (collisions at/after a rejoin).
#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"

int main() {
  using namespace dav;
  using namespace dav::bench;
  print_header("Mitigation — safe-stop failback vs restart recovery",
               "DiverseAV (DSN'22) §I, §VII (mitigation outlook)");

  CampaignManager mgr = make_manager();

  auto train = mgr.training_observations(AgentMode::kRoundRobin);
  const ThresholdLut lut = train_lut(train, /*rw=*/3);

  MitigationSetup safe_stop;
  safe_stop.policy = MitigationPolicy::kSafeStopOnly;
  safe_stop.online_lut = &lut;
  safe_stop.online_detector.rw = 3;

  MitigationSetup restart = safe_stop;
  restart.policy = MitigationPolicy::kRestartRecovery;

  TextTable table({"Campaign", "DS", "Policy", "DUE", "Recov", "Escal",
                   "MTTR(s)", "Avail", "HazAfterRec"});

  struct Arm {
    double avail_sum = 0.0;
    int campaigns = 0;
    int recovered = 0;
    int hazards = 0;
  };
  Arm stop_arm, restart_arm;

  const auto run_arm = [&](ScenarioId scenario, FaultModelKind kind,
                           const char* label, const MitigationSetup& setup,
                           const char* policy, Arm& arm) {
    const auto runs = mgr.fi_campaign(scenario, AgentMode::kRoundRobin,
                                      FaultDomain::kGpu, kind, &setup);
    const RecoverySummary s = summarize_recovery(runs);
    char mttr[32], avail[32];
    std::snprintf(mttr, sizeof(mttr), "%.2f", s.mean_mttr_sec);
    std::snprintf(avail, sizeof(avail), "%.3f", s.mean_availability);
    table.add_row({label, to_string(scenario), policy,
                   std::to_string(s.due_runs),
                   std::to_string(s.recovered_runs),
                   std::to_string(s.escalated_runs), mttr, avail,
                   std::to_string(s.hazard_after_recovery)});
    arm.avail_sum += s.mean_availability;
    ++arm.campaigns;
    arm.recovered += s.recovered_runs;
    arm.hazards += s.hazard_after_recovery;
  };

  for (FaultModelKind kind :
       {FaultModelKind::kTransient, FaultModelKind::kPermanent}) {
    const char* label = kind == FaultModelKind::kTransient ? "GPU-transient"
                                                           : "GPU-permanent";
    for (ScenarioId scenario : safety_scenarios()) {
      run_arm(scenario, kind, label, safe_stop, "safe-stop", stop_arm);
      run_arm(scenario, kind, label, restart, "restart", restart_arm);
    }
  }

  std::printf("%s\n", table.render().c_str());

  const double stop_avail = stop_arm.avail_sum / stop_arm.campaigns;
  const double restart_avail = restart_arm.avail_sum / restart_arm.campaigns;
  std::printf("Mean availability:  safe-stop %.3f   restart %.3f\n",
              stop_avail, restart_avail);
  std::printf("Recovered runs:     safe-stop %d       restart %d\n",
              stop_arm.recovered, restart_arm.recovered);
  std::printf("Hazard after rec.:  safe-stop %d       restart %d\n",
              stop_arm.hazards, restart_arm.hazards);
  std::printf("\nRestart recovery trades the forfeited mission time of the "
              "safe stop for a\nshort probe+rewarm outage; permanent faults "
              "exhaust the escalation window\nand fall back to the safe "
              "stop.\n");
  return stop_avail < restart_avail ? 0 : 1;
}
