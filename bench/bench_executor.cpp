// Executor strategy shoot-out: fork-per-run vs persistent pool vs
// pool + warm-state cache, reported as campaign throughput (runs/sec).
//
// The default sweep uses a SYNTHETIC paper-shaped workload: a deterministic
// compute kernel whose warm-up phase (scenario construction + agent warm-up
// replay, the part the cache elides) dominates a short per-run body, sized
// like the per-run overheads measured on this simulator (fork+exec+teardown
// ≈ 0.9 ms/run; warm-up ≈ 3 ms). That makes the strategy difference visible
// and CI-assertable (--assert-min-speedup) without hour-long campaigns. The
// kernel's output NEVER feeds the RunResult, so cold and warm runs are
// byte-identical by construction — the same invariant the real warm cache
// keeps (test_executor.cpp: CheckpointSetup.HitEqualsColdRunByteForByte).
//
// --real swaps in the actual run_experiment on short LeadSlowdown runs for
// an informational line: there the 368 ms simulation body dwarfs every
// per-run overhead, so the speedup is honest but small.
//
// Usage: bench_executor [--jobs=N] [--assert-min-speedup=X] [--real]
// Env:   DAV_SCALE scales the batch size (same knob as the campaigns).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/driver.h"
#include "campaign/env_options.h"
#include "campaign/executor.h"
#include "campaign/serialize.h"

namespace {

using namespace dav;

// Tuned so warmup:body ≈ 10:1, like the real scenario+rewarm cost vs the
// paper-shaped per-run marginal work the benchmark models.
constexpr std::uint64_t kWarmupIters = 6'000'000;
constexpr std::uint64_t kBodyIters = 600'000;

/// Deterministic FP kernel; the returned value is sunk, never recorded.
double spin(std::uint64_t iters) {
  double x = 1.0;
  for (std::uint64_t i = 0; i < iters; ++i) x = x * 1.000000119 + 1e-9;
  return x;
}

volatile double g_sink = 0.0;

/// Paper-shaped synthetic run: warm-up replay (skipped on a cache hit) plus
/// a short body. The result is a pure function of the RunConfig — the cache
/// can only change WHEN work happens, never what is computed.
RunResult synthetic_run(const RunConfig& cfg, CheckpointStore* store) {
  const bool warmed = store != nullptr && store->acquire_setup(cfg).hit;
  if (!warmed) g_sink = spin(kWarmupIters);
  g_sink = spin(kBodyIters);

  RunResult r;
  r.scenario = cfg.scenario;
  r.mode = cfg.mode;
  r.fault = cfg.fault;
  r.run_seed = cfg.run_seed;
  r.outcome = FaultOutcome::kMasked;
  r.duration = static_cast<double>(cfg.run_seed % 89) * 0.25;
  r.steps = static_cast<int>(cfg.run_seed % 17);
  r.cvip_trace = {static_cast<double>(cfg.run_seed % 11), 42.0};
  return r;
}

/// A transient-sweep-shaped batch: same scenario/mode (one warm key),
/// per-run seeds and fault plans all distinct.
std::vector<RunConfig> synthetic_batch(std::size_t n) {
  std::vector<RunConfig> cfgs;
  cfgs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RunConfig cfg = RunConfigBuilder()
                        .scenario(ScenarioId::kLeadSlowdown)
                        .mode(AgentMode::kRoundRobin)
                        .run_seed(3000 + i)
                        .build();
    cfg.fault.kind = FaultModelKind::kTransient;
    cfg.fault.target_dyn_index = 9000 + i;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

std::vector<RunConfig> real_batch(std::size_t n) {
  std::vector<RunConfig> cfgs;
  cfgs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RunConfig cfg = RunConfigBuilder()
                        .scenario(ScenarioId::kLeadSlowdown)
                        .mode(AgentMode::kRoundRobin)
                        .run_seed(50 + i)
                        .build();
    cfg.scenario_opts.safety_duration_sec = 2.0;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

ExecutorOptions strategy_options(int jobs, bool pool, bool cache) {
  ExecutorOptions o;
  o.jobs = jobs;
  o.pool = pool;
  o.warm_cache = cache;
  o.run_timeout_sec = 300.0;
  o.max_retries = 0;
  return o;
}

struct Measurement {
  double runs_per_sec = 0.0;
  std::vector<std::string> result_bytes;
  std::uint64_t warm_hits = 0;
};

Measurement measure(const ExecutorOptions& opts,
                    const CampaignExecutor::CheckpointRunFn& fn,
                    const std::vector<RunConfig>& cfgs) {
  CampaignExecutor exec(opts, fn);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = exec.run_all(cfgs);
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();

  Measurement m;
  m.runs_per_sec = sec > 0.0 ? static_cast<double>(cfgs.size()) / sec : 0.0;
  m.warm_hits = exec.stats().checkpoint_hits;
  m.result_bytes.reserve(results.size());
  for (const auto& r : results) m.result_bytes.push_back(serialize_run_result(r));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 2;
  double assert_min_speedup = 0.0;
  bool real = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--assert-min-speedup=", 0) == 0) {
      assert_min_speedup = std::atof(arg.c_str() + 21);
    } else if (arg == "--real") {
      real = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_executor [--jobs=N] "
                   "[--assert-min-speedup=X] [--real]\n");
      return 2;
    }
  }
  if (jobs < 1) jobs = 1;

  const EnvOptions env = EnvOptions::from_env();
  const std::size_t n = std::max<std::size_t>(
      16, static_cast<std::size_t>(40.0 * env.scale));

  std::printf("==========================================================\n");
  std::printf("Executor throughput: fork-per-run vs pool vs pool+cache\n");
  std::printf("jobs=%d  batch=%zu runs  workload=%s\n", jobs, n,
              real ? "real run_experiment (informational)"
                   : "synthetic paper-shaped kernel");
  std::printf("==========================================================\n");

  const auto cfgs = real ? real_batch(std::min<std::size_t>(n, 8))
                         : synthetic_batch(n);
  const CampaignExecutor::CheckpointRunFn fn =
      real ? CampaignExecutor::CheckpointRunFn{}  // default: run_experiment
           : CampaignExecutor::CheckpointRunFn(synthetic_run);

  const Measurement fork =
      measure(strategy_options(jobs, /*pool=*/false, false), fn, cfgs);
  const Measurement pool =
      measure(strategy_options(jobs, /*pool=*/true, false), fn, cfgs);
  const Measurement warm =
      measure(strategy_options(jobs, /*pool=*/true, true), fn, cfgs);

  // Strategy choice must never change a byte of any result.
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (pool.result_bytes[i] != fork.result_bytes[i] ||
        warm.result_bytes[i] != fork.result_bytes[i]) {
      std::fprintf(stderr,
                   "FAIL: strategies disagree on run %zu — results must be "
                   "bit-identical\n",
                   i);
      return 1;
    }
  }

  const double pool_speedup = pool.runs_per_sec / fork.runs_per_sec;
  const double warm_speedup = warm.runs_per_sec / fork.runs_per_sec;
  std::printf("fork-per-run : %8.1f runs/sec\n", fork.runs_per_sec);
  std::printf("pool         : %8.1f runs/sec  (%.2fx)\n", pool.runs_per_sec,
              pool_speedup);
  std::printf("pool + cache : %8.1f runs/sec  (%.2fx, %llu warm hits)\n",
              warm.runs_per_sec, warm_speedup,
              static_cast<unsigned long long>(warm.warm_hits));
  std::printf("results bit-identical across all three strategies: yes\n");

  if (assert_min_speedup > 0.0 && warm_speedup < assert_min_speedup) {
    std::fprintf(stderr, "FAIL: pool+cache speedup %.2fx < required %.2fx\n",
                 warm_speedup, assert_min_speedup);
    return 1;
  }
  return 0;
}
