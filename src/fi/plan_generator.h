// Injection plan generation (the paper's "Injection Plan Generator", Fig 3).
//
// Transient campaigns pick candidate dynamic instructions uniformly at random
// from a profiled golden execution; permanent campaigns sweep every opcode of
// the target ISA with repeated runs to capture nondeterminism (§IV-D).
#pragma once

#include <cstdint>
#include <vector>

#include "fi/fault_model.h"
#include "fi/opcodes.h"
#include "fi/sensor_fault.h"

namespace dav {

/// Per-opcode dynamic-instruction profile of a golden run, used to sample
/// transient sites uniformly over executed instructions.
struct ExecutionProfile {
  FaultDomain domain = FaultDomain::kGpu;
  std::uint64_t total_dyn_instructions = 0;
};

class InjectionPlanGenerator {
 public:
  explicit InjectionPlanGenerator(std::uint64_t seed) : seed_(seed) {}

  /// `count` transient plans with sites uniform over [0, ceil(total * over)).
  /// `over` > 1 intentionally places some sites past the end of typical runs
  /// so a fraction of injections is never activated — as observed for the
  /// paper's CPU campaigns (e.g. 203 of 500 active for GhostCutIn).
  std::vector<FaultPlan> transient_plans(const ExecutionProfile& profile,
                                         int count, double over = 1.0) const;

  /// Permanent plans: every opcode of the domain's ISA, `repeats` runs each
  /// with independently drawn bit positions (paper: 171 GPU opcodes x 3, 131
  /// CPU opcodes x 3).
  std::vector<FaultPlan> permanent_plans(FaultDomain domain, int repeats) const;

  /// Sensor-path sweeps: `runs_per_model` plans per model sharing one onset /
  /// duration window, with per-plan corruption seed and magnitude drawn from
  /// the generator seed. Camera plans cycle the rig index 0..2; tensor plans
  /// draw (layer, bit) so the sweep covers the spatiotemporal targeting space.
  std::vector<SensorFaultPlan> sensor_plans(
      const std::vector<SensorFaultModel>& models, int runs_per_model,
      int onset_tick, int duration_ticks) const;

  static int num_opcodes(FaultDomain domain) {
    return domain == FaultDomain::kGpu ? kNumGpuOpcodes : kNumCpuOpcodes;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace dav
