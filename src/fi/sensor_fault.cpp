#include "fi/sensor_fault.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/bits.h"

namespace dav {

SensorKind sensor_kind(SensorFaultModel m) {
  switch (m) {
    case SensorFaultModel::kNone:
      return SensorKind::kNone;
    case SensorFaultModel::kCameraOcclusion:
    case SensorFaultModel::kCameraSaltPepper:
    case SensorFaultModel::kCameraFrozen:
    case SensorFaultModel::kCameraBlackout:
      return SensorKind::kCamera;
    case SensorFaultModel::kLidarDropout:
    case SensorFaultModel::kLidarGhost:
      return SensorKind::kLidar;
    case SensorFaultModel::kGpsDrift:
    case SensorFaultModel::kGpsLoss:
      return SensorKind::kGps;
    case SensorFaultModel::kTensorBitFlip:
      return SensorKind::kTensor;
  }
  return SensorKind::kNone;
}

std::string to_string(SensorKind k) {
  switch (k) {
    case SensorKind::kNone: return "none";
    case SensorKind::kCamera: return "camera";
    case SensorKind::kLidar: return "lidar";
    case SensorKind::kGps: return "gps";
    case SensorKind::kTensor: return "tensor";
  }
  return "?";
}

std::string to_string(SensorFaultModel m) {
  switch (m) {
    case SensorFaultModel::kNone: return "none";
    case SensorFaultModel::kCameraOcclusion: return "camera-occlusion";
    case SensorFaultModel::kCameraSaltPepper: return "camera-salt-pepper";
    case SensorFaultModel::kCameraFrozen: return "camera-frozen";
    case SensorFaultModel::kCameraBlackout: return "camera-blackout";
    case SensorFaultModel::kLidarDropout: return "lidar-dropout";
    case SensorFaultModel::kLidarGhost: return "lidar-ghost";
    case SensorFaultModel::kGpsDrift: return "gps-drift";
    case SensorFaultModel::kGpsLoss: return "gps-loss";
    case SensorFaultModel::kTensorBitFlip: return "tensor-bitflip";
  }
  return "?";
}

SensorFaultModel parse_sensor_fault_model(const std::string& name) {
  for (SensorFaultModel m : all_sensor_fault_models()) {
    if (name == to_string(m)) return m;
  }
  return SensorFaultModel::kNone;
}

const std::vector<SensorFaultModel>& all_sensor_fault_models() {
  static const std::vector<SensorFaultModel> kAll = {
      SensorFaultModel::kCameraOcclusion,
      SensorFaultModel::kCameraSaltPepper,
      SensorFaultModel::kCameraFrozen,
      SensorFaultModel::kCameraBlackout,
      SensorFaultModel::kLidarDropout,
      SensorFaultModel::kLidarGhost,
      SensorFaultModel::kGpsDrift,
      SensorFaultModel::kGpsLoss,
      SensorFaultModel::kTensorBitFlip,
  };
  return kAll;
}

SensorFaultInjector::SensorFaultInjector(const SensorFaultPlan& plan)
    : plan_(plan) {
  // Lifetime-constant draws (patch geometry, drift direction) come from a
  // dedicated stream so they never interact with the per-tick streams.
  Rng setup(Rng(plan_.seed).split(0x5e7));
  if (plan_.model == SensorFaultModel::kGpsDrift) {
    const double dir = setup.uniform(0.0, 2.0 * M_PI);
    drift_cos_ = std::cos(dir);
    drift_sin_ = std::sin(dir);
  }
}

Rng SensorFaultInjector::tick_rng(int tick) const {
  return Rng(plan_.seed).split(static_cast<std::uint64_t>(tick) + 1);
}

void SensorFaultInjector::corrupt_camera(int camera_index, int tick,
                                         std::uint8_t* rgb, int width,
                                         int height) {
  if (plan_.kind() != SensorKind::kCamera ||
      camera_index != plan_.sensor_index) {
    return;
  }
  const std::size_t bytes =
      static_cast<std::size_t>(width) * height * 3;
  if (plan_.model == SensorFaultModel::kCameraFrozen && tick < plan_.onset_tick) {
    // Keep the freshest pre-onset frame; a fault with onset 0 freezes an
    // all-zero buffer (the sensor never produced a frame), like a blackout.
    frozen_.assign(rgb, rgb + bytes);
    return;
  }
  if (!plan_.covers(tick)) return;
  const double mag = std::clamp(plan_.magnitude, 0.0, 1.0);
  switch (plan_.model) {
    case SensorFaultModel::kCameraBlackout:
      std::memset(rgb, 0, bytes);
      corruptions_ += bytes / 3;
      break;
    case SensorFaultModel::kCameraFrozen: {
      if (frozen_.size() != bytes) frozen_.assign(bytes, 0);
      std::memcpy(rgb, frozen_.data(), bytes);
      corruptions_ += bytes / 3;
      break;
    }
    case SensorFaultModel::kCameraOcclusion: {
      if (!patch_drawn_) {
        // Patch geometry is a pure function of (seed, first corrupted frame
        // size): drawn lazily because the injector has no frame dims before.
        Rng geom(Rng(plan_.seed).split(0x0cc));
        const double frac = 0.35 + 0.45 * mag;  // side length fraction
        patch_w_ = std::max(1, static_cast<int>(width * frac));
        patch_h_ = std::max(1, static_cast<int>(height * frac));
        patch_x_ = static_cast<int>(
            geom.uniform_index(static_cast<std::uint64_t>(
                std::max(1, width - patch_w_ + 1))));
        patch_y_ = static_cast<int>(
            geom.uniform_index(static_cast<std::uint64_t>(
                std::max(1, height - patch_h_ + 1))));
        patch_drawn_ = true;
      }
      for (int y = patch_y_; y < std::min(height, patch_y_ + patch_h_); ++y) {
        for (int x = patch_x_; x < std::min(width, patch_x_ + patch_w_); ++x) {
          std::uint8_t* px = rgb + (static_cast<std::size_t>(y) * width + x) * 3;
          px[0] = px[1] = px[2] = 0;
          ++corruptions_;
        }
      }
      break;
    }
    case SensorFaultModel::kCameraSaltPepper: {
      Rng rng = tick_rng(tick);
      const double density = 0.08 + 0.42 * mag;
      const int pixels = width * height;
      for (int i = 0; i < pixels; ++i) {
        if (!rng.bernoulli(density)) continue;
        const std::uint8_t v = rng.bernoulli(0.5) ? 255 : 0;
        std::uint8_t* px = rgb + static_cast<std::size_t>(i) * 3;
        px[0] = px[1] = px[2] = v;
        ++corruptions_;
      }
      break;
    }
    default:
      break;
  }
}

void SensorFaultInjector::corrupt_lidar(int tick, std::vector<float>& ranges) {
  if (plan_.kind() != SensorKind::kLidar || !plan_.covers(tick) ||
      ranges.empty()) {
    return;
  }
  Rng rng = tick_rng(tick);
  const double mag = std::clamp(plan_.magnitude, 0.0, 1.0);
  const std::uint64_t n = ranges.size();
  if (plan_.model == SensorFaultModel::kLidarDropout) {
    const double frac = 0.25 + 0.6 * mag;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(frac)) continue;
      ranges[static_cast<std::size_t>(i)] = 0.0f;  // no return
      ++corruptions_;
    }
  } else {  // kLidarGhost
    const int ghosts =
        std::max(1, static_cast<int>(static_cast<double>(n) * 0.3 * mag));
    for (int g = 0; g < ghosts; ++g) {
      const std::size_t beam =
          static_cast<std::size_t>(rng.uniform_index(n));
      ranges[beam] = static_cast<float>(rng.uniform(0.4, 1.8));
      ++corruptions_;
    }
  }
}

void SensorFaultInjector::corrupt_gps(int tick, float* fields, int count) {
  if (plan_.kind() != SensorKind::kGps || !plan_.covers(tick) || count < 3) {
    return;
  }
  if (plan_.model == SensorFaultModel::kGpsLoss) {
    for (int i = 0; i < count; ++i) fields[i] = 0.0f;
    corruptions_ += static_cast<std::uint64_t>(count);
    return;
  }
  // kGpsDrift: position walks away along a seeded direction while the speed
  // field ramps incoherently — a plausibility monitor catches the
  // position/speed inconsistency once the ramp clears its threshold, so
  // detection latency scales with the drift rate.
  const double mag = std::clamp(plan_.magnitude, 0.0, 1.0);
  const int since = tick - plan_.onset_tick + 1;
  const double offset_m = 0.12 * mag * since;
  fields[0] += static_cast<float>(offset_m * drift_cos_);  // gps_x
  fields[1] += static_cast<float>(offset_m * drift_sin_);  // gps_y
  fields[2] += static_cast<float>(0.05 * mag * since);     // speed ramp
  corruptions_ += 3;
}

void SensorFaultInjector::corrupt_tensor(int layer, int tick, float* data,
                                         std::size_t count) {
  if (plan_.model != SensorFaultModel::kTensorBitFlip ||
      layer != plan_.layer || !plan_.covers(tick) || count == 0) {
    return;
  }
  Rng rng = tick_rng(tick);
  const std::size_t idx =
      static_cast<std::size_t>(rng.uniform_index(count));
  const std::uint32_t mask =
      (plan_.bit >= 0 && plan_.bit < 32) ? (1u << plan_.bit) : 0u;
  data[idx] = bits_float(float_bits(data[idx]) ^ mask);
  ++corruptions_;
}

}  // namespace dav
