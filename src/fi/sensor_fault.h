// Sensor-path fault models (DESIGN.md §14).
//
// The register-level models in fault_model.h corrupt compute state INSIDE one
// agent, which is exactly what temporal data diversity detects. Sensor faults
// enter upstream of the ADS: both agents consume the same corrupted frames,
// so the divergence detector is structurally blind to them ("Testing the
// Fault-Tolerance of Multi-Sensor Fusion Perception in Autonomous Driving
// Systems"). Detecting and surviving them needs per-sensor plausibility
// monitoring and fail-degraded fusion (sensors/sensor_health.h, §14.2).
//
// Every model is a pure function of (plan, tick, buffer contents): the
// per-tick Rng stream is derived as Rng(seed).split(tick + 1), so identical
// plans yield byte-identical corrupted frames regardless of executor strategy
// or call order — the repo's byte-determinism discipline extends to the
// corruption itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dav {

/// Which physical sensor (or downstream tensor state) a model targets.
enum class SensorKind : std::uint8_t { kNone, kCamera, kLidar, kGps, kTensor };

enum class SensorFaultModel : std::uint8_t {
  kNone,
  kCameraOcclusion,   // opaque patch fixed for the fault's lifetime (dirt/ice)
  kCameraSaltPepper,  // per-tick impulse noise (EMI / link corruption)
  kCameraFrozen,      // repeats the last pre-onset frame (stuck DMA buffer)
  kCameraBlackout,    // all-zero frames (dead sensor / severed link)
  kLidarDropout,      // a seeded subset of beams returns nothing
  kLidarGhost,        // spurious near-range returns on random beams
  kGpsDrift,          // position/speed ramp away from truth (multipath)
  kGpsLoss,           // null fix: every field reads zero
  kTensorBitFlip,     // spatiotemporal bit flip in perception tensor state,
                      // targeted by (layer, tick window, bit) per the
                      // Spatiotemporal-Aware Bit-Flip Injection paper
};

SensorKind sensor_kind(SensorFaultModel m);
std::string to_string(SensorKind k);
std::string to_string(SensorFaultModel m);
/// The canonical spelling accepted by DAV_SENSOR_FAULTS ("camera-blackout",
/// "gps-drift", ...). Returns kNone for an unrecognized name.
SensorFaultModel parse_sensor_fault_model(const std::string& name);
/// Every injectable model, in enum order (sweep generation, env parsing).
const std::vector<SensorFaultModel>& all_sensor_fault_models();

/// One planned sensor-path injection. Serialized into RunConfig/RunResult
/// records and folded into run_config_digest when active, so pool and
/// distributed workers inherit the exact plan.
struct SensorFaultPlan {
  SensorFaultModel model = SensorFaultModel::kNone;
  /// Camera models: rig camera index (0 = left, 1 = center, 2 = right).
  /// LiDAR/GPS/tensor models target the single instance; index must be 0.
  int sensor_index = 0;
  int onset_tick = 0;
  int duration_ticks = 0;
  /// Seeds the per-tick corruption streams (independent of the rig's noise
  /// streams, so an inactive plan perturbs nothing).
  std::uint64_t seed = 0;
  /// Model intensity in [0, 1]: occlusion patch size, impulse density,
  /// dropout fraction, drift rate, ...
  double magnitude = 0.5;
  /// kTensorBitFlip: perception pipeline stage (see Perception layer tags).
  int layer = 0;
  /// kTensorBitFlip: bit position to flip (0..31, fp32 state).
  int bit = 0;

  bool active() const {
    return model != SensorFaultModel::kNone && duration_ticks > 0;
  }
  bool covers(int tick) const {
    return active() && tick >= onset_tick &&
           tick < onset_tick + duration_ticks;
  }
  SensorKind kind() const { return sensor_kind(model); }
};

/// Applies one SensorFaultPlan to raw sensor buffers. The injector is handed
/// to the SensorRig (camera/LiDAR/GPS models corrupt at capture(), upstream
/// of both agents) and to the primary agent's Perception (tensor bit flips).
/// All entry points are no-ops outside the plan's (kind, index, tick window),
/// so one injector serves every sensor path.
///
/// Statefulness is limited to the frozen-frame cache and the corruption
/// counter; both are pure functions of the deterministic call sequence.
class SensorFaultInjector {
 public:
  explicit SensorFaultInjector(const SensorFaultPlan& plan);

  /// Row-major RGB8 camera buffer of `width` x `height` pixels.
  void corrupt_camera(int camera_index, int tick, std::uint8_t* rgb,
                      int width, int height);
  void corrupt_lidar(int tick, std::vector<float>& ranges);
  /// The 6 float32 fields of a GpsImuSample, in declaration order.
  void corrupt_gps(int tick, float* fields, int count);
  /// Perception tensor state: flips plan.bit of one seeded element per tick
  /// when `layer` matches plan.layer inside the tick window.
  void corrupt_tensor(int layer, int tick, float* data, std::size_t count);

  const SensorFaultPlan& plan() const { return plan_; }
  /// Corrupted elements (pixels / beams / fields / flips) so far. Nonzero
  /// means the fault activated (drives RunResult outcome classification).
  std::uint64_t corruptions() const { return corruptions_; }

  /// Injector state for checkpoint capture/adopt. Patch geometry and drift
  /// direction are lazily-drawn pure functions of the plan seed, but they
  /// ride along so a restored injector never re-draws; the frozen-frame
  /// cache is genuinely path-dependent (last pre-onset frame seen).
  struct State {
    std::uint64_t corruptions = 0;
    int patch_x = 0, patch_y = 0, patch_w = 0, patch_h = 0;
    bool patch_drawn = false;
    double drift_cos = 1.0, drift_sin = 0.0;
    std::vector<std::uint8_t> frozen;
  };
  State capture() const {
    return {corruptions_, patch_x_, patch_y_,   patch_w_,   patch_h_,
            patch_drawn_, drift_cos_, drift_sin_, frozen_};
  }
  void adopt(const State& st) {
    corruptions_ = st.corruptions;
    patch_x_ = st.patch_x;
    patch_y_ = st.patch_y;
    patch_w_ = st.patch_w;
    patch_h_ = st.patch_h;
    patch_drawn_ = st.patch_drawn;
    drift_cos_ = st.drift_cos;
    drift_sin_ = st.drift_sin;
    frozen_ = st.frozen;
  }
  /// Seed the frozen-frame cache from a checkpointed camera frame. Used when
  /// a clean-prefix checkpoint is re-targeted at a kCameraFrozen variant
  /// whose onset is the restore tick: the injector never saw the pre-onset
  /// frames, so the cache is primed from the checkpoint's last frame.
  void prime_frozen(const std::vector<std::uint8_t>& frame) {
    frozen_ = frame;
  }

 private:
  /// Independent per-tick stream: corruption at tick T never depends on how
  /// many draws earlier ticks consumed.
  Rng tick_rng(int tick) const;

  SensorFaultPlan plan_;
  std::uint64_t corruptions_ = 0;

  // Occlusion patch geometry, drawn once from the plan seed.
  int patch_x_ = 0, patch_y_ = 0, patch_w_ = 0, patch_h_ = 0;
  bool patch_drawn_ = false;

  // GPS drift direction, drawn once from the plan seed.
  double drift_cos_ = 1.0, drift_sin_ = 0.0;

  // Frozen-frame cache: the last pre-onset frame of the targeted camera.
  std::vector<std::uint8_t> frozen_;
};

}  // namespace dav
