#include "fi/plan_generator.h"

#include <cmath>

#include "util/rng.h"

namespace dav {

std::vector<FaultPlan> InjectionPlanGenerator::transient_plans(
    const ExecutionProfile& profile, int count, double over) const {
  Rng rng(seed_ ^ 0x7261AD51EA7ULL);
  std::vector<FaultPlan> plans;
  plans.reserve(static_cast<std::size_t>(count));
  const auto span = static_cast<std::uint64_t>(std::ceil(
      static_cast<double>(profile.total_dyn_instructions) * over));
  for (int i = 0; i < count; ++i) {
    FaultPlan p;
    p.kind = FaultModelKind::kTransient;
    p.domain = profile.domain;
    p.target_dyn_index = span > 0 ? rng.uniform_index(span) : 0;
    p.bit = static_cast<int>(rng.uniform_index(32));
    plans.push_back(p);
  }
  return plans;
}

std::vector<FaultPlan> InjectionPlanGenerator::permanent_plans(
    FaultDomain domain, int repeats) const {
  Rng rng(seed_ ^ 0x9E2A4B5Cull);
  std::vector<FaultPlan> plans;
  const int n = num_opcodes(domain);
  plans.reserve(static_cast<std::size_t>(n * repeats));
  for (int opcode = 0; opcode < n; ++opcode) {
    for (int r = 0; r < repeats; ++r) {
      FaultPlan p;
      p.kind = FaultModelKind::kPermanent;
      p.domain = domain;
      p.target_opcode = opcode;
      p.bit = static_cast<int>(rng.uniform_index(32));
      plans.push_back(p);
    }
  }
  return plans;
}

std::vector<SensorFaultPlan> InjectionPlanGenerator::sensor_plans(
    const std::vector<SensorFaultModel>& models, int runs_per_model,
    int onset_tick, int duration_ticks) const {
  Rng rng(seed_ ^ 0x5E450FA17ULL);
  std::vector<SensorFaultPlan> plans;
  plans.reserve(models.size() * static_cast<std::size_t>(runs_per_model));
  for (const SensorFaultModel m : models) {
    if (m == SensorFaultModel::kNone) continue;
    for (int i = 0; i < runs_per_model; ++i) {
      SensorFaultPlan p;
      p.model = m;
      p.onset_tick = onset_tick;
      p.duration_ticks = duration_ticks;
      p.seed = rng();
      // Meaningful intensities only: magnitude 0 makes several models
      // near-no-ops (empty patch, zero dropout), which wastes sweep runs.
      p.magnitude = 0.25 + 0.75 * rng.uniform();
      if (sensor_kind(m) == SensorKind::kCamera) p.sensor_index = i % 3;
      if (m == SensorFaultModel::kTensorBitFlip) {
        p.layer = static_cast<int>(rng.uniform_index(4));
        // Bias toward the exponent bits (23..30): mantissa flips in bounded
        // perception state rarely move the output, mirroring how register
        // campaigns see most low-bit flips masked.
        p.bit = static_cast<int>(rng.bernoulli(0.5)
                                     ? 23 + rng.uniform_index(8)
                                     : rng.uniform_index(32));
      }
      plans.push_back(p);
    }
  }
  return plans;
}

}  // namespace dav
