#include "fi/plan_generator.h"

#include <cmath>

#include "util/rng.h"

namespace dav {

std::vector<FaultPlan> InjectionPlanGenerator::transient_plans(
    const ExecutionProfile& profile, int count, double over) const {
  Rng rng(seed_ ^ 0x7261AD51EA7ULL);
  std::vector<FaultPlan> plans;
  plans.reserve(static_cast<std::size_t>(count));
  const auto span = static_cast<std::uint64_t>(std::ceil(
      static_cast<double>(profile.total_dyn_instructions) * over));
  for (int i = 0; i < count; ++i) {
    FaultPlan p;
    p.kind = FaultModelKind::kTransient;
    p.domain = profile.domain;
    p.target_dyn_index = span > 0 ? rng.uniform_index(span) : 0;
    p.bit = static_cast<int>(rng.uniform_index(32));
    plans.push_back(p);
  }
  return plans;
}

std::vector<FaultPlan> InjectionPlanGenerator::permanent_plans(
    FaultDomain domain, int repeats) const {
  Rng rng(seed_ ^ 0x9E2A4B5Cull);
  std::vector<FaultPlan> plans;
  const int n = num_opcodes(domain);
  plans.reserve(static_cast<std::size_t>(n * repeats));
  for (int opcode = 0; opcode < n; ++opcode) {
    for (int r = 0; r < repeats; ++r) {
      FaultPlan p;
      p.kind = FaultModelKind::kPermanent;
      p.domain = domain;
      p.target_opcode = opcode;
      p.bit = static_cast<int>(rng.uniform_index(32));
      plans.push_back(p);
    }
  }
  return plans;
}

}  // namespace dav
