#include "fi/opcodes.h"

namespace dav {

OpClass op_class(GpuOpcode op) {
  switch (op) {
    case GpuOpcode::kLdg:
    case GpuOpcode::kStg:
    case GpuOpcode::kMovReg:
    case GpuOpcode::kShflIdx:
      return OpClass::kMemory;
    case GpuOpcode::kBra:
    case GpuOpcode::kBar:
      return OpClass::kControl;
    default:
      return OpClass::kData;
  }
}

OpClass op_class(CpuOpcode op) {
  switch (op) {
    case CpuOpcode::kLea:
    case CpuOpcode::kLoad:
    case CpuOpcode::kStore:
    case CpuOpcode::kPush:
    case CpuOpcode::kPop:
    case CpuOpcode::kIndex:
    case CpuOpcode::kPtrAdd:
    case CpuOpcode::kMemCpy:
      return OpClass::kMemory;
    case CpuOpcode::kJmp:
    case CpuOpcode::kJcc:
    case CpuOpcode::kCall:
    case CpuOpcode::kRet:
    case CpuOpcode::kLoopCnt:
    case CpuOpcode::kSwitch:
      return OpClass::kControl;
    default:
      return OpClass::kData;
  }
}

std::string_view to_string(GpuOpcode op) {
  switch (op) {
    case GpuOpcode::kFAdd: return "FADD";
    case GpuOpcode::kFSub: return "FSUB";
    case GpuOpcode::kFMul: return "FMUL";
    case GpuOpcode::kFFma: return "FFMA";
    case GpuOpcode::kFDiv: return "FDIV";
    case GpuOpcode::kFRcp: return "FRCP";
    case GpuOpcode::kFSqrt: return "FSQRT";
    case GpuOpcode::kFRsqrt: return "FRSQRT";
    case GpuOpcode::kFMin: return "FMIN";
    case GpuOpcode::kFMax: return "FMAX";
    case GpuOpcode::kFAbs: return "FABS";
    case GpuOpcode::kFNeg: return "FNEG";
    case GpuOpcode::kFExp: return "FEXP";
    case GpuOpcode::kFLog: return "FLOG";
    case GpuOpcode::kFTanh: return "FTANH";
    case GpuOpcode::kFSigmoid: return "FSIGMOID";
    case GpuOpcode::kFRelu: return "FRELU";
    case GpuOpcode::kFFloor: return "FFLOOR";
    case GpuOpcode::kFClampLo: return "FCLAMPLO";
    case GpuOpcode::kFClampHi: return "FCLAMPHI";
    case GpuOpcode::kFSel: return "FSEL";
    case GpuOpcode::kFCmpLt: return "FCMPLT";
    case GpuOpcode::kFCmpGt: return "FCMPGT";
    case GpuOpcode::kFDot: return "FDOT";
    case GpuOpcode::kFMacc: return "FMACC";
    case GpuOpcode::kRedAdd: return "REDADD";
    case GpuOpcode::kRedMax: return "REDMAX";
    case GpuOpcode::kRedMin: return "REDMIN";
    case GpuOpcode::kFScale: return "FSCALE";
    case GpuOpcode::kFBias: return "FBIAS";
    case GpuOpcode::kIAdd: return "IADD";
    case GpuOpcode::kIMul: return "IMUL";
    case GpuOpcode::kIMad: return "IMAD";
    case GpuOpcode::kCvtF2I: return "CVTF2I";
    case GpuOpcode::kCvtI2F: return "CVTI2F";
    case GpuOpcode::kLdg: return "LDG";
    case GpuOpcode::kStg: return "STG";
    case GpuOpcode::kMovReg: return "MOV";
    case GpuOpcode::kShflIdx: return "SHFL";
    case GpuOpcode::kBra: return "BRA";
    case GpuOpcode::kBar: return "BAR";
    case GpuOpcode::kCount: break;
  }
  return "?";
}

std::string_view to_string(CpuOpcode op) {
  switch (op) {
    case CpuOpcode::kAdd: return "ADD";
    case CpuOpcode::kSub: return "SUB";
    case CpuOpcode::kMul: return "MUL";
    case CpuOpcode::kDiv: return "DIV";
    case CpuOpcode::kFma: return "FMA";
    case CpuOpcode::kMin: return "MIN";
    case CpuOpcode::kMax: return "MAX";
    case CpuOpcode::kAbs: return "ABS";
    case CpuOpcode::kSqrt: return "SQRT";
    case CpuOpcode::kSin: return "SIN";
    case CpuOpcode::kCos: return "COS";
    case CpuOpcode::kAtan2: return "ATAN2";
    case CpuOpcode::kCmp: return "CMP";
    case CpuOpcode::kSel: return "SEL";
    case CpuOpcode::kClampOp: return "CLAMP";
    case CpuOpcode::kMovReg: return "MOV";
    case CpuOpcode::kCvt: return "CVT";
    case CpuOpcode::kNeg: return "NEG";
    case CpuOpcode::kLea: return "LEA";
    case CpuOpcode::kLoad: return "LOAD";
    case CpuOpcode::kStore: return "STORE";
    case CpuOpcode::kPush: return "PUSH";
    case CpuOpcode::kPop: return "POP";
    case CpuOpcode::kIndex: return "INDEX";
    case CpuOpcode::kPtrAdd: return "PTRADD";
    case CpuOpcode::kMemCpy: return "MEMCPY";
    case CpuOpcode::kJmp: return "JMP";
    case CpuOpcode::kJcc: return "JCC";
    case CpuOpcode::kCall: return "CALL";
    case CpuOpcode::kRet: return "RET";
    case CpuOpcode::kLoopCnt: return "LOOPCNT";
    case CpuOpcode::kSwitch: return "SWITCH";
    case CpuOpcode::kCount: break;
  }
  return "?";
}

}  // namespace dav
