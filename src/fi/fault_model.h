// Fault models (paper §II-B).
//
// Transient: the destination register of exactly one dynamic instruction is
// corrupted by XOR-ing it with a selected mask. Permanent: the destination
// register of EVERY dynamic instance of a selected opcode is corrupted with
// the mask. We detect faults, we do not classify them (§II-B).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dav {

enum class FaultDomain : std::uint8_t { kGpu, kCpu };
enum class FaultModelKind : std::uint8_t { kNone, kTransient, kPermanent };

std::string to_string(FaultDomain d);
std::string to_string(FaultModelKind k);

/// One planned injection, produced by the InjectionPlanGenerator.
struct FaultPlan {
  FaultModelKind kind = FaultModelKind::kNone;
  FaultDomain domain = FaultDomain::kGpu;
  /// Transient: global dynamic-instruction index to corrupt.
  std::uint64_t target_dyn_index = 0;
  /// Permanent: opcode index within the domain's ISA.
  int target_opcode = 0;
  /// Bit position to flip in the destination register (0..31). The register
  /// width is 32 bits in both engines (fp32 GPU registers; the CPU engine
  /// also corrupts via the 32-bit pattern of the value's float cast).
  int bit = 0;

  bool active() const { return kind != FaultModelKind::kNone; }
  /// Out-of-range bit positions yield an empty mask (no corruption) instead
  /// of an out-of-width shift, which is undefined behavior.
  std::uint32_t mask() const {
    return (bit >= 0 && bit < 32) ? (1u << bit) : 0u;
  }
};

/// How corruptions of each opcode class manifest, given that a corruption
/// occurred. Probabilities are evaluated once per corruption event for
/// transient faults and once per run for permanent faults.
struct CrashHangModel {
  // P(crash | corruption) and P(hang | corruption) by class; the remainder
  // propagates as a silent data corruption (or is masked downstream).
  double p_crash_data = 0.0;
  double p_hang_data = 0.0;
  double p_crash_mem = 0.6;
  double p_hang_mem = 0.15;
  double p_crash_ctrl = 0.5;
  double p_hang_ctrl = 0.35;

  /// Defaults calibrated per domain: CPU instruction streams are dominated by
  /// address/control work and corruptions there are near-certain DUEs
  /// (paper §V-C: segmentation faults, broken pipes); GPU streams are mostly
  /// data ops and memory corruptions less often kill the process.
  static CrashHangModel for_domain(FaultDomain d);

  /// Per-kind calibration: a permanent fault corrupts every dynamic instance
  /// of its opcode, so the probability that at least one corruption is lethal
  /// is much higher than for a single transient corruption (paper §V-C: CPU
  /// DUE rate rises from ~41% transient to ~73% permanent; GPU from ~8% to
  /// ~16%).
  static CrashHangModel for_model(FaultDomain d, FaultModelKind kind);
};

/// Thrown by an engine when an injected corruption causes a process crash
/// (segfault / broken pipe in the paper). Caught by the Driver, which records
/// a platform-detected DUE.
class CrashError : public std::runtime_error {
 public:
  CrashError() : std::runtime_error("injected fault caused a crash") {}
};

/// Thrown when an injected corruption causes the agent to stop responding.
/// The Driver converts it into a watchdog-detected hang.
class HangError : public std::runtime_error {
 public:
  HangError() : std::runtime_error("injected fault caused a hang") {}
};

/// Outcome classification of one fault-injection run (paper §II-C).
enum class FaultOutcome : std::uint8_t {
  kNotActivated,  // the planned dynamic instruction was never reached
  kMasked,        // activated, but no observable effect
  kSdc,           // activated and corrupted data silently
  kCrash,         // platform-detected crash (DUE)
  kHang,          // watchdog-detected hang (DUE)
  kHarnessError,  // the experiment itself failed (quarantined by the
                  // campaign supervisor; not a fault-model outcome)
};

std::string to_string(FaultOutcome o);

/// Which platform monitor raised a DUE. The paper's platform policy treats
/// all of these uniformly as alarms; the mitigation layer uses the source to
/// pick the suspect agent (a crashed/hung process identifies its owner, a
/// detector alarm needs an arbitration probe).
enum class DueSource : std::uint8_t {
  kNone,             // no DUE
  kEngineCrash,      // CrashError from an engine (segfault/broken pipe)
  kHangWatchdog,     // HangError converted by the response watchdog
  kOutputValidator,  // non-finite actuation rejected by the ECU
  kStuckWatchdog,    // vehicle stationary without cause
};

std::string to_string(DueSource s);

}  // namespace dav
