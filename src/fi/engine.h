// Instrumented compute engines — the fault-injection substrate.
//
// Every arithmetic operation the agent performs flows through an Engine,
// which (a) counts dynamic instructions per opcode (the profile used to pick
// transient injection sites uniformly, as NVBitFI/PinFI do), and (b) applies
// the configured fault plan: XOR-corrupting the destination register of one
// dynamic instruction (transient) or of all instances of one opcode
// (permanent). Address/control-class corruptions resolve to crashes or hangs
// per the CrashHangModel, mirroring the paper's observed DUE rates.
//
// DiverseAV time-multiplexes both agents on ONE engine (shared processor), so
// a permanent fault corrupts both agents' streams while a transient corrupts
// whichever agent is executing at that dynamic instruction. The FD baseline
// uses two engines (dedicated processors) with the fault in one.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fi/fault_model.h"
#include "fi/opcodes.h"
#include "util/trace.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dav {

/// Dynamic engine state for checkpoint capture/adopt, shared across engine
/// instantiations (opcode counts flatten to a vector). The plan and
/// crash/hang model are configure()-time inputs and stay with the restored
/// run's own configuration; everything the instruction stream evolved —
/// counts, totals, the outcome RNG position, and activation bookkeeping —
/// transfers exactly.
struct EngineState {
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  std::array<std::uint64_t, 4> rng{};
  bool armed = false;
  bool activated = false;
  std::uint64_t corruptions = 0;
  bool permanent_outcome_decided = false;
  bool permanent_lethal = false;
};

template <typename OpcodeT, FaultDomain Domain>
class Engine {
 public:
  static constexpr int kNumOpcodes = static_cast<int>(OpcodeT::kCount);
  static constexpr FaultDomain kDomain = Domain;
  using Opcode = OpcodeT;

  Engine() { counts_.fill(0); }

  /// Arm (or disarm, with a kNone plan) fault injection for the coming run.
  /// `seed` drives the crash/hang outcome draws; `model` gives the per-class
  /// manifestation probabilities.
  void configure(const FaultPlan& plan, std::uint64_t seed,
                 const CrashHangModel& model = CrashHangModel::for_domain(Domain)) {
    plan_ = plan;
    model_ = model;
    rng_ = Rng(seed);
    armed_ = plan.active() && plan.domain == Domain;
    activated_ = false;
    corruptions_ = 0;
    permanent_outcome_decided_ = false;
    permanent_lethal_ = false;
  }

  void reset_counts() {
    counts_.fill(0);
    total_ = 0;
  }

  /// Instrumented scalar operation: returns the (possibly corrupted) value.
  /// The value passed in is the computed result, i.e. the contents of the
  /// destination register before any fault effect.
  float exec(OpcodeT op, float v) {
    ++counts_[index(op)];
    const std::uint64_t i = total_++;
    if (!armed_) [[likely]] {
      return v;
    }
    return faulty_exec(op, v, i);
  }

  /// Bulk accounting for memory / data-movement / control instructions that
  /// accompany a tensor or loop operation (n dynamic instances at once).
  /// Faults landing here resolve via the crash/hang model; survivors are
  /// masked (a corrupted address that neither crashes nor hangs typically
  /// loads a wrong-but-unused value).
  void bulk(OpcodeT op, std::uint64_t n) {
    counts_[index(op)] += n;
    const std::uint64_t start = total_;
    total_ += n;
    if (!armed_) [[likely]] {
      return;
    }
    faulty_bulk(op, start, n);
  }

  /// Single control-flow marker (branch, call, loop bound...).
  void mark(OpcodeT op) { bulk(op, 1); }

  std::uint64_t total_dyn_instructions() const { return total_; }
  std::uint64_t op_count(OpcodeT op) const { return counts_[index(op)]; }
  const std::array<std::uint64_t, kNumOpcodes>& op_counts() const {
    return counts_;
  }

  /// Mitigation hook: a transient fault is a one-shot particle strike — once
  /// it has activated, the hardware is clean again, so restarting the victim
  /// agent on the same processor is sound. Disarms an activated transient
  /// plan; a not-yet-activated transient (strike still pending) and permanent
  /// faults (broken silicon) stay armed, which is what forces the recovery
  /// manager's escalation path on genuinely permanent faults.
  void clear_transient_fault() {
    if (plan_.kind == FaultModelKind::kTransient && activated_) {
      armed_ = false;
    }
  }

  /// True once the planned fault has corrupted at least one instruction.
  bool fault_activated() const { return activated_; }
  std::uint64_t corruption_count() const { return corruptions_; }
  const FaultPlan& plan() const { return plan_; }

  EngineState capture() const {
    EngineState st;
    st.counts.assign(counts_.begin(), counts_.end());
    st.total = total_;
    st.rng = rng_.state();
    st.armed = armed_;
    st.activated = activated_;
    st.corruptions = corruptions_;
    st.permanent_outcome_decided = permanent_outcome_decided_;
    st.permanent_lethal = permanent_lethal_;
    return st;
  }

  /// Restore dynamic state; plan_/model_ keep whatever configure() set.
  /// Ordering rule for restores: adopt-then-configure when re-targeting a
  /// clean checkpoint at a different fault variant (configure re-arms for the
  /// new plan; the clean state it clears is already default), and
  /// configure-then-adopt when resuming the exact same run (adopt overwrites
  /// with the mid-run arming/RNG position, e.g. a cleared transient).
  void adopt(const EngineState& st) {
    if (st.counts.size() != counts_.size()) {
      throw std::invalid_argument("Engine::adopt: opcode count mismatch");
    }
    for (std::size_t k = 0; k < counts_.size(); ++k) counts_[k] = st.counts[k];
    total_ = st.total;
    rng_.set_state(st.rng);
    armed_ = st.armed;
    activated_ = st.activated;
    corruptions_ = st.corruptions;
    permanent_outcome_decided_ = st.permanent_outcome_decided;
    permanent_lethal_ = st.permanent_lethal;
  }

 private:
  static constexpr std::size_t index(OpcodeT op) {
    return static_cast<std::size_t>(op);
  }

  /// Resolve a corruption event of class `cls` to crash / hang / propagate.
  void resolve_manifestation(OpClass cls) {
    double p_crash = model_.p_crash_data;
    double p_hang = model_.p_hang_data;
    if (cls == OpClass::kMemory) {
      p_crash = model_.p_crash_mem;
      p_hang = model_.p_hang_mem;
    } else if (cls == OpClass::kControl) {
      p_crash = model_.p_crash_ctrl;
      p_hang = model_.p_hang_ctrl;
    }
    const double u = rng_.uniform();
    if (u < p_crash) {
      obs::instant(obs::Instant::kCrashManifested,
                   static_cast<double>(Domain));
      throw CrashError{};
    }
    if (u < p_crash + p_hang) {
      obs::instant(obs::Instant::kHangManifested,
                   static_cast<double>(Domain));
      throw HangError{};
    }
  }

  /// Obs hook for the FIRST corrupted instruction only — permanent faults
  /// corrupt every instance of an opcode, so this must not fire per event.
  void note_activation(std::uint64_t dyn_index) {
    if (!activated_) {
      activated_ = true;
      obs::instant(obs::Instant::kFaultActivated,
                   static_cast<double>(dyn_index));
    }
  }

  float corrupt(float v) {
    ++corruptions_;
    return xor_float(v, plan_.mask());
  }

  float faulty_exec(OpcodeT op, float v, std::uint64_t i) {
    if (plan_.kind == FaultModelKind::kTransient) {
      if (i != plan_.target_dyn_index) return v;
      note_activation(i);
      resolve_manifestation(op_class(op));
      return corrupt(v);
    }
    // Permanent: every dynamic instance of the target opcode.
    if (index(op) != static_cast<std::size_t>(plan_.target_opcode)) return v;
    note_activation(i);
    decide_permanent_outcome(op_class(op));
    return corrupt(v);
  }

  void faulty_bulk(OpcodeT op, std::uint64_t start, std::uint64_t n) {
    if (plan_.kind == FaultModelKind::kTransient) {
      if (plan_.target_dyn_index < start || plan_.target_dyn_index >= start + n)
        return;
      note_activation(plan_.target_dyn_index);
      resolve_manifestation(op_class(op));
      ++corruptions_;  // survived: wrong-but-unused value, masked downstream
      return;
    }
    if (index(op) != static_cast<std::size_t>(plan_.target_opcode)) return;
    note_activation(start);
    decide_permanent_outcome(op_class(op));
    corruptions_ += n;
  }

  /// For permanent faults the lethality draw happens once per run; a lethal
  /// outcome (crash/hang) fires on the first corrupted instance.
  void decide_permanent_outcome(OpClass cls) {
    if (!permanent_outcome_decided_) {
      permanent_outcome_decided_ = true;
      try {
        resolve_manifestation(cls);
      } catch (...) {
        permanent_lethal_ = true;
        throw;
      }
    } else if (permanent_lethal_) {
      // Unreachable in practice (the first instance already threw), but kept
      // for safety if an exception was swallowed upstream.
      throw CrashError{};
    }
  }

  std::array<std::uint64_t, kNumOpcodes> counts_{};
  std::uint64_t total_ = 0;
  FaultPlan plan_;
  CrashHangModel model_;
  Rng rng_{0};
  bool armed_ = false;
  bool activated_ = false;
  std::uint64_t corruptions_ = 0;
  bool permanent_outcome_decided_ = false;
  bool permanent_lethal_ = false;
};

/// The GPU engine: fp32 tensor arithmetic (perception pipeline).
using GpuEngine = Engine<GpuOpcode, FaultDomain::kGpu>;
/// The CPU engine: control-path arithmetic (planner, tracker, PID).
using CpuEngine = Engine<CpuOpcode, FaultDomain::kCpu>;

}  // namespace dav
