#include "fi/fault_model.h"

namespace dav {

std::string to_string(FaultDomain d) {
  return d == FaultDomain::kGpu ? "GPU" : "CPU";
}

std::string to_string(FaultModelKind k) {
  switch (k) {
    case FaultModelKind::kNone: return "none";
    case FaultModelKind::kTransient: return "transient";
    case FaultModelKind::kPermanent: return "permanent";
  }
  return "?";
}

std::string to_string(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kNotActivated: return "not-activated";
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kSdc: return "SDC";
    case FaultOutcome::kCrash: return "crash";
    case FaultOutcome::kHang: return "hang";
    case FaultOutcome::kHarnessError: return "harness-error";
  }
  return "?";
}

std::string to_string(DueSource s) {
  switch (s) {
    case DueSource::kNone: return "none";
    case DueSource::kEngineCrash: return "engine-crash";
    case DueSource::kHangWatchdog: return "hang-watchdog";
    case DueSource::kOutputValidator: return "output-validator";
    case DueSource::kStuckWatchdog: return "stuck-watchdog";
  }
  return "?";
}

CrashHangModel CrashHangModel::for_model(FaultDomain d, FaultModelKind kind) {
  CrashHangModel m = for_domain(d);
  if (kind != FaultModelKind::kPermanent) return m;
  if (d == FaultDomain::kCpu) {
    // Corrupting every instance of an address/control opcode is a
    // near-certain DUE; even data opcodes crash eventually in ~40% of runs
    // (corrupted values reach indices, sizes, loop bounds).
    m.p_crash_data = 0.42;
    m.p_hang_data = 0.14;
    m.p_crash_mem = 0.85;
    m.p_hang_mem = 0.13;
    m.p_crash_ctrl = 0.60;
    m.p_hang_ctrl = 0.39;
  } else {
    m.p_crash_data = 0.015;
    m.p_hang_data = 0.005;
    m.p_crash_mem = 0.70;
    m.p_hang_mem = 0.12;
    m.p_crash_ctrl = 0.50;
    m.p_hang_ctrl = 0.45;
  }
  return m;
}

CrashHangModel CrashHangModel::for_domain(FaultDomain d) {
  CrashHangModel m;
  if (d == FaultDomain::kCpu) {
    // CPU corruptions of address/control state are near-certain DUEs
    // (segfaults, broken pipes, wild jumps, infinite loops). Calibrated so
    // the dynamic mix of the agent's control code reproduces the paper's
    // hang/crash rates (~41% transient, ~73% permanent, §V-C).
    m.p_crash_data = 0.02;
    m.p_hang_data = 0.01;
    m.p_crash_mem = 0.55;
    m.p_hang_mem = 0.12;
    m.p_crash_ctrl = 0.55;
    m.p_hang_ctrl = 0.40;
  } else {
    // GPU corruptions are mostly in data-class fp ops; memory/control faults
    // can kill the kernel or deadlock a barrier, but the data-dominated mix
    // keeps the overall DUE rate low (~8% transient, ~16% permanent).
    m.p_crash_data = 0.0;
    m.p_hang_data = 0.0;
    m.p_crash_mem = 0.17;
    m.p_hang_mem = 0.05;
    m.p_crash_ctrl = 0.45;
    m.p_hang_ctrl = 0.45;
  }
  return m;
}

}  // namespace dav
