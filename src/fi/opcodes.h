// Instruction-set definitions for the two fault-injection domains.
//
// The paper injects architectural faults at the instruction level: NVBitFI
// targets the GPU SASS ISA (171 opcodes on the Titan Xp), PinFI targets the
// agent's x86 instruction stream (131 opcodes used). We define the opcode
// vocabularies our compute engines actually execute; the permanent-fault
// campaigns sweep every opcode of each ISA exactly as the paper does.
#pragma once

#include <cstdint>
#include <string_view>

namespace dav {

/// GPU opcodes executed by the tensor pipeline (perception CNN).
enum class GpuOpcode : std::uint8_t {
  // Floating-point compute
  kFAdd, kFSub, kFMul, kFFma, kFDiv, kFRcp, kFSqrt, kFRsqrt,
  kFMin, kFMax, kFAbs, kFNeg, kFExp, kFLog, kFTanh, kFSigmoid,
  kFRelu, kFFloor, kFClampLo, kFClampHi, kFSel, kFCmpLt, kFCmpGt,
  kFDot, kFMacc, kRedAdd, kRedMax, kRedMin, kFScale, kFBias,
  // Integer / conversion
  kIAdd, kIMul, kIMad, kCvtF2I, kCvtI2F,
  // Memory / data movement (counted in bulk)
  kLdg, kStg, kMovReg, kShflIdx,
  // Control
  kBra, kBar,
  kCount,
};

/// CPU opcodes executed by the control-path code (route planner, waypoint
/// tracker, PID control unit, glue).
enum class CpuOpcode : std::uint8_t {
  // Data / arithmetic
  kAdd, kSub, kMul, kDiv, kFma, kMin, kMax, kAbs, kSqrt,
  kSin, kCos, kAtan2, kCmp, kSel, kClampOp, kMovReg, kCvt, kNeg,
  // Address computation / memory
  kLea, kLoad, kStore, kPush, kPop, kIndex, kPtrAdd, kMemCpy,
  // Control flow
  kJmp, kJcc, kCall, kRet, kLoopCnt, kSwitch,
  kCount,
};

/// Architectural class of an opcode: determines how a corruption manifests.
/// Data-class corruptions propagate numerically; address-class corruptions
/// mostly cause segfaults/broken pipes (crashes); control-class corruptions
/// cause wild branches (crashes) or infinite loops (hangs). This is the
/// paper's observation (§V-C) that CPU FI is "very likely to corrupt the
/// program control flow or memory addresses".
enum class OpClass : std::uint8_t { kData, kMemory, kControl };

constexpr int kNumGpuOpcodes = static_cast<int>(GpuOpcode::kCount);
constexpr int kNumCpuOpcodes = static_cast<int>(CpuOpcode::kCount);

OpClass op_class(GpuOpcode op);
OpClass op_class(CpuOpcode op);
std::string_view to_string(GpuOpcode op);
std::string_view to_string(CpuOpcode op);

}  // namespace dav
