// Vehicle trajectories and the paper's divergence metric.
//
// A trajectory is the timestamped list of global ego positions sampled every
// simulation step (paper §V-B: traj = [pos_t | forall t]). The safety metric
// delta_pos(E, B) = max_t |traj^E_t - traj^B_t| compares an experimental run
// against a baseline; runs with delta_pos >= td are "trajectory violations".
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/vec2.h"

namespace dav {

class Trajectory {
 public:
  void push(const Vec2& pos) { points_.push_back(pos); }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Vec2& at(std::size_t i) const { return points_[i]; }
  const std::vector<Vec2>& points() const { return points_; }
  /// Replace the recorded samples wholesale (checkpoint adopt).
  void assign(std::vector<Vec2> points) { points_ = std::move(points); }

 private:
  std::vector<Vec2> points_;
};

/// Maximum pointwise distance over the common prefix of the two trajectories.
/// (Runs that end early — e.g. stopped at a collision — are compared over the
/// steps both have.) Returns 0 for empty trajectories.
double max_divergence(const Trajectory& experimental, const Trajectory& baseline);

/// Pointwise mean of a set of trajectories, truncated to the shortest length.
/// This is the paper's "baseline trajectory" (mean of the golden runs).
Trajectory mean_trajectory(const std::vector<Trajectory>& runs);

}  // namespace dav
