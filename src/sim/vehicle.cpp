#include "sim/vehicle.h"

#include <algorithm>
#include <cmath>

#include "util/geometry.h"

namespace dav {

VehicleState step_vehicle(const VehicleState& state, const Actuation& cmd_in,
                          const VehicleSpec& spec, double dt) {
  const Actuation cmd = cmd_in.clamped();
  VehicleState next = state;

  // Engine force fades linearly with speed so the vehicle has a top speed.
  const double engine_avail =
      spec.max_engine_accel *
      std::max(0.0, 1.0 - state.v / std::max(spec.max_speed, 1e-6));
  double accel = cmd.throttle * engine_avail - cmd.brake * spec.max_brake_decel -
                 spec.drag_coeff * state.v;
  if (state.v > 0.0) accel -= spec.rolling_decel;

  double v_new = state.v + accel * dt;
  if (v_new < 0.0) {
    // Brakes and resistance stop the vehicle; they do not reverse it.
    v_new = 0.0;
    accel = (v_new - state.v) / dt;
  }

  const double steer_angle = cmd.steer * spec.max_steer_angle;
  const double v_mid = 0.5 * (state.v + v_new);
  const double omega_new = v_mid / spec.wheelbase * std::tan(steer_angle);

  next.pose.yaw = wrap_angle(state.pose.yaw + omega_new * dt);
  const double yaw_mid = state.pose.yaw + 0.5 * omega_new * dt;
  next.pose.pos.x = state.pose.pos.x + v_mid * std::cos(yaw_mid) * dt;
  next.pose.pos.y = state.pose.pos.y + v_mid * std::sin(yaw_mid) * dt;

  next.v = v_new;
  next.a = accel;
  next.alpha = (omega_new - state.omega) / dt;
  next.omega = omega_new;
  return next;
}

Obb vehicle_obb(const VehicleState& state, const VehicleSpec& spec) {
  Obb box;
  box.pose = state.pose;
  box.half_length = spec.length * 0.5;
  box.half_width = spec.width * 0.5;
  return box;
}

}  // namespace dav
