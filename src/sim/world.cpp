#include "sim/world.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dav {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kLaneCorridor = 2.0;        // |lat diff| for same-lane logic
constexpr double kCollisionGraceSec = 2.0;   // keep simulating briefly after a crash
}  // namespace

World::World(Scenario scenario) : scenario_(std::move(scenario)) {
  ego_.pose.pos = scenario_.map.lane_point(scenario_.ego_start_s, 0);
  ego_.pose.yaw = scenario_.map.heading_at(scenario_.ego_start_s);
  ego_.v = scenario_.ego_start_speed;
  ego_s_ = scenario_.ego_start_s;
  prev_ego_s_ = ego_s_;
  update_cvip();
  traj_.push(ego_.pose.pos);
}

std::vector<World::Actor> World::actors_snapshot() const {
  std::vector<Actor> out;
  out.reserve(scenario_.npcs.size() + 1);
  for (const auto& npc : scenario_.npcs) {
    out.push_back({npc.s(), npc.lateral(), npc.speed(),
                   npc.spec().length * 0.5});
  }
  out.push_back({ego_s_, ego_lat_, ego_.v, scenario_.ego_spec.length * 0.5});
  return out;
}

void World::step_npcs(double dt) {
  const auto actors = actors_snapshot();
  const std::size_t n_npc = scenario_.npcs.size();

  for (std::size_t i = 0; i < n_npc; ++i) {
    auto& npc = scenario_.npcs[i];
    // Nearest leader in this NPC's corridor, among all other actors.
    double lead_gap = kInf;
    double lead_speed = 0.0;
    for (std::size_t j = 0; j < actors.size(); ++j) {
      if (j == i) continue;
      if (std::abs(actors[j].lateral - actors[i].lateral) > kLaneCorridor)
        continue;
      const double gap = actors[j].s - actors[i].s - actors[j].half_length -
                         actors[i].half_length;
      if (actors[j].s > actors[i].s && gap < lead_gap) {
        lead_gap = gap;
        lead_speed = actors[j].speed;
      }
    }
    // Red or yellow lights act as a stopped virtual leader at the stop line
    // (only when the NPC is in the route lane corridor).
    if (std::abs(actors[i].lateral) < kLaneCorridor) {
      if (auto light = scenario_.map.next_light_after(actors[i].s)) {
        if (light->phase_at(time_) != TrafficLight::Phase::kGreen) {
          const double gap = light->s - actors[i].s - actors[i].half_length;
          if (gap >= 0.0 && gap < lead_gap) {
            lead_gap = gap;
            lead_speed = 0.0;
          }
        }
      }
    }
    const double ego_gap = actors[i].s - ego_s_;
    npc.step(time_, dt, lead_gap, lead_speed, ego_gap);
  }

  // NPC-NPC collision response: both vehicles crash out (brake hard + jink).
  for (std::size_t i = 0; i < n_npc; ++i) {
    for (std::size_t j = i + 1; j < n_npc; ++j) {
      auto& a = scenario_.npcs[i];
      auto& b = scenario_.npcs[j];
      if (a.crashed() && b.crashed()) continue;
      const Obb oa = vehicle_obb(a.state(scenario_.map), a.spec());
      const Obb ob = vehicle_obb(b.state(scenario_.map), b.spec());
      if (obb_intersect(oa, ob)) {
        a.crash(/*decel=*/9.0, /*lateral_jink=*/0.35);
        b.crash(/*decel=*/9.0, /*lateral_jink=*/-0.35);
      }
    }
  }
}

void World::update_safety() {
  const Obb ego_box = vehicle_obb(ego_, scenario_.ego_spec);
  for (const auto& npc : scenario_.npcs) {
    const Obb npc_box = vehicle_obb(npc.state(scenario_.map), npc.spec());
    if (obb_intersect(ego_box, npc_box)) {
      if (!flags_.collision) collision_time_ = time_;
      flags_.collision = true;
    }
  }

  // Red-light violation: the ego's projection crossed a stop line this step
  // while the light was red.
  for (const auto& light : scenario_.map.traffic_lights()) {
    if (prev_ego_s_ < light.s && ego_s_ >= light.s &&
        light.phase_at(time_) == TrafficLight::Phase::kRed) {
      flags_.red_light_violation = true;
    }
  }

  if (ego_.v > scenario_.map.speed_limit_at(ego_s_) * 1.15 + 0.5) {
    flags_.speeding = true;
  }
  if (!scenario_.map.on_road(ego_.pose.pos)) {
    flags_.off_road = true;
  }
}

void World::update_cvip() {
  ego_s_ = scenario_.map.route().project(ego_.pose.pos);
  ego_lat_ = scenario_.map.route().lateral_offset(ego_.pose.pos);
  double best = kInf;
  for (const auto& npc : scenario_.npcs) {
    if (std::abs(npc.lateral() - ego_lat_) > kLaneCorridor) continue;
    const double gap = npc.s() - ego_s_ - npc.spec().length * 0.5 -
                       scenario_.ego_spec.length * 0.5;
    if (npc.s() > ego_s_ && gap < best) best = gap;
  }
  cvip_ = best;
}

void World::step(const Actuation& ego_cmd, double dt) {
  prev_ego_s_ = ego_s_;
  ego_ = step_vehicle(ego_, ego_cmd, scenario_.ego_spec, dt);
  step_npcs(dt);
  time_ += dt;
  ++step_count_;
  update_cvip();
  update_safety();
  traj_.push(ego_.pose.pos);
}

bool World::done() const {
  if (time_ >= scenario_.duration_sec) return true;
  if (ego_s_ >= scenario_.map.route().length() - 10.0) return true;
  if (collision_time_ >= 0.0 && time_ - collision_time_ > kCollisionGraceSec)
    return true;
  return false;
}

WorldState World::capture() const {
  WorldState st;
  st.ego = ego_;
  st.ego_s = ego_s_;
  st.ego_lat = ego_lat_;
  st.time = time_;
  st.step_count = step_count_;
  st.cvip = cvip_;
  st.flags = flags_;
  st.trajectory = traj_.points();
  st.collision_time = collision_time_;
  st.prev_ego_s = prev_ego_s_;
  st.npcs.reserve(scenario_.npcs.size());
  for (const NpcVehicle& npc : scenario_.npcs) st.npcs.push_back(npc.capture());
  return st;
}

void World::adopt(const WorldState& st) {
  if (st.npcs.size() != scenario_.npcs.size()) {
    throw std::invalid_argument(
        "World::adopt: NPC count mismatch (checkpoint from a different "
        "scenario?)");
  }
  ego_ = st.ego;
  ego_s_ = st.ego_s;
  ego_lat_ = st.ego_lat;
  time_ = st.time;
  step_count_ = st.step_count;
  cvip_ = st.cvip;
  flags_ = st.flags;
  traj_.assign(st.trajectory);
  collision_time_ = st.collision_time;
  prev_ego_s_ = st.prev_ego_s;
  for (std::size_t i = 0; i < scenario_.npcs.size(); ++i) {
    scenario_.npcs[i].adopt(st.npcs[i]);
  }
}

}  // namespace dav
