#include "sim/npc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dav {

NpcVehicle::NpcVehicle(int id, double s, double lateral, double speed,
                       IdmParams idm, VehicleSpec spec)
    : id_(id),
      s_(s),
      lateral_(lateral),
      target_lateral_(lateral),
      v_(speed),
      spec_(spec),
      idm_(idm) {}

VehicleState NpcVehicle::state(const RoadMap& map) const {
  VehicleState st;
  const Vec2 base = map.route().point_at(s_);
  const Vec2 left = map.route().tangent_at(s_).perp();
  st.pose.pos = base + left * lateral_;
  st.pose.yaw = map.route().heading_at(s_);
  // During a lane change the heading tilts toward the lateral motion.
  // Rate is assigned exactly 0.0 when no lane change is active, so the
  // exact compare is a state flag, not arithmetic.
  if (lane_change_rate_ != 0.0 && v_ > 0.5) {  // davlint: allow(float-eq)
    st.pose.yaw = wrap_angle(st.pose.yaw + std::atan2(lane_change_rate_, v_));
  }
  st.v = v_;
  return st;
}

double NpcVehicle::idm_accel(double lead_gap, double lead_speed) const {
  const double v0 = std::max(idm_.desired_speed, 0.1);
  const double free_term = 1.0 - std::pow(v_ / v0, 4.0);
  double interaction = 0.0;
  if (std::isfinite(lead_gap) && lead_gap > 0.01) {
    const double dv = v_ - lead_speed;
    const double s_star =
        idm_.min_gap + v_ * idm_.headway +
        v_ * dv / (2.0 * std::sqrt(idm_.max_accel * idm_.comfort_decel));
    const double ratio = std::max(0.0, s_star) / lead_gap;
    interaction = ratio * ratio;
  } else if (lead_gap <= 0.01) {
    interaction = 4.0;  // bumper to bumper: brake hard
  }
  return idm_.max_accel * (free_term - interaction);
}

void NpcVehicle::step(double t, double dt, double lead_gap, double lead_speed,
                      double ego_gap) {
  for (auto& ev : events_) {
    if (ev.fired) continue;
    const bool fire =
        (ev.trigger == NpcEvent::Trigger::kAtTime && t >= ev.trigger_value) ||
        (ev.trigger == NpcEvent::Trigger::kAtEgoGap &&
         ego_gap >= ev.trigger_value);
    if (!fire) continue;
    ev.fired = true;
    switch (ev.action) {
      case NpcEvent::Action::kEmergencyBrake:
        braking_override_ = true;
        brake_decel_ = ev.param;
        break;
      case NpcEvent::Action::kLaneChange:
        target_lateral_ = ev.param;
        lane_change_rate_ = (target_lateral_ - lateral_) /
                            std::max(ev.duration, 0.1);
        break;
      case NpcEvent::Action::kSetSpeed:
        idm_.desired_speed = ev.param;
        break;
      case NpcEvent::Action::kBrakePulse:
        braking_override_ = true;
        brake_decel_ = ev.param;
        brake_until_ = t + ev.duration;
        break;
    }
  }
  if (braking_override_ && !crashed_ && brake_until_ >= 0.0 &&
      t >= brake_until_) {
    braking_override_ = false;
    brake_until_ = -1.0;
  }

  double accel;
  if (crashed_) {
    accel = -brake_decel_;
  } else if (braking_override_) {
    accel = -brake_decel_;
  } else {
    accel = idm_accel(lead_gap, lead_speed);
  }
  accel = clamp(accel, -spec_.max_brake_decel, idm_.max_accel);

  v_ = std::max(0.0, v_ + accel * dt);
  s_ += v_ * dt;

  if (lateral_ != target_lateral_) {
    const double step = lane_change_rate_ * dt;
    if (std::abs(target_lateral_ - lateral_) <= std::abs(step) ||
        lane_change_rate_ == 0.0) {  // exact-0.0 state flag, see above. davlint: allow(float-eq)
      lateral_ = target_lateral_;
      lane_change_rate_ = 0.0;
    } else {
      lateral_ += step;
    }
  }
}

void NpcVehicle::crash(double decel, double lateral_jink) {
  if (crashed_) return;
  crashed_ = true;
  braking_override_ = true;
  brake_decel_ = decel;
  target_lateral_ = lateral_ + lateral_jink;
  lane_change_rate_ = lateral_jink / 0.5;  // jink over half a second
}

NpcState NpcVehicle::capture() const {
  NpcState st;
  st.s = s_;
  st.lateral = lateral_;
  st.target_lateral = target_lateral_;
  st.lane_change_rate = lane_change_rate_;
  st.v = v_;
  st.desired_speed = idm_.desired_speed;
  st.braking_override = braking_override_;
  st.brake_decel = brake_decel_;
  st.brake_until = brake_until_;
  st.crashed = crashed_;
  st.events_fired.reserve(events_.size());
  for (const NpcEvent& ev : events_) {
    st.events_fired.push_back(ev.fired ? 1 : 0);
  }
  return st;
}

void NpcVehicle::adopt(const NpcState& st) {
  if (st.events_fired.size() != events_.size()) {
    throw std::invalid_argument(
        "NpcVehicle::adopt: event count mismatch (checkpoint from a "
        "different scenario?)");
  }
  s_ = st.s;
  lateral_ = st.lateral;
  target_lateral_ = st.target_lateral;
  lane_change_rate_ = st.lane_change_rate;
  v_ = st.v;
  idm_.desired_speed = st.desired_speed;
  braking_override_ = st.braking_override;
  brake_decel_ = st.brake_decel;
  brake_until_ = st.brake_until;
  crashed_ = st.crashed;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    events_[i].fired = st.events_fired[i] != 0;
  }
}

}  // namespace dav
