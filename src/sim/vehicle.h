// Kinematic bicycle model with simple longitudinal dynamics.
#pragma once

#include "sim/types.h"

namespace dav {

/// Advance `state` by `dt` seconds under `cmd`. Returns the new state with
/// derived quantities (a, omega, alpha) filled in.
///
/// Longitudinal: v' = v + (throttle * engine(v) - brake * max_brake
///                         - drag * v - rolling) * dt, floored at 0.
/// Lateral: kinematic bicycle — yaw rate = v / L * tan(steer_angle).
VehicleState step_vehicle(const VehicleState& state, const Actuation& cmd,
                          const VehicleSpec& spec, double dt);

/// Footprint of a vehicle as an oriented bounding box.
struct Obb vehicle_obb(const VehicleState& state, const VehicleSpec& spec);

}  // namespace dav
