#include "sim/trajectory.h"

#include <algorithm>
#include <limits>

namespace dav {

double max_divergence(const Trajectory& experimental,
                      const Trajectory& baseline) {
  const std::size_t n = std::min(experimental.size(), baseline.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, distance(experimental.at(i), baseline.at(i)));
  }
  return worst;
}

Trajectory mean_trajectory(const std::vector<Trajectory>& runs) {
  Trajectory out;
  if (runs.empty()) return out;
  std::size_t n = std::numeric_limits<std::size_t>::max();
  for (const auto& r : runs) n = std::min(n, r.size());
  if (n == std::numeric_limits<std::size_t>::max()) return out;
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 sum;
    for (const auto& r : runs) sum += r.at(i);
    out.push(sum / static_cast<double>(runs.size()));
  }
  return out;
}

}  // namespace dav
