// Driving scenario definitions (paper §IV-C).
//
// Safety-critical test scenarios (30-60 s): LeadSlowdown, GhostCutIn,
// FrontAccident — the NHTSA pre-collision typology situations used for fault
// injection. Long training scenarios (several minutes in the paper; scaled
// here): urban/highway routes with turns, traffic lights and seeded background
// traffic, used to train the error detector fault-free.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/npc.h"
#include "sim/road.h"
#include "sim/types.h"

namespace dav {

struct Scenario {
  ScenarioId id = ScenarioId::kLeadSlowdown;
  RoadMap map;
  double ego_start_s = 0.0;
  double ego_start_speed = 0.0;
  double target_speed = 10.0;  // route planner's cruise set-point
  std::vector<NpcVehicle> npcs;
  double duration_sec = 30.0;
  VehicleSpec ego_spec;
};

/// Options that scale scenario cost (durations) without changing structure.
struct ScenarioOptions {
  double long_route_duration_sec = 90.0;  // paper: 10-15 min; scaled default
  double safety_duration_sec = 30.0;
};

/// Build a scenario. `traffic_seed` fixes the pseudo-random background
/// traffic (paper: "fixed random seed for each run"); the safety-critical
/// scenarios are fully scripted and ignore it except for NPC speed jitter.
Scenario make_scenario(ScenarioId id, std::uint64_t traffic_seed = 2022,
                       const ScenarioOptions& opts = {});

/// The three safety-critical (test) scenarios.
std::vector<ScenarioId> safety_scenarios();
/// The three long (training) scenarios.
std::vector<ScenarioId> training_scenarios();

}  // namespace dav
