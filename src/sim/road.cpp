#include "sim/road.h"

#include <algorithm>
#include <cmath>

namespace dav {

TrafficLight::Phase TrafficLight::phase_at(double t) const {
  double u = std::fmod(t + phase_sec, cycle_length());
  if (u < 0.0) u += cycle_length();
  if (u < green_sec) return Phase::kGreen;
  if (u < green_sec + yellow_sec) return Phase::kYellow;
  return Phase::kRed;
}

RoadMap::RoadMap(Polyline route, double lane_width, int num_left_lanes,
                 int num_right_lanes)
    : route_(std::move(route)),
      lane_width_(lane_width),
      num_left_lanes_(num_left_lanes),
      num_right_lanes_(num_right_lanes) {}

Vec2 RoadMap::lane_point(double s, int lane) const {
  const Vec2 base = route_.point_at(s);
  const Vec2 left = route_.tangent_at(s).perp();
  return base + left * (static_cast<double>(lane) * lane_width_);
}

std::optional<TrafficLight> RoadMap::next_light_after(double s) const {
  std::optional<TrafficLight> best;
  for (const auto& l : lights_) {
    if (l.s >= s && (!best || l.s < best->s)) best = l;
  }
  return best;
}

double RoadMap::speed_limit_at(double s, double fallback) const {
  for (const auto& lim : limits_) {
    if (s >= lim.s_begin && s < lim.s_end) return lim.limit;
  }
  return fallback;
}

bool RoadMap::on_road(const Vec2& p, double shoulder) const {
  const double lat = route_.lateral_offset(p);
  const double left_edge =
      (static_cast<double>(num_left_lanes_) + 0.5) * lane_width_ + shoulder;
  const double right_edge =
      (static_cast<double>(num_right_lanes_) + 0.5) * lane_width_ + shoulder;
  return lat <= left_edge && lat >= -right_edge;
}

RouteBuilder::RouteBuilder(Vec2 start, double heading)
    : cursor_(start), heading_(heading) {
  pts_.push_back(start);
}

RouteBuilder& RouteBuilder::straight(double length) {
  // Sample every ~2 m to keep the polyline smooth for curvature queries.
  const int n = std::max(1, static_cast<int>(length / 2.0));
  const Vec2 dir{std::cos(heading_), std::sin(heading_)};
  for (int i = 1; i <= n; ++i) {
    pts_.push_back(cursor_ + dir * (length * static_cast<double>(i) / n));
  }
  cursor_ = pts_.back();
  return *this;
}

RouteBuilder& RouteBuilder::turn(double angle_rad, double radius) {
  const int n =
      std::max(8, static_cast<int>(std::abs(angle_rad) * radius / 1.5));
  const double side = angle_rad >= 0.0 ? 1.0 : -1.0;
  const Vec2 to_center =
      Vec2{std::cos(heading_), std::sin(heading_)}.perp() * side * radius;
  const Vec2 center = cursor_ + to_center;
  const double start_angle = std::atan2(cursor_.y - center.y, cursor_.x - center.x);
  for (int i = 1; i <= n; ++i) {
    const double a = start_angle + angle_rad * static_cast<double>(i) / n;
    pts_.push_back(center + Vec2{std::cos(a), std::sin(a)} * radius);
  }
  cursor_ = pts_.back();
  heading_ = wrap_angle(heading_ + angle_rad);
  return *this;
}

Polyline RouteBuilder::build() const { return Polyline(pts_); }

}  // namespace dav
