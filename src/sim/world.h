// The synchronous world stepper: ego dynamics, NPC traffic, collision
// detection, traffic-rule monitoring, CVIP, and trajectory recording.
// Plays the role of the CARLA server run in synchronous mode (paper §IV-B).
#pragma once

#include <vector>

#include "sim/npc.h"
#include "sim/scenario.h"
#include "sim/trajectory.h"
#include "sim/vehicle.h"

namespace dav {

/// Cumulative safety ground truth for a run.
struct SafetyFlags {
  bool collision = false;
  bool red_light_violation = false;
  bool speeding = false;
  bool off_road = false;

  bool any() const {
    return collision || red_light_violation || speeding || off_road;
  }
};

/// Full dynamic world state for checkpoint capture/adopt: ego kinematics,
/// per-NPC controller state, safety ground truth, and the recorded
/// trajectory so far. The static scenario (map, specs, event scripts) is
/// excluded — a restored World is rebuilt from the same Scenario and adopts
/// only what time evolved.
struct WorldState {
  VehicleState ego;
  double ego_s = 0.0;
  double ego_lat = 0.0;
  double time = 0.0;
  int step_count = 0;
  double cvip = 0.0;
  SafetyFlags flags;
  std::vector<Vec2> trajectory;
  double collision_time = -1.0;
  double prev_ego_s = 0.0;
  std::vector<NpcState> npcs;
};

class World {
 public:
  explicit World(Scenario scenario);

  /// Advance one synchronous tick: apply the ego actuation, move traffic,
  /// update collision/rule/CVIP state, record the trajectory sample.
  void step(const Actuation& ego_cmd, double dt);

  const VehicleState& ego() const { return ego_; }
  const VehicleSpec& ego_spec() const { return scenario_.ego_spec; }
  double time() const { return time_; }
  int step_count() const { return step_count_; }
  const RoadMap& map() const { return scenario_.map; }
  const Scenario& scenario() const { return scenario_; }
  const std::vector<NpcVehicle>& npcs() const { return scenario_.npcs; }

  /// Ego progress (arc length of projection onto the route).
  double ego_route_s() const { return ego_s_; }
  /// Ego lateral offset from the route center line (+ = left).
  double ego_lateral() const { return ego_lat_; }

  /// Closest-vehicle-in-path distance (paper §II / Fig 2): bumper distance to
  /// the nearest vehicle ahead in the ego's lane corridor; +inf if none.
  double cvip() const { return cvip_; }

  const SafetyFlags& flags() const { return flags_; }
  const Trajectory& trajectory() const { return traj_; }

  /// Time of the first ego collision; negative if none so far.
  double first_collision_time() const { return collision_time_; }

  /// True once the scenario duration has elapsed, the route is finished, or
  /// a grace period after an ego collision has passed.
  bool done() const;

  WorldState capture() const;
  void adopt(const WorldState& st);

 private:
  struct Actor {
    double s = 0.0;
    double lateral = 0.0;
    double speed = 0.0;
    double half_length = 0.0;
  };

  void step_npcs(double dt);
  void update_safety();
  void update_cvip();
  std::vector<Actor> actors_snapshot() const;  // NPCs + ego, route coords

  Scenario scenario_;
  VehicleState ego_;
  double ego_s_ = 0.0;
  double ego_lat_ = 0.0;
  double time_ = 0.0;
  int step_count_ = 0;
  double cvip_ = 0.0;
  SafetyFlags flags_;
  Trajectory traj_;
  double collision_time_ = -1.0;
  double prev_ego_s_ = 0.0;
};

}  // namespace dav
