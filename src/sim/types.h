// Core value types shared by the simulator, the agent and the detector.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/vec2.h"

namespace dav {

/// Actuation command, the AV software's output (paper Fig 1): throttle and
/// brake in [0,1], steer in [-1,1] (fraction of maximum steering angle).
struct Actuation {
  double throttle = 0.0;
  double brake = 0.0;
  double steer = 0.0;

  Actuation clamped() const {
    return {clamp(throttle, 0.0, 1.0), clamp(brake, 0.0, 1.0),
            clamp(steer, -1.0, 1.0)};
  }

  /// Output plausibility (ISO 26262-style): the ECU rejects non-finite
  /// commands as a platform-detected DUE.
  bool finite() const {
    return std::isfinite(throttle) && std::isfinite(brake) &&
           std::isfinite(steer);
  }
};

/// Full kinematic state of a vehicle. The detector's threshold lookup table is
/// keyed on the tuple <v, a, omega, alpha> (paper §III-D).
struct VehicleState {
  Pose2 pose;
  double v = 0.0;      // longitudinal speed, m/s (>= 0)
  double a = 0.0;      // longitudinal acceleration, m/s^2
  double omega = 0.0;  // yaw rate, rad/s
  double alpha = 0.0;  // yaw acceleration, rad/s^2
};

/// Static vehicle parameters for the kinematic bicycle model.
struct VehicleSpec {
  double length = 4.5;          // m
  double width = 2.0;           // m
  double wheelbase = 2.7;       // m
  double max_engine_accel = 3.5;   // m/s^2 at full throttle, zero speed
  double max_brake_decel = 8.0;    // m/s^2 at full brake
  double max_steer_angle = 0.5;    // rad, front-wheel angle at steer = 1
  double max_speed = 30.0;         // m/s, engine force fades to 0 here
  double drag_coeff = 0.05;        // 1/s, linear speed-proportional drag
  double rolling_decel = 0.1;      // m/s^2, constant rolling resistance
};

/// Identifiers for the six driving scenarios (paper §IV-C).
enum class ScenarioId : std::uint8_t {
  kLeadSlowdown,   // safety-critical: lead vehicle emergency-brakes
  kGhostCutIn,     // safety-critical: NPC cuts in from adjacent lane
  kFrontAccident,  // safety-critical: two NPCs collide ahead of ego
  kLongRoute02,    // training: urban route (Town01-like)
  kLongRoute15,    // training: mixed urban route (Town03-like)
  kLongRoute42,    // training: highway route (Town06-like)
};

std::string to_string(ScenarioId id);
bool is_safety_critical(ScenarioId id);

}  // namespace dav
