// Road network model: a primary route polyline with parallel lanes, speed
// limits, and traffic lights. Rich enough for the paper's scenarios — straight
// multi-lane roads for the safety-critical tests, and long urban/highway
// routes with turns, intersections and traffic lights for detector training.
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.h"

namespace dav {

/// Traffic light placed at arc length `s` on the route, governing a stop line.
/// The cycle is green -> yellow -> red, repeating, with a phase offset.
struct TrafficLight {
  double s = 0.0;            // stop-line arc length on the route
  double green_sec = 10.0;
  double yellow_sec = 2.0;
  double red_sec = 8.0;
  double phase_sec = 0.0;    // cycle offset at t = 0

  enum class Phase { kGreen, kYellow, kRed };
  Phase phase_at(double t) const;
  double cycle_length() const { return green_sec + yellow_sec + red_sec; }
};

/// Speed limit over an arc-length interval of the route.
struct SpeedLimit {
  double s_begin = 0.0;
  double s_end = 0.0;
  double limit = 14.0;  // m/s
};

/// The map: a center route (ego's intended path, lane 0) plus lane geometry.
/// Lane index l has lateral offset l * lane_width (positive = left).
class RoadMap {
 public:
  RoadMap() = default;
  RoadMap(Polyline route, double lane_width, int num_left_lanes,
          int num_right_lanes);

  const Polyline& route() const { return route_; }
  double lane_width() const { return lane_width_; }
  int num_left_lanes() const { return num_left_lanes_; }
  int num_right_lanes() const { return num_right_lanes_; }

  /// World position of (arc length s, lane index).
  Vec2 lane_point(double s, int lane) const;
  double heading_at(double s) const { return route_.heading_at(s); }

  void add_traffic_light(TrafficLight light) { lights_.push_back(light); }
  const std::vector<TrafficLight>& traffic_lights() const { return lights_; }
  /// Next light at or after arc length s (nullopt if none remain).
  std::optional<TrafficLight> next_light_after(double s) const;

  void add_speed_limit(SpeedLimit lim) { limits_.push_back(lim); }
  /// Effective speed limit at arc length s (default if no interval covers s).
  double speed_limit_at(double s, double fallback = 14.0) const;

  /// True if p lies within the paved corridor (all lanes + shoulder margin).
  bool on_road(const Vec2& p, double shoulder = 0.5) const;

 private:
  Polyline route_;
  double lane_width_ = 3.5;
  int num_left_lanes_ = 1;
  int num_right_lanes_ = 0;
  std::vector<TrafficLight> lights_;
  std::vector<SpeedLimit> limits_;
};

/// Builder for the long training routes: sequences of straights and turns.
class RouteBuilder {
 public:
  explicit RouteBuilder(Vec2 start = {0.0, 0.0}, double heading = 0.0);

  RouteBuilder& straight(double length);
  /// Circular arc turn; positive angle = left. Radius in meters.
  RouteBuilder& turn(double angle_rad, double radius);
  Polyline build() const;

 private:
  std::vector<Vec2> pts_;
  Vec2 cursor_;
  double heading_;
};

}  // namespace dav
