// Non-player-character vehicles: IDM car-following along the route, plus
// scripted events that create the paper's safety-critical situations
// (emergency braking, cut-in maneuvers, an NPC-NPC crash).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/road.h"
#include "sim/types.h"

namespace dav {

/// Intelligent-Driver-Model parameters for background traffic.
struct IdmParams {
  double desired_speed = 11.0;   // v0, m/s
  double max_accel = 2.5;        // a, m/s^2
  double comfort_decel = 3.0;    // b, m/s^2
  double min_gap = 2.5;          // s0, m
  double headway = 1.3;          // T, s
};

/// A scripted behavior change. Events fire once, when their trigger is met.
struct NpcEvent {
  enum class Trigger : std::uint8_t {
    kAtTime,    // fire at simulation time >= value (seconds)
    kAtEgoGap,  // fire when signed gap (s_npc - s_ego) >= value (meters)
  };
  enum class Action : std::uint8_t {
    kEmergencyBrake,  // param = deceleration (m/s^2), overrides IDM for good
    kLaneChange,      // param = target lateral offset (m), duration = seconds
    kSetSpeed,        // param = new desired speed (m/s)
    kBrakePulse,      // param = deceleration, duration = seconds, then resume
  };

  Trigger trigger = Trigger::kAtTime;
  double trigger_value = 0.0;
  Action action = Action::kEmergencyBrake;
  double param = 0.0;
  double duration = 2.0;
  bool fired = false;
};

/// Dynamic NPC controller state for checkpoint capture/adopt. Construction
/// inputs (id, spec, event scripts, non-mutated IDM params) are excluded; a
/// restored NPC is rebuilt from the scenario and adopts only what evolved:
/// kinematics, the one IDM field kSetSpeed mutates, the brake override, and
/// which scripted events have already fired.
struct NpcState {
  double s = 0.0;
  double lateral = 0.0;
  double target_lateral = 0.0;
  double lane_change_rate = 0.0;
  double v = 0.0;
  double desired_speed = 0.0;
  bool braking_override = false;
  double brake_decel = 0.0;
  double brake_until = -1.0;
  bool crashed = false;
  std::vector<std::uint8_t> events_fired;
};

/// An NPC vehicle. NPCs move along the shared route polyline at a lateral
/// offset (meters, + = left of route direction); they are world actors, not
/// agent-controlled, so a point-following model suffices.
class NpcVehicle {
 public:
  NpcVehicle(int id, double s, double lateral, double speed, IdmParams idm,
             VehicleSpec spec = {});

  int id() const { return id_; }
  double s() const { return s_; }
  double lateral() const { return lateral_; }
  double speed() const { return v_; }
  const VehicleSpec& spec() const { return spec_; }
  bool crashed() const { return crashed_; }

  void add_event(NpcEvent ev) { events_.push_back(ev); }

  /// World pose derived from (s, lateral) on the route.
  VehicleState state(const RoadMap& map) const;

  /// One step of behavior + motion. `lead_gap`/`lead_speed` describe the
  /// nearest vehicle ahead in this NPC's lane corridor (gap = bumper distance,
  /// +inf if none); `ego_gap` is the signed arc-length gap s_npc - s_ego
  /// (positive when this NPC is ahead of the ego), used for kAtEgoGap.
  void step(double t, double dt, double lead_gap, double lead_speed,
            double ego_gap);

  /// Mark as crashed: the vehicle brakes out at `decel` and jinks laterally.
  void crash(double decel = 9.0, double lateral_jink = 0.4);

  NpcState capture() const;
  void adopt(const NpcState& st);

 private:
  double idm_accel(double lead_gap, double lead_speed) const;

  int id_;
  double s_;
  double lateral_;
  double target_lateral_;
  double lane_change_rate_ = 0.0;  // m/s of lateral motion while changing
  double v_;
  VehicleSpec spec_;
  IdmParams idm_;
  std::vector<NpcEvent> events_;
  bool braking_override_ = false;
  double brake_decel_ = 0.0;
  double brake_until_ = -1.0;  // pulse end time; negative = unbounded
  bool crashed_ = false;
};

}  // namespace dav
