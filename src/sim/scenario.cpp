#include "sim/scenario.h"

#include <cmath>

#include "util/rng.h"

namespace dav {

std::string to_string(ScenarioId id) {
  switch (id) {
    case ScenarioId::kLeadSlowdown: return "LeadSlowdown";
    case ScenarioId::kGhostCutIn: return "GhostCutIn";
    case ScenarioId::kFrontAccident: return "FrontAccident";
    case ScenarioId::kLongRoute02: return "Town01-Route02";
    case ScenarioId::kLongRoute15: return "Town03-Route15";
    case ScenarioId::kLongRoute42: return "Town06-Route42";
  }
  return "Unknown";
}

bool is_safety_critical(ScenarioId id) {
  return id == ScenarioId::kLeadSlowdown || id == ScenarioId::kGhostCutIn ||
         id == ScenarioId::kFrontAccident;
}

std::vector<ScenarioId> safety_scenarios() {
  return {ScenarioId::kLeadSlowdown, ScenarioId::kGhostCutIn,
          ScenarioId::kFrontAccident};
}

std::vector<ScenarioId> training_scenarios() {
  return {ScenarioId::kLongRoute02, ScenarioId::kLongRoute15,
          ScenarioId::kLongRoute42};
}

namespace {

RoadMap straight_road(double length, int left_lanes = 1) {
  Polyline route = RouteBuilder({0.0, 0.0}, 0.0).straight(length).build();
  return RoadMap(std::move(route), 3.5, left_lanes, 0);
}

Scenario lead_slowdown(const ScenarioOptions& opts) {
  // Ego follows a lead NPC at 25 m; the NPC emergency-brakes at t = 8 s
  // (paper Fig 4 left). High risk of rear-end collision.
  Scenario sc;
  sc.id = ScenarioId::kLeadSlowdown;
  sc.map = straight_road(700.0);
  sc.ego_start_s = 10.0;
  sc.ego_start_speed = 10.0;
  sc.target_speed = 10.0;
  sc.duration_sec = opts.safety_duration_sec;

  IdmParams lead_idm;
  lead_idm.desired_speed = 10.0;
  NpcVehicle lead(/*id=*/1, /*s=*/sc.ego_start_s + 25.0, /*lateral=*/0.0,
                  /*speed=*/10.0, lead_idm);
  lead.add_event({NpcEvent::Trigger::kAtTime, 8.0,
                  NpcEvent::Action::kEmergencyBrake, /*param=*/7.0});
  sc.npcs.push_back(lead);
  return sc;
}

Scenario ghost_cut_in(const ScenarioOptions& opts) {
  // An NPC approaches fast in the left lane and cuts in front of the ego with
  // a small longitudinal margin (paper Fig 4 middle).
  Scenario sc;
  sc.id = ScenarioId::kGhostCutIn;
  sc.map = straight_road(700.0);
  sc.ego_start_s = 30.0;
  sc.ego_start_speed = 10.0;
  sc.target_speed = 10.0;
  sc.duration_sec = opts.safety_duration_sec;

  IdmParams fast_idm;
  fast_idm.desired_speed = 14.0;
  NpcVehicle cutter(/*id=*/1, /*s=*/sc.ego_start_s - 20.0, /*lateral=*/3.5,
                    /*speed=*/14.0, fast_idm);
  // Cut in once 8 m ahead of the ego; slow to the ego's speed while merging,
  // which is what makes the margin shrink dangerously.
  cutter.add_event({NpcEvent::Trigger::kAtEgoGap, 8.0,
                    NpcEvent::Action::kLaneChange, /*param=*/0.0,
                    /*duration=*/1.8});
  cutter.add_event({NpcEvent::Trigger::kAtEgoGap, 8.0,
                    NpcEvent::Action::kSetSpeed, /*param=*/8.5});
  sc.npcs.push_back(cutter);
  return sc;
}

Scenario front_accident(const ScenarioOptions& opts) {
  // Ego follows NPC1; NPC2 merges from the left lane into NPC1 and the two
  // collide and stop abruptly in the ego's path (paper Fig 4 right).
  Scenario sc;
  sc.id = ScenarioId::kFrontAccident;
  sc.map = straight_road(700.0);
  sc.ego_start_s = 10.0;
  sc.ego_start_speed = 10.0;
  sc.target_speed = 10.0;
  sc.duration_sec = opts.safety_duration_sec;

  IdmParams lead_idm;
  lead_idm.desired_speed = 10.0;
  NpcVehicle lead(/*id=*/1, /*s=*/sc.ego_start_s + 25.0, /*lateral=*/0.0,
                  /*speed=*/10.0, lead_idm);
  sc.npcs.push_back(lead);

  IdmParams merger_idm;
  merger_idm.desired_speed = 12.0;
  // Starts 3 m behind NPC1 in the left lane, slightly faster; merges at t = 4
  // when it is barely ahead, clipping NPC1 -> world collision response.
  NpcVehicle merger(/*id=*/2, /*s=*/sc.ego_start_s + 22.0, /*lateral=*/3.5,
                    /*speed=*/12.0, merger_idm);
  merger.add_event({NpcEvent::Trigger::kAtTime, 4.0,
                    NpcEvent::Action::kLaneChange, /*param=*/0.0,
                    /*duration=*/1.5});
  sc.npcs.push_back(merger);
  return sc;
}

/// Seeded background traffic ahead of the ego: vehicles in the ego lane and
/// the adjacent lane, spaced 30-55 m, speeds jittered around the limit.
void add_background_traffic(Scenario& sc, std::uint64_t seed, int count,
                            double base_speed) {
  Rng rng(seed);
  double s = sc.ego_start_s + 30.0;
  for (int i = 0; i < count; ++i) {
    s += rng.uniform(30.0, 55.0);
    if (s > sc.map.route().length() - 50.0) break;
    const double lateral = rng.bernoulli(0.4) ? 3.5 : 0.0;
    IdmParams idm;
    idm.desired_speed = base_speed * rng.uniform(0.85, 1.1);
    idm.headway = rng.uniform(1.1, 1.6);
    NpcVehicle npc(/*id=*/10 + i, s, lateral,
                   /*speed=*/idm.desired_speed * 0.9, idm);
    // Some vehicles periodically slow down and speed back up, so the ego
    // experiences ordinary car-following decelerations during training (the
    // detector must learn fault-free divergence under braking, §III-D).
    if (rng.bernoulli(0.4)) {
      const double t_slow = rng.uniform(8.0, 30.0);
      npc.add_event({NpcEvent::Trigger::kAtTime, t_slow,
                     NpcEvent::Action::kSetSpeed, idm.desired_speed * 0.45});
      npc.add_event({NpcEvent::Trigger::kAtTime, t_slow + rng.uniform(6.0, 12.0),
                     NpcEvent::Action::kSetSpeed, idm.desired_speed});
    } else if (rng.bernoulli(0.35)) {
      // Occasional firm braking pulses: ordinary daily driving (a pet runs
      // out, a pothole) that exposes the detector to fault-free divergence
      // under hard deceleration without staging an emergency (the paper's
      // training routes contain no emergencies or accidents).
      npc.add_event({NpcEvent::Trigger::kAtTime, rng.uniform(10.0, 40.0),
                     NpcEvent::Action::kBrakePulse, /*param=*/4.5,
                     /*duration=*/rng.uniform(1.5, 2.5)});
    }
    sc.npcs.push_back(npc);
  }
}

Scenario long_route(ScenarioId id, std::uint64_t seed,
                    const ScenarioOptions& opts) {
  Scenario sc;
  sc.id = id;
  sc.duration_sec = opts.long_route_duration_sec;
  sc.ego_start_s = 5.0;

  if (id == ScenarioId::kLongRoute02) {
    // Urban grid (Town01-like): short blocks, 90-degree turns, lights.
    Polyline route = RouteBuilder()
                         .straight(120.0)
                         .turn(M_PI / 2, 18.0)
                         .straight(90.0)
                         .turn(-M_PI / 2, 18.0)
                         .straight(140.0)
                         .turn(-M_PI / 2, 18.0)
                         .straight(90.0)
                         .turn(M_PI / 2, 18.0)
                         .straight(160.0)
                         .turn(M_PI / 2, 18.0)
                         .straight(120.0)
                         .build();
    sc.map = RoadMap(std::move(route), 3.5, 1, 0);
    sc.map.add_traffic_light({100.0, 9.0, 2.0, 7.0, 3.0});
    sc.map.add_traffic_light({330.0, 9.0, 2.0, 7.0, 11.0});
    sc.map.add_traffic_light({560.0, 9.0, 2.0, 7.0, 6.0});
    sc.map.add_speed_limit({0.0, 1e9, 9.0});
    sc.target_speed = 9.0;
    sc.ego_start_speed = 7.0;
    add_background_traffic(sc, seed, 8, 8.0);
  } else if (id == ScenarioId::kLongRoute15) {
    // Mixed urban (Town03-like): medium blocks, mixed-angle turns.
    Polyline route = RouteBuilder()
                         .straight(180.0)
                         .turn(M_PI / 4, 40.0)
                         .straight(150.0)
                         .turn(-M_PI / 2, 22.0)
                         .straight(200.0)
                         .turn(-M_PI / 4, 40.0)
                         .straight(180.0)
                         .turn(M_PI / 2, 22.0)
                         .straight(220.0)
                         .build();
    sc.map = RoadMap(std::move(route), 3.5, 1, 0);
    sc.map.add_traffic_light({170.0, 10.0, 2.0, 8.0, 5.0});
    sc.map.add_traffic_light({540.0, 10.0, 2.0, 8.0, 13.0});
    sc.map.add_speed_limit({0.0, 1e9, 12.0});
    sc.target_speed = 12.0;
    sc.ego_start_speed = 9.0;
    add_background_traffic(sc, seed, 7, 10.5);
  } else {
    // Highway (Town06-like): long straights, sweeping curves, no lights.
    Polyline route = RouteBuilder()
                         .straight(400.0)
                         .turn(M_PI / 12, 300.0)
                         .straight(350.0)
                         .turn(-M_PI / 12, 300.0)
                         .straight(450.0)
                         .turn(M_PI / 10, 250.0)
                         .straight(400.0)
                         .build();
    sc.map = RoadMap(std::move(route), 3.5, 1, 0);
    sc.map.add_speed_limit({0.0, 1e9, 17.0});
    sc.target_speed = 17.0;
    sc.ego_start_speed = 13.0;
    add_background_traffic(sc, seed, 6, 15.5);
  }
  return sc;
}

}  // namespace

Scenario make_scenario(ScenarioId id, std::uint64_t traffic_seed,
                       const ScenarioOptions& opts) {
  switch (id) {
    case ScenarioId::kLeadSlowdown: return lead_slowdown(opts);
    case ScenarioId::kGhostCutIn: return ghost_cut_in(opts);
    case ScenarioId::kFrontAccident: return front_accident(opts);
    default: return long_route(id, traffic_seed, opts);
  }
}

}  // namespace dav
