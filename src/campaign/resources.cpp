#include "campaign/resources.h"

#include "core/distributor.h"

namespace dav {

ResourceUsage measure_resources(const RunResult& run,
                                const RunResult& single_reference) {
  ResourceUsage u;
  u.config = to_string(run.mode);
  u.processors = run.mode == AgentMode::kDuplicate ? 2 : 1;

  const double dur = run.duration > 0.0 ? run.duration : 1.0;
  const double ref_dur =
      single_reference.duration > 0.0 ? single_reference.duration : 1.0;
  const double ref_gpu_rate =
      static_cast<double>(single_reference.gpu_instructions) / ref_dur;
  const double ref_cpu_rate =
      static_cast<double>(single_reference.cpu_instructions) / ref_dur;

  // Per-processor rates: the FD system splits its instruction stream over
  // two dedicated processor pairs.
  const double gpu_rate =
      static_cast<double>(run.gpu_instructions) / dur / u.processors;
  const double cpu_rate =
      static_cast<double>(run.cpu_instructions) / dur / u.processors;

  u.gpu_util_pct =
      ref_gpu_rate > 0.0 ? kNominalSingleGpuPct * gpu_rate / ref_gpu_rate : 0.0;
  u.cpu_util_pct =
      ref_cpu_rate > 0.0 ? kNominalSingleCpuPct * cpu_rate / ref_cpu_rate : 0.0;

  // Memory: each agent keeps independent private state and GPU scratch;
  // sensor frame buffers live in RAM.
  const double agents = run.mode == AgentMode::kSingle ? 1.0 : 2.0;
  u.vram_kb = static_cast<double>(run.agent_state_bytes) / 1024.0;
  u.ram_kb = (static_cast<double>(run.sensor_frame_bytes) * agents +
              static_cast<double>(run.agent_state_bytes)) /
             1024.0;
  return u;
}

}  // namespace dav
