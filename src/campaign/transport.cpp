#include "campaign/transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DAV_TRANSPORT_POSIX 1
#include <csignal>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "campaign/driver.h"
#include "campaign/serialize.h"
#include "util/bits.h"

namespace dav {

namespace {

// ---- message codec --------------------------------------------------------

std::string with_type(TransportMsgType type, const std::string& body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(body);
  return w.take();
}

}  // namespace

std::string msg_hello(std::uint64_t fingerprint) {
  ByteWriter w;
  w.u32(kTransportProtocolVersion);
  w.u64(fingerprint);
  return with_type(TransportMsgType::kHello, w.bytes());
}

std::string msg_hello_ack(std::uint32_t slots) {
  ByteWriter w;
  w.u32(kTransportProtocolVersion);
  w.u32(slots);
  return with_type(TransportMsgType::kHelloAck, w.bytes());
}

std::string msg_hello_reject(const std::string& reason) {
  ByteWriter w;
  w.str(reason);
  return with_type(TransportMsgType::kHelloReject, w.bytes());
}

std::string msg_run_request(std::uint64_t index,
                            const std::string& cfg_bytes) {
  ByteWriter w;
  w.u64(index);
  w.raw(cfg_bytes);
  return with_type(TransportMsgType::kRunRequest, w.bytes());
}

std::string msg_run_result(std::uint64_t index,
                           const std::string& result_payload) {
  ByteWriter w;
  w.u64(index);
  w.raw(result_payload);
  return with_type(TransportMsgType::kRunResult, w.bytes());
}

std::string msg_heartbeat() {
  return with_type(TransportMsgType::kHeartbeat, std::string());
}

TransportMsg parse_transport_msg(const std::string& payload) {
  ByteReader r(payload);
  TransportMsg msg;
  msg.type = static_cast<TransportMsgType>(r.u8());
  switch (msg.type) {
    case TransportMsgType::kHello:
      msg.proto_version = r.u32();
      msg.fingerprint = r.u64();
      break;
    case TransportMsgType::kHelloAck:
      msg.proto_version = r.u32();
      msg.slots = r.u32();
      break;
    case TransportMsgType::kHelloReject:
      msg.reason = r.str();
      break;
    case TransportMsgType::kRunRequest:
    case TransportMsgType::kRunResult:
      msg.index = r.u64();
      msg.body = payload.substr(payload.size() - r.remaining());
      return msg;  // body consumes the rest; skip the done() check below
    case TransportMsgType::kHeartbeat:
      break;
    default:
      throw std::runtime_error("transport: unknown message type " +
                               std::to_string(static_cast<int>(msg.type)));
  }
  if (!r.done()) {
    throw std::runtime_error("transport: trailing bytes after message");
  }
  return msg;
}

// ---- addressing -----------------------------------------------------------

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  ep.spec = spec;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      throw std::invalid_argument("endpoint '" + spec +
                                  "': empty unix socket path");
    }
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': expected host:port or unix:/path");
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("endpoint '" + spec + "': bad port '" +
                                port_text + "'");
  }
  long port = 0;
  try {
    port = std::stol(port_text);
  } catch (const std::exception&) {
    port = 0;
  }
  if (port < 1 || port > 65535) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': port must be in 1..65535");
  }
  ep.port = static_cast<int>(port);
  return ep;
}

std::vector<std::string> split_worker_list(const std::string& csv) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    std::string item = csv.substr(pos, comma - pos);
    const std::size_t first = item.find_first_not_of(" \t");
    if (first == std::string::npos) {
      item.clear();
    } else {
      item = item.substr(first, item.find_last_not_of(" \t") - first + 1);
    }
    if (item.empty()) {
      throw std::invalid_argument("worker list '" + csv +
                                  "' has an empty entry");
    }
    specs.push_back(std::move(item));
    pos = comma + 1;
    if (comma == csv.size()) break;
  }
  if (specs.empty()) {
    throw std::invalid_argument("worker list is empty");
  }
  return specs;
}

// ---- backoff --------------------------------------------------------------

double backoff_delay_sec(double base_sec, int attempt, std::uint64_t salt,
                         double cap_sec) {
  // `1 << attempt` is UB for attempt >= 31; a quarantine-bound run can cross
  // that with a generous max_retries. Clamp the exponent (the cap saturates
  // the delay long before 2^16 anyway).
  const int shift = std::min(std::max(attempt, 0), 16);
  const double raw = base_sec * static_cast<double>(1u << shift);
  const double capped = std::min(raw, cap_sec);
  // Deterministic jitter in [0.75, 1.25): hash (salt, attempt) and map the
  // top 53 bits onto the unit interval.
  ByteWriter w;
  w.u64(salt);
  w.u32(static_cast<std::uint32_t>(shift));
  w.u32(static_cast<std::uint32_t>(attempt));
  const std::uint64_t h = fnv1a64(w.bytes().data(), w.bytes().size());
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  return capped * (0.75 + 0.5 * unit);
}

// ---- sockets --------------------------------------------------------------

#if DAV_TRANSPORT_POSIX

namespace {

bool fill_unix_addr(const Endpoint& ep, sockaddr_un& addr,
                    std::string* err) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) {
      *err = "unix socket path too long: " + ep.path;
    }
    return false;
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

/// getaddrinfo for a TCP endpoint; returns nullptr + *err on failure.
addrinfo* resolve_tcp(const Endpoint& ep, bool passive, std::string* err) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    if (err != nullptr) {
      *err = "resolve " + ep.spec + ": " + ::gai_strerror(rc);
    }
    return nullptr;
  }
  return res;
}

void set_errno_err(const char* what, const Endpoint& ep, std::string* err) {
  if (err != nullptr) {
    *err = std::string(what) + " " + ep.spec + ": " + std::strerror(errno);
  }
}

}  // namespace

int listen_endpoint(const Endpoint& ep, std::string* err) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix_addr(ep, addr, err)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      set_errno_err("socket", ep, err);
      return -1;
    }
    // A stale socket file from a dead daemon would make bind fail forever.
    ::unlink(ep.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 16) != 0) {
      set_errno_err("bind/listen", ep, err);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo* res = resolve_tcp(ep, /*passive=*/true, err);
  if (res == nullptr) return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 16) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) set_errno_err("bind/listen", ep, err);
  ::freeaddrinfo(res);
  return fd;
}

int connect_endpoint(const Endpoint& ep, std::string* err) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix_addr(ep, addr, err)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      set_errno_err("socket", ep, err);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      set_errno_err("connect", ep, err);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo* res = resolve_tcp(ep, /*passive=*/false, err);
  if (res == nullptr) return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      break;
    }
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) set_errno_err("connect", ep, err);
  ::freeaddrinfo(res);
  return fd;
}

bool send_frame(int fd, const std::string& payload) {
  const std::string frame = frame_message(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// ---- worker daemon --------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

/// Set by SIGINT/SIGTERM; the accept and serve loops poll it. The handler
/// only stores a flag (async-signal-safe by construction).
volatile std::sig_atomic_t g_serve_stop = 0;

void serve_stop_handler(int) { g_serve_stop = 1; }

/// SIGPIPE -> EPIPE for the daemon's lifetime (coordinator sockets and pool
/// pipes both bite otherwise). Mirrors the executor's guard.
struct ServeSigpipeGuard {
  struct sigaction previous {};
  ServeSigpipeGuard() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous);
  }
  ~ServeSigpipeGuard() { ::sigaction(SIGPIPE, &previous, nullptr); }
};

/// Serve one coordinator session on `cfd`. Requests are fed to a fresh
/// PoolSupervisor (fork-isolated pool workers, watchdog, warm cache); each
/// completion streams back as a kRunResult frame. Returns when the
/// coordinator disconnects, breaks protocol, or the stop flag rises — the
/// supervisor teardown kills whatever was still in flight, and the
/// coordinator's dead-endpoint path requeues those runs elsewhere.
void serve_session(int cfd, const ExecutorOptions& eopts,
                   const CampaignExecutor::WarmRunFn& fn,
                   double heartbeat_sec) {
  PoolSupervisor sup(eopts, fn, Clock::now());
  // Configs in flight, by plan index: keeps each RunConfigRecord's LUT
  // storage alive for the pool worker round-trip, and lets a worker death be
  // reported as a kHarnessError payload for the exact config that died.
  std::map<std::uint64_t, RunConfigRecord> inflight;
  std::deque<std::pair<std::uint64_t, RunConfigRecord>> queue;
  std::string rbuf;
  Clock::time_point last_tx = Clock::now();
  const auto send = [&](const std::string& payload) {
    last_tx = Clock::now();
    return send_frame(cfd, payload);
  };

  for (;;) {
    if (g_serve_stop != 0) return;

    // Feed queued requests to idle pool slots.
    while (!queue.empty() && sup.can_dispatch()) {
      auto& [index, record] = queue.front();
      sup.dispatch(static_cast<std::size_t>(index), 0, record.cfg);
      inflight.emplace(index, std::move(record));
      queue.pop_front();
    }

    std::vector<PoolSupervisor::Completion> comps;
    bool socket_readable = false;
    sup.pump(/*max_wait_ms=*/200, comps, cfd, &socket_readable);

    for (const PoolSupervisor::Completion& c : comps) {
      const std::uint64_t index = static_cast<std::uint64_t>(c.index);
      const auto it = inflight.find(index);
      if (it == inflight.end()) continue;  // unreachable: dispatch recorded it
      std::string payload =
          c.ok ? c.result_payload
               : make_result_payload(false, c.what,
                                     harness_error_result(it->second.cfg));
      inflight.erase(it);
      if (!send(msg_run_result(index, payload))) return;
    }

    if (socket_readable) {
      char chunk[65536];
      const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
      if (n == 0) return;  // coordinator hung up
      if (n < 0) {
        if (errno != EINTR) return;
      } else {
        rbuf.append(chunk, static_cast<std::size_t>(n));
      }
      for (;;) {
        const FrameSplit fs = try_unframe(rbuf);
        if (fs.status == FrameSplit::Status::kNeedMore) break;
        if (fs.status == FrameSplit::Status::kCorrupt) return;
        rbuf.erase(0, fs.consumed);
        TransportMsg msg;
        try {
          msg = parse_transport_msg(fs.payload);
        } catch (const std::exception&) {
          return;
        }
        if (msg.type != TransportMsgType::kRunRequest) return;
        try {
          RunConfigRecord record = deserialize_run_config(msg.body);
          queue.emplace_back(msg.index, std::move(record));
        } catch (const std::exception& e) {
          // The frame was intact, so this is a codec mismatch, not line
          // noise: report it as a harness failure the coordinator can
          // quarantine instead of retrying forever.
          RunConfig empty;
          if (!send(msg_run_result(
                  msg.index,
                  make_result_payload(
                      false,
                      std::string("daemon: undecodable config: ") + e.what(),
                      harness_error_result(empty))))) {
            return;
          }
        }
      }
    }

    // Idle beacon so the coordinator can tell "slow run" from "dead daemon".
    if (heartbeat_sec > 0.0) {
      const double idle =
          std::chrono::duration<double>(Clock::now() - last_tx).count();
      if (idle >= heartbeat_sec && !send(msg_heartbeat())) return;
    }
  }
}

}  // namespace

int serve_campaign(const ServeOptions& sopts, const ExecutorOptions& eopts,
                   CampaignExecutor::WarmRunFn fn) {
  const Endpoint ep = parse_endpoint(sopts.listen_spec);
  std::string err;
  const int lfd = listen_endpoint(ep, &err);
  if (lfd < 0) {
    throw std::runtime_error("serve: " + err);
  }

  if (!fn) {
    fn = [](const RunConfig& c, WarmStateCache* w) {
      return run_experiment(c, w);
    };
  }
  // The daemon runs configs through the pool; campaign plumbing (journal,
  // remote workers) belongs to the coordinator side only.
  ExecutorOptions pool_opts = eopts;
  pool_opts.jobs = std::max(1, eopts.jobs);
  pool_opts.pool = true;
  pool_opts.workers.clear();
  pool_opts.journal_path.clear();

  ServeSigpipeGuard sigpipe_guard;
  g_serve_stop = 0;
  struct sigaction stop_action {};
  struct sigaction prev_int {};
  struct sigaction prev_term {};
  stop_action.sa_handler = serve_stop_handler;
  ::sigaction(SIGINT, &stop_action, &prev_int);
  ::sigaction(SIGTERM, &stop_action, &prev_term);

  std::fprintf(stderr, "davcamp serve: listening on %s (%d slot%s)\n",
               ep.spec.c_str(), pool_opts.jobs,
               pool_opts.jobs == 1 ? "" : "s");

  std::uint64_t pinned_fingerprint = sopts.expected_fingerprint;
  int sessions = 0;
  while (g_serve_stop == 0 &&
         (sopts.max_sessions <= 0 || sessions < sopts.max_sessions)) {
    pollfd pfd{lfd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || pfd.revents == 0) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) continue;

    // Handshake: expect exactly one kHello within 5 s, pin/enforce the
    // campaign fingerprint, then serve run requests.
    std::string buf;
    bool accepted = false;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::seconds(5);
    while (Clock::now() < deadline && g_serve_stop == 0) {
      pollfd cpfd{cfd, POLLIN, 0};
      if (::poll(&cpfd, 1, 100) <= 0 || cpfd.revents == 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      const FrameSplit fs = try_unframe(buf);
      if (fs.status == FrameSplit::Status::kNeedMore) continue;
      if (fs.status == FrameSplit::Status::kCorrupt) break;
      TransportMsg hello;
      try {
        hello = parse_transport_msg(fs.payload);
      } catch (const std::exception&) {
        break;
      }
      if (hello.type != TransportMsgType::kHello) break;
      if (hello.proto_version != kTransportProtocolVersion) {
        send_frame(cfd, msg_hello_reject(
                            "protocol version " +
                            std::to_string(hello.proto_version) +
                            ", daemon speaks " +
                            std::to_string(kTransportProtocolVersion)));
        break;
      }
      if (pinned_fingerprint != 0 &&
          hello.fingerprint != pinned_fingerprint) {
        send_frame(cfd,
                   msg_hello_reject("campaign fingerprint mismatch: this "
                                    "daemon is serving a different campaign"));
        break;
      }
      if (pinned_fingerprint == 0) pinned_fingerprint = hello.fingerprint;
      accepted = send_frame(
          cfd, msg_hello_ack(static_cast<std::uint32_t>(pool_opts.jobs)));
      break;
    }

    if (accepted) {
      ++sessions;
      std::fprintf(stderr, "davcamp serve: session %d started\n", sessions);
      try {
        serve_session(cfd, pool_opts, fn, sopts.heartbeat_sec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "davcamp serve: session %d failed: %s\n",
                     sessions, e.what());
      }
      std::fprintf(stderr, "davcamp serve: session %d ended\n", sessions);
    }
    ::close(cfd);
  }

  ::sigaction(SIGINT, &prev_int, nullptr);
  ::sigaction(SIGTERM, &prev_term, nullptr);
  ::close(lfd);
  if (ep.kind == Endpoint::Kind::kUnix) ::unlink(ep.path.c_str());
  std::fprintf(stderr, "davcamp serve: stopped after %d session%s\n",
               sessions, sessions == 1 ? "" : "s");
  return 0;
}

#else  // !DAV_TRANSPORT_POSIX

int listen_endpoint(const Endpoint&, std::string* err) {
  if (err != nullptr) *err = "sockets unsupported on this platform";
  return -1;
}

int connect_endpoint(const Endpoint&, std::string* err) {
  if (err != nullptr) *err = "sockets unsupported on this platform";
  return -1;
}

bool send_frame(int, const std::string&) { return false; }

int serve_campaign(const ServeOptions&, const ExecutorOptions&,
                   CampaignExecutor::WarmRunFn) {
  throw std::runtime_error("serve: sockets unsupported on this platform");
}

#endif

}  // namespace dav
