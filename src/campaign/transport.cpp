#include "campaign/transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DAV_TRANSPORT_POSIX 1
#include <csignal>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "campaign/driver.h"
#include "campaign/serialize.h"
#include "util/bits.h"

namespace dav {

namespace {

// ---- message codec --------------------------------------------------------

std::string with_type(TransportMsgType type, const std::string& body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(body);
  return w.take();
}

}  // namespace

std::string msg_hello(std::uint64_t fingerprint, std::uint64_t clock_ns) {
  ByteWriter w;
  w.u32(kTransportProtocolVersion);
  w.u64(fingerprint);
  w.u64(clock_ns);
  return with_type(TransportMsgType::kHello, w.bytes());
}

std::string msg_hello_ack(std::uint32_t slots, std::uint64_t clock_ns) {
  ByteWriter w;
  w.u32(kTransportProtocolVersion);
  w.u32(slots);
  w.u64(clock_ns);
  return with_type(TransportMsgType::kHelloAck, w.bytes());
}

std::string msg_hello_reject(const std::string& reason) {
  ByteWriter w;
  w.str(reason);
  return with_type(TransportMsgType::kHelloReject, w.bytes());
}

std::string msg_run_request(std::uint64_t index,
                            const std::string& cfg_bytes) {
  ByteWriter w;
  w.u64(index);
  w.raw(cfg_bytes);
  return with_type(TransportMsgType::kRunRequest, w.bytes());
}

std::string msg_run_result(std::uint64_t index,
                           const std::string& result_payload) {
  ByteWriter w;
  w.u64(index);
  w.raw(result_payload);
  return with_type(TransportMsgType::kRunResult, w.bytes());
}

std::string msg_heartbeat() {
  return with_type(TransportMsgType::kHeartbeat, std::string());
}

TransportMsg parse_transport_msg(const std::string& payload) {
  ByteReader r(payload);
  TransportMsg msg;
  msg.type = static_cast<TransportMsgType>(r.u8());
  switch (msg.type) {
    case TransportMsgType::kHello:
      msg.proto_version = r.u32();
      msg.fingerprint = r.u64();
      msg.clock_ns = r.u64();
      break;
    case TransportMsgType::kHelloAck:
      msg.proto_version = r.u32();
      msg.slots = r.u32();
      msg.clock_ns = r.u64();
      break;
    case TransportMsgType::kHelloReject:
      msg.reason = r.str();
      break;
    case TransportMsgType::kRunRequest:
    case TransportMsgType::kRunResult:
      msg.index = r.u64();
      msg.body = payload.substr(payload.size() - r.remaining());
      return msg;  // body consumes the rest; skip the done() check below
    case TransportMsgType::kTelemetry:
      msg.body = payload.substr(payload.size() - r.remaining());
      return msg;  // sub-typed body consumes the rest
    case TransportMsgType::kHeartbeat:
      break;
    default:
      throw std::runtime_error("transport: unknown message type " +
                               std::to_string(static_cast<int>(msg.type)));
  }
  if (!r.done()) {
    throw std::runtime_error("transport: trailing bytes after message");
  }
  return msg;
}

// ---- telemetry codec ------------------------------------------------------

namespace {

// Histograms go on the wire sparsely: per stage, only the non-empty buckets
// (u8 bucket index, u64 count). A traced run touches a handful of buckets
// per stage, so this keeps a capture blob in the low hundreds of bytes.
void put_histograms(ByteWriter& w, const obs::StageHistogramSet& hist) {
  for (const obs::StageHistogram& h : hist.stages) {
    std::uint8_t nonzero = 0;
    for (std::uint64_t b : h.buckets) {
      if (b != 0) ++nonzero;
    }
    w.u8(nonzero);
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      w.u8(static_cast<std::uint8_t>(i));
      w.u64(h.buckets[i]);
    }
  }
}

void get_histograms(ByteReader& r, obs::StageHistogramSet& hist) {
  for (obs::StageHistogram& h : hist.stages) {
    const std::uint8_t nonzero = r.u8();
    for (std::uint8_t i = 0; i < nonzero; ++i) {
      const std::uint8_t bucket = r.u8();
      if (bucket >= h.buckets.size()) {
        throw std::runtime_error("telemetry: histogram bucket out of range");
      }
      h.buckets[bucket] = r.u64();
    }
  }
}

}  // namespace

std::uint8_t telemetry_subtype(const std::string& body) {
  if (body.empty()) {
    throw std::runtime_error("telemetry: empty body");
  }
  return static_cast<std::uint8_t>(body[0]);
}

std::string encode_run_capture(const RunTraceCapture& cap) {
  ByteWriter w;
  w.u64(cap.plan_index);
  w.u64(cap.capture.dropped);
  w.f64(cap.capture.dt);
  put_histograms(w, cap.capture.histograms);
  w.u32(static_cast<std::uint32_t>(cap.capture.instants.size()));
  for (const obs::TraceEvent& ev : cap.capture.instants) {
    w.u32(ev.tick);
    w.u32(ev.id);
    w.u8(static_cast<std::uint8_t>(ev.track));
    w.f64(ev.value);
  }
  return w.take();
}

RunTraceCapture decode_run_capture(const std::string& blob) {
  ByteReader r(blob);
  RunTraceCapture cap;
  cap.capture.valid = true;
  cap.plan_index = r.u64();
  cap.capture.dropped = r.u64();
  cap.capture.dt = r.f64();
  get_histograms(r, cap.capture.histograms);
  const std::uint32_t n = r.u32();
  cap.capture.instants.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    obs::TraceEvent ev;
    ev.tick = r.u32();
    ev.id = static_cast<std::uint16_t>(r.u32());
    ev.kind = obs::EventKind::kInstant;
    ev.track = static_cast<std::int8_t>(r.u8());
    ev.value = r.f64();
    cap.capture.instants.push_back(ev);
  }
  if (!r.done()) {
    throw std::runtime_error("telemetry: trailing bytes after run capture");
  }
  return cap;
}

std::string msg_telemetry_capture(const std::string& capture_blob) {
  ByteWriter w;
  w.u8(kTelemetryRunCapture);
  w.raw(capture_blob);
  return with_type(TransportMsgType::kTelemetry, w.bytes());
}

std::string msg_telemetry_aggregate(const TelemetryAggregate& agg) {
  ByteWriter w;
  w.u8(kTelemetryAggregate);
  w.u64(agg.base_ns);
  w.u64(agg.launched);
  w.u64(agg.respawns);
  w.u64(agg.timeouts);
  w.u64(agg.signal_deaths);
  w.u64(agg.checkpoint_hits);
  w.u64(agg.checkpoint_misses);
  w.u64(agg.checkpoint_evictions);
  w.u64(agg.trace_dropped);
  put_histograms(w, agg.histograms);
  w.u32(static_cast<std::uint32_t>(agg.spans.size()));
  for (const WorkerSpan& s : agg.spans) {
    w.u64(static_cast<std::uint64_t>(s.index));
    w.u32(static_cast<std::uint32_t>(s.slot));
    w.u32(static_cast<std::uint32_t>(s.attempt));
    w.f64(s.start_sec);
    w.f64(s.dur_sec);
  }
  return with_type(TransportMsgType::kTelemetry, w.bytes());
}

TelemetryAggregate decode_telemetry_aggregate(const std::string& body) {
  ByteReader r(body);
  if (r.u8() != kTelemetryAggregate) {
    throw std::runtime_error("telemetry: not an aggregate body");
  }
  TelemetryAggregate agg;
  agg.base_ns = r.u64();
  agg.launched = r.u64();
  agg.respawns = r.u64();
  agg.timeouts = r.u64();
  agg.signal_deaths = r.u64();
  agg.checkpoint_hits = r.u64();
  agg.checkpoint_misses = r.u64();
  agg.checkpoint_evictions = r.u64();
  agg.trace_dropped = r.u64();
  get_histograms(r, agg.histograms);
  const std::uint32_t n = r.u32();
  agg.spans.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WorkerSpan s;
    s.index = static_cast<std::size_t>(r.u64());
    s.slot = static_cast<int>(r.u32());
    s.attempt = static_cast<int>(r.u32());
    s.start_sec = r.f64();
    s.dur_sec = r.f64();
    agg.spans.push_back(s);
  }
  if (!r.done()) {
    throw std::runtime_error("telemetry: trailing bytes after aggregate");
  }
  return agg;
}

RunTraceCapture decode_telemetry_capture(const std::string& body) {
  if (telemetry_subtype(body) != kTelemetryRunCapture) {
    throw std::runtime_error("telemetry: not a run-capture body");
  }
  return decode_run_capture(body.substr(1));
}

// ---- addressing -----------------------------------------------------------

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  ep.spec = spec;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      throw std::invalid_argument("endpoint '" + spec +
                                  "': empty unix socket path");
    }
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': expected host:port or unix:/path");
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("endpoint '" + spec + "': bad port '" +
                                port_text + "'");
  }
  long port = 0;
  try {
    port = std::stol(port_text);
  } catch (const std::exception&) {
    port = 0;
  }
  if (port < 1 || port > 65535) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': port must be in 1..65535");
  }
  ep.port = static_cast<int>(port);
  return ep;
}

std::vector<std::string> split_worker_list(const std::string& csv) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    std::string item = csv.substr(pos, comma - pos);
    const std::size_t first = item.find_first_not_of(" \t");
    if (first == std::string::npos) {
      item.clear();
    } else {
      item = item.substr(first, item.find_last_not_of(" \t") - first + 1);
    }
    if (item.empty()) {
      throw std::invalid_argument("worker list '" + csv +
                                  "' has an empty entry");
    }
    specs.push_back(std::move(item));
    pos = comma + 1;
    if (comma == csv.size()) break;
  }
  if (specs.empty()) {
    throw std::invalid_argument("worker list is empty");
  }
  return specs;
}

// ---- backoff --------------------------------------------------------------

double backoff_delay_sec(double base_sec, int attempt, std::uint64_t salt,
                         double cap_sec) {
  // `1 << attempt` is UB for attempt >= 31; a quarantine-bound run can cross
  // that with a generous max_retries. Clamp the exponent (the cap saturates
  // the delay long before 2^16 anyway).
  const int shift = std::min(std::max(attempt, 0), 16);
  const double raw = base_sec * static_cast<double>(1u << shift);
  const double capped = std::min(raw, cap_sec);
  // Deterministic jitter in [0.75, 1.25): hash (salt, attempt) and map the
  // top 53 bits onto the unit interval.
  ByteWriter w;
  w.u64(salt);
  w.u32(static_cast<std::uint32_t>(shift));
  w.u32(static_cast<std::uint32_t>(attempt));
  const std::uint64_t h = fnv1a64(w.bytes().data(), w.bytes().size());
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  return capped * (0.75 + 0.5 * unit);
}

// ---- sockets --------------------------------------------------------------

#if DAV_TRANSPORT_POSIX

namespace {

bool fill_unix_addr(const Endpoint& ep, sockaddr_un& addr,
                    std::string* err) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) {
      *err = "unix socket path too long: " + ep.path;
    }
    return false;
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

/// getaddrinfo for a TCP endpoint; returns nullptr + *err on failure.
addrinfo* resolve_tcp(const Endpoint& ep, bool passive, std::string* err) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    if (err != nullptr) {
      *err = "resolve " + ep.spec + ": " + ::gai_strerror(rc);
    }
    return nullptr;
  }
  return res;
}

void set_errno_err(const char* what, const Endpoint& ep, std::string* err) {
  if (err != nullptr) {
    *err = std::string(what) + " " + ep.spec + ": " + std::strerror(errno);
  }
}

}  // namespace

int listen_endpoint(const Endpoint& ep, std::string* err) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix_addr(ep, addr, err)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      set_errno_err("socket", ep, err);
      return -1;
    }
    // A stale socket file from a dead daemon would make bind fail forever.
    ::unlink(ep.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 16) != 0) {
      set_errno_err("bind/listen", ep, err);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo* res = resolve_tcp(ep, /*passive=*/true, err);
  if (res == nullptr) return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 16) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) set_errno_err("bind/listen", ep, err);
  ::freeaddrinfo(res);
  return fd;
}

int connect_endpoint(const Endpoint& ep, std::string* err) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix_addr(ep, addr, err)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      set_errno_err("socket", ep, err);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      set_errno_err("connect", ep, err);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo* res = resolve_tcp(ep, /*passive=*/false, err);
  if (res == nullptr) return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      break;
    }
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) set_errno_err("connect", ep, err);
  ::freeaddrinfo(res);
  return fd;
}

bool send_frame(int fd, const std::string& payload) {
  const std::string frame = frame_message(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// ---- worker daemon --------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

/// Set by SIGINT/SIGTERM; the accept and serve loops poll it. The handler
/// only stores a flag (async-signal-safe by construction).
volatile std::sig_atomic_t g_serve_stop = 0;

void serve_stop_handler(int) { g_serve_stop = 1; }

/// SIGPIPE -> EPIPE for the daemon's lifetime (coordinator sockets and pool
/// pipes both bite otherwise). Mirrors the executor's guard.
struct ServeSigpipeGuard {
  struct sigaction previous {};
  ServeSigpipeGuard() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous);
  }
  ~ServeSigpipeGuard() { ::sigaction(SIGPIPE, &previous, nullptr); }
};

/// Serve one coordinator session on `cfd`. Requests are fed to a fresh
/// PoolSupervisor (fork-isolated pool workers, watchdog, per-worker
/// CheckpointStore); each completion streams back as a kRunResult frame.
/// Returns when the coordinator disconnects, breaks protocol, or the stop
/// flag rises — the supervisor teardown kills whatever was still in flight,
/// and the coordinator's dead-endpoint path requeues those runs elsewhere.
void serve_session(int cfd, const ExecutorOptions& eopts,
                   const CampaignExecutor::CheckpointRunFn& fn,
                   double heartbeat_sec) {
  const Clock::time_point session_epoch = Clock::now();
  PoolSupervisor sup(eopts, fn, session_epoch);
  // Configs in flight, by plan index: keeps each RunConfigRecord's LUT
  // storage alive for the pool worker round-trip, and lets a worker death be
  // reported as a kHarnessError payload for the exact config that died.
  std::map<std::uint64_t, RunConfigRecord> inflight;
  std::deque<std::pair<std::uint64_t, RunConfigRecord>> queue;
  std::string rbuf;
  Clock::time_point last_tx = Clock::now();
  const auto send = [&](const std::string& payload) {
    last_tx = Clock::now();
    return send_frame(cfd, payload);
  };

  // Telemetry accumulators. Histograms and the drop count are cumulative for
  // the session; spans buffer up and flush incrementally with each aggregate.
  const std::uint64_t session_base_ns =
      static_cast<std::uint64_t>(std::chrono::duration_cast<
                                     std::chrono::nanoseconds>(
                                     session_epoch.time_since_epoch())
                                     .count());
  obs::StageHistogramSet cum_hist;
  std::uint64_t cum_dropped = 0;
  std::vector<WorkerSpan> pending_spans;
  std::uint64_t flushed_counter_sig = 0;
  const auto make_aggregate = [&]() {
    const PoolSupervisor::Telemetry& t = sup.telemetry();
    TelemetryAggregate agg;
    agg.base_ns = session_base_ns;
    agg.launched = static_cast<std::uint64_t>(t.launched);
    agg.respawns = static_cast<std::uint64_t>(t.respawns);
    agg.timeouts = static_cast<std::uint64_t>(t.timeouts);
    agg.signal_deaths = static_cast<std::uint64_t>(t.signal_deaths);
    agg.checkpoint_hits = t.checkpoint_hits;
    agg.checkpoint_misses = t.checkpoint_misses;
    agg.checkpoint_evictions = t.checkpoint_evictions;
    agg.trace_dropped = cum_dropped;
    agg.histograms = cum_hist;
    agg.spans = std::move(pending_spans);
    pending_spans.clear();
    flushed_counter_sig = agg.launched + agg.respawns + agg.timeouts +
                          agg.signal_deaths + agg.checkpoint_hits +
                          agg.checkpoint_misses + agg.checkpoint_evictions;
    return msg_telemetry_aggregate(agg);
  };

  for (;;) {
    if (g_serve_stop != 0) return;

    // Feed queued requests to idle pool slots.
    while (!queue.empty() && sup.can_dispatch()) {
      auto& [index, record] = queue.front();
      sup.dispatch(static_cast<std::size_t>(index), 0, record.cfg);
      inflight.emplace(index, std::move(record));
      queue.pop_front();
    }

    std::vector<PoolSupervisor::Completion> comps;
    bool socket_readable = false;
    sup.pump(/*max_wait_ms=*/200, comps, cfd, &socket_readable);

    // Telemetry goes out BEFORE the results it describes: captures, then an
    // aggregate carrying these completions' slot spans, then the results.
    // The stream is ordered, so by the time the coordinator sees the final
    // kRunResult of the campaign it already holds every capture and span —
    // nothing is lost when it disconnects immediately after.
    std::vector<std::pair<std::uint64_t, std::string>> out_results;
    for (const PoolSupervisor::Completion& c : comps) {
      const std::uint64_t index = static_cast<std::uint64_t>(c.index);
      const auto it = inflight.find(index);
      if (it == inflight.end()) continue;  // unreachable: dispatch recorded it
      std::string payload =
          c.ok ? c.result_payload
               : make_result_payload(false, c.what,
                                     harness_error_result(it->second.cfg));
      inflight.erase(it);
      if (!c.capture_payload.empty()) {
        try {
          const RunTraceCapture cap = decode_run_capture(c.capture_payload);
          cum_dropped += cap.capture.dropped;
          cum_hist.merge(cap.capture.histograms);
        } catch (const std::exception&) {
          // A malformed capture is observability loss, not a protocol error.
        }
        if (!send(msg_telemetry_capture(c.capture_payload))) return;
      }
      WorkerSpan span;
      span.index = c.index;
      span.slot = c.slot;
      span.attempt = c.attempt;
      span.start_sec = c.start_sec;
      span.dur_sec = c.dur_sec;
      pending_spans.push_back(span);
      out_results.emplace_back(index, std::move(payload));
    }
    if (!pending_spans.empty() && !send(make_aggregate())) return;
    for (const auto& [index, payload] : out_results) {
      if (!send(msg_run_result(index, payload))) return;
    }

    if (socket_readable) {
      char chunk[65536];
      const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
      if (n == 0) return;  // coordinator hung up
      if (n < 0) {
        if (errno != EINTR) return;
      } else {
        rbuf.append(chunk, static_cast<std::size_t>(n));
      }
      for (;;) {
        const FrameSplit fs = try_unframe(rbuf);
        if (fs.status == FrameSplit::Status::kNeedMore) break;
        if (fs.status == FrameSplit::Status::kCorrupt) return;
        rbuf.erase(0, fs.consumed);
        TransportMsg msg;
        try {
          msg = parse_transport_msg(fs.payload);
        } catch (const std::exception&) {
          return;
        }
        if (msg.type != TransportMsgType::kRunRequest) return;
        try {
          RunConfigRecord record = deserialize_run_config(msg.body);
          queue.emplace_back(msg.index, std::move(record));
        } catch (const std::exception& e) {
          // The frame was intact, so this is a codec mismatch, not line
          // noise: report it as a harness failure the coordinator can
          // quarantine instead of retrying forever.
          RunConfig empty;
          if (!send(msg_run_result(
                  msg.index,
                  make_result_payload(
                      false,
                      std::string("daemon: undecodable config: ") + e.what(),
                      harness_error_result(empty))))) {
            return;
          }
        }
      }
    }

    // Idle beacon so the coordinator can tell "slow run" from "dead daemon".
    // Telemetry piggybacks on this cadence: counter movement with no
    // completion to carry it (respawns, checkpoint-store churn) flushes here.
    if (heartbeat_sec > 0.0) {
      const double idle =
          std::chrono::duration<double>(Clock::now() - last_tx).count();
      if (idle >= heartbeat_sec) {
        const PoolSupervisor::Telemetry& t = sup.telemetry();
        const std::uint64_t sig =
            static_cast<std::uint64_t>(t.launched) +
            static_cast<std::uint64_t>(t.respawns) +
            static_cast<std::uint64_t>(t.timeouts) +
            static_cast<std::uint64_t>(t.signal_deaths) + t.checkpoint_hits +
            t.checkpoint_misses + t.checkpoint_evictions;
        if (sig != flushed_counter_sig && !send(make_aggregate())) return;
        if (!send(msg_heartbeat())) return;
      }
    }
  }
}

}  // namespace

int serve_campaign(const ServeOptions& sopts, const ExecutorOptions& eopts,
                   CampaignExecutor::CheckpointRunFn fn) {
  const Endpoint ep = parse_endpoint(sopts.listen_spec);
  std::string err;
  const int lfd = listen_endpoint(ep, &err);
  if (lfd < 0) {
    throw std::runtime_error("serve: " + err);
  }

  if (!fn) {
    fn = [](const RunConfig& c, CheckpointStore* s) {
      return run_experiment(c, s);
    };
  }
  // The daemon runs configs through the pool; campaign plumbing (journal,
  // remote workers) belongs to the coordinator side only.
  ExecutorOptions pool_opts = eopts;
  pool_opts.jobs = std::max(1, eopts.jobs);
  pool_opts.pool = true;
  pool_opts.workers.clear();
  pool_opts.journal_path.clear();

  ServeSigpipeGuard sigpipe_guard;
  g_serve_stop = 0;
  struct sigaction stop_action {};
  struct sigaction prev_int {};
  struct sigaction prev_term {};
  stop_action.sa_handler = serve_stop_handler;
  ::sigaction(SIGINT, &stop_action, &prev_int);
  ::sigaction(SIGTERM, &stop_action, &prev_term);

  std::fprintf(stderr, "davcamp serve: listening on %s (%d slot%s)\n",
               ep.spec.c_str(), pool_opts.jobs,
               pool_opts.jobs == 1 ? "" : "s");

  std::uint64_t pinned_fingerprint = sopts.expected_fingerprint;
  int sessions = 0;
  while (g_serve_stop == 0 &&
         (sopts.max_sessions <= 0 || sessions < sopts.max_sessions)) {
    pollfd pfd{lfd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || pfd.revents == 0) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) continue;

    // Handshake: expect exactly one kHello within 5 s, pin/enforce the
    // campaign fingerprint, then serve run requests.
    std::string buf;
    bool accepted = false;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::seconds(5);
    while (Clock::now() < deadline && g_serve_stop == 0) {
      pollfd cpfd{cfd, POLLIN, 0};
      if (::poll(&cpfd, 1, 100) <= 0 || cpfd.revents == 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      const FrameSplit fs = try_unframe(buf);
      if (fs.status == FrameSplit::Status::kNeedMore) continue;
      if (fs.status == FrameSplit::Status::kCorrupt) break;
      TransportMsg hello;
      try {
        hello = parse_transport_msg(fs.payload);
      } catch (const std::exception&) {
        break;
      }
      if (hello.type != TransportMsgType::kHello) break;
      if (hello.proto_version != kTransportProtocolVersion) {
        send_frame(cfd, msg_hello_reject(
                            "protocol version " +
                            std::to_string(hello.proto_version) +
                            ", daemon speaks " +
                            std::to_string(kTransportProtocolVersion)));
        break;
      }
      if (pinned_fingerprint != 0 &&
          hello.fingerprint != pinned_fingerprint) {
        send_frame(cfd,
                   msg_hello_reject("campaign fingerprint mismatch: this "
                                    "daemon is serving a different campaign"));
        break;
      }
      if (pinned_fingerprint == 0) pinned_fingerprint = hello.fingerprint;
      // The ack carries this daemon's steady clock so the coordinator can
      // align our telemetry onto its own timeline (see header comment).
      const std::uint64_t now_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Clock::now().time_since_epoch())
              .count());
      accepted = send_frame(
          cfd,
          msg_hello_ack(static_cast<std::uint32_t>(pool_opts.jobs), now_ns));
      break;
    }

    if (accepted) {
      ++sessions;
      std::fprintf(stderr, "davcamp serve: session %d started\n", sessions);
      try {
        serve_session(cfd, pool_opts, fn, sopts.heartbeat_sec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "davcamp serve: session %d failed: %s\n",
                     sessions, e.what());
      }
      std::fprintf(stderr, "davcamp serve: session %d ended\n", sessions);
    }
    ::close(cfd);
  }

  ::sigaction(SIGINT, &prev_int, nullptr);
  ::sigaction(SIGTERM, &prev_term, nullptr);
  ::close(lfd);
  if (ep.kind == Endpoint::Kind::kUnix) ::unlink(ep.path.c_str());
  std::fprintf(stderr, "davcamp serve: stopped after %d session%s\n",
               sessions, sessions == 1 ? "" : "s");
  return 0;
}

#else  // !DAV_TRANSPORT_POSIX

int listen_endpoint(const Endpoint&, std::string* err) {
  if (err != nullptr) *err = "sockets unsupported on this platform";
  return -1;
}

int connect_endpoint(const Endpoint&, std::string* err) {
  if (err != nullptr) *err = "sockets unsupported on this platform";
  return -1;
}

bool send_frame(int, const std::string&) { return false; }

int serve_campaign(const ServeOptions&, const ExecutorOptions&,
                   CampaignExecutor::CheckpointRunFn) {
  throw std::runtime_error("serve: sockets unsupported on this platform");
}

#endif

}  // namespace dav
