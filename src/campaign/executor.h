// Process-isolated, journaled, resumable campaign execution.
//
// Injected faults produce crashes and hangs by design, and at campaign scale
// the harness itself must survive them (AVFI and the Bayesian-FI follow-up
// treat this as first-class infrastructure). The in-process supervisor
// (CampaignManager::run_supervised) only quarantines C++ exceptions; this
// executor extends that guarantee to OS-level failures. Each run executes in
// a forked, sandboxed worker process with a wall-clock watchdog and optional
// CPU / address-space rlimits; the worker ships its RunResult back over a
// pipe as a versioned, checksummed record. A worker death by signal, rlimit,
// or watchdog timeout is captured via waitpid status and quarantined as a
// kHarnessError outcome with the offending seed and FaultPlan — the sweep
// always completes.
//
// Two isolation strategies share those guarantees. The default persistent
// prefork POOL forks `jobs` long-lived workers once per batch and streams
// RunConfigs to them as checksummed request frames (serialize.h); a worker
// is recycled only when it dies, and each worker keeps a WarmStateCache so
// sweep runs sharing a scenario/mode skip redundant setup replay. The legacy
// FORK-PER-RUN path (pool = false) forks a fresh process per attempt.
//
// Completed runs are persisted in a write-ahead journal (journal.h), so
// re-launching the same campaign skips finished work and an interrupted
// sweep resumes losslessly. DAV_JOBS workers run in parallel; quarantined
// runs get a bounded retry with exponential backoff; and results are merged
// deterministically by plan index, so the pooled/resumed/parallel summary is
// bit-identical to the uninterrupted serial one.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/driver.h"
#include "campaign/journal.h"

namespace dav {

struct ExecutorOptions {
  /// Parallel worker processes. <= 0 means "not explicitly enabled"; the
  /// executor itself treats it as 1.
  int jobs = 1;
  /// Persistent prefork worker pool: fork `jobs` long-lived workers once per
  /// batch and stream RunConfigs to them, instead of forking one process per
  /// run. Same isolation guarantees (a dead/hung worker is quarantined and
  /// replaced); an order of magnitude less fork/exec overhead per run.
  /// false selects the legacy fork-per-run path.
  bool pool = true;
  /// Per-worker warm-state cache (WarmStateCache, campaign/driver.h): reuse
  /// scenario + initial-agent setup across runs that share the warm key.
  /// Pool mode only (a fork-per-run worker dies before it could reuse
  /// anything). Never changes results — see driver.h.
  bool warm_cache = true;
  /// Wall-clock watchdog per run attempt; a worker still alive past this is
  /// SIGKILLed and quarantined.
  double run_timeout_sec = 600.0;
  /// RLIMIT_CPU for each worker, seconds. 0 disables the limit.
  double cpu_limit_sec = 0.0;
  /// RLIMIT_AS for each worker, MiB. 0 disables the limit. (Leave 0 under
  /// AddressSanitizer: ASan reserves terabytes of virtual address space.)
  std::size_t address_space_mb = 0;
  /// Re-execution attempts for a quarantined run before it is recorded as a
  /// final kHarnessError.
  int max_retries = 1;
  /// Base delay before a retry; doubles per attempt.
  double retry_backoff_sec = 0.25;
  /// Write-ahead journal path; empty disables journaling.
  std::string journal_path;
  /// Binds the journal to one campaign configuration (see journal.h).
  std::uint64_t campaign_fingerprint = 0;
  /// Run every attempt in this process instead of forking (non-POSIX hosts,
  /// or debugging): no watchdog or rlimits, but journaling still works.
  bool force_in_process = false;

  /// Deprecated spelling of EnvOptions::from_env().executor_options() — the
  /// typed façade (env_options.h) is the only env-reading entry point.
  static ExecutorOptions from_env();

  /// True when the environment asked for the executor (DAV_JOBS or
  /// DAV_JOURNAL set); CampaignManager::run_all falls back to the legacy
  /// in-process serial supervisor otherwise.
  bool enabled() const { return jobs > 0 || !journal_path.empty(); }

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// A run the executor had to give up on, with the offending config (seed and
/// fault plan included) and a diagnosis: the child's exception text, the
/// death signal, or the watchdog timeout.
struct RunQuarantine {
  std::size_t index = 0;  ///< position in the submitted config list
  RunConfig cfg;
  std::string what;
};

/// One completed worker attempt on the campaign timeline. Wall-clock,
/// relative to run_all entry — telemetry only, never part of the
/// deterministic summary.
struct WorkerSpan {
  std::size_t index = 0;  ///< position in the submitted config list
  int slot = 0;           ///< worker slot, 0..jobs-1 (Perfetto pid = slot+1)
  int attempt = 0;        ///< 0 = first execution, >0 = retry
  double start_sec = 0.0;
  double dur_sec = 0.0;
};

struct ExecutorStats {
  int launched = 0;       ///< worker processes forked
  int journal_hits = 0;   ///< runs skipped because the journal had them
  int retries = 0;        ///< re-executions of quarantined attempts
  int signal_deaths = 0;  ///< workers that died to a signal (not the watchdog)
  int timeouts = 0;       ///< workers killed by the wall-clock watchdog
  int quarantined = 0;    ///< runs recorded as final kHarnessError
  std::uint64_t torn_bytes_discarded = 0;  ///< from the journal's torn tail

  // Pool-mode lifecycle (zero in fork-per-run mode).
  int pool_workers = 0;   ///< persistent workers forked at batch start
  int respawns = 0;       ///< replacement workers forked after a death
  std::uint64_t warm_hits = 0;    ///< warm-state cache hits, all workers
  std::uint64_t warm_misses = 0;  ///< warm-state cache misses, all workers

  // Telemetry (wall-clock; surfaced on stderr by davcamp, exported as the
  // campaign trace — deliberately absent from the deterministic summary).
  int jobs = 1;                      ///< worker slots used for this batch
  double wall_sec = 0.0;             ///< run_all wall time
  int journal_appends = 0;           ///< records written to the journal
  std::uint64_t journal_bytes = 0;   ///< payload bytes appended
  std::vector<double> slot_busy_sec; ///< busy seconds per worker slot
  std::vector<int> slot_runs_served; ///< pool runs completed per worker slot
  std::vector<WorkerSpan> spans;     ///< completed attempts, timeline order
};

/// The kHarnessError placeholder for a run that could not produce a result:
/// carries the identity (scenario, mode, fault plan, seed, dt) so summaries
/// and quarantine reports still name the offending run.
RunResult harness_error_result(const RunConfig& cfg);

class CampaignExecutor {
 public:
  /// The work function, executed inside the worker process. Defaults to
  /// run_experiment; tests substitute functions that crash, hang, or abort
  /// to exercise the sandbox.
  using RunFn = std::function<RunResult(const RunConfig&)>;
  /// Cache-aware work function for pool workers: the second argument is the
  /// worker's WarmStateCache (nullptr when caching is off or the path cannot
  /// reuse state). MUST return the same result with and without the cache.
  using WarmRunFn = std::function<RunResult(const RunConfig&, WarmStateCache*)>;

  /// Throws std::invalid_argument when `opts` is nonsensical.
  explicit CampaignExecutor(ExecutorOptions opts, RunFn fn = {});
  CampaignExecutor(ExecutorOptions opts, WarmRunFn fn);

  /// Execute every config, in parallel, with journal resume. Returns one
  /// result per config in submission order (quarantined runs included as
  /// kHarnessError placeholders, never dropped). Deterministic: the result
  /// vector is bit-identical to a serial in-process sweep of the same
  /// configs.
  std::vector<RunResult> run_all(const std::vector<RunConfig>& cfgs);

  /// Final quarantines of the last run_all, sorted by config index.
  const std::vector<RunQuarantine>& quarantined() const {
    return quarantined_;
  }
  const ExecutorStats& stats() const { return stats_; }

 private:
  /// journal_.append plus telemetry accounting (appends + bytes).
  void journal_append(std::uint64_t key, const std::string& payload);
  void run_in_process(const std::vector<RunConfig>& cfgs,
                      const std::vector<std::uint64_t>& keys,
                      std::vector<RunResult>& results,
                      const std::vector<char>& done);
  void run_forked(const std::vector<RunConfig>& cfgs,
                  const std::vector<std::uint64_t>& keys,
                  std::vector<RunResult>& results,
                  const std::vector<char>& done);
  /// Persistent prefork pool: workers forked once per batch, requests
  /// streamed over pipes, dead workers respawned.
  void run_pool(const std::vector<RunConfig>& cfgs,
                const std::vector<std::uint64_t>& keys,
                std::vector<RunResult>& results,
                const std::vector<char>& done);

  ExecutorOptions opts_;
  WarmRunFn fn_;
  JournalWriter journal_;
  std::vector<RunQuarantine> quarantined_;
  ExecutorStats stats_;
  /// run_all entry instant: the zero of the WorkerSpan timeline.
  std::chrono::steady_clock::time_point batch_start_{};
};

}  // namespace dav
