// Process-isolated, journaled, resumable campaign execution.
//
// Injected faults produce crashes and hangs by design, and at campaign scale
// the harness itself must survive them (AVFI and the Bayesian-FI follow-up
// treat this as first-class infrastructure). The in-process supervisor
// (CampaignManager::run_supervised) only quarantines C++ exceptions; this
// executor extends that guarantee to OS-level failures. Each run executes in
// a forked, sandboxed worker process with a wall-clock watchdog and optional
// CPU / address-space rlimits; the worker ships its RunResult back over a
// pipe as a versioned, checksummed record. A worker death by signal, rlimit,
// or watchdog timeout is captured via waitpid status and quarantined as a
// kHarnessError outcome with the offending seed and FaultPlan — the sweep
// always completes.
//
// Two isolation strategies share those guarantees. The default persistent
// prefork POOL forks `jobs` long-lived workers once per batch and streams
// RunConfigs to them as checksummed request frames (serialize.h); a worker
// is recycled only when it dies, and each worker keeps a CheckpointStore
// (campaign/checkpoint.h) so sweep runs sharing a scenario/mode skip
// redundant setup replay — and, with checkpointing on, fault variants that
// share a fault-free prefix restore a fork-point RunCheckpoint instead of
// replaying the prefix. The legacy FORK-PER-RUN path (pool = false) forks a
// fresh process per attempt.
//
// Completed runs are persisted in a write-ahead journal (journal.h), so
// re-launching the same campaign skips finished work and an interrupted
// sweep resumes losslessly. DAV_JOBS workers run in parallel; quarantined
// runs get a bounded retry with exponential backoff; and results are merged
// deterministically by plan index, so the pooled/resumed/parallel summary is
// bit-identical to the uninterrupted serial one.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "campaign/driver.h"
#include "campaign/journal.h"
#include "util/trace.h"

namespace dav {

struct ExecutorOptions {
  /// Parallel worker processes. <= 0 means "not explicitly enabled"; the
  /// executor itself treats it as 1.
  int jobs = 1;
  /// Persistent prefork worker pool: fork `jobs` long-lived workers once per
  /// batch and stream RunConfigs to them, instead of forking one process per
  /// run. Same isolation guarantees (a dead/hung worker is quarantined and
  /// replaced); an order of magnitude less fork/exec overhead per run.
  /// false selects the legacy fork-per-run path.
  bool pool = true;
  /// Per-worker CheckpointStore setup tier (campaign/checkpoint.h): reuse
  /// scenario + initial-agent setup across runs that share the setup key.
  /// Pool mode only (a fork-per-run worker dies before it could reuse
  /// anything). Never changes results — see checkpoint.h.
  bool warm_cache = true;
  /// Fork-point checkpoint sharing (DAV_CHECKPOINT / davcamp --checkpoint):
  /// force cfg.checkpoint.enabled for every dispatched run, so pool workers
  /// capture a RunCheckpoint at each run's injection onset and variants that
  /// share the fault-free prefix restore it instead of replaying the prefix.
  /// Also turns on prefix-affinity scheduling (variants of one prefix go to
  /// the same worker). Never changes results — byte-identity is test-pinned.
  bool checkpoint = false;
  /// Per-worker deep-checkpoint byte budget, MiB (DAV_CHECKPOINT_MAX_MB).
  /// Oldest entries are evicted past the budget. 0 disables the deep tier.
  std::size_t checkpoint_max_mb = 64;
  /// Wall-clock watchdog per run attempt; a worker still alive past this is
  /// SIGKILLed and quarantined.
  double run_timeout_sec = 600.0;
  /// RLIMIT_CPU for each worker, seconds. 0 disables the limit.
  double cpu_limit_sec = 0.0;
  /// RLIMIT_AS for each worker, MiB. 0 disables the limit. (Leave 0 under
  /// AddressSanitizer: ASan reserves terabytes of virtual address space.)
  std::size_t address_space_mb = 0;
  /// Re-execution attempts for a quarantined run before it is recorded as a
  /// final kHarnessError.
  int max_retries = 1;
  /// Base delay before a retry; doubles per attempt.
  double retry_backoff_sec = 0.25;
  /// Write-ahead journal path; empty disables journaling.
  std::string journal_path;
  /// Binds the journal to one campaign configuration (see journal.h).
  std::uint64_t campaign_fingerprint = 0;
  /// Run every attempt in this process instead of forking (non-POSIX hosts,
  /// or debugging): no watchdog or rlimits, but journaling still works.
  bool force_in_process = false;
  /// Remote worker endpoints ("host:port" or "unix:/path", see transport.h).
  /// Non-empty selects the distributed coordinator: the plan is sharded
  /// across the endpoints with work-stealing, per-shard journals, straggler
  /// re-dispatch and reconnect. Empty keeps execution on this host.
  std::vector<std::string> workers;
  /// Distributed liveness: a daemon beacons when idle for this long, and the
  /// coordinator declares an endpoint dead after ~3x of silence. Seconds.
  double heartbeat_sec = 5.0;
  /// Straggler deadline: a remote run still in flight after this long is
  /// re-dispatched to another endpoint; the first completed result wins and
  /// duplicates are discarded by plan index. 0 disables re-dispatch.
  double straggler_sec = 0.0;
  /// Live metrics snapshot path (DAV_METRICS / davcamp --metrics): the
  /// executor periodically rewrites this file with a key=value progress
  /// snapshot (runs done/total, runs/sec, ETA, quarantines, endpoint health)
  /// via temp-file + atomic rename, so a reader never sees a torn snapshot.
  /// Empty disables. Observability only — never read back, never part of the
  /// deterministic summary.
  std::string metrics_path;
  /// Minimum seconds between metrics snapshots (DAV_METRICS_INTERVAL_SEC).
  double metrics_interval_sec = 2.0;

  /// Deprecated spelling of EnvOptions::from_env().executor_options() — the
  /// typed façade (env_options.h) is the only env-reading entry point.
  static ExecutorOptions from_env();

  /// True when the environment asked for the executor (DAV_JOBS, DAV_JOURNAL
  /// or DAV_WORKERS set); CampaignManager::run_all falls back to the legacy
  /// in-process serial supervisor otherwise.
  bool enabled() const {
    return jobs > 0 || !journal_path.empty() || !workers.empty();
  }

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// A run the executor had to give up on, with the offending config (seed and
/// fault plan included) and a diagnosis: the child's exception text, the
/// death signal, or the watchdog timeout.
struct RunQuarantine {
  std::size_t index = 0;  ///< position in the submitted config list
  RunConfig cfg;
  std::string what;
};

/// One completed worker attempt on the campaign timeline. Wall-clock,
/// relative to run_all entry — telemetry only, never part of the
/// deterministic summary.
struct WorkerSpan {
  std::size_t index = 0;  ///< position in the submitted config list
  int slot = 0;           ///< worker slot, 0..jobs-1 (Perfetto pid = slot+1)
  int attempt = 0;        ///< 0 = first execution, >0 = retry
  double start_sec = 0.0;
  double dur_sec = 0.0;
};

/// The observability residue of one completed run (util/trace.h RunCapture)
/// tagged with its plan index. Harvested by the in-process path from the
/// driver's stash, shipped by pool workers inside their response frame, and
/// forwarded by daemons as kTelemetry capture messages — one record per
/// traced, non-replayed run, first arrival wins on re-dispatch duplicates.
struct RunTraceCapture {
  std::uint64_t plan_index = 0;
  obs::RunCapture capture;
};

/// One remote endpoint's merged observability picture, accumulated by the
/// distributed coordinator from kTelemetry aggregates. Wall-clock telemetry
/// only; pid assignment in the fleet trace is by `index` (plan order of
/// opts.workers), so the merged trace layout is stable for a given campaign.
struct EndpointTelemetry {
  std::string spec;            ///< endpoint text, for labeling
  int index = 0;               ///< position in opts.workers (pid = index + 1)
  std::string state;           ///< last known: connecting/ready/failed/...
  std::uint32_t slots = 0;     ///< pool slots advertised in kHelloAck
  std::uint64_t runs_done = 0; ///< results accepted from this endpoint
  int reconnects = 0;
  /// Daemon steady clock minus coordinator steady clock, from the handshake
  /// timestamp exchange (NTP-style midpoint estimate). Seconds.
  double clock_offset_sec = 0.0;
  /// Daemon pool epoch mapped onto the coordinator timeline, relative to
  /// run_all entry: add to a daemon span's start_sec to place it.
  double base_sec = 0.0;
  // Cumulative daemon-side pool counters (latest aggregate wins).
  std::uint64_t launched = 0;
  std::uint64_t respawns = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t signal_deaths = 0;
  std::uint64_t checkpoint_hits = 0;
  std::uint64_t checkpoint_misses = 0;
  std::uint64_t checkpoint_evictions = 0;
  std::uint64_t trace_dropped = 0;
  obs::StageHistogramSet histograms;  ///< cumulative across runs served
  std::vector<WorkerSpan> spans;      ///< daemon slot spans, daemon-relative
};

struct ExecutorStats {
  int launched = 0;       ///< worker processes forked
  int journal_hits = 0;   ///< runs skipped because the journal had them
  int retries = 0;        ///< re-executions of quarantined attempts
  int signal_deaths = 0;  ///< workers that died to a signal (not the watchdog)
  int timeouts = 0;       ///< workers killed by the wall-clock watchdog
  int quarantined = 0;    ///< runs recorded as final kHarnessError
  std::uint64_t torn_bytes_discarded = 0;  ///< from the journal's torn tail

  // Pool-mode lifecycle (zero in fork-per-run mode).
  int pool_workers = 0;   ///< persistent workers forked at batch start
  int respawns = 0;       ///< replacement workers forked after a death
  /// CheckpointStore reuse counters, summed across workers: hits/misses over
  /// both tiers (tick-0 setup + deep fork-point restores), plus deep-tier
  /// budget evictions. In-process mode counts the executor-owned store.
  std::uint64_t checkpoint_hits = 0;
  std::uint64_t checkpoint_misses = 0;
  std::uint64_t checkpoint_evictions = 0;

  // Distributed-coordinator lifecycle (zero otherwise). In distributed mode
  // the per-slot vectors below are per-endpoint instead of per-process.
  int remote_endpoints = 0;    ///< worker endpoints this batch dispatched to
  int reconnects = 0;          ///< re-handshakes after a connection drop
  int redispatches = 0;        ///< straggler copies sent to another endpoint
  int duplicate_discards = 0;  ///< redundant results dropped by plan index

  // Telemetry (wall-clock; surfaced on stderr by davcamp, exported as the
  // campaign trace — deliberately absent from the deterministic summary).
  int jobs = 1;                      ///< worker slots used for this batch
  double wall_sec = 0.0;             ///< run_all wall time
  int journal_appends = 0;           ///< records written to the journal
  std::uint64_t journal_bytes = 0;   ///< payload bytes appended
  std::vector<double> slot_busy_sec; ///< busy seconds per worker slot
  std::vector<int> slot_runs_served; ///< pool runs completed per worker slot
  std::vector<WorkerSpan> spans;     ///< completed attempts, timeline order

  // Trace telemetry (only populated when runs trace, i.e. DAV_TRACE).
  std::uint64_t trace_dropped = 0;    ///< ring evictions across all runs
  obs::StageHistogramSet stage_hist;  ///< merged per-stage span histograms
  std::vector<RunTraceCapture> captures;  ///< per-run residue, arrival order
  std::vector<EndpointTelemetry> endpoints;  ///< distributed mode only
};

/// The kHarnessError placeholder for a run that could not produce a result:
/// carries the identity (scenario, mode, fault plan, seed, dt) so summaries
/// and quarantine reports still name the offending run.
RunResult harness_error_result(const RunConfig& cfg);

class CampaignExecutor {
 public:
  /// The work function, executed inside the worker process. Defaults to
  /// run_experiment; tests substitute functions that crash, hang, or abort
  /// to exercise the sandbox.
  using RunFn = std::function<RunResult(const RunConfig&)>;
  /// Store-aware work function for pool workers: the second argument is the
  /// worker's CheckpointStore (nullptr when reuse is off or the path cannot
  /// reuse state). MUST return the same result with and without the store.
  using CheckpointRunFn =
      std::function<RunResult(const RunConfig&, CheckpointStore*)>;

  /// Throws std::invalid_argument when `opts` is nonsensical.
  explicit CampaignExecutor(ExecutorOptions opts, RunFn fn = {});
  CampaignExecutor(ExecutorOptions opts, CheckpointRunFn fn);

  /// Execute every config, in parallel, with journal resume. Returns one
  /// result per config in submission order (quarantined runs included as
  /// kHarnessError placeholders, never dropped). Deterministic: the result
  /// vector is bit-identical to a serial in-process sweep of the same
  /// configs.
  std::vector<RunResult> run_all(const std::vector<RunConfig>& cfgs);

  /// Final quarantines of the last run_all, sorted by config index.
  const std::vector<RunQuarantine>& quarantined() const {
    return quarantined_;
  }
  const ExecutorStats& stats() const { return stats_; }

 private:
  /// journal_.append plus telemetry accounting (appends + bytes).
  void journal_append(std::uint64_t key, const std::string& payload);
  /// Fold one run's trace residue into stats_ (first arrival wins per plan
  /// index — re-dispatch duplicates and retries are discarded, mirroring the
  /// result dedup).
  void fold_capture(RunTraceCapture cap);
  /// Live metrics snapshot (opts_.metrics_path, atomic rename). Rate-limited
  /// by metrics_interval_sec unless `force` (batch end / final state).
  /// Per-endpoint lines derive from stats_.endpoints in distributed mode.
  void write_metrics_snapshot(std::size_t total, std::size_t done, bool force);
  void run_in_process(const std::vector<RunConfig>& cfgs,
                      const std::vector<std::uint64_t>& keys,
                      std::vector<RunResult>& results,
                      const std::vector<char>& done);
  void run_forked(const std::vector<RunConfig>& cfgs,
                  const std::vector<std::uint64_t>& keys,
                  std::vector<RunResult>& results,
                  const std::vector<char>& done);
  /// Persistent prefork pool: workers forked once per batch, requests
  /// streamed over pipes, dead workers respawned.
  void run_pool(const std::vector<RunConfig>& cfgs,
                const std::vector<std::uint64_t>& keys,
                std::vector<RunResult>& results,
                const std::vector<char>& done);
  /// Distributed coordinator: shard the plan across the socket endpoints in
  /// opts_.workers with work-stealing, per-shard journals merged by plan
  /// index, straggler re-dispatch, reconnect with backoff, and dead-endpoint
  /// requeue through the same retry/quarantine policy as the local paths.
  void run_distributed(const std::vector<RunConfig>& cfgs,
                       const std::vector<std::uint64_t>& keys,
                       std::vector<RunResult>& results,
                       const std::vector<char>& done);

  ExecutorOptions opts_;
  CheckpointRunFn fn_;
  JournalWriter journal_;
  std::vector<RunQuarantine> quarantined_;
  ExecutorStats stats_;
  /// run_all entry instant: the zero of the WorkerSpan timeline.
  std::chrono::steady_clock::time_point batch_start_{};
  /// Plan indices whose capture was already folded (dedup).
  std::unordered_set<std::uint64_t> capture_seen_;
  /// Last metrics snapshot write, for interval rate limiting.
  std::chrono::steady_clock::time_point last_metrics_{};
};

/// Event-driven supervisor over the persistent prefork worker pool,
/// extracted from the executor so the socket worker daemon (transport.h)
/// hosts the same machinery: lazily forked long-lived workers, checksummed
/// request/response framing, per-run CPU-budget re-arm, a wall-clock
/// watchdog, death diagnosis and respawn accounting. Policy stays with the
/// caller: retries, backoff, journaling and result merging all consume the
/// Completion records this class emits. POSIX only — constructing one on a
/// non-POSIX host throws.
class PoolSupervisor {
 public:
  /// One finished dispatch. `ok` means a complete, checksummed response
  /// frame arrived; `result_payload` then holds the embedded result payload
  /// (parse_result_payload — which may itself carry a workload failure).
  /// !ok is a worker death — crash, watchdog timeout, corrupt stream — with
  /// the diagnosis in `what`.
  struct Completion {
    std::size_t index = 0;
    int attempt = 0;
    int slot = 0;
    bool ok = false;
    std::string what;
    std::string result_payload;
    /// Encoded RunTraceCapture blob (transport.h encode_run_capture), empty
    /// when the run was untraced. Rides the response frame OUTSIDE the
    /// result payload, so journal bytes are unchanged by tracing.
    std::string capture_payload;
    double start_sec = 0.0;  ///< relative to the epoch; telemetry only
    double dur_sec = 0.0;
  };
  /// Lifecycle + checkpoint counters, folded into ExecutorStats by callers.
  struct Telemetry {
    int launched = 0;
    int pool_workers = 0;  ///< first-wave spawns (before any worker death)
    int respawns = 0;      ///< replacement spawns (after a death)
    int timeouts = 0;
    int signal_deaths = 0;
    std::uint64_t checkpoint_hits = 0;
    std::uint64_t checkpoint_misses = 0;
    std::uint64_t checkpoint_evictions = 0;
    std::vector<double> slot_busy_sec;
    std::vector<int> slot_runs_served;
  };

  /// `epoch` anchors Completion::start_sec (run_all entry, or daemon session
  /// start). Validates `opts`.
  PoolSupervisor(const ExecutorOptions& opts,
                 CampaignExecutor::CheckpointRunFn fn,
                 std::chrono::steady_clock::time_point epoch);
  /// SIGKILLs and reaps any still-live workers; in-flight runs are dropped
  /// (the daemon relies on this when its coordinator disconnects — the
  /// coordinator requeues them).
  ~PoolSupervisor();
  PoolSupervisor(const PoolSupervisor&) = delete;
  PoolSupervisor& operator=(const PoolSupervisor&) = delete;

  int slots() const;  ///< max concurrent workers (max(1, opts.jobs))
  int busy() const;   ///< dispatches currently in flight
  /// An idle live worker exists, or a replacement can still be forked.
  bool can_dispatch() const;
  /// Send one run to an idle worker (forking one if needed). Only valid when
  /// can_dispatch(); `attempt` is echoed back on the Completion. `affinity`
  /// is an opaque grouping key (the run's prefix digest under checkpointing):
  /// an idle worker that last ran the same key is preferred, so variants of
  /// one fault-free prefix land on the worker that holds its checkpoint.
  void dispatch(std::size_t index, int attempt, const RunConfig& cfg,
                std::uint64_t affinity = 0);
  /// Pump the event loop once: wait up to `max_wait_ms` for response bytes,
  /// drain complete frames, enforce watchdog deadlines, reap deaths, and
  /// append finished dispatches to `out`. When `extra_fd` >= 0 it joins the
  /// poll set and *extra_readable reports whether it has data (or EOF)
  /// pending — the daemon multiplexes its coordinator socket this way.
  void pump(int max_wait_ms, std::vector<Completion>& out, int extra_fd = -1,
            bool* extra_readable = nullptr);
  /// Clean shutdown: close request pipes (workers read EOF and exit), reap.
  /// Call with busy() == 0; any dispatch still in flight is dropped.
  void shutdown();
  const Telemetry& telemetry() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dav
