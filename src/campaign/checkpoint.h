// Fork-point checkpoints: snapshot a run at its injection onset, share the
// fault-free prefix across every variant of a campaign (DESIGN.md §16).
//
// A fault-injection sweep varies ONLY the fault plan: every variant simulates
// the same world, the same noise streams and the same agents up to the
// injection tick, then diverges. PR-5's warm cache memoized the tick-0 slice
// of that prefix (scenario construction + initial agent state); RunCheckpoint
// generalizes it to ANY tick. A pool worker simulates the prefix once,
// captures the complete dynamic state — world actors, both agents, detector,
// recovery FSM, every RNG stream — and restores it per variant, running only
// the post-injection suffix.
//
// The contract is byte-identity, not approximation: a restored run's
// RunResult equals the straight-through run's byte for byte (pinned across
// serial/fork/pool/distributed by test_checkpoint / test_executor). That is
// why checkpoints carry order-dependent float accumulators verbatim and why
// nothing config-derived (maps, LUTs, plans, models) is ever serialized —
// restored runs rebuild those from their own RunConfig.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "campaign/driver.h"
#include "sensors/sensor_rig.h"

namespace dav {

/// Bumped whenever the RunCheckpoint encoding changes. Checkpoints live in
/// one worker's memory and never cross a process or version boundary, but
/// the version check turns a stale blob into a loud error, not a misparse.
inline constexpr std::uint32_t kRunCheckpointVersion = 1;

/// Complete dynamic state of run_experiment at the top of one tick — the one
/// versioned value type behind the checkpoint API (replaces the fragmented
/// AgentSnapshot / WarmStateCache::Entry surface). Every field a variant
/// could observe is here; configuration is deliberately absent.
struct RunCheckpoint {
  // --- identity ------------------------------------------------------------
  int tick = 0;
  /// No DUE, no failback, no activated or corrupting fault, recovery FSM
  /// nominal: the prefix is provably shared by every config with the same
  /// prefix digest. Non-clean checkpoints are still stored — they resume
  /// the EXACT same config (full-digest match), e.g. mid-recovery replay.
  bool clean = false;
  std::uint64_t full_digest = 0;    ///< run_config_digest of the capturing run
  std::uint64_t prefix_digest = 0;  ///< run_config_prefix_digest at `tick`
  /// Dynamic instruction totals of engine set 0 at capture: gates transient
  /// variants (a strike below these totals would already have landed).
  std::uint64_t gpu0_total = 0;
  std::uint64_t cpu0_total = 0;

  // --- subsystem state -----------------------------------------------------
  WorldState world;
  SensorRig::RngState rig;
  EngineState gpu0;
  EngineState cpu0;
  EngineState gpu1;
  EngineState cpu1;
  AdsState ads;
  bool has_injector = false;
  SensorFaultInjector::State injector;
  bool has_detector = false;
  DetectorState detector;
  bool has_recovery = false;
  RecoveryState recovery;

  // --- driver loop locals --------------------------------------------------
  Actuation last_applied;
  bool failing_back = false;
  double stationary_sec = 0.0;
  int failback_ticks = 0;
  std::uint64_t traced_corruptions = 0;

  /// The RunResult as accumulated through tick-1 (observations, traces, DUE
  /// bookkeeping), in the canonical record encoding. A restored run swaps in
  /// its own fault plans and keeps appending.
  std::string partial_result;

  /// Post-noise camera frames captured at tick-1 (left, center, right).
  /// Needed for exactly one cross-variant case: a kCameraFrozen plan whose
  /// onset IS the restore tick must freeze the last pre-onset frame, which
  /// the variant's fresh injector never saw.
  bool has_cameras = false;
  std::array<std::vector<std::uint8_t>, 3> cameras;
};

/// Canonical byte encoding (ByteWriter discipline: little-endian, bit-exact
/// floats). Two equal checkpoints serialize identically.
std::string serialize_run_checkpoint(const RunCheckpoint& c);
/// Inverse. Throws std::runtime_error on truncation, trailing garbage, or a
/// version mismatch.
RunCheckpoint deserialize_run_checkpoint(const std::string& bytes);

/// Per-worker store of reusable run prefixes, two tiers:
///
///  - SETUP tier (tick 0): the constructed Scenario and the initial ADS
///    state, keyed by checkpoint_setup_digest. This is PR-5's warm cache —
///    always on when a store is supplied, byte-budget-free, and what every
///    ordinary campaign (distinct run_seed per run) benefits from.
///  - DEEP tier: serialized RunCheckpoints keyed by (prefix_digest, tick),
///    populated only when cfg.checkpoint.enabled. Variants that share the
///    run_seed and differ only in their fault plan restore the deepest
///    eligible entry and skip the whole prefix.
///
/// Deep blobs are byte-bounded (set_max_deep_bytes): inserting past the
/// budget evicts oldest-first (deterministic FIFO), counted in evictions().
class CheckpointStore {
 public:
  // --- setup tier ----------------------------------------------------------
  struct SetupEntry {
    bool has_scenario = false;
    Scenario scenario;
    bool has_ads_state = false;
    AdsState initial_ads;
  };
  /// A slot for one setup key: `hit` distinguishes reuse from first
  /// population (the caller fills the entry on a miss).
  struct SetupLease {
    SetupEntry& entry;
    bool hit = false;
  };
  /// The entry for cfg's setup key; creates an empty entry (hit == false)
  /// the first time a key is seen.
  SetupLease acquire_setup(const RunConfig& cfg);

  // --- deep tier -----------------------------------------------------------
  struct DeepEntry {
    std::uint64_t prefix_digest = 0;
    std::uint64_t full_digest = 0;
    int tick = 0;
    bool clean = false;
    std::uint64_t gpu0_total = 0;
    std::uint64_t cpu0_total = 0;
    std::string blob;  ///< serialize_run_checkpoint
  };

  /// Deepest entry cfg may restore, or nullptr. Eligibility: an exact
  /// full-digest match resumes any state; otherwise the entry must be clean,
  /// cfg's prefix digest at the entry's tick must equal the entry's, and a
  /// transient register plan must target a dynamic instruction at or past
  /// the captured totals. Counts one deep hit or miss.
  const DeepEntry* find_deep(const RunConfig& cfg);
  /// Store one checkpoint; evicts oldest entries past the byte budget.
  void insert_deep(DeepEntry e);

  /// Deep-tier byte budget (default 64 MiB). Shrinking below the current
  /// footprint evicts immediately.
  void set_max_deep_bytes(std::size_t bytes);
  std::size_t max_deep_bytes() const { return max_deep_bytes_; }
  std::size_t deep_bytes() const { return deep_bytes_; }
  std::size_t deep_count() const { return deep_.size(); }

  // --- telemetry -----------------------------------------------------------
  /// Setup-tier counters (the PR-5 warm hit/miss semantics).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return setup_.size(); }
  std::uint64_t deep_hits() const { return deep_hits_; }
  std::uint64_t deep_misses() const { return deep_misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  void evict_to_budget();

  std::map<std::uint64_t, SetupEntry> setup_;  // ordered: determinism hygiene
  std::deque<DeepEntry> deep_;                 // FIFO for eviction
  std::size_t deep_bytes_ = 0;
  std::size_t max_deep_bytes_ = 64u * 1024u * 1024u;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t deep_hits_ = 0;
  std::uint64_t deep_misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dav
