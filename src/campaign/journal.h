// Write-ahead journal for campaign execution.
//
// An append-only file of checksummed records, one per completed run, written
// by the campaign executor as results arrive. Re-launching the same campaign
// loads the journal and skips every run whose record is intact, so an
// interrupted sweep (SIGKILL, power loss, OOM-killed supervisor) resumes
// losslessly. Records are finalized atomically from the reader's point of
// view: a record counts only if its marker, length, checksum and full payload
// are all present, so a torn trailing write is detected, discarded, and
// truncated away before new records are appended.
//
// File layout (all integers little-endian):
//   header:  "DAVJRNL\x01" | u32 version | u64 campaign fingerprint
//   record:  u32 marker | u64 key | u32 payload_len | u64 fnv1a64(payload)
//            | payload bytes
//
// The fingerprint binds a journal to one campaign configuration (seed +
// scale); loading a journal written by a different campaign is an error, not
// a silent replay of stale results.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

namespace dav {

inline constexpr std::uint32_t kJournalVersion = 1;

/// Everything recovered from an existing journal file.
struct JournalLoad {
  /// Intact records, keyed by run digest. A later record for the same key
  /// supersedes an earlier one (a retried run journals once, so duplicates
  /// only arise from identical configs — whose payloads are identical too).
  std::map<std::uint64_t, std::string> records;
  std::uint64_t valid_bytes = 0;  ///< offset one past the last intact record
  std::uint64_t torn_bytes = 0;   ///< trailing bytes discarded as torn
  bool existed = false;           ///< the file was present on disk
};

/// Parse the journal at `path`. A missing file yields an empty load (resume
/// of a campaign that never started is a fresh start). Throws
/// std::runtime_error when the file exists but is not a journal, has an
/// unsupported version, or was written by a different campaign
/// (`fingerprint` mismatch).
JournalLoad load_journal(const std::string& path, std::uint64_t fingerprint);

/// fsync the directory containing `path`, making a file creation, rename, or
/// unlink in it durable (fsync of the file itself only persists the file's
/// bytes, not the directory entry pointing at them). No-op on non-POSIX
/// hosts; I/O errors are swallowed (the data writes already succeeded, and
/// EINVAL is normal on filesystems that reject directory fsync).
void fsync_parent_dir(const std::string& path);

/// Appender. Opening with the JournalLoad from load_journal() truncates the
/// torn tail (if any) so the file ends on a record boundary, then appends.
/// Every append is flushed to the OS (and fsync'd where available) before
/// returning — a completed run survives any subsequent crash of the
/// supervisor.
class JournalWriter {
 public:
  JournalWriter() = default;  ///< disabled writer; append() is an error
  JournalWriter(const std::string& path, std::uint64_t fingerprint,
                const JournalLoad& load);
  ~JournalWriter();

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool enabled() const { return file_ != nullptr; }

  /// Append one finalized record. Throws std::runtime_error (with the path)
  /// on any write failure, and if the writer is disabled.
  void append(std::uint64_t key, const std::string& payload);

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace dav
