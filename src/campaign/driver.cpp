#include "campaign/driver.h"

#include <cmath>

#include "sensors/sensor_rig.h"
#include "util/rng.h"

namespace dav {

namespace {

bool actuation_finite(const Actuation& cmd) {
  return std::isfinite(cmd.throttle) && std::isfinite(cmd.brake) &&
         std::isfinite(cmd.steer);
}

AgentConfig make_agent_config(const Scenario& scenario,
                              const CameraModel& center_cam) {
  AgentConfig ac;
  ac.perception.center_cam = center_cam;
  ac.mission_speed = scenario.target_speed;
  ac.route_start_s = scenario.ego_start_s;
  ac.control.wheelbase = scenario.ego_spec.wheelbase;
  ac.control.max_steer_angle = scenario.ego_spec.max_steer_angle;
  return ac;
}

}  // namespace

RunResult run_experiment(const RunConfig& cfg) {
  Scenario scenario =
      make_scenario(cfg.scenario, cfg.scenario_seed, cfg.scenario_opts);
  World world(std::move(scenario));

  const auto rig_models =
      front_camera_rig(cfg.cam_width, cfg.cam_height, cfg.camera_noise_sigma);
  Rng seeder(cfg.run_seed);
  SensorRig rig(rig_models, seeder.split(1)());

  // Engine set 0 is the (potentially faulty) primary processor pair; the FD
  // baseline adds a clean dedicated set for the replica.
  GpuEngine gpu0;
  CpuEngine cpu0;
  GpuEngine gpu1;
  CpuEngine cpu1;
  const auto engine_seed = seeder.split(2)();
  gpu0.configure(cfg.fault, engine_seed,
                 CrashHangModel::for_model(FaultDomain::kGpu, cfg.fault.kind));
  cpu0.configure(cfg.fault, engine_seed ^ 0xC0FFEE,
                 CrashHangModel::for_model(FaultDomain::kCpu, cfg.fault.kind));
  FaultPlan none;
  gpu1.configure(none, 0);
  cpu1.configure(none, 0);

  const bool duplicate = cfg.mode == AgentMode::kDuplicate;
  AdsSystem ads(cfg.mode,
                make_agent_config(world.scenario(), rig_models[1]), gpu0,
                cpu0, duplicate ? &gpu1 : nullptr,
                duplicate ? &cpu1 : nullptr, &world.map(), cfg.overlap_ratio);

  RunResult result;
  result.scenario = cfg.scenario;
  result.mode = cfg.mode;
  result.fault = cfg.fault;
  result.sensor_frame_bytes = rig.frame_bytes();

  Actuation last_applied;
  bool failing_back = false;  // platform failback engaged after a DUE
  double stationary_sec = 0.0;
  int step = 0;

  const auto legitimately_stopped = [&]() {
    if (world.cvip() < 12.0) return true;  // queued behind a vehicle
    const auto light = world.map().next_light_after(world.ego_route_s());
    return light && light->s - world.ego_route_s() < 15.0 &&
           light->phase_at(world.time()) != TrafficLight::Phase::kGreen;
  };

  while (!world.done()) {
    Actuation applied = last_applied;
    if (failing_back) {
      // Fail-back system: bring the vehicle to a safe stop (paper §I assumes
      // a failback "that can be invoked on error to bring the vehicle to a
      // safe state").
      applied = Actuation{0.0, 0.45, 0.0};
      if (world.ego().v < 0.05) break;
    } else {
      const SensorFrame frame = rig.capture(world, step);
      try {
        const AdsSystem::StepResult sr = ads.step(frame, cfg.dt);
        // Output plausibility validation (ISO 26262-style): a non-finite
        // actuation command is a platform-detected DUE — the ECU rejects it
        // and engages the failback, exactly like a crashed agent process.
        if (!actuation_finite(sr.applied)) {
          result.due = true;
          result.due_time = world.time();
          result.outcome = FaultOutcome::kCrash;
          failing_back = true;
          continue;
        }
        applied = sr.applied.clamped();
        if (sr.have_delta) {
          result.observations.push_back(
              StepObservation{world.time(), world.ego(), sr.delta});
        }
        if (cfg.record_traces) {
          result.acting_agent_trace.push_back(sr.acting_agent);
        }
      } catch (const CrashError&) {
        result.due = true;
        result.due_time = world.time();
        result.outcome = FaultOutcome::kCrash;
        failing_back = true;
        applied = last_applied;
      } catch (const HangError&) {
        // The agent stops responding; the vehicle coasts on the last command
        // until the watchdog fires, then the failback engages.
        result.due = true;
        result.due_time = world.time() + cfg.watchdog_sec;
        result.outcome = FaultOutcome::kHang;
        const int coast_steps =
            static_cast<int>(cfg.watchdog_sec / cfg.dt);
        for (int i = 0; i < coast_steps && !world.done(); ++i) {
          world.step(last_applied, cfg.dt);
        }
        failing_back = true;
        applied = last_applied;
      }
    }

    if (cfg.record_traces && !failing_back) {
      result.time_trace.push_back(world.time());
      result.throttle_trace.push_back(applied.throttle);
      result.brake_trace.push_back(applied.brake);
      result.steer_trace.push_back(applied.steer);
      result.cvip_trace.push_back(world.cvip());
    }

    world.step(applied, cfg.dt);
    last_applied = applied;
    ++step;

    // Stuck-vehicle watchdog (platform-level plausibility monitoring).
    if (!failing_back && cfg.stuck_watchdog_sec > 0.0) {
      if (world.ego().v < 0.3 && !legitimately_stopped()) {
        stationary_sec += cfg.dt;
        if (stationary_sec >= cfg.stuck_watchdog_sec) {
          result.due = true;
          result.due_time = world.time();
          result.outcome = FaultOutcome::kHang;
          failing_back = true;
        }
      } else {
        stationary_sec = 0.0;
      }
    }
  }

  result.dt = cfg.dt;
  result.collision = world.flags().collision;
  result.collision_time = world.first_collision_time();
  result.flags = world.flags();
  result.trajectory = world.trajectory();
  result.duration = world.time();
  result.steps = world.step_count();
  result.fault_activated = gpu0.fault_activated() || cpu0.fault_activated();
  if (result.outcome != FaultOutcome::kCrash &&
      result.outcome != FaultOutcome::kHang) {
    if (!cfg.fault.active()) {
      result.outcome = FaultOutcome::kMasked;  // golden run: nothing injected
    } else if (!result.fault_activated) {
      result.outcome = FaultOutcome::kNotActivated;
    } else if (gpu0.corruption_count() + cpu0.corruption_count() > 0) {
      result.outcome = FaultOutcome::kSdc;
    } else {
      result.outcome = FaultOutcome::kMasked;
    }
  }
  result.gpu_instructions =
      gpu0.total_dyn_instructions() + gpu1.total_dyn_instructions();
  result.cpu_instructions =
      cpu0.total_dyn_instructions() + cpu1.total_dyn_instructions();
  result.agent_state_bytes = ads.state_bytes();
  return result;
}

}  // namespace dav
