#include "campaign/driver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

#include "campaign/checkpoint.h"
#include "campaign/serialize.h"
#include "obs/export.h"
#include "sensors/sensor_rig.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dav {

namespace {

/// Sensor capture wrapped in its obs span (two call sites in the run loop).
SensorFrame captured_frame(SensorRig& rig, const World& world, int step) {
  obs::SpanScope span(obs::Stage::kSensorCapture);
  return rig.capture(world, step);
}

AgentConfig make_agent_config(const Scenario& scenario,
                              const CameraModel& center_cam,
                              const FusionConfig& fusion) {
  AgentConfig ac;
  ac.perception.center_cam = center_cam;
  ac.mission_speed = scenario.target_speed;
  ac.route_start_s = scenario.ego_start_s;
  ac.control.wheelbase = scenario.ego_spec.wheelbase;
  ac.control.max_steer_angle = scenario.ego_spec.max_steer_angle;
  ac.fusion = fusion;
  return ac;
}

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("RunConfig: " + what);
}

}  // namespace

std::string to_string(MitigationPolicy p) {
  switch (p) {
    case MitigationPolicy::kSafeStopOnly: return "safe-stop-only";
    case MitigationPolicy::kRestartRecovery: return "restart-recovery";
  }
  return "?";
}

void RunConfig::validate() const {
  if (!(dt > 0.0) || !std::isfinite(dt)) {
    reject("dt must be a positive finite tick length, got " +
           std::to_string(dt));
  }
  if (cam_width <= 0 || cam_height <= 0) {
    reject("camera dimensions must be positive, got " +
           std::to_string(cam_width) + "x" + std::to_string(cam_height));
  }
  if (camera_noise_sigma < 0.0) {
    reject("camera_noise_sigma must be non-negative, got " +
           std::to_string(camera_noise_sigma));
  }
  if (overlap_ratio < 0.0 || overlap_ratio > 1.0) {
    reject("overlap_ratio must lie in [0,1], got " +
           std::to_string(overlap_ratio));
  }
  if (watchdog_sec < 0.0) {
    reject("watchdog_sec must be non-negative, got " +
           std::to_string(watchdog_sec));
  }
  if (scenario_opts.long_route_duration_sec <= 0.0) {
    reject("scenario_opts.long_route_duration_sec must be positive, got " +
           std::to_string(scenario_opts.long_route_duration_sec));
  }
  if (scenario_opts.safety_duration_sec <= 0.0) {
    reject("scenario_opts.safety_duration_sec must be positive, got " +
           std::to_string(scenario_opts.safety_duration_sec));
  }
  if (online_lut != nullptr) {
    if (online_detector.rw < 1) {
      reject("online_detector.rw must be >= 1, got " +
             std::to_string(online_detector.rw));
    }
    if (online_detector.debounce < 1) {
      reject("online_detector.debounce must be >= 1, got " +
             std::to_string(online_detector.debounce));
    }
  }
  if (mitigation == MitigationPolicy::kRestartRecovery) {
    if (mode == AgentMode::kSingle) {
      reject("restart-recovery needs a redundant agent; single mode has no "
             "healthy replica to resync from (use safe-stop-only)");
    }
    if (recovery.probe_ticks < 1) {
      reject("recovery.probe_ticks must be >= 1, got " +
             std::to_string(recovery.probe_ticks));
    }
    if (recovery.rewarm_ticks < 1) {
      reject("recovery.rewarm_ticks must be >= 1, got " +
             std::to_string(recovery.rewarm_ticks));
    }
    if (recovery.max_recoveries < 1) {
      reject("recovery.max_recoveries must be >= 1, got " +
             std::to_string(recovery.max_recoveries));
    }
    if (recovery.recovery_window_ticks < 1) {
      reject("recovery.recovery_window_ticks must be >= 1, got " +
             std::to_string(recovery.recovery_window_ticks));
    }
  }
  if (sensor_fault.model != SensorFaultModel::kNone) {
    if (sensor_fault.duration_ticks <= 0) {
      reject("sensor_fault.duration_ticks must be positive for model " +
             to_string(sensor_fault.model) + ", got " +
             std::to_string(sensor_fault.duration_ticks));
    }
    if (sensor_fault.onset_tick < 0) {
      reject("sensor_fault.onset_tick must be non-negative, got " +
             std::to_string(sensor_fault.onset_tick));
    }
    const auto safety = safety_scenarios();
    const bool is_safety =
        std::find(safety.begin(), safety.end(), scenario) != safety.end();
    const double sched_sec = is_safety
                                 ? scenario_opts.safety_duration_sec
                                 : scenario_opts.long_route_duration_sec;
    const int sched_ticks = static_cast<int>(sched_sec / dt);
    if (sensor_fault.onset_tick >= sched_ticks) {
      reject("sensor_fault.onset_tick " +
             std::to_string(sensor_fault.onset_tick) +
             " is past the scheduled run length (" +
             std::to_string(sched_ticks) + " ticks at dt " +
             std::to_string(dt) + "); the fault would never fire");
    }
    if (sensor_fault.kind() == SensorKind::kCamera) {
      if (sensor_fault.sensor_index < 0 || sensor_fault.sensor_index >= 3) {
        reject("sensor_fault.sensor_index must name a rig camera in [0,3) "
               "for model " + to_string(sensor_fault.model) + ", got " +
               std::to_string(sensor_fault.sensor_index));
      }
    } else if (sensor_fault.sensor_index != 0) {
      reject("sensor_fault.sensor_index must be 0 for model " +
             to_string(sensor_fault.model) + " (single instance), got " +
             std::to_string(sensor_fault.sensor_index));
    }
    if (sensor_fault.magnitude < 0.0 || sensor_fault.magnitude > 1.0 ||
        !std::isfinite(sensor_fault.magnitude)) {
      reject("sensor_fault.magnitude must lie in [0,1], got " +
             std::to_string(sensor_fault.magnitude));
    }
    if (sensor_fault.model == SensorFaultModel::kTensorBitFlip) {
      if (sensor_fault.bit < 0 || sensor_fault.bit >= 32) {
        reject("sensor_fault.bit must lie in [0,32) for fp32 state, got " +
               std::to_string(sensor_fault.bit));
      }
      if (sensor_fault.layer < 0 || sensor_fault.layer >= 4) {
        reject("sensor_fault.layer must name a perception stage in [0,4), "
               "got " + std::to_string(sensor_fault.layer));
      }
    }
    if (sensor_fault.kind() == SensorKind::kLidar && !fusion.enabled) {
      reject("model " + to_string(sensor_fault.model) +
             " targets the LiDAR, which is only captured when "
             "fusion.enabled is set");
    }
  }
  if (fusion.enabled) {
    if (fusion.health.degrade_after < 1) {
      reject("fusion.health.degrade_after must be >= 1, got " +
             std::to_string(fusion.health.degrade_after));
    }
    if (fusion.health.drop_after < fusion.health.degrade_after) {
      reject("fusion.health.drop_after must be >= degrade_after (" +
             std::to_string(fusion.health.degrade_after) + "), got " +
             std::to_string(fusion.health.drop_after));
    }
    if (fusion.health.rejoin_after < 1) {
      reject("fusion.health.rejoin_after must be >= 1, got " +
             std::to_string(fusion.health.rejoin_after));
    }
    if (fusion.health.degraded_weight < 0.0 ||
        fusion.health.degraded_weight > 1.0) {
      reject("fusion.health.degraded_weight must lie in [0,1], got " +
             std::to_string(fusion.health.degraded_weight));
    }
    if (fusion.min_cruise_mps < 0.0) {
      reject("fusion.min_cruise_mps must be non-negative, got " +
             std::to_string(fusion.min_cruise_mps));
    }
    if (!(fusion.lidar_corridor_half_deg > 0.0) ||
        fusion.lidar_corridor_half_deg > 180.0) {
      reject("fusion.lidar_corridor_half_deg must lie in (0,180], got " +
             std::to_string(fusion.lidar_corridor_half_deg));
    }
  }
}

RunResult run_experiment(const RunConfig& cfg) {
  return run_experiment(cfg, nullptr);
}

RunResult run_experiment(const RunConfig& cfg, CheckpointStore* store) {
  cfg.validate();
  // Flight recorder: installed for this scope only; every helper below picks
  // it up through the process-global hook (no-op when tracing is off).
  std::optional<obs::TraceRecorder> trace_rec;
  std::optional<obs::ScopedRecorder> trace_scope;
  if (cfg.trace.enabled()) {
    trace_rec.emplace(cfg.trace.capacity);
    trace_scope.emplace(&*trace_rec);
  }
  // Deep checkpoint tier: restore a stored prefix of this run if one is
  // eligible. Mutually exclusive with tracing — a restored run would export
  // a truncated trace, and trace is the debugging path anyway.
  const bool deep_enabled =
      store != nullptr && cfg.checkpoint.enabled && !cfg.trace.enabled();
  std::uint64_t full_digest = 0;
  std::optional<RunCheckpoint> ckpt;
  bool ckpt_full_match = false;
  if (deep_enabled) {
    full_digest = run_config_digest(cfg);
    if (const CheckpointStore::DeepEntry* e = store->find_deep(cfg)) {
      ckpt = deserialize_run_checkpoint(e->blob);
      ckpt_full_match = e->full_digest == full_digest;
    }
  }
  // Setup tier (the PR-5 warm cache): a pool worker replays a sweep that
  // shares one scenario/mode across hundreds of runs; the Scenario and the
  // initial ADS state are pure functions of the setup-key fields, so a cache
  // hit copies them instead of rebuilding — bit-identical either way.
  CheckpointStore::SetupEntry* setup = nullptr;
  if (store != nullptr) setup = &store->acquire_setup(cfg).entry;
  Scenario scenario;
  if (setup != nullptr && setup->has_scenario) {
    scenario = setup->scenario;
  } else {
    scenario = make_scenario(cfg.scenario, cfg.scenario_seed,
                             cfg.scenario_opts);
    if (setup != nullptr) {
      setup->scenario = scenario;
      setup->has_scenario = true;
    }
  }
  World world(std::move(scenario));

  const auto rig_models =
      front_camera_rig(cfg.cam_width, cfg.cam_height, cfg.camera_noise_sigma);
  Rng seeder(cfg.run_seed);
  // LiDAR is captured only under fusion: the plain pipeline ignores it, and
  // leaving it off keeps plan-free runs byte-identical to the pre-sensor
  // stack (the lidar noise stream is split(3) — independent either way).
  SensorRig rig(rig_models, seeder.split(1)(), cfg.fusion.enabled);

  // Sensor-path injection: one injector serves the rig (camera/LiDAR/GPS at
  // capture, upstream of BOTH agents — common-mode by construction) and the
  // primary agent's perception (tensor bit flips, agent 0 only).
  std::optional<SensorFaultInjector> sensor_inj;
  if (cfg.sensor_fault.active()) {
    sensor_inj.emplace(cfg.sensor_fault);
    rig.attach_fault_injector(&*sensor_inj);
  }

  // Engine set 0 is the (potentially faulty) primary processor pair; the FD
  // baseline adds a clean dedicated set for the replica.
  GpuEngine gpu0;
  CpuEngine cpu0;
  GpuEngine gpu1;
  CpuEngine cpu1;
  const auto engine_seed = seeder.split(2)();
  gpu0.configure(cfg.fault, engine_seed,
                 CrashHangModel::for_model(FaultDomain::kGpu, cfg.fault.kind));
  cpu0.configure(cfg.fault, engine_seed ^ 0xC0FFEE,
                 CrashHangModel::for_model(FaultDomain::kCpu, cfg.fault.kind));
  FaultPlan none;
  gpu1.configure(none, 0);
  cpu1.configure(none, 0);

  const bool duplicate = cfg.mode == AgentMode::kDuplicate;
  AdsSystem ads(cfg.mode,
                make_agent_config(world.scenario(), rig_models[1], cfg.fusion),
                gpu0, cpu0, duplicate ? &gpu1 : nullptr,
                duplicate ? &cpu1 : nullptr, &world.map(), cfg.overlap_ratio);
  if (sensor_inj) ads.attach_sensor_fault_injector(&*sensor_inj);

  // Second half of the setup tier: the initial (pre-first-frame) ADS state.
  // On a hit the system adopts the cached capture — which is exactly the
  // state fresh construction yields, so the run is unchanged.
  if (setup != nullptr) {
    if (setup->has_ads_state) {
      ads.adopt(setup->initial_ads);
    } else {
      setup->initial_ads = ads.capture();
      setup->has_ads_state = true;
    }
  }

  // Online detection + mitigation (paper §I: detection is only useful if it
  // can invoke mitigation).
  std::optional<ErrorDetector> online_det;
  if (cfg.online_lut != nullptr) {
    online_det.emplace(*cfg.online_lut, cfg.online_detector);
  }
  std::optional<RecoveryManager> rec;
  if (cfg.mitigation == MitigationPolicy::kRestartRecovery) {
    rec.emplace(ads, cfg.recovery, cfg.watchdog_sec,
                online_det ? &*online_det : nullptr);
    // The platform sensor monitor rides along with fusion: known-degraded
    // channels re-attribute detector alarms to the sensor instead of
    // burning restart attempts on healthy compute.
    if (cfg.fusion.enabled) rec->enable_sensor_monitor(cfg.fusion.health);
  }

  RunResult result;
  result.scenario = cfg.scenario;
  result.mode = cfg.mode;
  result.fault = cfg.fault;
  result.sensor_fault = cfg.sensor_fault;
  result.run_seed = cfg.run_seed;
  result.scheduled_duration = world.scenario().duration_sec;
  result.sensor_frame_bytes = rig.frame_bytes();

  Actuation last_applied;
  bool failing_back = false;  // platform failback engaged after a DUE
  double stationary_sec = 0.0;
  int step = 0;
  int failback_ticks = 0;
  std::uint64_t traced_corruptions = 0;
  int restored_tick = -1;

  if (ckpt) {
    // Deep restore: overwrite everything time evolved. Setup above already
    // rebuilt all configuration (scenario, plans, LUT wiring), so only
    // dynamic state transfers.
    world.adopt(ckpt->world);
    rig.set_rng_state(ckpt->rig);
    gpu0.adopt(ckpt->gpu0);
    cpu0.adopt(ckpt->cpu0);
    gpu1.adopt(ckpt->gpu1);
    cpu1.adopt(ckpt->cpu1);
    if (!ckpt_full_match) {
      // Cross-variant restore of a clean prefix: re-arm the engines for THIS
      // config's plan (adopt-then-configure, see Engine::adopt). The clean
      // state configure() clears is already default — no activation, no
      // corruption, and the outcome RNG was never drawn, so Rng(seed) is the
      // captured position.
      gpu0.configure(cfg.fault, engine_seed,
                     CrashHangModel::for_model(FaultDomain::kGpu,
                                               cfg.fault.kind));
      cpu0.configure(cfg.fault, engine_seed ^ 0xC0FFEE,
                     CrashHangModel::for_model(FaultDomain::kCpu,
                                               cfg.fault.kind));
      gpu1.configure(none, 0);
      cpu1.configure(none, 0);
    }
    if (sensor_inj) {
      if (ckpt_full_match && ckpt->has_injector) {
        sensor_inj->adopt(ckpt->injector);
      } else if (cfg.sensor_fault.model == SensorFaultModel::kCameraFrozen &&
                 cfg.sensor_fault.onset_tick == ckpt->tick &&
                 ckpt->has_cameras) {
        // The variant freezes at the restore tick: its fresh injector never
        // saw the pre-onset frames, so prime the cache from the checkpoint.
        sensor_inj->prime_frozen(ckpt->cameras[static_cast<std::size_t>(
            cfg.sensor_fault.sensor_index)]);
      }
    }
    ads.adopt(ckpt->ads);
    if (online_det && ckpt->has_detector) online_det->adopt(ckpt->detector);
    if (rec && ckpt->has_recovery) rec->adopt(ckpt->recovery);
    last_applied = ckpt->last_applied;
    failing_back = ckpt->failing_back;
    stationary_sec = ckpt->stationary_sec;
    failback_ticks = ckpt->failback_ticks;
    traced_corruptions = ckpt->traced_corruptions;
    step = ckpt->tick;
    restored_tick = ckpt->tick;
    // The accumulated record through tick-1, re-stamped with THIS run's
    // plans (prefix-shared fields are identical by construction).
    RunResult partial = deserialize_run_result(ckpt->partial_result);
    partial.fault = cfg.fault;
    partial.sensor_fault = cfg.sensor_fault;
    result = std::move(partial);
  }

  // Fork-point capture target: an explicit capture_tick wins; otherwise the
  // sensor-fault onset is the natural fork (register sweeps have no static
  // onset tick — their sharing comes from the setup tier and the dyn-index
  // gate on deeper entries captured by sensor variants of the same seed).
  const int capture_target =
      !deep_enabled ? -1
      : cfg.checkpoint.capture_tick >= 0
          ? cfg.checkpoint.capture_tick
          : (cfg.sensor_fault.active() ? cfg.sensor_fault.onset_tick : -1);
  std::array<std::vector<std::uint8_t>, 3> prev_cameras;
  bool have_prev_cameras = false;
  const auto stash_prev_cameras = [&](const SensorFrame& frame) {
    if (step + 1 != capture_target || frame.cameras.size() != 3) return;
    for (std::size_t i = 0; i < 3; ++i) {
      prev_cameras[i] = frame.cameras[i].bytes();
    }
    have_prev_cameras = true;
  };

  const auto engage_failback = [&]() {
    if (!failing_back) obs::instant(obs::Instant::kFailbackEngaged);
    failing_back = true;
  };

  const auto legitimately_stopped = [&]() {
    if (world.cvip() < 12.0) return true;  // queued behind a vehicle
    const auto light = world.map().next_light_after(world.ego_route_s());
    return light && light->s - world.ego_route_s() < 15.0 &&
           light->phase_at(world.time()) != TrafficLight::Phase::kGreen;
  };

  const auto record_due = [&](DueSource source, double t,
                              FaultOutcome outcome) {
    if (result.due) return;  // keep the FIRST platform detection
    result.due = true;
    result.due_source = source;
    result.due_time = t;
    result.outcome = outcome;
    obs::instant(obs::Instant::kDue, static_cast<double>(source));
  };

  const auto coast_on_hang = [&]() {
    // The agent stops responding; the vehicle coasts on the last command
    // until the watchdog fires. The world may reach its scheduled end
    // mid-coast, in which case the platform never got to observe the hang —
    // clamp the stamped detection time to the actual end of the run.
    const int coast_steps = static_cast<int>(cfg.watchdog_sec / cfg.dt);
    for (int i = 0; i < coast_steps && !world.done(); ++i) {
      world.step(last_applied, cfg.dt);
    }
    if (result.due_source == DueSource::kHangWatchdog) {
      result.due_time = std::min(result.due_time, world.time());
    }
  };

  while (!world.done()) {
    if (capture_target >= 0 && step == capture_target &&
        step > restored_tick) {
      // Fork-point capture, at the top of the tick so a restored run resumes
      // exactly here. Stored regardless of cleanliness: a non-clean
      // checkpoint (mid-recovery, post-DUE) still resumes its own config.
      RunCheckpoint c;
      c.tick = step;
      c.world = world.capture();
      c.rig = rig.rng_state();
      c.gpu0 = gpu0.capture();
      c.cpu0 = cpu0.capture();
      c.gpu1 = gpu1.capture();
      c.cpu1 = cpu1.capture();
      c.ads = ads.capture();
      if (sensor_inj) {
        c.has_injector = true;
        c.injector = sensor_inj->capture();
      }
      if (online_det) {
        c.has_detector = true;
        c.detector = online_det->capture();
      }
      if (rec) {
        c.has_recovery = true;
        c.recovery = rec->capture();
      }
      c.last_applied = last_applied;
      c.failing_back = failing_back;
      c.stationary_sec = stationary_sec;
      c.failback_ticks = failback_ticks;
      c.traced_corruptions = traced_corruptions;
      c.partial_result = serialize_run_result(result);
      if (have_prev_cameras) {
        c.has_cameras = true;
        c.cameras = prev_cameras;
      }
      const std::uint64_t sensor_corruptions =
          sensor_inj ? sensor_inj->corruptions() : 0;
      c.clean = !result.due && !failing_back && !gpu0.fault_activated() &&
                !cpu0.fault_activated() && sensor_corruptions == 0;
      if (rec) {
        // A restart clears transient faults and rewarms — fault-plan-coupled
        // even when nothing activated, so only a never-recovered prefix is
        // shareable.
        c.clean = c.clean && c.recovery.state == 0 &&
                  c.recovery.stats.attempts == 0;
      }
      if (online_det) c.clean = c.clean && !c.detector.alarmed;
      c.gpu0_total = gpu0.total_dyn_instructions();
      c.cpu0_total = cpu0.total_dyn_instructions();
      c.full_digest = full_digest;
      c.prefix_digest = run_config_prefix_digest(cfg, step);
      CheckpointStore::DeepEntry entry;
      entry.prefix_digest = c.prefix_digest;
      entry.full_digest = c.full_digest;
      entry.tick = c.tick;
      entry.clean = c.clean;
      entry.gpu0_total = c.gpu0_total;
      entry.cpu0_total = c.cpu0_total;
      entry.blob = serialize_run_checkpoint(c);
      store->insert_deep(std::move(entry));
    }
    obs::set_tick(static_cast<std::uint32_t>(step));
    obs::SpanScope tick_span(obs::Stage::kTick);
    Actuation applied = last_applied;
    if (failing_back) {
      // Fail-back system: bring the vehicle to a safe stop (paper §I assumes
      // a failback "that can be invoked on error to bring the vehicle to a
      // safe state").
      applied = Actuation{0.0, 0.45, 0.0};
      ++failback_ticks;
      if (world.ego().v < 0.05) break;
    } else if (rec) {
      // Closed-loop mitigation: the RecoveryManager absorbs engine errors
      // and detector alarms, restarts the suspect agent and only falls back
      // to the safe stop on presumed-permanent faults.
      const SensorFrame frame = captured_frame(rig, world, step);
      stash_prev_cameras(frame);
      const RecoveryManager::TickOutcome t =
          rec->tick(frame, cfg.dt, world.ego(), world.time(), step);
      if (t.due != DueSource::kNone) {
        const bool is_hang = t.due == DueSource::kHangWatchdog;
        record_due(t.due, is_hang ? world.time() + cfg.watchdog_sec
                                  : world.time(),
                   is_hang ? FaultOutcome::kHang : FaultOutcome::kCrash);
      }
      if (t.hang) coast_on_hang();
      if (t.have_delta) {
        result.observations.push_back(
            StepObservation{world.time(), world.ego(), t.delta});
      }
      if (cfg.record_traces) {
        result.acting_agent_trace.push_back(t.acting_agent);
      }
      applied = t.applied;
      if (t.failback) engage_failback();
    } else {
      const SensorFrame frame = captured_frame(rig, world, step);
      stash_prev_cameras(frame);
      try {
        const AdsSystem::StepResult sr = ads.step(frame, cfg.dt);
        // Output plausibility validation (ISO 26262-style): a non-finite
        // actuation command is a platform-detected DUE — the ECU rejects it
        // and engages the failback, exactly like a crashed agent process.
        if (!sr.applied.finite()) {
          record_due(DueSource::kOutputValidator, world.time(),
                     FaultOutcome::kCrash);
          engage_failback();
          continue;
        }
        applied = sr.applied.clamped();
        if (sr.have_delta) {
          result.observations.push_back(
              StepObservation{world.time(), world.ego(), sr.delta});
          // Online detector path: the alarm fires in-run; under the
          // safe-stop-only policy it invokes the failback immediately.
          if (online_det && online_det->observe(result.observations.back())) {
            if (!result.online_alarmed) {
              result.online_alarmed = true;
              result.online_alarm_time = online_det->first_alarm_time();
            }
            engage_failback();
          }
        }
        if (cfg.record_traces) {
          result.acting_agent_trace.push_back(sr.acting_agent);
        }
        ++result.recovery.nominal_ticks;
      } catch (const CrashError&) {
        record_due(DueSource::kEngineCrash, world.time(),
                   FaultOutcome::kCrash);
        engage_failback();
        applied = last_applied;
      } catch (const HangError&) {
        record_due(DueSource::kHangWatchdog,
                   world.time() + cfg.watchdog_sec, FaultOutcome::kHang);
        coast_on_hang();
        engage_failback();
        applied = last_applied;
      }
    }

    if (cfg.record_traces && !failing_back) {
      result.time_trace.push_back(world.time());
      result.throttle_trace.push_back(applied.throttle);
      result.brake_trace.push_back(applied.brake);
      result.steer_trace.push_back(applied.steer);
      result.cvip_trace.push_back(world.cvip());
    }

    if (obs::recorder() != nullptr) {
      obs::counter(obs::Counter::kCvip, world.cvip());
      const std::uint64_t corruptions =
          gpu0.corruption_count() + cpu0.corruption_count();
      if (corruptions != traced_corruptions) {
        traced_corruptions = corruptions;
        obs::counter(obs::Counter::kCorruptions,
                     static_cast<double>(corruptions));
      }
    }
    {
      obs::SpanScope world_span(obs::Stage::kWorldStep);
      world.step(applied, cfg.dt);
    }
    last_applied = applied;
    ++step;

    // Stuck-vehicle watchdog (platform-level plausibility monitoring). A
    // frozen vehicle cannot be attributed to one agent, so it invokes the
    // failback under both mitigation policies.
    if (!failing_back && cfg.stuck_watchdog_sec > 0.0) {
      if (world.ego().v < 0.3 && !legitimately_stopped()) {
        stationary_sec += cfg.dt;
        if (stationary_sec >= cfg.stuck_watchdog_sec) {
          record_due(DueSource::kStuckWatchdog, world.time(),
                     FaultOutcome::kHang);
          engage_failback();
        }
      } else {
        stationary_sec = 0.0;
      }
    }
  }

  result.dt = cfg.dt;
  result.collision = world.flags().collision;
  result.collision_time = world.first_collision_time();
  result.flags = world.flags();
  result.trajectory = world.trajectory();
  result.duration = world.time();
  result.steps = world.step_count();
  result.sensor_corruptions = sensor_inj ? sensor_inj->corruptions() : 0;
  result.fault_activated = gpu0.fault_activated() || cpu0.fault_activated() ||
                           result.sensor_corruptions > 0;
  if (rec) {
    const int nominal_before = result.recovery.nominal_ticks;
    result.recovery = rec->stats();
    result.recovery.nominal_ticks += nominal_before;
    if (result.recovery.first_detector_alarm_time >= 0.0) {
      result.online_alarmed = true;
      result.online_alarm_time = result.recovery.first_detector_alarm_time;
    }
  }
  result.recovery.failback_ticks += failback_ticks;
  if (result.outcome != FaultOutcome::kCrash &&
      result.outcome != FaultOutcome::kHang) {
    const bool any_fault = cfg.fault.active() || cfg.sensor_fault.active();
    if (!any_fault) {
      result.outcome = FaultOutcome::kMasked;  // golden run: nothing injected
    } else if (!result.fault_activated) {
      result.outcome = FaultOutcome::kNotActivated;
    } else if (gpu0.corruption_count() + cpu0.corruption_count() +
                   result.sensor_corruptions > 0) {
      result.outcome = FaultOutcome::kSdc;
    } else {
      result.outcome = FaultOutcome::kMasked;
    }
  }
  result.gpu_instructions =
      gpu0.total_dyn_instructions() + gpu1.total_dyn_instructions();
  result.cpu_instructions =
      cpu0.total_dyn_instructions() + cpu1.total_dyn_instructions();
  result.agent_state_bytes = ads.state_bytes();

  if (cfg.trace.enabled()) {
    trace_scope.reset();  // uninstall before the (allocating) export
    std::string label = cfg.trace.label;
    if (label.empty()) {
      // Stable, collision-free default: the run-config digest.
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(run_config_digest(cfg)));
      label = hex;
    }
    obs::export_run_trace(
        cfg.trace, label, cfg.dt, *trace_rec,
        {{"scenario", to_string(cfg.scenario)},
         {"mode", to_string(cfg.mode)},
         {"mitigation", to_string(cfg.mitigation)},
         {"run_seed", std::to_string(cfg.run_seed)},
         {"outcome", to_string(result.outcome)}});
    // Stash the deterministic residue (instants + histograms + drop count)
    // for the campaign executor to harvest — this is how per-run telemetry
    // reaches the merged fleet trace without touching the RunResult.
    obs::RunCapture cap;
    cap.valid = true;
    cap.dropped = trace_rec->dropped();
    cap.dt = cfg.dt;
    cap.histograms = trace_rec->histograms();
    for (const obs::TraceEvent& ev : trace_rec->drain()) {
      if (ev.kind == obs::EventKind::kInstant) cap.instants.push_back(ev);
    }
    obs::set_last_run_capture(std::move(cap));
  }
  return result;
}

}  // namespace dav
