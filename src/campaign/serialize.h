// Versioned binary serialization of campaign run records.
//
// The multi-process executor ships every RunResult from a sandboxed worker
// back to the supervisor over a pipe, and the write-ahead journal persists
// the same records on disk across campaign restarts. Both need one canonical
// encoding: explicit little-endian byte order, bit-exact doubles (IEEE-754
// bits, never a text round-trip), and length-prefixed containers — so a
// deserialized RunResult is bit-identical to the in-process original and the
// resumed campaign summary matches the uninterrupted one exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "campaign/driver.h"

namespace dav {

/// Bumped whenever the RunResult encoding changes; a record with a different
/// version fails to deserialize (and the executor simply re-runs it).
inline constexpr std::uint32_t kRunRecordVersion = 1;

/// Bumped whenever the RunConfig encoding changes; a worker that receives a
/// request with a different version reports the mismatch instead of running
/// a misdecoded config.
inline constexpr std::uint32_t kRunConfigVersion = 1;

/// Append-only little-endian byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  /// Bit-exact IEEE-754 encoding (NaNs and signed zeros round-trip).
  void f64(double v);
  void f32(float v);
  void str(const std::string& s);
  void raw(const std::string& bytes) { buf_ += bytes; }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte buffer. Every accessor throws
/// std::runtime_error on truncated input — a torn record never yields a
/// half-filled RunResult.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  float f32();
  std::string str();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const char* need(std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Complete, versioned encoding of a RunResult (every field, including
/// observation and trace vectors).
std::string serialize_run_result(const RunResult& r);

/// Inverse of serialize_run_result. Throws std::runtime_error on a truncated
/// buffer, trailing garbage, or a version mismatch.
RunResult deserialize_run_result(const std::string& bytes);

// --- result payload (worker verdict + RunResult) ---------------------------
//
// result payload = u8 ok | [str what, when !ok] | serialized RunResult
//
// The unit every executor strategy journals and every worker ships: ok=1
// wraps a completed RunResult, ok=0 wraps the quarantine diagnosis plus the
// kHarnessError placeholder. Pool responses and the socket transport embed
// this payload verbatim, so a journal record is byte-compatible across
// serial, fork-per-run, pool and distributed modes.

struct ResultPayload {
  bool ok = false;
  std::string what;  ///< quarantine diagnosis, when !ok
  RunResult result;
};

/// Encode a worker verdict. Bit-exact: two calls with equal inputs produce
/// identical bytes (the distributed journal merge relies on this).
std::string make_result_payload(bool ok, const std::string& what,
                                const RunResult& r);

/// Inverse of make_result_payload. Throws std::runtime_error on truncated or
/// version-mismatched bytes.
ResultPayload parse_result_payload(const std::string& bytes);

// --- pipe framing (executor <-> worker) ------------------------------------
//
// frame = u32 payload_len | u64 fnv1a64(payload) | payload
//
// Both directions of the executor protocol use this frame: fork-per-run
// workers ship one result frame and exit; pool workers stream request frames
// in and result frames out over long-lived pipes. A process that dies
// mid-write leaves a frame that fails the length or checksum test, which the
// supervisor treats exactly like a signal death.

/// Wrap a payload in a checksummed, length-prefixed frame.
std::string frame_message(const std::string& payload);

/// Result of scanning a receive buffer for one complete frame.
struct FrameSplit {
  enum class Status {
    kNeedMore,  ///< no complete frame yet; read more bytes
    kOk,        ///< payload extracted; strip `consumed` bytes from the buffer
    kCorrupt,   ///< length or checksum violation; the stream is unusable
  };
  Status status = Status::kNeedMore;
  std::string payload;
  std::size_t consumed = 0;
};

/// Scan the front of a streaming receive buffer for one complete frame.
/// Unlike a one-shot pipe (EOF delimits the frame), a persistent worker pipe
/// carries many frames back to back, so extraction is incremental.
FrameSplit try_unframe(const std::string& buf);

/// Complete, versioned encoding of a RunConfig — every outcome-determining
/// field plus the observability routing (TraceOptions), and the trained LUT
/// text (written at full precision, so thresholds survive bit-exactly) when
/// an online detector is attached. This is the pool's request payload: the
/// supervisor streams configs to long-lived workers that were forked before
/// the configs existed.
std::string serialize_run_config(const RunConfig& cfg);

/// A decoded RunConfig plus the storage it points into: cfg.online_lut is
/// wired to `lut` (heap-allocated, so moving the record keeps it valid).
struct RunConfigRecord {
  RunConfig cfg;
  std::unique_ptr<ThresholdLut> lut;  ///< null when no online detector
};

/// Inverse of serialize_run_config. Throws std::runtime_error on truncation,
/// trailing garbage, or a version mismatch.
RunConfigRecord deserialize_run_config(const std::string& bytes);

/// Stable 64-bit digest over every RunConfig field that determines the
/// outcome of run_experiment (including the trained LUT contents when an
/// online detector is attached). Two configs with equal digests produce
/// bit-identical results, so the digest keys the journal: a completed record
/// under the same key can be replayed instead of re-executed.
std::uint64_t run_config_digest(const RunConfig& cfg);

/// Digest over exactly the RunConfig fields that determine scenario
/// construction and the initial (pre-first-frame) ADS state — run_seed and
/// both fault plans are deliberately excluded (they only matter once the run
/// loop starts). Keys the CheckpointStore's tick-0 setup tier (the PR-5 warm
/// cache). In-memory key only: never persisted, free to evolve.
std::uint64_t checkpoint_setup_digest(const RunConfig& cfg);

/// Digest over every RunConfig field that can influence the run BEFORE
/// `tick`. Two configs with equal prefix digests at tick T evolve
/// bit-identically through the first T steps, so a clean checkpoint captured
/// at T under one config can seed any sibling that shares the digest.
///
/// Fault handling (the whole point — variants of one sweep share a prefix):
///  - sensor plan: included only once its onset precedes `tick`;
///  - permanent register plan: included whenever tick > 0 (a permanent fault
///    can corrupt any instruction from the first step);
///  - transient register plan: NEVER included — whether the strike landed
///    before `tick` depends on the dynamic instruction count, which the
///    CheckpointStore gates per entry (target_dyn_index >= captured totals).
/// Domain-separated from run_config_digest; in-memory key only.
std::uint64_t run_config_prefix_digest(const RunConfig& cfg, int tick);

}  // namespace dav
