#include "campaign/journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DAV_JOURNAL_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include "campaign/serialize.h"
#include "util/bits.h"

namespace dav {

namespace {

constexpr char kMagic[8] = {'D', 'A', 'V', 'J', 'R', 'N', 'L', '\x01'};
constexpr std::uint32_t kRecordMarker = 0x52564144u;  // "DAVR" little-endian
constexpr std::uint64_t kHeaderBytes = 8 + 4 + 8;

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error("journal: " + what + " " + path + ": " +
                           std::strerror(errno));
}

bool get_u32(const std::string& b, std::uint64_t& pos, std::uint32_t& out) {
  if (b.size() - pos < 4) return false;
  out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(b[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  pos += 4;
  return true;
}

bool get_u64(const std::string& b, std::uint64_t& pos, std::uint64_t& out) {
  if (b.size() - pos < 8) return false;
  out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(b[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  pos += 8;
  return true;
}

std::string header_bytes(std::uint64_t fingerprint) {
  ByteWriter w;
  w.raw(std::string(kMagic, sizeof(kMagic)));
  w.u32(kJournalVersion);
  w.u64(fingerprint);
  return w.take();
}

/// Truncate `path` to `size` bytes, dropping a torn tail.
void truncate_file(const std::string& path, std::uint64_t size) {
#if DAV_JOURNAL_POSIX
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    io_error("cannot truncate torn tail of", path);
  }
#else
  // Portable fallback: rewrite the valid prefix and swap it into place.
  std::ifstream in(path, std::ios::binary);
  if (!in) io_error("cannot reopen", path);
  std::string keep(static_cast<std::size_t>(size), '\0');
  in.read(keep.data(), static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    io_error("cannot reread valid prefix of", path);
  }
  in.close();
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.write(keep.data(), static_cast<std::streamsize>(size)).flush()) {
    io_error("cannot rewrite", tmp);
  }
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    io_error("cannot swap truncated journal into", path);
  }
#endif
}

}  // namespace

void fsync_parent_dir(const std::string& path) {
#if DAV_JOURNAL_POSIX
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);  // best effort: some filesystems reject directory fsync
  ::close(fd);
#else
  (void)path;
#endif
}

JournalLoad load_journal(const std::string& path, std::uint64_t fingerprint) {
  JournalLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) return load;  // missing journal: fresh start
  load.existed = true;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();

  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("journal: " + path +
                             " exists but is not a campaign journal");
  }
  std::uint64_t pos = sizeof(kMagic);
  std::uint32_t version = 0;
  std::uint64_t file_fingerprint = 0;
  get_u32(bytes, pos, version);
  get_u64(bytes, pos, file_fingerprint);
  if (version != kJournalVersion) {
    throw std::runtime_error("journal: " + path + " has version " +
                             std::to_string(version) + ", expected " +
                             std::to_string(kJournalVersion));
  }
  if (file_fingerprint != fingerprint) {
    throw std::runtime_error(
        "journal: " + path +
        " was written by a different campaign configuration "
        "(fingerprint mismatch); delete it or point DAV_JOURNAL elsewhere");
  }

  load.valid_bytes = pos;
  while (pos < bytes.size()) {
    const std::uint64_t record_start = pos;
    std::uint32_t marker = 0;
    std::uint64_t key = 0;
    std::uint32_t payload_len = 0;
    std::uint64_t checksum = 0;
    if (!get_u32(bytes, pos, marker) || marker != kRecordMarker ||
        !get_u64(bytes, pos, key) || !get_u32(bytes, pos, payload_len) ||
        !get_u64(bytes, pos, checksum) || bytes.size() - pos < payload_len) {
      // Torn or corrupt from here on: everything after the last intact record
      // is discarded and re-executed. Sequential scan, no resync — a corrupt
      // middle record invalidates its successors too (their provenance is
      // unknowable once framing is lost).
      pos = record_start;
      break;
    }
    const std::string payload = bytes.substr(pos, payload_len);
    if (fnv1a64(payload.data(), payload.size()) != checksum) {
      pos = record_start;
      break;
    }
    pos += payload_len;
    load.records[key] = payload;
    load.valid_bytes = pos;
  }
  load.torn_bytes = bytes.size() - load.valid_bytes;
  return load;
}

JournalWriter::JournalWriter(const std::string& path,
                             std::uint64_t fingerprint,
                             const JournalLoad& load)
    : path_(path) {
  if (load.existed && load.torn_bytes > 0) {
    truncate_file(path, load.valid_bytes);
  }
  file_ = std::fopen(path.c_str(), load.existed ? "ab" : "wb");
  if (file_ == nullptr) io_error("cannot open", path);
  if (!load.existed) {
    const std::string header = header_bytes(fingerprint);
    if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
        std::fflush(file_) != 0) {
      io_error("cannot write header to", path);
    }
#if DAV_JOURNAL_POSIX
    if (::fsync(::fileno(file_)) != 0) io_error("cannot fsync", path);
#endif
    // Persist the directory entry too: fsync of the file alone leaves a
    // freshly created journal unreachable after power loss.
    fsync_parent_dir(path);
  }
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : file_(other.file_), path_(std::move(other.path_)) {
  other.file_ = nullptr;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

void JournalWriter::append(std::uint64_t key, const std::string& payload) {
  if (file_ == nullptr) {
    throw std::runtime_error("journal: append on a disabled writer");
  }
  ByteWriter w;
  w.u32(kRecordMarker);
  w.u64(key);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(fnv1a64(payload.data(), payload.size()));
  w.raw(payload);
  const std::string& record = w.bytes();
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    io_error("cannot append record to", path_);
  }
#if DAV_JOURNAL_POSIX
  // Durability past the OS page cache; a SIGKILL'd supervisor only needs the
  // fflush above, fsync additionally covers power loss.
  if (::fsync(::fileno(file_)) != 0) io_error("cannot fsync", path_);
#endif
}

void JournalWriter::close() {
  if (file_ == nullptr) return;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) io_error("cannot close", path_);
}

}  // namespace dav
