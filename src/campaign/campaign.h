// Campaign Manager (paper Fig 3): reads the experiment configuration,
// launches the Injection Plan Generator, and drives golden runs, fault
// injection sweeps and detector training.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/driver.h"
#include "fi/plan_generator.h"

namespace dav {

/// Campaign sizing. The paper's campaigns (500 transient sites, 3 permanent
/// repeats per opcode, 50 golden runs, 10-15 min training routes) ran for
/// weeks on a GPU testbed; the defaults here reproduce the same structure at
/// simulation scale. Set DAV_SCALE=<float> to scale the counts.
struct CampaignScale {
  int transient_runs = 40;           // paper: 500
  int permanent_repeats = 1;         // paper: 3
  int golden_runs = 10;              // paper: 50
  int training_runs_per_scenario = 2;
  double safety_duration_sec = 30.0;
  double long_route_duration_sec = 60.0;  // paper: 10-15 min

  /// Reads DAV_SCALE (default 1.0) and multiplies the run counts.
  static CampaignScale from_env();

  ScenarioOptions scenario_options() const {
    return {long_route_duration_sec, safety_duration_sec};
  }
};

class CampaignManager {
 public:
  CampaignManager(CampaignScale scale, std::uint64_t seed = 2022);

  const CampaignScale& scale() const { return scale_; }

  /// Base configuration for one run of `scenario` in `mode`.
  RunConfig base_config(ScenarioId scenario, AgentMode mode) const;

  /// Golden (fault-free) runs; run-to-run variation comes from sensor noise.
  std::vector<RunResult> golden(ScenarioId scenario, AgentMode mode,
                                int count);

  /// Profile run: counts dynamic instructions for transient site selection.
  ExecutionProfile profile(ScenarioId scenario, AgentMode mode,
                           FaultDomain domain);

  /// One fault-injection campaign: `domain` x `kind` on `scenario` in `mode`.
  /// Transient campaigns sample scale().transient_runs sites uniformly over
  /// the profiled execution; permanent campaigns sweep the full ISA with
  /// scale().permanent_repeats repeats.
  std::vector<RunResult> fi_campaign(ScenarioId scenario, AgentMode mode,
                                     FaultDomain domain, FaultModelKind kind);

  /// Fault-free observation traces from the three long training scenarios
  /// (input to train_lut; paper §III-D trains on long scenarios only).
  std::vector<std::vector<StepObservation>> training_observations(
      AgentMode mode);

 private:
  std::uint64_t run_seed(ScenarioId scenario, AgentMode mode, int domain_tag,
                         int kind_tag, int index) const;

  CampaignScale scale_;
  std::uint64_t seed_;
};

}  // namespace dav
