// Campaign Manager (paper Fig 3): reads the experiment configuration,
// launches the Injection Plan Generator, and drives golden runs, fault
// injection sweeps and detector training.
//
// The manager is crash-proof at campaign scale ("A Case for Bayesian Fault
// Injection" stresses harness robustness): a run that throws anything other
// than the in-model CrashError/HangError — bad_alloc, a logic error from a
// bad configuration — is quarantined as a kHarnessError outcome with its
// offending seed and plan, and the sweep continues.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/driver.h"
#include "campaign/env_options.h"
#include "campaign/executor.h"
#include "fi/plan_generator.h"

namespace dav {

/// Campaign sizing. The paper's campaigns (500 transient sites, 3 permanent
/// repeats per opcode, 50 golden runs, 10-15 min training routes) ran for
/// weeks on a GPU testbed; the defaults here reproduce the same structure at
/// simulation scale. Set DAV_SCALE=<float> to scale the counts.
struct CampaignScale {
  int transient_runs = 40;           // paper: 500
  int permanent_repeats = 1;         // paper: 3
  int golden_runs = 10;              // paper: 50
  int training_runs_per_scenario = 2;
  double safety_duration_sec = 30.0;
  double long_route_duration_sec = 60.0;  // paper: 10-15 min

  /// Deprecated spelling of EnvOptions::from_env().campaign_scale() — the
  /// typed façade (env_options.h) is the only env-reading entry point.
  static CampaignScale from_env();

  /// Fail fast on nonsensical sizing (throws std::invalid_argument with an
  /// actionable message). Called by the CampaignManager constructor.
  void validate() const;

  ScenarioOptions scenario_options() const {
    return {long_route_duration_sec, safety_duration_sec};
  }
};

/// Optional per-campaign overrides for the mitigation/detection fields of
/// every generated RunConfig (the sweep structure and seeds are unchanged,
/// so a safe-stop-only and a restart-recovery campaign are run-for-run
/// comparable). The LUT, when set, must outlive the campaign calls.
struct MitigationSetup {
  MitigationPolicy policy = MitigationPolicy::kSafeStopOnly;
  const ThresholdLut* online_lut = nullptr;
  DetectorConfig online_detector;
  RecoveryConfig recovery;

  void apply(RunConfig& cfg) const {
    cfg.mitigation = policy;
    cfg.online_lut = online_lut;
    cfg.online_detector = online_detector;
    cfg.recovery = recovery;
  }
};

class CampaignManager {
 public:
  /// Environment-free: compiled-in defaults for sizing overrides, executor
  /// routing and tracing — run_all always takes the serial in-process path.
  /// Throws std::invalid_argument when `scale` is nonsensical.
  explicit CampaignManager(CampaignScale scale, std::uint64_t seed = 2022);

  /// Fully injectable: campaign sizing (env.campaign_scale()), executor
  /// routing and trace opt-in all come from `env` — which the caller built
  /// by hand (tests, benches) or read once via EnvOptions::from_env(), the
  /// only env-reading entry point. No constructor reads the environment.
  explicit CampaignManager(const EnvOptions& env, std::uint64_t seed = 2022);

  /// Explicit sizing with injected executor/trace routing (e.g. a custom
  /// CampaignScale that still honors DAV_JOBS/DAV_TRACE from from_env()).
  CampaignManager(CampaignScale scale, EnvOptions env,
                  std::uint64_t seed = 2022);

  const CampaignScale& scale() const { return scale_; }
  const EnvOptions& env() const { return env_; }

  /// Base configuration for one run of `scenario` in `mode`.
  RunConfig base_config(ScenarioId scenario, AgentMode mode) const;

  /// One experiment under the campaign supervisor: CrashError/HangError are
  /// already converted to DUEs inside run_experiment; anything else that
  /// escapes (bad_alloc, an invalid configuration) is caught, recorded as a
  /// quarantined kHarnessError outcome, and the campaign continues.
  RunResult run_supervised(const RunConfig& cfg);

  /// Supervised batch: one result per config, in order (quarantined runs
  /// included as kHarnessError placeholders, never dropped). When the
  /// injected EnvOptions enable the process-isolated executor (jobs > 0
  /// and/or a journal path — see executor.h) the batch runs in sandboxed,
  /// journaled workers (persistent pool by default); otherwise it runs
  /// serially in-process. All paths merge results by config index and yield
  /// bit-identical batches.
  std::vector<RunResult> run_all(const std::vector<RunConfig>& cfgs);

  /// A run the supervisor had to abort, with the offending config (seed and
  /// fault plan included) and the exception text.
  struct Quarantine {
    RunConfig cfg;
    std::string what;
  };
  const std::vector<Quarantine>& quarantined() const { return quarantined_; }

  /// True when at least one run_all batch went through the process-isolated
  /// executor (DAV_JOBS / DAV_JOURNAL set).
  bool executor_used() const { return executor_used_; }

  /// Executor telemetry accumulated over every executor-backed batch:
  /// launches, retries, journal traffic, per-slot busy seconds (wall_sec and
  /// slot_busy_sec sum across batches; spans are per-batch and exported to
  /// the campaign trace instead of accumulated here). Wall-clock data — print
  /// it to stderr, never into a deterministic summary.
  const ExecutorStats& executor_stats() const { return executor_stats_; }

  /// Golden (fault-free) runs; run-to-run variation comes from sensor noise.
  std::vector<RunResult> golden(ScenarioId scenario, AgentMode mode,
                                int count);

  /// Profile run: counts dynamic instructions for transient site selection.
  ExecutionProfile profile(ScenarioId scenario, AgentMode mode,
                           FaultDomain domain);

  /// One fault-injection campaign: `domain` x `kind` on `scenario` in `mode`.
  /// Transient campaigns sample scale().transient_runs sites uniformly over
  /// the profiled execution; permanent campaigns sweep the full ISA with
  /// scale().permanent_repeats repeats. `mitigation`, when non-null, applies
  /// an online detector + mitigation policy to every run of the sweep.
  std::vector<RunResult> fi_campaign(ScenarioId scenario, AgentMode mode,
                                     FaultDomain domain, FaultModelKind kind,
                                     const MitigationSetup* mitigation =
                                         nullptr);

  /// One sensor-path fault-injection campaign: `runs_per_model` runs of each
  /// model in `models` on `scenario` in `mode`, fusion enabled (the sweep
  /// exercises the fail-degraded path; LiDAR capture rides along). Sweep size
  /// derives from scale().transient_runs when `runs_per_model` <= 0 —
  /// deliberately NOT a new CampaignScale field, so existing campaign
  /// fingerprints (journal binding) are unchanged. `mitigation`, when
  /// non-null, applies an online detector + mitigation policy to every run.
  std::vector<RunResult> sensor_fi_campaign(
      ScenarioId scenario, AgentMode mode,
      const std::vector<SensorFaultModel>& models, int runs_per_model = 0,
      int onset_tick = 40, int duration_ticks = 80,
      const MitigationSetup* mitigation = nullptr);

  /// Fault-free observation traces from the three long training scenarios
  /// (input to train_lut; paper §III-D trains on long scenarios only).
  std::vector<std::vector<StepObservation>> training_observations(
      AgentMode mode);

 private:
  std::uint64_t run_seed(ScenarioId scenario, AgentMode mode, int domain_tag,
                         int kind_tag, int index) const;

  /// Digest of (campaign seed, scale): binds a journal file to this
  /// campaign's configuration so resume never replays foreign results.
  std::uint64_t fingerprint() const;

  void accumulate_executor_stats(const ExecutorStats& s);
  /// Writes two Chrome-trace JSON files for one executor batch into the
  /// DAV_TRACE directory. "campaign_<fp>_batch<n>.trace.json" is the fleet
  /// timeline — one pid per worker slot locally, one process group per
  /// endpoint in distributed mode (daemon pool slots on tids, clock-aligned
  /// onto the coordinator timeline), plus per-stage histogram summaries in
  /// otherData. "..._batch<n>.runs.trace.json" is the merged per-run semantic
  /// trace (instant events, pid = plan index + 1, simulated time) and is
  /// byte-identical across identical campaigns.
  void export_campaign_trace(const ExecutorStats& s);

  CampaignScale scale_;
  EnvOptions env_;  ///< injected once at construction; never re-read
  std::uint64_t seed_;
  std::vector<Quarantine> quarantined_;
  bool executor_used_ = false;
  ExecutorStats executor_stats_;
  int trace_batches_ = 0;  // names successive campaign trace files
};

/// The merged per-run semantic trace for one executor batch, as Chrome
/// trace-event JSON: every captured run's instant events, one Perfetto pid
/// per plan index (plan_index + 1), simulated-time timestamps. Byte-identical
/// across identical campaigns regardless of execution strategy or completion
/// order — the distributed-determinism tests and the CI trace gate diff it.
std::string campaign_runs_trace_json(const ExecutorStats& s,
                                     const std::string& fingerprint_hex);

}  // namespace dav
