// The Driver (paper Fig 3): executes one experiment — world + sensors +
// (possibly fault-injected) ADS — and collects the run record.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ads_system.h"
#include "core/detector.h"
#include "fi/fault_model.h"
#include "sim/world.h"

namespace dav {

struct RunConfig {
  ScenarioId scenario = ScenarioId::kLeadSlowdown;
  std::uint64_t scenario_seed = 2022;  // fixes background traffic per scenario
  ScenarioOptions scenario_opts;
  AgentMode mode = AgentMode::kRoundRobin;
  double overlap_ratio = 0.0;     // partial duplication (paper footnote 5)
  FaultPlan fault;                // kind == kNone for golden runs
  std::uint64_t run_seed = 1;     // per-run nondeterminism (sensor noise,
                                  // fault-manifestation draws)
  double dt = 0.05;               // 20 Hz synchronous tick (the paper runs
                                  // 40 Hz; 20 Hz halves compute per run and
                                  // scales rw semantics accordingly)
  int cam_width = 96;
  int cam_height = 72;
  double camera_noise_sigma = 2.0;
  bool record_traces = false;     // keep throttle/CVIP/agent series (Fig 2)
  double watchdog_sec = 0.5;      // hang detection latency
  /// Platform "vehicle stuck" watchdog: a DUE is raised when the ego sits
  /// stationary this long with no vehicle ahead and no red light — the
  /// behavioral analogue of a hung agent process. Non-positive disables it.
  double stuck_watchdog_sec = 8.0;
};

/// Everything recorded about one experimental run.
struct RunResult {
  ScenarioId scenario = ScenarioId::kLeadSlowdown;
  AgentMode mode = AgentMode::kRoundRobin;
  FaultPlan fault;

  FaultOutcome outcome = FaultOutcome::kNotActivated;
  bool fault_activated = false;

  bool collision = false;
  double collision_time = -1.0;
  SafetyFlags flags;
  Trajectory trajectory;
  double duration = 0.0;
  double dt = 0.05;  // tick length (maps trajectory indices to time)
  int steps = 0;

  /// Platform-detected DUE (crash caught / watchdog hang).
  bool due = false;
  double due_time = -1.0;

  /// The comparison stream for the error detector (always recorded; the
  /// detector itself is evaluated offline so rw/td can be swept).
  std::vector<StepObservation> observations;

  /// Optional detailed traces (record_traces).
  std::vector<double> time_trace;
  std::vector<double> throttle_trace;
  std::vector<double> brake_trace;
  std::vector<double> steer_trace;
  std::vector<double> cvip_trace;
  std::vector<int> acting_agent_trace;

  /// Resource accounting.
  std::uint64_t gpu_instructions = 0;  // summed across engine sets
  std::uint64_t cpu_instructions = 0;
  std::size_t agent_state_bytes = 0;
  std::size_t sensor_frame_bytes = 0;
};

RunResult run_experiment(const RunConfig& cfg);

}  // namespace dav
