// The Driver (paper Fig 3): executes one experiment — world + sensors +
// (possibly fault-injected) ADS — and collects the run record.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ads_system.h"
#include "core/detector.h"
#include "core/recovery.h"
#include "fi/fault_model.h"
#include "fi/sensor_fault.h"
#include "util/trace.h"
#include "sim/world.h"

namespace dav {

class CheckpointStore;  // campaign/checkpoint.h

/// Fork-point checkpointing knobs (DESIGN.md §16). `capture_tick` pins the
/// fork tick explicitly; -1 derives it from the sensor-fault onset (register
/// sweeps with no natural onset tick fall back to the tick-0 setup memo).
struct CheckpointOptions {
  bool enabled = false;
  int capture_tick = -1;
};

/// What the platform does once a fault is detected in-run (paper §I, §VII).
enum class MitigationPolicy : std::uint8_t {
  /// The paper's baseline failback: any DUE (and, when the online detector
  /// is enabled, any alarm) brings the vehicle to a safe stop.
  kSafeStopOnly,
  /// DiverseAV's closed loop: identify the faulty agent (arbitration probe),
  /// restart it, run degraded single-agent mode while it re-warms, and
  /// escalate to the safe stop only on presumed-permanent faults.
  kRestartRecovery,
};

std::string to_string(MitigationPolicy p);

struct RunConfig {
  ScenarioId scenario = ScenarioId::kLeadSlowdown;
  std::uint64_t scenario_seed = 2022;  // fixes background traffic per scenario
  ScenarioOptions scenario_opts;
  AgentMode mode = AgentMode::kRoundRobin;
  double overlap_ratio = 0.0;     // partial duplication (paper footnote 5)
  FaultPlan fault;                // kind == kNone for golden runs
  /// Sensor-path injection (fi/sensor_fault.h), orthogonal to the register
  /// plan above: a campaign can sweep either surface or both. Inactive plans
  /// leave the run byte-identical to pre-sensor-fault behavior (pinned).
  SensorFaultPlan sensor_fault;
  /// Fail-degraded fusion (agent/agent.h). Enabling it also turns on LiDAR
  /// capture — the covering channel fusion degrades onto.
  FusionConfig fusion;
  std::uint64_t run_seed = 1;     // per-run nondeterminism (sensor noise,
                                  // fault-manifestation draws)
  double dt = 0.05;               // 20 Hz synchronous tick (the paper runs
                                  // 40 Hz; 20 Hz halves compute per run and
                                  // scales rw semantics accordingly)
  int cam_width = 96;
  int cam_height = 72;
  double camera_noise_sigma = 2.0;
  bool record_traces = false;     // keep throttle/CVIP/agent series (Fig 2)
  double watchdog_sec = 0.5;      // hang detection latency
  /// Platform "vehicle stuck" watchdog: a DUE is raised when the ego sits
  /// stationary this long with no vehicle ahead and no red light — the
  /// behavioral analogue of a hung agent process. Non-positive disables it.
  double stuck_watchdog_sec = 8.0;

  /// Online error detection: a trained LUT (non-null enables it) stepped
  /// INSIDE the loop, so alarms fire in-run instead of in offline replay.
  /// The caller owns the LUT; it must outlive run_experiment.
  const ThresholdLut* online_lut = nullptr;
  DetectorConfig online_detector;

  /// What to do when the platform or the online detector raises an alarm.
  MitigationPolicy mitigation = MitigationPolicy::kSafeStopOnly;
  RecoveryConfig recovery;  // used when mitigation == kRestartRecovery

  /// Flight recorder (src/obs/): when enabled, run_experiment installs a
  /// TraceRecorder for the run and exports Chrome-trace JSON + CSV at run
  /// end. Deliberately EXCLUDED from run_config_digest — tracing never
  /// affects the run outcome, so journaled records stay replayable whether
  /// or not the campaign was traced.
  obs::TraceOptions trace;

  /// Fork-point checkpointing (campaign/checkpoint.h): when enabled and a
  /// CheckpointStore is supplied, run_experiment snapshots the full run state
  /// at the fork tick and restores a stored prefix instead of re-simulating
  /// it. Like `trace`, EXCLUDED from run_config_digest — checkpointing never
  /// changes a run's outcome (pinned byte-identical), so journal keys and
  /// replay stay valid whether or not the campaign checkpointed.
  CheckpointOptions checkpoint;

  /// Fail fast on nonsensical parameters (throws std::invalid_argument with
  /// an actionable message). Called by run_experiment.
  void validate() const;
};

/// Fluent assembly for RunConfig's detector / mitigation / trace cluster —
/// the fields that travel together (a detector without its DetectorConfig,
/// or restart-recovery without its RecoveryConfig, is a latent bug). build()
/// validates, so a half-wired cluster fails at construction, not mid-run.
class RunConfigBuilder {
 public:
  RunConfigBuilder() = default;
  /// Start from an existing config (e.g. CampaignManager::base_config).
  explicit RunConfigBuilder(RunConfig base) : cfg_(std::move(base)) {}

  RunConfigBuilder& scenario(ScenarioId v) { cfg_.scenario = v; return *this; }
  RunConfigBuilder& scenario_seed(std::uint64_t v) {
    cfg_.scenario_seed = v;
    return *this;
  }
  RunConfigBuilder& scenario_options(const ScenarioOptions& v) {
    cfg_.scenario_opts = v;
    return *this;
  }
  RunConfigBuilder& mode(AgentMode v) { cfg_.mode = v; return *this; }
  RunConfigBuilder& overlap_ratio(double v) {
    cfg_.overlap_ratio = v;
    return *this;
  }
  RunConfigBuilder& fault(const FaultPlan& v) { cfg_.fault = v; return *this; }
  RunConfigBuilder& sensor_fault(const SensorFaultPlan& v) {
    cfg_.sensor_fault = v;
    return *this;
  }
  RunConfigBuilder& fusion(const FusionConfig& v) {
    cfg_.fusion = v;
    return *this;
  }
  RunConfigBuilder& run_seed(std::uint64_t v) {
    cfg_.run_seed = v;
    return *this;
  }
  RunConfigBuilder& record_traces(bool v = true) {
    cfg_.record_traces = v;
    return *this;
  }
  /// Online in-run detection: the LUT (caller-owned, must outlive the run)
  /// plus its tuning, attached together.
  RunConfigBuilder& online_detection(const ThresholdLut& lut,
                                     const DetectorConfig& det = {}) {
    cfg_.online_lut = &lut;
    cfg_.online_detector = det;
    return *this;
  }
  /// Mitigation policy plus the recovery tuning it needs.
  RunConfigBuilder& mitigation(MitigationPolicy policy,
                               const RecoveryConfig& recovery = {}) {
    cfg_.mitigation = policy;
    cfg_.recovery = recovery;
    return *this;
  }
  /// Flight-recorder routing (EnvOptions::trace_options or hand-built).
  RunConfigBuilder& flight_recorder(const obs::TraceOptions& v) {
    cfg_.trace = v;
    return *this;
  }
  /// Fork-point checkpointing (explicit options or just on/off).
  RunConfigBuilder& checkpoint(const CheckpointOptions& v) {
    cfg_.checkpoint = v;
    return *this;
  }
  RunConfigBuilder& checkpoint(bool enabled) {
    cfg_.checkpoint.enabled = enabled;
    return *this;
  }

  /// The assembled config; throws std::invalid_argument when inconsistent
  /// (same checks as RunConfig::validate).
  RunConfig build() const {
    cfg_.validate();
    return cfg_;
  }

 private:
  RunConfig cfg_;
};

/// Everything recorded about one experimental run.
struct RunResult {
  ScenarioId scenario = ScenarioId::kLeadSlowdown;
  AgentMode mode = AgentMode::kRoundRobin;
  FaultPlan fault;
  /// The sensor-path plan this run executed (inactive for register-only and
  /// golden runs) and how many elements it actually corrupted.
  SensorFaultPlan sensor_fault;
  std::uint64_t sensor_corruptions = 0;
  std::uint64_t run_seed = 0;

  FaultOutcome outcome = FaultOutcome::kNotActivated;
  bool fault_activated = false;

  bool collision = false;
  double collision_time = -1.0;
  SafetyFlags flags;
  Trajectory trajectory;
  double duration = 0.0;
  /// The scenario's scheduled duration — the denominator of availability
  /// (a safe-stopped run forfeits its remaining mission time).
  double scheduled_duration = 0.0;
  double dt = 0.05;  // tick length (maps trajectory indices to time)
  int steps = 0;

  /// Platform-detected DUE (crash caught / watchdog hang / rejected output).
  bool due = false;
  double due_time = -1.0;
  DueSource due_source = DueSource::kNone;

  /// Online detector verdict (only when RunConfig::online_lut was set).
  bool online_alarmed = false;
  double online_alarm_time = -1.0;

  /// Mitigation bookkeeping: restarts, MTTR timestamps, tick census.
  MitigationStats recovery;

  /// The comparison stream for the error detector (always recorded; the
  /// detector itself is evaluated offline so rw/td can be swept).
  std::vector<StepObservation> observations;

  /// Optional detailed traces (record_traces).
  std::vector<double> time_trace;
  std::vector<double> throttle_trace;
  std::vector<double> brake_trace;
  std::vector<double> steer_trace;
  std::vector<double> cvip_trace;
  std::vector<int> acting_agent_trace;

  /// Resource accounting.
  std::uint64_t gpu_instructions = 0;  // summed across engine sets
  std::uint64_t cpu_instructions = 0;
  std::size_t agent_state_bytes = 0;
  std::size_t sensor_frame_bytes = 0;
};

RunResult run_experiment(const RunConfig& cfg);

/// run_experiment with an optional checkpoint store (nullptr = always cold).
/// Persistent pool workers pass their store: the tick-0 setup tier replays
/// scenario construction and the initial ADS state; the deep tier (when
/// cfg.checkpoint.enabled) restores a shared fault-free prefix at the fork
/// tick and simulates only the post-injection suffix. Results are
/// bit-identical either way (pinned by test_executor / test_checkpoint).
RunResult run_experiment(const RunConfig& cfg, CheckpointStore* store);

}  // namespace dav
