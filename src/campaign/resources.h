// Resource accounting (paper Table II).
//
// The paper reports per-processor CPU/GPU utilization and RAM/VRAM for the
// single-agent, DiverseAV and fully-duplicated configurations. We account
// dynamic instructions and live state bytes from golden runs and normalize
// utilization so the single-agent configuration matches the paper's nominal
// operating point (4% CPU, 14% GPU on their testbed) — the *relative* shape
// across configurations is the reproduced result.
#pragma once

#include <string>

#include "campaign/driver.h"

namespace dav {

struct ResourceUsage {
  std::string config;
  double cpu_util_pct = 0.0;   // per processor
  double gpu_util_pct = 0.0;   // per processor
  double ram_kb = 0.0;         // agent private state (all agents)
  double vram_kb = 0.0;        // GPU-resident tensors (all agents)
  int processors = 1;          // engine sets provisioned
};

/// Nominal single-agent utilization used for normalization (paper Table II).
constexpr double kNominalSingleCpuPct = 4.0;
constexpr double kNominalSingleGpuPct = 14.0;

/// Derive the usage of `run` (a golden run in some mode), normalized against
/// the single-agent instruction rates.
ResourceUsage measure_resources(const RunResult& run,
                                const RunResult& single_reference);

}  // namespace dav
