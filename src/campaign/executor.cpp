#include "campaign/executor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define DAV_EXECUTOR_POSIX 1
#include <csignal>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "campaign/serialize.h"
#include "util/bits.h"

namespace dav {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_sec(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

// ---- wire format, worker -> supervisor ------------------------------------
//
// frame   = u32 payload_len | u64 fnv1a64(payload) | payload
// payload = u8 ok | [str what, when !ok] | serialized RunResult
//
// A worker that dies mid-write leaves a frame that fails the length or
// checksum test; the supervisor treats that exactly like a signal death.

struct Payload {
  bool ok = false;
  std::string what;
  RunResult result;
};

std::string make_payload(bool ok, const std::string& what,
                         const RunResult& r) {
  ByteWriter w;
  w.u8(ok ? 1 : 0);
  if (!ok) w.str(what);
  w.raw(serialize_run_result(r));
  return w.take();
}

Payload parse_payload(const std::string& bytes) {
  ByteReader r(bytes);
  Payload p;
  p.ok = r.u8() != 0;
  if (!p.ok) p.what = r.str();
  std::string rest(bytes.data() + (bytes.size() - r.remaining()),
                   r.remaining());
  p.result = deserialize_run_result(rest);
  return p;
}

std::string frame_payload(const std::string& payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(fnv1a64(payload.data(), payload.size()));
  w.raw(payload);
  return w.take();
}

/// Extract the payload from a complete, checksummed frame; nullopt when the
/// buffer is torn, truncated, or corrupt.
std::optional<std::string> unframe(const std::string& buf) {
  if (buf.size() < 12) return std::nullopt;
  ByteReader r(buf);
  const std::uint32_t len = r.u32();
  const std::uint64_t checksum = r.u64();
  if (r.remaining() != len) return std::nullopt;
  std::string payload = buf.substr(12);
  if (fnv1a64(payload.data(), payload.size()) != checksum) {
    return std::nullopt;
  }
  return payload;
}

}  // namespace

RunResult harness_error_result(const RunConfig& cfg) {
  RunResult r;
  r.scenario = cfg.scenario;
  r.mode = cfg.mode;
  r.fault = cfg.fault;
  r.run_seed = cfg.run_seed;
  r.dt = cfg.dt;
  r.outcome = FaultOutcome::kHarnessError;
  return r;
}

ExecutorOptions ExecutorOptions::from_env() {
  ExecutorOptions o;
  o.jobs = env_int("DAV_JOBS", 0);
  if (const char* j = std::getenv("DAV_JOURNAL")) o.journal_path = j;
  o.run_timeout_sec = env_double("DAV_RUN_TIMEOUT_SEC", o.run_timeout_sec);
  o.max_retries = env_int("DAV_RUN_RETRIES", o.max_retries);
  o.cpu_limit_sec = env_double("DAV_RUN_CPU_SEC", o.cpu_limit_sec);
  o.address_space_mb = static_cast<std::size_t>(
      std::max(0, env_int("DAV_RUN_AS_MB", 0)));
  return o;
}

void ExecutorOptions::validate() const {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("ExecutorOptions: " + what);
  };
  if (!(run_timeout_sec > 0.0)) {
    reject("run_timeout_sec must be positive, got " +
           std::to_string(run_timeout_sec));
  }
  if (max_retries < 0) {
    reject("max_retries must be non-negative, got " +
           std::to_string(max_retries));
  }
  if (retry_backoff_sec < 0.0) {
    reject("retry_backoff_sec must be non-negative, got " +
           std::to_string(retry_backoff_sec));
  }
  if (cpu_limit_sec < 0.0) {
    reject("cpu_limit_sec must be non-negative, got " +
           std::to_string(cpu_limit_sec));
  }
}

CampaignExecutor::CampaignExecutor(ExecutorOptions opts, RunFn fn)
    : opts_(std::move(opts)),
      fn_(fn ? std::move(fn)
             : RunFn([](const RunConfig& c) { return run_experiment(c); })) {
  opts_.validate();
}

void CampaignExecutor::journal_append(std::uint64_t key,
                                      const std::string& payload) {
  journal_.append(key, payload);
  ++stats_.journal_appends;
  stats_.journal_bytes += payload.size();
}

std::vector<RunResult> CampaignExecutor::run_all(
    const std::vector<RunConfig>& cfgs) {
  quarantined_.clear();
  stats_ = ExecutorStats{};
  batch_start_ = Clock::now();
  stats_.jobs = std::max(1, opts_.jobs);
  stats_.slot_busy_sec.assign(static_cast<std::size_t>(stats_.jobs), 0.0);

  std::vector<RunResult> results(cfgs.size());
  std::vector<char> done(cfgs.size(), 0);
  std::vector<std::uint64_t> keys(cfgs.size(), 0);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    keys[i] = run_config_digest(cfgs[i]);
  }

  if (!opts_.journal_path.empty()) {
    const JournalLoad load =
        load_journal(opts_.journal_path, opts_.campaign_fingerprint);
    stats_.torn_bytes_discarded = load.torn_bytes;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      const auto it = load.records.find(keys[i]);
      if (it == load.records.end()) continue;
      try {
        Payload p = parse_payload(it->second);
        results[i] = std::move(p.result);
        done[i] = 1;
        ++stats_.journal_hits;
        if (!p.ok) {
          // Replay the quarantine verdict too, so a resumed campaign reports
          // the same quarantined() list as the uninterrupted one.
          quarantined_.push_back(RunQuarantine{i, cfgs[i], p.what});
          ++stats_.quarantined;
        }
      } catch (const std::exception&) {
        // Undeserializable (e.g. written by an older record version):
        // re-execute the run.
      }
    }
    journal_ = JournalWriter(opts_.journal_path, opts_.campaign_fingerprint,
                             load);
  } else {
    journal_ = JournalWriter();
  }

#if DAV_EXECUTOR_POSIX
  if (opts_.force_in_process) {
    run_in_process(cfgs, keys, results, done);
  } else {
    run_forked(cfgs, keys, results, done);
  }
#else
  run_in_process(cfgs, keys, results, done);
#endif

  journal_.close();
  stats_.wall_sec = elapsed_sec(batch_start_, Clock::now());
  // Workers finish in nondeterministic order; the quarantine report must not.
  std::sort(quarantined_.begin(), quarantined_.end(),
            [](const RunQuarantine& a, const RunQuarantine& b) {
              return a.index < b.index;
            });
  return results;
}

void CampaignExecutor::run_in_process(const std::vector<RunConfig>& cfgs,
                                      const std::vector<std::uint64_t>& keys,
                                      std::vector<RunResult>& results,
                                      const std::vector<char>& done) {
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] != 0) continue;
    const Clock::time_point started = Clock::now();
    try {
      RunResult r = fn_(cfgs[i]);
      if (journal_.enabled()) {
        journal_append(keys[i], make_payload(true, {}, r));
      }
      results[i] = std::move(r);
    } catch (const std::exception& e) {
      // In-process exceptions are deterministic; retrying them is futile.
      results[i] = harness_error_result(cfgs[i]);
      quarantined_.push_back(RunQuarantine{i, cfgs[i], e.what()});
      ++stats_.quarantined;
      if (journal_.enabled()) {
        journal_append(keys[i],
                       make_payload(false, e.what(), results[i]));
      }
    }
    const double dur = elapsed_sec(started, Clock::now());
    stats_.slot_busy_sec[0] += dur;
    stats_.spans.push_back(
        WorkerSpan{i, 0, 0, elapsed_sec(batch_start_, started), dur});
  }
}

#if DAV_EXECUTOR_POSIX

namespace {

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // supervisor gone; nothing useful left to do
    }
    off += static_cast<std::size_t>(n);
  }
}

void apply_rlimits(const ExecutorOptions& opts) {
  if (opts.cpu_limit_sec > 0.0) {
    const auto sec = static_cast<rlim_t>(opts.cpu_limit_sec + 0.999);
    // Hard limit one second past the soft one: SIGXCPU at the soft limit,
    // guaranteed SIGKILL shortly after if the worker somehow survives it.
    rlimit lim{sec, sec + 1};
    ::setrlimit(RLIMIT_CPU, &lim);
  }
  if (opts.address_space_mb > 0) {
    const auto bytes =
        static_cast<rlim_t>(opts.address_space_mb) * 1024u * 1024u;
    rlimit lim{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &lim);
  }
}

[[noreturn]] void worker_main(int fd, const RunConfig& cfg,
                              const CampaignExecutor::RunFn& fn,
                              const ExecutorOptions& opts) {
  apply_rlimits(opts);
  std::string payload;
  try {
    payload = make_payload(true, {}, fn(cfg));
  } catch (const std::exception& e) {
    payload = make_payload(false, e.what(), harness_error_result(cfg));
  } catch (...) {
    payload = make_payload(false, "unknown exception",
                           harness_error_result(cfg));
  }
  write_all(fd, frame_payload(payload));
  // _exit, not exit: the worker shares the supervisor's stdio and journal
  // buffers via fork; running atexit/flush here would emit them twice.
  ::_exit(0);
}

int await_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) break;
  }
  return status;
}

std::string describe_death(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    return "worker died: signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "worker exited with code " + std::to_string(WEXITSTATUS(status)) +
           " without a complete result record";
  }
  return "worker ended without a complete result record";
}

}  // namespace

void CampaignExecutor::run_forked(const std::vector<RunConfig>& cfgs,
                                  const std::vector<std::uint64_t>& keys,
                                  std::vector<RunResult>& results,
                                  const std::vector<char>& done) {
  struct Pending {
    std::size_t index = 0;
    int attempt = 0;
    Clock::time_point eligible{};
  };
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::size_t index = 0;
    int attempt = 0;
    int slot = 0;  // utilization accounting + Perfetto pid
    std::string buf;
    Clock::time_point started{};
    Clock::time_point deadline{};
    bool timed_out = false;
  };

  const int jobs = std::max(1, opts_.jobs);
  const auto timeout =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(opts_.run_timeout_sec));

  std::deque<Pending> pending;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] == 0) pending.push_back(Pending{i, 0, start});
  }
  std::vector<Worker> workers;
  std::vector<char> slot_used(static_cast<std::size_t>(jobs), 0);

  const auto claim_slot = [&]() {
    for (std::size_t s = 0; s < slot_used.size(); ++s) {
      if (slot_used[s] == 0) {
        slot_used[s] = 1;
        return static_cast<int>(s);
      }
    }
    return 0;  // unreachable: launches are capped at `jobs` live workers
  };

  const auto launch = [&](const Pending& p) {
    int pipefd[2] = {-1, -1};
    if (::pipe(pipefd) != 0) {
      throw std::runtime_error(std::string("executor: pipe failed: ") +
                               std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      throw std::runtime_error(std::string("executor: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      ::close(pipefd[0]);
      worker_main(pipefd[1], cfgs[p.index], fn_, opts_);
    }
    ::close(pipefd[1]);
    Worker w;
    w.pid = pid;
    w.fd = pipefd[0];
    w.index = p.index;
    w.attempt = p.attempt;
    w.slot = claim_slot();
    w.started = Clock::now();
    w.deadline = w.started + timeout;
    workers.push_back(std::move(w));
    ++stats_.launched;
  };

  const auto requeue_or_quarantine = [&](const Worker& w,
                                         const std::string& what) {
    if (w.attempt < opts_.max_retries) {
      ++stats_.retries;
      const double backoff_sec =
          opts_.retry_backoff_sec * static_cast<double>(1 << w.attempt);
      pending.push_back(Pending{
          w.index, w.attempt + 1,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_sec))});
      return;
    }
    results[w.index] = harness_error_result(cfgs[w.index]);
    quarantined_.push_back(RunQuarantine{w.index, cfgs[w.index], what});
    ++stats_.quarantined;
    if (journal_.enabled()) {
      journal_append(keys[w.index],
                     make_payload(false, what, results[w.index]));
    }
  };

  const auto finalize = [&](Worker w) {
    ::close(w.fd);
    const int status = await_child(w.pid);
    const double dur = elapsed_sec(w.started, Clock::now());
    stats_.slot_busy_sec[static_cast<std::size_t>(w.slot)] += dur;
    stats_.spans.push_back(WorkerSpan{w.index, w.slot, w.attempt,
                                      elapsed_sec(batch_start_, w.started),
                                      dur});
    slot_used[static_cast<std::size_t>(w.slot)] = 0;

    // A complete, checksummed frame wins regardless of exit status (the
    // watchdog may race a worker that finished its write).
    if (const auto payload = unframe(w.buf)) {
      try {
        Payload p = parse_payload(*payload);
        if (p.ok) {
          if (journal_.enabled()) journal_append(keys[w.index], *payload);
          results[w.index] = std::move(p.result);
        } else {
          requeue_or_quarantine(w, p.what);
        }
        return;
      } catch (const std::exception&) {
        // fall through to the death diagnosis
      }
    }
    std::string what;
    if (w.timed_out) {
      what = "watchdog: no result after " +
             std::to_string(opts_.run_timeout_sec) + " s; worker killed";
    } else {
      what = describe_death(status);
      if (WIFSIGNALED(status)) ++stats_.signal_deaths;
    }
    requeue_or_quarantine(w, what);
  };

  while (!pending.empty() || !workers.empty()) {
    // Launch every eligible pending run into free worker slots.
    Clock::time_point now = Clock::now();
    for (auto it = pending.begin();
         it != pending.end() && static_cast<int>(workers.size()) < jobs;) {
      if (it->eligible <= now) {
        launch(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    // Sleep until the next event: readable pipe, watchdog deadline, or a
    // retry becoming eligible.
    Clock::time_point wake = now + std::chrono::seconds(1);
    for (const Worker& w : workers) wake = std::min(wake, w.deadline);
    if (static_cast<int>(workers.size()) < jobs) {
      for (const Pending& p : pending) wake = std::min(wake, p.eligible);
    }
    const int timeout_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));

    std::vector<pollfd> fds;
    fds.reserve(workers.size());
    for (const Worker& w : workers) fds.push_back(pollfd{w.fd, POLLIN, 0});
    const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                          static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("executor: poll failed: ") +
                               std::strerror(errno));
    }

    // Drain readable pipes; an EOF means the worker is done (or dead).
    for (std::size_t i = 0; i < workers.size();) {
      Worker& w = workers[i];
      const short revents = i < fds.size() ? fds[i].revents : 0;
      if (revents == 0) {
        ++i;
        continue;
      }
      char chunk[65536];
      const ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
      if (n > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(n));
        ++i;
      } else if (n < 0 && errno == EINTR) {
        ++i;
      } else {
        Worker finished = std::move(w);
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        finalize(std::move(finished));
      }
    }

    // Enforce the wall-clock watchdog; the kill produces an EOF picked up by
    // the next poll round.
    now = Clock::now();
    for (Worker& w : workers) {
      if (!w.timed_out && now >= w.deadline) {
        w.timed_out = true;
        ++stats_.timeouts;
        ::kill(w.pid, SIGKILL);
      }
    }
  }
}

#else  // !DAV_EXECUTOR_POSIX

void CampaignExecutor::run_forked(const std::vector<RunConfig>& cfgs,
                                  const std::vector<std::uint64_t>& keys,
                                  std::vector<RunResult>& results,
                                  const std::vector<char>& done) {
  run_in_process(cfgs, keys, results, done);
}

#endif

}  // namespace dav
