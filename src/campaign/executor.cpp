#include "campaign/executor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define DAV_EXECUTOR_POSIX 1
#include <csignal>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "campaign/checkpoint.h"
#include "campaign/env_options.h"
#include "campaign/serialize.h"
#include "campaign/transport.h"
#include "obs/export.h"
#include "util/bits.h"

namespace dav {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_sec(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// ---- wire format ----------------------------------------------------------
//
// Frames (serialize.h: u32 len | u64 fnv1a64 | payload) carry:
//   result payload (serialize.h: u8 ok | [str what] | serialized RunResult)
//   pool request payload = u64 index | serialized RunConfig
//   pool response payload = u64 index | u32 runs_served |
//                           u64 checkpoint_hits | u64 checkpoint_misses |
//                           u64 checkpoint_evictions | str capture_blob |
//                           result payload
// The response embeds the plain result payload verbatim, so the journaled
// record is byte-compatible across pool, fork-per-run, distributed and
// serial modes. capture_blob is an encoded RunTraceCapture (transport.h) —
// the run's trace residue — or empty when the run was untraced; it rides
// OUTSIDE the result payload, so journal bytes never depend on tracing.
// (Fork-per-run workers write the bare result payload as their whole frame,
// so that path cannot carry captures — a documented limitation.)
//
// A worker that dies mid-write leaves a frame that fails the length or
// checksum test; the supervisor treats that exactly like a signal death.

/// One-shot unframe (fork-per-run pipes, where EOF delimits the frame):
/// the buffer must hold exactly one complete, checksummed frame.
std::optional<std::string> unframe(const std::string& buf) {
  const FrameSplit fs = try_unframe(buf);
  if (fs.status != FrameSplit::Status::kOk || fs.consumed != buf.size()) {
    return std::nullopt;
  }
  return fs.payload;
}

/// Worker-side CheckpointStore sized from the options. Returns null when
/// neither tier is wanted.
std::unique_ptr<CheckpointStore> make_store(const ExecutorOptions& opts) {
  if (!opts.warm_cache && !opts.checkpoint) return nullptr;
  auto store = std::make_unique<CheckpointStore>();
  store->set_max_deep_bytes(
      static_cast<std::size_t>(opts.checkpoint_max_mb) * 1024u * 1024u);
  return store;
}

/// Fold the executor-level checkpoint flag into the per-run config. The
/// CheckpointOptions are digest-excluded, so journal keys and record bytes
/// are unchanged by this.
RunConfig effective_config(const RunConfig& cfg, const ExecutorOptions& opts) {
  if (!opts.checkpoint || cfg.checkpoint.enabled) return cfg;
  RunConfig c = cfg;
  c.checkpoint.enabled = true;
  return c;
}

/// Prefix-affinity key for pool dispatch: the run's prefix digest at its
/// capture target, so fault variants that share a fault-free prefix group
/// onto one worker (the one holding the checkpoint). 0 when the run has no
/// capture target (then affinity cannot help).
std::uint64_t dispatch_affinity(const RunConfig& cfg,
                                const ExecutorOptions& opts) {
  if (!opts.checkpoint && !cfg.checkpoint.enabled) return 0;
  const int target = cfg.checkpoint.capture_tick >= 0
                         ? cfg.checkpoint.capture_tick
                         : (cfg.sensor_fault.active() ? cfg.sensor_fault.onset_tick
                                                      : -1);
  if (target < 0) return 0;
  return run_config_prefix_digest(cfg, target);
}

}  // namespace

RunResult harness_error_result(const RunConfig& cfg) {
  RunResult r;
  r.scenario = cfg.scenario;
  r.mode = cfg.mode;
  r.fault = cfg.fault;
  r.run_seed = cfg.run_seed;
  r.dt = cfg.dt;
  r.outcome = FaultOutcome::kHarnessError;
  return r;
}

ExecutorOptions ExecutorOptions::from_env() {
  return EnvOptions::from_env().executor_options();
}

void ExecutorOptions::validate() const {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("ExecutorOptions: " + what);
  };
  if (!(run_timeout_sec > 0.0)) {
    reject("run_timeout_sec must be positive, got " +
           std::to_string(run_timeout_sec));
  }
  if (max_retries < 0) {
    reject("max_retries must be non-negative, got " +
           std::to_string(max_retries));
  }
  if (retry_backoff_sec < 0.0) {
    reject("retry_backoff_sec must be non-negative, got " +
           std::to_string(retry_backoff_sec));
  }
  if (cpu_limit_sec < 0.0) {
    reject("cpu_limit_sec must be non-negative, got " +
           std::to_string(cpu_limit_sec));
  }
  if (!(heartbeat_sec > 0.0)) {
    reject("heartbeat_sec must be positive, got " +
           std::to_string(heartbeat_sec));
  }
  if (straggler_sec < 0.0) {
    reject("straggler_sec must be non-negative, got " +
           std::to_string(straggler_sec));
  }
  if (!(metrics_interval_sec > 0.0)) {
    reject("metrics_interval_sec must be positive, got " +
           std::to_string(metrics_interval_sec));
  }
  for (const std::string& spec : workers) {
    try {
      parse_endpoint(spec);
    } catch (const std::invalid_argument& e) {
      reject(std::string("workers entry is not an endpoint: ") + e.what());
    }
  }
}

CampaignExecutor::CampaignExecutor(ExecutorOptions opts, RunFn fn)
    : CampaignExecutor(
          std::move(opts),
          fn ? CheckpointRunFn([f = std::move(fn)](
                                   const RunConfig& c,
                                   CheckpointStore*) { return f(c); })
             : CheckpointRunFn{}) {}

CampaignExecutor::CampaignExecutor(ExecutorOptions opts, CheckpointRunFn fn)
    : opts_(std::move(opts)),
      fn_(fn ? std::move(fn)
             : CheckpointRunFn([](const RunConfig& c, CheckpointStore* s) {
                 return run_experiment(c, s);
               })) {
  opts_.validate();
}

void CampaignExecutor::journal_append(std::uint64_t key,
                                      const std::string& payload) {
  journal_.append(key, payload);
  ++stats_.journal_appends;
  stats_.journal_bytes += payload.size();
}

void CampaignExecutor::fold_capture(RunTraceCapture cap) {
  if (!cap.capture.valid) return;
  // First arrival wins: a straggler re-dispatch or retry of an already-folded
  // plan index is discarded, mirroring the result dedup.
  if (!capture_seen_.insert(cap.plan_index).second) return;
  stats_.trace_dropped += cap.capture.dropped;
  stats_.stage_hist.merge(cap.capture.histograms);
  stats_.captures.push_back(std::move(cap));
}

void CampaignExecutor::write_metrics_snapshot(std::size_t total,
                                              std::size_t done, bool force) {
  if (opts_.metrics_path.empty()) return;
  const Clock::time_point now = Clock::now();
  if (!force && last_metrics_ != Clock::time_point{} &&
      elapsed_sec(last_metrics_, now) < opts_.metrics_interval_sec) {
    return;
  }
  last_metrics_ = now;

  const double elapsed = elapsed_sec(batch_start_, now);
  // Journal replays resolve instantly; the rate that predicts the ETA is the
  // executed-run rate.
  const std::size_t hits = static_cast<std::size_t>(
      std::max(0, stats_.journal_hits));
  const std::size_t executed = done > hits ? done - hits : 0;
  const double rate = elapsed > 0.0 ? static_cast<double>(executed) / elapsed
                                    : 0.0;
  double eta = -1.0;
  if (done >= total) {
    eta = 0.0;
  } else if (rate > 0.0) {
    eta = static_cast<double>(total - done) / rate;
  }

  char buf[256];
  std::string out;
  out.reserve(1024);
  const auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out += '\n';
  };
  line("schema=dav.metrics.v1");
  line("phase=%s", done >= total ? "done" : "running");
  line("runs_total=%zu", total);
  line("runs_done=%zu", done);
  line("runs_remaining=%zu", total - std::min(done, total));
  line("journal_hits=%d", stats_.journal_hits);
  line("elapsed_sec=%.3f", elapsed);
  line("runs_per_sec=%.6g", rate);
  line("eta_sec=%.3f", eta);
  line("retries=%d", stats_.retries);
  line("quarantined=%d", stats_.quarantined);
  line("timeouts=%d", stats_.timeouts);
  line("signal_deaths=%d", stats_.signal_deaths);
  line("trace_dropped=%llu",
       static_cast<unsigned long long>(stats_.trace_dropped));
  line("endpoints=%zu", stats_.endpoints.size());
  for (const EndpointTelemetry& ep : stats_.endpoints) {
    line("endpoint.%d.spec=%s", ep.index, ep.spec.c_str());
    line("endpoint.%d.state=%s", ep.index, ep.state.c_str());
    line("endpoint.%d.slots=%u", ep.index, ep.slots);
    line("endpoint.%d.runs_done=%llu", ep.index,
         static_cast<unsigned long long>(ep.runs_done));
    line("endpoint.%d.reconnects=%d", ep.index, ep.reconnects);
  }
  // Atomic temp-file + rename (obs/export.h): a reader never sees a torn or
  // partially-updated snapshot, only the previous or the new one.
  obs::write_text_file(opts_.metrics_path, out);
}

std::vector<RunResult> CampaignExecutor::run_all(
    const std::vector<RunConfig>& cfgs) {
  quarantined_.clear();
  stats_ = ExecutorStats{};
  capture_seen_.clear();
  last_metrics_ = Clock::time_point{};
  batch_start_ = Clock::now();
  stats_.jobs = std::max(1, opts_.jobs);
  stats_.slot_busy_sec.assign(static_cast<std::size_t>(stats_.jobs), 0.0);
  stats_.slot_runs_served.assign(static_cast<std::size_t>(stats_.jobs), 0);

  std::vector<RunResult> results(cfgs.size());
  std::vector<char> done(cfgs.size(), 0);
  std::vector<std::uint64_t> keys(cfgs.size(), 0);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    keys[i] = run_config_digest(cfgs[i]);
  }

  if (!opts_.journal_path.empty()) {
    const JournalLoad load =
        load_journal(opts_.journal_path, opts_.campaign_fingerprint);
    stats_.torn_bytes_discarded = load.torn_bytes;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      const auto it = load.records.find(keys[i]);
      if (it == load.records.end()) continue;
      try {
        ResultPayload p = parse_result_payload(it->second);
        results[i] = std::move(p.result);
        done[i] = 1;
        ++stats_.journal_hits;
        if (!p.ok) {
          // Replay the quarantine verdict too, so a resumed campaign reports
          // the same quarantined() list as the uninterrupted one.
          quarantined_.push_back(RunQuarantine{i, cfgs[i], p.what});
          ++stats_.quarantined;
        }
      } catch (const std::exception&) {
        // Undeserializable (e.g. written by an older record version):
        // re-execute the run.
      }
    }
    journal_ = JournalWriter(opts_.journal_path, opts_.campaign_fingerprint,
                             load);
  } else {
    journal_ = JournalWriter();
  }

#if DAV_EXECUTOR_POSIX
  if (opts_.force_in_process) {
    run_in_process(cfgs, keys, results, done);
  } else if (!opts_.workers.empty()) {
    run_distributed(cfgs, keys, results, done);
  } else if (opts_.pool) {
    run_pool(cfgs, keys, results, done);
  } else {
    run_forked(cfgs, keys, results, done);
  }
#else
  run_in_process(cfgs, keys, results, done);
#endif

  journal_.close();
  stats_.wall_sec = elapsed_sec(batch_start_, Clock::now());
  // Final snapshot: phase=done, complete counts. Readers polling the file
  // see the terminal state even for campaigns shorter than the interval.
  write_metrics_snapshot(cfgs.size(), cfgs.size(), /*force=*/true);
  // Workers finish in nondeterministic order; the quarantine report must not.
  std::sort(quarantined_.begin(), quarantined_.end(),
            [](const RunQuarantine& a, const RunQuarantine& b) {
              return a.index < b.index;
            });
  return results;
}

void CampaignExecutor::run_in_process(const std::vector<RunConfig>& cfgs,
                                      const std::vector<std::uint64_t>& keys,
                                      std::vector<RunResult>& results,
                                      const std::vector<char>& done) {
  std::size_t resolved = 0;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] != 0) ++resolved;
  }
  // Same-process runs share one executor-owned store (the in-process analog
  // of a pool worker's per-process store).
  const std::unique_ptr<CheckpointStore> store = make_store(opts_);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] != 0) continue;
    const Clock::time_point started = Clock::now();
    try {
      RunResult r = fn_(effective_config(cfgs[i], opts_), store.get());
      if (journal_.enabled()) {
        journal_append(keys[i], make_result_payload(true, {}, r));
      }
      results[i] = std::move(r);
    } catch (const std::exception& e) {
      // In-process exceptions are deterministic; retrying them is futile.
      results[i] = harness_error_result(cfgs[i]);
      quarantined_.push_back(RunQuarantine{i, cfgs[i], e.what()});
      ++stats_.quarantined;
      if (journal_.enabled()) {
        journal_append(keys[i],
                       make_result_payload(false, e.what(), results[i]));
      }
    }
    // Same-process runs leave their trace residue in the driver's stash.
    fold_capture(RunTraceCapture{static_cast<std::uint64_t>(i),
                                obs::take_last_run_capture()});
    const double dur = elapsed_sec(started, Clock::now());
    stats_.slot_busy_sec[0] += dur;
    stats_.spans.push_back(
        WorkerSpan{i, 0, 0, elapsed_sec(batch_start_, started), dur});
    ++resolved;
    write_metrics_snapshot(cfgs.size(), resolved, /*force=*/false);
  }
  if (store) {
    stats_.checkpoint_hits += store->hits() + store->deep_hits();
    stats_.checkpoint_misses += store->misses() + store->deep_misses();
    stats_.checkpoint_evictions += store->evictions();
  }
}

#if DAV_EXECUTOR_POSIX

namespace {

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // supervisor gone; nothing useful left to do
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Death path for a forked worker: the child shares the supervisor's heap,
/// stdio and journal buffers via fork, so everything off the happy path must
/// stick to pre-formatted buffers and raw write(2) — no allocation, no
/// stdio, no unwinding (enforced by davlint's fork-safety rule).
[[noreturn]] void child_panic(const char* note, int code) {
  std::size_t len = 0;
  while (note[len] != '\0') ++len;
  ::write(2, note, len);
  ::_exit(code);
}

/// Pre-formatted SIGXCPU note: the handler may only touch the
/// async-signal-safe allowlist, so the text is fixed at arm time.
constexpr char kXcpuNote[] = "dav-worker: CPU budget exhausted (SIGXCPU)\n";

void xcpu_death_note(int sig) {
  ::write(2, kXcpuNote, sizeof(kXcpuNote) - 1);
  // Die by the signal itself (restore the default action and re-raise) so
  // the supervisor still sees WIFSIGNALED and counts a signal death.
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

/// Arm the SIGXCPU death note in a freshly forked worker, before the CPU
/// rlimit can fire. Registered with sigaction, so davlint's signal-safety
/// rule walks xcpu_death_note's call chain.
void arm_death_note() {
  struct sigaction sa {};
  sa.sa_handler = xcpu_death_note;
  ::sigaction(SIGXCPU, &sa, nullptr);
}

void apply_rlimits(const ExecutorOptions& opts) {
  if (opts.cpu_limit_sec > 0.0) {
    const auto sec = static_cast<rlim_t>(opts.cpu_limit_sec + 0.999);
    // Hard limit one second past the soft one: SIGXCPU at the soft limit,
    // guaranteed SIGKILL shortly after if the worker somehow survives it.
    rlimit lim{sec, sec + 1};
    ::setrlimit(RLIMIT_CPU, &lim);
  }
  if (opts.address_space_mb > 0) {
    const auto bytes =
        static_cast<rlim_t>(opts.address_space_mb) * 1024u * 1024u;
    rlimit lim{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &lim);
  }
}

[[noreturn]] void worker_main(int fd, const RunConfig& cfg,
                              const CampaignExecutor::CheckpointRunFn& fn,
                              const ExecutorOptions& opts) {
  arm_death_note();
  apply_rlimits(opts);
  // The workload handoff below allocates freely, and may: the child is a
  // fresh single-threaded copy of a single-threaded supervisor, so its heap
  // is consistent. fork-safety strictness is for the death paths
  // (child_panic / xcpu_death_note), which run after arbitrary signals.
  std::string payload;
  try {
    payload = make_result_payload(true, {}, fn(cfg, nullptr));  // davlint: allow(fork-safety) sanctioned workload handoff
  } catch (const std::exception& e) {
    payload = make_result_payload(false, e.what(), harness_error_result(cfg));  // davlint: allow(fork-safety) sanctioned workload handoff
  } catch (...) {
    payload = make_result_payload(false, "unknown exception",  // davlint: allow(fork-safety) sanctioned workload handoff
                           harness_error_result(cfg));
  }
  write_all(fd, frame_message(payload));
  // _exit, not exit: the worker shares the supervisor's stdio and journal
  // buffers via fork; running atexit/flush here would emit them twice.
  ::_exit(0);
}

/// Reset the soft CPU limit to (CPU used so far) + budget before each pool
/// run, so a long-lived worker gets the same per-run CPU budget a fork-per-
/// run worker gets from RLIMIT_CPU at birth. Only the soft limit moves (an
/// unprivileged process cannot raise a hard limit once lowered); SIGXCPU's
/// default action kills the worker, which the supervisor quarantines.
void rearm_cpu_limit(const ExecutorOptions& opts) {
  if (opts.cpu_limit_sec <= 0.0) return;
  rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return;
  const double used =
      static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
      static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) * 1e-6;
  const auto soft = static_cast<rlim_t>(used + opts.cpu_limit_sec + 0.999);
  rlimit lim{};
  if (::getrlimit(RLIMIT_CPU, &lim) != 0) return;
  lim.rlim_cur = lim.rlim_max == RLIM_INFINITY
                     ? soft
                     : std::min<rlim_t>(soft, lim.rlim_max);
  ::setrlimit(RLIMIT_CPU, &lim);
}

/// Long-lived pool worker: read request frames (u64 index | RunConfig) off
/// `req_fd` until the supervisor closes it, execute each config through the
/// worker's CheckpointStore, and ship response frames back on `resp_fd`.
[[noreturn]] void pool_worker_main(int req_fd, int resp_fd,
                                   const CampaignExecutor::CheckpointRunFn& fn,
                                   const ExecutorOptions& opts) {
  arm_death_note();
  // Address-space limit applies for the worker's life; the CPU budget is
  // per-run, re-armed before each request (see rearm_cpu_limit).
  ExecutorOptions life = opts;
  life.cpu_limit_sec = 0.0;
  apply_rlimits(life);
  std::unique_ptr<CheckpointStore> store = make_store(opts);
  std::string buf;
  std::uint32_t served = 0;
  // As in worker_main: the request/response codec below allocates, and may —
  // the loop body runs on a consistent heap. Death paths go through
  // child_panic (pre-formatted note + write(2) + _exit only).
  for (;;) {
    const FrameSplit fs = try_unframe(buf);  // davlint: allow(fork-safety) sanctioned request codec
    if (fs.status == FrameSplit::Status::kCorrupt) {
      child_panic("dav-worker: corrupt request frame\n", 3);
    }
    if (fs.status == FrameSplit::Status::kNeedMore) {
      char chunk[65536];
      const ssize_t n = ::read(req_fd, chunk, sizeof(chunk));
      if (n == 0) ::_exit(0);  // request pipe closed: batch complete
      if (n < 0) {
        if (errno == EINTR) continue;
        child_panic("dav-worker: request pipe read error\n", 3);
      }
      buf.append(chunk, static_cast<std::size_t>(n));  // davlint: allow(fork-safety) sanctioned request codec
      continue;
    }
    buf.erase(0, fs.consumed);
    ByteReader req(fs.payload);
    const std::uint64_t index = req.u64();
    const std::string cfg_bytes =
        fs.payload.substr(fs.payload.size() - req.remaining());  // davlint: allow(fork-safety) sanctioned request codec
    rearm_cpu_limit(opts);
    std::string result_payload;
    try {
      const RunConfigRecord rec = deserialize_run_config(cfg_bytes);  // davlint: allow(fork-safety) sanctioned workload handoff
      if (!store && rec.cfg.checkpoint.enabled) {
        // A remote coordinator opted in per-config; honor it even when this
        // worker's own options asked for neither tier.
        store = std::make_unique<CheckpointStore>();  // davlint: allow(fork-safety) sanctioned workload handoff
        store->set_max_deep_bytes(
            static_cast<std::size_t>(opts.checkpoint_max_mb) * 1024u * 1024u);
      }
      result_payload = make_result_payload(  // davlint: allow(fork-safety) sanctioned workload handoff
          true, {}, fn(effective_config(rec.cfg, opts), store.get()));  // davlint: allow(fork-safety) sanctioned workload handoff
    } catch (const std::exception& e) {
      result_payload =
          make_result_payload(false, e.what(), harness_error_result(RunConfig{}));  // davlint: allow(fork-safety) sanctioned workload handoff
    } catch (...) {
      result_payload = make_result_payload(false, "unknown exception",  // davlint: allow(fork-safety) sanctioned workload handoff
                                    harness_error_result(RunConfig{}));
    }
    ++served;
    // Trace residue stashed by the driver (instants + histograms + drops):
    // ships alongside — never inside — the result payload.
    std::string capture_blob;
    obs::RunCapture cap = obs::take_last_run_capture();  // davlint: allow(fork-safety) sanctioned response codec
    if (cap.valid) {
      RunTraceCapture rec;
      rec.plan_index = index;
      rec.capture = std::move(cap);
      capture_blob = encode_run_capture(rec);  // davlint: allow(fork-safety) sanctioned response codec
    }
    ByteWriter resp;
    resp.u64(index);
    resp.u32(served);
    resp.u64(store ? store->hits() + store->deep_hits() : 0);
    resp.u64(store ? store->misses() + store->deep_misses() : 0);
    resp.u64(store ? store->evictions() : 0);
    resp.str(capture_blob);  // davlint: allow(fork-safety) sanctioned response codec
    resp.raw(result_payload);
    write_all(resp_fd, frame_message(resp.take()));
  }
}

int await_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) break;
  }
  return status;
}

std::string describe_death(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    return "worker died: signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "worker exited with code " + std::to_string(WEXITSTATUS(status)) +
           " without a complete result record";
  }
  return "worker ended without a complete result record";
}

/// A supervisor writes into worker pipes (and the distributed coordinator
/// into sockets); a peer that died between dispatches would otherwise turn
/// that write into a fatal SIGPIPE. Ignore it for the guard's lifetime — the
/// failed write surfaces as an EOF on the read side, which requeues the run.
struct SigpipeGuard {
  struct sigaction prev {};
  SigpipeGuard() {
    struct sigaction ign {};
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &prev);
  }
  ~SigpipeGuard() { ::sigaction(SIGPIPE, &prev, nullptr); }
};

}  // namespace

void CampaignExecutor::run_forked(const std::vector<RunConfig>& cfgs,
                                  const std::vector<std::uint64_t>& keys,
                                  std::vector<RunResult>& results,
                                  const std::vector<char>& done) {
  struct Pending {
    std::size_t index = 0;
    int attempt = 0;
    Clock::time_point eligible{};
  };
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::size_t index = 0;
    int attempt = 0;
    int slot = 0;  // utilization accounting + Perfetto pid
    std::string buf;
    Clock::time_point started{};
    Clock::time_point deadline{};
    bool timed_out = false;
  };

  const int jobs = std::max(1, opts_.jobs);
  const auto timeout =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(opts_.run_timeout_sec));

  std::deque<Pending> pending;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] == 0) pending.push_back(Pending{i, 0, start});
  }
  std::vector<Worker> workers;
  std::vector<char> slot_used(static_cast<std::size_t>(jobs), 0);

  const auto claim_slot = [&]() {
    for (std::size_t s = 0; s < slot_used.size(); ++s) {
      if (slot_used[s] == 0) {
        slot_used[s] = 1;
        return static_cast<int>(s);
      }
    }
    return 0;  // unreachable: launches are capped at `jobs` live workers
  };

  const auto launch = [&](const Pending& p) {
    int pipefd[2] = {-1, -1};
    if (::pipe(pipefd) != 0) {
      throw std::runtime_error(std::string("executor: pipe failed: ") +
                               std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      throw std::runtime_error(std::string("executor: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      ::close(pipefd[0]);
      worker_main(pipefd[1], cfgs[p.index], fn_, opts_);
    }
    ::close(pipefd[1]);
    Worker w;
    w.pid = pid;
    w.fd = pipefd[0];
    w.index = p.index;
    w.attempt = p.attempt;
    w.slot = claim_slot();
    w.started = Clock::now();
    w.deadline = w.started + timeout;
    workers.push_back(std::move(w));
    ++stats_.launched;
  };

  const auto requeue_or_quarantine = [&](const Worker& w,
                                         const std::string& what) {
    if (w.attempt < opts_.max_retries) {
      ++stats_.retries;
      // Capped exponent + per-run jitter (transport.h): the raw attempt
      // count used to feed `1 << attempt`, which is UB past 30 retries, and
      // unjittered retries synchronize across a fleet.
      const double backoff_sec =
          backoff_delay_sec(opts_.retry_backoff_sec, w.attempt, keys[w.index]);
      pending.push_back(Pending{
          w.index, w.attempt + 1,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_sec))});
      return;
    }
    results[w.index] = harness_error_result(cfgs[w.index]);
    quarantined_.push_back(RunQuarantine{w.index, cfgs[w.index], what});
    ++stats_.quarantined;
    if (journal_.enabled()) {
      journal_append(keys[w.index],
                     make_result_payload(false, what, results[w.index]));
    }
  };

  const auto finalize = [&](Worker w) {
    ::close(w.fd);
    const int status = await_child(w.pid);
    const double dur = elapsed_sec(w.started, Clock::now());
    stats_.slot_busy_sec[static_cast<std::size_t>(w.slot)] += dur;
    stats_.spans.push_back(WorkerSpan{w.index, w.slot, w.attempt,
                                      elapsed_sec(batch_start_, w.started),
                                      dur});
    slot_used[static_cast<std::size_t>(w.slot)] = 0;

    // A complete, checksummed frame wins regardless of exit status (the
    // watchdog may race a worker that finished its write).
    if (const auto payload = unframe(w.buf)) {
      try {
        ResultPayload p = parse_result_payload(*payload);
        if (p.ok) {
          if (journal_.enabled()) journal_append(keys[w.index], *payload);
          results[w.index] = std::move(p.result);
        } else {
          requeue_or_quarantine(w, p.what);
        }
        return;
      } catch (const std::exception&) {
        // fall through to the death diagnosis
      }
    }
    std::string what;
    if (w.timed_out) {
      what = "watchdog: no result after " +
             std::to_string(opts_.run_timeout_sec) + " s; worker killed";
    } else {
      what = describe_death(status);
      if (WIFSIGNALED(status)) ++stats_.signal_deaths;
    }
    requeue_or_quarantine(w, what);
  };

  while (!pending.empty() || !workers.empty()) {
    // Launch every eligible pending run into free worker slots.
    Clock::time_point now = Clock::now();
    for (auto it = pending.begin();
         it != pending.end() && static_cast<int>(workers.size()) < jobs;) {
      if (it->eligible <= now) {
        launch(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    // Sleep until the next event: readable pipe, watchdog deadline, or a
    // retry becoming eligible.
    Clock::time_point wake = now + std::chrono::seconds(1);
    for (const Worker& w : workers) wake = std::min(wake, w.deadline);
    if (static_cast<int>(workers.size()) < jobs) {
      for (const Pending& p : pending) wake = std::min(wake, p.eligible);
    }
    const int timeout_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));

    std::vector<pollfd> fds;
    fds.reserve(workers.size());
    for (const Worker& w : workers) fds.push_back(pollfd{w.fd, POLLIN, 0});
    const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                          static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("executor: poll failed: ") +
                               std::strerror(errno));
    }

    // Drain readable pipes; an EOF means the worker is done (or dead).
    for (std::size_t i = 0; i < workers.size();) {
      Worker& w = workers[i];
      const short revents = i < fds.size() ? fds[i].revents : 0;
      if (revents == 0) {
        ++i;
        continue;
      }
      char chunk[65536];
      const ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
      if (n > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(n));
        ++i;
      } else if (n < 0 && errno == EINTR) {
        ++i;
      } else {
        Worker finished = std::move(w);
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        finalize(std::move(finished));
      }
    }

    // Enforce the wall-clock watchdog; the kill produces an EOF picked up by
    // the next poll round.
    now = Clock::now();
    for (Worker& w : workers) {
      if (!w.timed_out && now >= w.deadline) {
        w.timed_out = true;
        ++stats_.timeouts;
        ::kill(w.pid, SIGKILL);
      }
    }

    // Every unresolved run sits in `pending` or `workers`; the difference is
    // the live progress count.
    write_metrics_snapshot(cfgs.size(),
                           cfgs.size() - pending.size() - workers.size(),
                           /*force=*/false);
  }
}

// ---- PoolSupervisor -------------------------------------------------------

/// One persistent worker. Lives until it dies (crash/hang/rlimit) or the
/// batch ends; serves many runs, at most one in flight at a time.
struct PoolSupervisor::Impl {
  struct PoolWorker {
    pid_t pid = -1;
    int req_fd = -1;   // supervisor -> worker: request frames
    int resp_fd = -1;  // worker -> supervisor: response frames
    int slot = 0;
    bool busy = false;
    std::size_t index = 0;  // in-flight run (when busy)
    int attempt = 0;
    std::string buf;  // response bytes accumulated so far
    Clock::time_point started{};
    Clock::time_point deadline{};
    bool timed_out = false;
    // Cumulative counters from the worker's latest response; folded into the
    // telemetry when the worker retires.
    int served = 0;
    std::uint64_t checkpoint_hits = 0;
    std::uint64_t checkpoint_misses = 0;
    std::uint64_t checkpoint_evictions = 0;
    /// Affinity key of the last dispatched run (see PoolSupervisor::dispatch).
    std::uint64_t affinity = 0;
    bool has_affinity = false;
  };

  ExecutorOptions opts;
  CampaignExecutor::CheckpointRunFn fn;
  Clock::time_point epoch;
  Clock::duration timeout{};
  int jobs = 1;
  int deaths = 0;
  std::vector<PoolWorker> workers;
  std::vector<char> slot_used;
  Telemetry tele;
  // Scratch for telemetry(): live workers report checkpoint counters with
  // each response but only fold into `tele` at retirement; a long-lived pool
  // (serve daemon) must still flush current totals with every aggregate.
  mutable Telemetry tele_snapshot;
  SigpipeGuard sigpipe_guard;

  Impl(const ExecutorOptions& o, CampaignExecutor::CheckpointRunFn f,
       Clock::time_point ep)
      : opts(o), fn(std::move(f)), epoch(ep) {
    opts.validate();
    jobs = std::max(1, opts.jobs);
    timeout = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(opts.run_timeout_sec));
    slot_used.assign(static_cast<std::size_t>(jobs), 0);
    tele.slot_busy_sec.assign(static_cast<std::size_t>(jobs), 0.0);
    tele.slot_runs_served.assign(static_cast<std::size_t>(jobs), 0);
  }

  ~Impl() {
    // Hard teardown (daemon connection drop, exception unwind): in-flight
    // runs are dropped; the caller is responsible for requeueing them.
    for (PoolWorker& w : workers) {
      if (w.req_fd >= 0) ::close(w.req_fd);
      ::close(w.resp_fd);
      ::kill(w.pid, SIGKILL);
      await_child(w.pid);
    }
  }

  int claim_slot() {
    for (std::size_t s = 0; s < slot_used.size(); ++s) {
      if (slot_used[s] == 0) {
        slot_used[s] = 1;
        return static_cast<int>(s);
      }
    }
    return 0;  // unreachable: live workers are capped at `jobs`
  }

  int busy_count() const {
    int c = 0;
    for (const PoolWorker& w : workers) {
      if (w.busy) ++c;
    }
    return c;
  }

  bool can_dispatch() const {
    for (const PoolWorker& w : workers) {
      if (!w.busy) return true;
    }
    return static_cast<int>(workers.size()) < jobs;
  }

  void spawn() {
    int req[2] = {-1, -1};
    int resp[2] = {-1, -1};
    if (::pipe(req) != 0 || ::pipe(resp) != 0) {
      throw std::runtime_error(std::string("executor: pipe failed: ") +
                               std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : {req[0], req[1], resp[0], resp[1]}) ::close(fd);
      throw std::runtime_error(std::string("executor: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      ::close(req[1]);
      ::close(resp[0]);
      pool_worker_main(req[0], resp[1], fn, opts);
    }
    ::close(req[0]);
    ::close(resp[1]);
    PoolWorker w;
    w.pid = pid;
    w.req_fd = req[1];
    w.resp_fd = resp[0];
    w.slot = claim_slot();
    workers.push_back(std::move(w));
    ++tele.launched;
    // First-wave spawns are the pool; spawns after any death are respawns
    // (same accounting the pre-extraction executor reported).
    if (deaths == 0) {
      ++tele.pool_workers;
    } else {
      ++tele.respawns;
    }
  }

  void dispatch(std::size_t index, int attempt, const RunConfig& cfg,
                std::uint64_t affinity) {
    // Prefer the idle worker that last ran this affinity key (it holds the
    // prefix checkpoint); a fresh (never-dispatched) idle worker beats one
    // warmed on a different key; spawning is the last resort.
    PoolWorker* idle = nullptr;
    PoolWorker* fresh = nullptr;
    PoolWorker* any = nullptr;
    for (PoolWorker& w : workers) {
      if (w.busy) continue;
      if (any == nullptr) any = &w;
      if (!w.has_affinity && fresh == nullptr) fresh = &w;
      if (affinity != 0 && w.has_affinity && w.affinity == affinity) {
        idle = &w;
        break;
      }
    }
    if (idle == nullptr) idle = affinity != 0 && fresh != nullptr ? fresh : any;
    if (idle == nullptr) {
      if (static_cast<int>(workers.size()) >= jobs) {
        throw std::logic_error("PoolSupervisor: dispatch without capacity");
      }
      spawn();
      idle = &workers.back();
    }
    ByteWriter req;
    req.u64(index);
    req.raw(serialize_run_config(cfg));
    write_all(idle->req_fd, frame_message(req.take()));
    idle->busy = true;
    idle->index = index;
    idle->attempt = attempt;
    idle->affinity = affinity;
    idle->has_affinity = true;
    idle->started = Clock::now();
    idle->deadline = idle->started + timeout;
    idle->timed_out = false;
  }

  /// Handle one complete response frame. Returns false when the worker broke
  /// protocol and must be retired.
  bool on_response(PoolWorker& w, const std::string& payload,
                   std::vector<Completion>& out) {
    try {
      ByteReader r(payload);
      const std::uint64_t index = r.u64();
      const int served = static_cast<int>(r.u32());
      const std::uint64_t hits = r.u64();
      const std::uint64_t misses = r.u64();
      const std::uint64_t evictions = r.u64();
      std::string capture_payload = r.str();
      std::string result_payload =
          payload.substr(payload.size() - r.remaining());
      if (!w.busy || index != w.index) return false;  // protocol violation
      w.served = served;
      w.checkpoint_hits = hits;
      w.checkpoint_misses = misses;
      w.checkpoint_evictions = evictions;
      const double dur = elapsed_sec(w.started, Clock::now());
      tele.slot_busy_sec[static_cast<std::size_t>(w.slot)] += dur;
      Completion c;
      c.index = w.index;
      c.attempt = w.attempt;
      c.slot = w.slot;
      c.ok = true;
      c.result_payload = std::move(result_payload);
      c.capture_payload = std::move(capture_payload);
      c.start_sec = elapsed_sec(epoch, w.started);
      c.dur_sec = dur;
      out.push_back(std::move(c));
      w.busy = false;
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  /// Reap a worker (dead, corrupt, or batch-complete) and fold its counters
  /// into the telemetry. A run in flight becomes a failed Completion (or is
  /// dropped when `out` is null, on shutdown/teardown).
  void retire(PoolWorker w, bool clean_shutdown,
              std::vector<Completion>* out) {
    if (w.req_fd >= 0) ::close(w.req_fd);
    ::close(w.resp_fd);
    if (!clean_shutdown) {
      ::kill(w.pid, SIGKILL);
      ++deaths;
    }
    const int status = await_child(w.pid);
    slot_used[static_cast<std::size_t>(w.slot)] = 0;
    tele.slot_runs_served[static_cast<std::size_t>(w.slot)] += w.served;
    tele.checkpoint_hits += w.checkpoint_hits;
    tele.checkpoint_misses += w.checkpoint_misses;
    tele.checkpoint_evictions += w.checkpoint_evictions;
    if (!w.busy) return;
    const double dur = elapsed_sec(w.started, Clock::now());
    tele.slot_busy_sec[static_cast<std::size_t>(w.slot)] += dur;
    std::string what;
    if (w.timed_out) {
      what = "watchdog: no result after " +
             std::to_string(opts.run_timeout_sec) + " s; worker killed";
    } else {
      what = describe_death(status);
      if (WIFSIGNALED(status)) ++tele.signal_deaths;
    }
    if (out != nullptr) {
      Completion c;
      c.index = w.index;
      c.attempt = w.attempt;
      c.slot = w.slot;
      c.ok = false;
      c.what = std::move(what);
      c.start_sec = elapsed_sec(epoch, w.started);
      c.dur_sec = dur;
      out->push_back(std::move(c));
    }
  }

  void pump(int max_wait_ms, std::vector<Completion>& out, int extra_fd,
            bool* extra_readable) {
    if (extra_readable != nullptr) *extra_readable = false;
    Clock::time_point now = Clock::now();
    Clock::time_point wake =
        now + std::chrono::milliseconds(std::max(1, max_wait_ms));
    for (const PoolWorker& w : workers) {
      if (w.busy) wake = std::min(wake, w.deadline);
    }
    const int timeout_ms = static_cast<int>(std::max<std::int64_t>(
        0, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));

    std::vector<pollfd> fds;
    fds.reserve(workers.size() + 1);
    for (const PoolWorker& w : workers) {
      fds.push_back(pollfd{w.resp_fd, POLLIN, 0});
    }
    if (extra_fd >= 0) fds.push_back(pollfd{extra_fd, POLLIN, 0});
    const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                          static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("executor: poll failed: ") +
                               std::strerror(errno));
    }
    if (extra_fd >= 0 && extra_readable != nullptr &&
        fds.back().revents != 0) {
      *extra_readable = true;
    }

    // Drain readable pipes. A complete frame is a finished run; EOF or a
    // corrupt stream is a dead worker.
    for (std::size_t i = 0; i < workers.size();) {
      PoolWorker& w = workers[i];
      const short revents = i < fds.size() ? fds[i].revents : 0;
      if (revents == 0) {
        ++i;
        continue;
      }
      bool dead = false;
      char chunk[65536];
      const ssize_t n = ::read(w.resp_fd, chunk, sizeof(chunk));
      if (n > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(n));
        for (;;) {
          const FrameSplit fs = try_unframe(w.buf);
          if (fs.status == FrameSplit::Status::kNeedMore) break;
          if (fs.status == FrameSplit::Status::kCorrupt ||
              !on_response(w, fs.payload, out)) {
            dead = true;
            break;
          }
          w.buf.erase(0, fs.consumed);
        }
      } else if (n < 0 && errno == EINTR) {
        // retry next round
      } else if (n == 0) {
        dead = true;  // EOF: the worker died (clean exits only happen after
                      // the supervisor closes the request pipe on shutdown)
      } else {
        dead = true;
      }
      if (dead) {
        PoolWorker finished = std::move(w);
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        retire(std::move(finished), /*clean_shutdown=*/false, &out);
      } else {
        ++i;
      }
    }

    // Wall-clock watchdog: a worker still busy past its deadline is killed;
    // the kill surfaces as EOF on the next poll round.
    now = Clock::now();
    for (PoolWorker& w : workers) {
      if (w.busy && !w.timed_out && now >= w.deadline) {
        w.timed_out = true;
        ++tele.timeouts;
        ::kill(w.pid, SIGKILL);
      }
    }
  }

  void shutdown() {
    // Close the request pipes; each worker reads EOF and exits cleanly.
    while (!workers.empty()) {
      PoolWorker w = std::move(workers.back());
      workers.pop_back();
      if (w.req_fd >= 0) ::close(w.req_fd);
      w.req_fd = -1;
      retire(std::move(w), /*clean_shutdown=*/true, nullptr);
    }
  }
};

PoolSupervisor::PoolSupervisor(const ExecutorOptions& opts,
                               CampaignExecutor::CheckpointRunFn fn,
                               std::chrono::steady_clock::time_point epoch)
    : impl_(std::make_unique<Impl>(opts, std::move(fn), epoch)) {}

PoolSupervisor::~PoolSupervisor() = default;

int PoolSupervisor::slots() const { return impl_->jobs; }
int PoolSupervisor::busy() const { return impl_->busy_count(); }
bool PoolSupervisor::can_dispatch() const { return impl_->can_dispatch(); }

void PoolSupervisor::dispatch(std::size_t index, int attempt,
                              const RunConfig& cfg, std::uint64_t affinity) {
  impl_->dispatch(index, attempt, cfg, affinity);
}

void PoolSupervisor::pump(int max_wait_ms, std::vector<Completion>& out,
                          int extra_fd, bool* extra_readable) {
  impl_->pump(max_wait_ms, out, extra_fd, extra_readable);
}

void PoolSupervisor::shutdown() { impl_->shutdown(); }

const PoolSupervisor::Telemetry& PoolSupervisor::telemetry() const {
  impl_->tele_snapshot = impl_->tele;
  for (const auto& w : impl_->workers) {
    impl_->tele_snapshot.checkpoint_hits += w.checkpoint_hits;
    impl_->tele_snapshot.checkpoint_misses += w.checkpoint_misses;
    impl_->tele_snapshot.checkpoint_evictions += w.checkpoint_evictions;
  }
  return impl_->tele_snapshot;
}

void CampaignExecutor::run_pool(const std::vector<RunConfig>& cfgs,
                                const std::vector<std::uint64_t>& keys,
                                std::vector<RunResult>& results,
                                const std::vector<char>& done) {
  struct Pending {
    std::size_t index = 0;
    int attempt = 0;
    Clock::time_point eligible{};
  };

  std::deque<Pending> pending;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] == 0) pending.push_back(Pending{i, 0, start});
  }
  if (pending.empty()) return;

  // Prefix-affinity grouping: order the queue so variants sharing a
  // fault-free prefix dispatch back to back (onto the worker holding the
  // checkpoint), with plan order as the tiebreaker. Result merging is by
  // plan index, so the queue order never shows in the summary.
  std::vector<std::uint64_t> affinity(cfgs.size(), 0);
  if (opts_.checkpoint) {
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      if (done[i] == 0) affinity[i] = dispatch_affinity(cfgs[i], opts_);
    }
    std::stable_sort(pending.begin(), pending.end(),
                     [&](const Pending& a, const Pending& b) {
                       if (affinity[a.index] != affinity[b.index]) {
                         return affinity[a.index] < affinity[b.index];
                       }
                       return a.index < b.index;
                     });
  }

  PoolSupervisor sup(opts_, fn_, batch_start_);

  const auto requeue_or_quarantine = [&](std::size_t index, int attempt,
                                         const std::string& what) {
    if (attempt < opts_.max_retries) {
      ++stats_.retries;
      // Capped exponent + per-run jitter (transport.h): the raw attempt
      // count used to feed `1 << attempt`, which is UB past 30 retries, and
      // unjittered retries synchronize across a fleet.
      const double backoff_sec =
          backoff_delay_sec(opts_.retry_backoff_sec, attempt, keys[index]);
      pending.push_back(Pending{
          index, attempt + 1,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_sec))});
      return;
    }
    results[index] = harness_error_result(cfgs[index]);
    quarantined_.push_back(RunQuarantine{index, cfgs[index], what});
    ++stats_.quarantined;
    if (journal_.enabled()) {
      journal_append(keys[index],
                     make_result_payload(false, what, results[index]));
    }
  };

  std::vector<PoolSupervisor::Completion> comps;
  while (!pending.empty() || sup.busy() > 0) {
    // Feed eligible pending runs to idle workers (forking replacements for
    // dead slots while work remains).
    const Clock::time_point now = Clock::now();
    for (auto it = pending.begin();
         it != pending.end() && sup.can_dispatch();) {
      if (it->eligible <= now) {
        sup.dispatch(it->index, it->attempt, cfgs[it->index],
                     affinity[it->index]);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    // Sleep until the next event: a response frame, a watchdog deadline
    // (pump handles both), or a retry becoming eligible.
    Clock::time_point wake = now + std::chrono::seconds(1);
    for (const Pending& p : pending) {
      if (p.eligible > now) wake = std::min(wake, p.eligible);
    }
    const int wait_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));

    comps.clear();
    sup.pump(wait_ms, comps);
    for (PoolSupervisor::Completion& c : comps) {
      stats_.spans.push_back(
          WorkerSpan{c.index, c.slot, c.attempt, c.start_sec, c.dur_sec});
      if (!c.capture_payload.empty()) {
        try {
          fold_capture(decode_run_capture(c.capture_payload));
        } catch (const std::exception&) {
          // Malformed capture: observability loss only, the run still counts.
        }
      }
      if (!c.ok) {
        requeue_or_quarantine(c.index, c.attempt, c.what);
        continue;
      }
      try {
        ResultPayload p = parse_result_payload(c.result_payload);
        if (p.ok) {
          if (journal_.enabled()) {
            journal_append(keys[c.index], c.result_payload);
          }
          results[c.index] = std::move(p.result);
        } else {
          requeue_or_quarantine(c.index, c.attempt, p.what);
        }
      } catch (const std::exception& e) {
        requeue_or_quarantine(
            c.index, c.attempt,
            std::string("undecodable result payload: ") + e.what());
      }
    }
    write_metrics_snapshot(
        cfgs.size(),
        cfgs.size() - pending.size() - static_cast<std::size_t>(sup.busy()),
        /*force=*/false);
  }

  sup.shutdown();
  const PoolSupervisor::Telemetry& t = sup.telemetry();
  stats_.launched += t.launched;
  stats_.pool_workers += t.pool_workers;
  stats_.respawns += t.respawns;
  stats_.timeouts += t.timeouts;
  stats_.signal_deaths += t.signal_deaths;
  stats_.checkpoint_hits += t.checkpoint_hits;
  stats_.checkpoint_misses += t.checkpoint_misses;
  stats_.checkpoint_evictions += t.checkpoint_evictions;
  for (std::size_t s = 0;
       s < t.slot_busy_sec.size() && s < stats_.slot_busy_sec.size(); ++s) {
    stats_.slot_busy_sec[s] += t.slot_busy_sec[s];
  }
  for (std::size_t s = 0; s < t.slot_runs_served.size() &&
                          s < stats_.slot_runs_served.size();
       ++s) {
    stats_.slot_runs_served[s] += t.slot_runs_served[s];
  }
}

void CampaignExecutor::run_distributed(const std::vector<RunConfig>& cfgs,
                                       const std::vector<std::uint64_t>& keys,
                                       std::vector<RunResult>& results,
                                       const std::vector<char>& done) {
  struct Flight {
    int attempt = 0;
    Clock::time_point sent{};
  };
  enum class EpState { kDisconnected, kHandshake, kReady, kFailed };
  struct Remote {
    Endpoint ep;
    int id = 0;
    int fd = -1;
    EpState state = EpState::kDisconnected;
    std::string rbuf;
    std::uint32_t slots = 1;
    std::map<std::size_t, Flight> flights;
    Clock::time_point last_rx{};
    Clock::time_point reconnect_at{};
    int connect_attempts = 0;  // consecutive failures since the last ack
    int sessions = 0;          // completed handshakes
    std::string last_error;
  };
  struct Pending {
    std::size_t index = 0;
    int attempt = 0;
    Clock::time_point eligible{};
  };

  // Reconnect pacing: fast enough that a daemon starting moments after the
  // coordinator is picked up promptly; bounded so an endpoint that keeps
  // refusing is abandoned (kFailed) after ~7 s instead of stalling forever.
  constexpr double kReconnectBaseSec = 0.05;
  constexpr double kReconnectCapSec = 2.0;
  constexpr int kMaxConnectAttempts = 8;

  const std::size_t n = cfgs.size();
  std::vector<Remote> remotes;
  remotes.reserve(opts_.workers.size());
  for (std::size_t w = 0; w < opts_.workers.size(); ++w) {
    Remote r;
    r.ep = parse_endpoint(opts_.workers[w]);
    r.id = static_cast<int>(w);
    remotes.push_back(std::move(r));
  }

  // In distributed mode the per-slot telemetry is per-endpoint.
  stats_.remote_endpoints = static_cast<int>(remotes.size());
  stats_.jobs = static_cast<int>(remotes.size());
  stats_.slot_busy_sec.assign(remotes.size(), 0.0);
  stats_.slot_runs_served.assign(remotes.size(), 0);
  stats_.endpoints.clear();
  stats_.endpoints.reserve(remotes.size());
  for (int w = 0; w < static_cast<int>(opts_.workers.size()); ++w) {
    EndpointTelemetry et;
    et.spec = opts_.workers[static_cast<std::size_t>(w)];
    et.index = w;
    et.state = "connecting";
    stats_.endpoints.push_back(std::move(et));
  }

  const auto steady_now_ns = []() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  };
  const std::int64_t batch_start_ns = static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          batch_start_.time_since_epoch())
          .count());
  // Clock alignment (handshake timestamp exchange, see transport.h): offset =
  // daemon steady clock minus coordinator steady clock, per endpoint. Side
  // tables rather than Remote fields: wall-clock readings must never flow
  // through the structs the result path touches (taint discipline — journaled
  // state is a function of the run seed only).
  std::vector<std::uint64_t> hello_sent_ns(remotes.size(), 0);
  std::vector<std::int64_t> clock_offset_ns(remotes.size(), 0);

  std::vector<char> completed(n, 0);  // resolved this batch (done[] aside)
  std::vector<char> failed(n, 0);
  std::vector<std::string> fail_what(n);
  std::vector<int> extra_copies(n, 0);     // straggler re-dispatches so far
  std::vector<int> inflight_copies(n, 0);  // live copies across endpoints
  std::size_t remaining = 0;
  std::deque<Pending> pending;
  const Clock::time_point batch_enter = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    if (done[i] == 0) {
      pending.push_back(Pending{i, 0, batch_enter});
      ++remaining;
    }
  }

  // --- per-shard journals --------------------------------------------------
  // Results are journaled per endpoint as they arrive (plus one coordinator
  // shard for quarantine verdicts); after the batch every record is merged
  // into the main journal in plan order, re-encoded by the bit-exact codec,
  // so the merged file is byte-identical to a serial journaled run. Loading
  // existing shards first resumes a distributed campaign that crashed before
  // (or during) the merge.
  std::vector<std::unique_ptr<JournalWriter>> shards;
  std::vector<std::string> shard_paths;
  const bool journaling = journal_.enabled();
  if (journaling) {
    const auto replay_record = [&](const std::string& payload,
                                   std::size_t i) {
      try {
        ResultPayload p = parse_result_payload(payload);
        results[i] = std::move(p.result);
        completed[i] = 1;
        --remaining;
        ++stats_.journal_hits;
        if (!p.ok) {
          failed[i] = 1;
          fail_what[i] = p.what;
          quarantined_.push_back(RunQuarantine{i, cfgs[i], p.what});
          ++stats_.quarantined;
        }
      } catch (const std::exception&) {
        // Undeserializable: leave the run pending for re-execution.
      }
    };
    for (std::size_t s = 0; s <= remotes.size(); ++s) {
      const std::string tag =
          s < remotes.size() ? std::to_string(s) : std::string("c");
      const std::string path = opts_.journal_path + ".shard" + tag;
      const JournalLoad load = load_journal(path, opts_.campaign_fingerprint);
      stats_.torn_bytes_discarded += load.torn_bytes;
      for (std::size_t i = 0; i < n; ++i) {
        if (done[i] != 0 || completed[i] != 0) continue;
        const auto it = load.records.find(keys[i]);
        if (it != load.records.end()) replay_record(it->second, i);
      }
      shard_paths.push_back(path);
      shards.push_back(std::make_unique<JournalWriter>(
          path, opts_.campaign_fingerprint, load));
    }
    pending.erase(
        std::remove_if(
            pending.begin(), pending.end(),
            [&](const Pending& p) { return completed[p.index] != 0; }),
        pending.end());
  }
  const auto shard_append = [&](std::size_t shard, std::uint64_t key,
                                const std::string& payload) {
    if (!journaling) return;
    shards[shard]->append(key, payload);
    ++stats_.journal_appends;
    stats_.journal_bytes += payload.size();
  };

  const auto requeue_or_quarantine = [&](std::size_t index, int attempt,
                                         const std::string& what) {
    if (completed[index] != 0) return;
    if (attempt < opts_.max_retries) {
      ++stats_.retries;
      const double backoff_sec =
          backoff_delay_sec(opts_.retry_backoff_sec, attempt, keys[index]);
      pending.push_back(Pending{
          index, attempt + 1,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_sec))});
      return;
    }
    results[index] = harness_error_result(cfgs[index]);
    quarantined_.push_back(RunQuarantine{index, cfgs[index], what});
    ++stats_.quarantined;
    completed[index] = 1;
    failed[index] = 1;
    fail_what[index] = what;
    --remaining;
    shard_append(remotes.size(), keys[index],
                 make_result_payload(false, what, results[index]));
  };

  /// Tear down a connection. In-flight runs whose last live copy this was
  /// are requeued with the next attempt number — exactly the local
  /// dead-worker policy, ending in kHarnessError quarantine past
  /// max_retries.
  const auto drop_endpoint = [&](Remote& r, const std::string& why,
                                 bool permanent) {
    if (r.fd >= 0) {
      ::close(r.fd);
      r.fd = -1;
    }
    r.rbuf.clear();
    for (const auto& [index, fl] : r.flights) {
      --inflight_copies[index];
      if (completed[index] == 0 && inflight_copies[index] == 0) {
        requeue_or_quarantine(index, fl.attempt,
                              "endpoint " + r.ep.spec + ": " + why);
      }
    }
    r.flights.clear();
    r.last_error = why;
    if (permanent) {
      r.state = EpState::kFailed;
      stats_.endpoints[static_cast<std::size_t>(r.id)].state = "failed";
      return;
    }
    r.state = EpState::kDisconnected;
    stats_.endpoints[static_cast<std::size_t>(r.id)].state = "disconnected";
    ++r.connect_attempts;
    if (r.connect_attempts > kMaxConnectAttempts) {
      r.state = EpState::kFailed;
      stats_.endpoints[static_cast<std::size_t>(r.id)].state = "failed";
      return;
    }
    r.reconnect_at =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(backoff_delay_sec(
                kReconnectBaseSec, r.connect_attempts,
                fnv1a64(r.ep.spec.data(), r.ep.spec.size()),
                kReconnectCapSec)));
  };

  /// One kRunResult frame. First completed result per plan index wins;
  /// late copies (stragglers, re-runs after a reconnect) are discarded.
  /// Returns false when the endpoint broke protocol.
  const auto on_result = [&](Remote& r, std::uint64_t index64,
                             const std::string& payload) -> bool {
    const std::size_t index = static_cast<std::size_t>(index64);
    if (index >= n) return false;
    const auto fit = r.flights.find(index);
    if (fit == r.flights.end()) {
      // Not in flight here (e.g. a result raced the teardown bookkeeping of
      // an earlier session). Nothing to account.
      if (completed[index] != 0 || done[index] != 0) {
        ++stats_.duplicate_discards;
      }
      return true;
    }
    const Flight fl = fit->second;
    r.flights.erase(fit);
    --inflight_copies[index];
    const double dur = elapsed_sec(fl.sent, Clock::now());
    stats_.slot_busy_sec[static_cast<std::size_t>(r.id)] += dur;
    stats_.spans.push_back(WorkerSpan{index, r.id, fl.attempt,
                                      elapsed_sec(batch_start_, fl.sent),
                                      dur});
    if (completed[index] != 0 || done[index] != 0) {
      ++stats_.duplicate_discards;  // a faster copy already won
      return true;
    }
    try {
      ResultPayload p = parse_result_payload(payload);
      if (p.ok) {
        results[index] = std::move(p.result);
        completed[index] = 1;
        --remaining;
        ++stats_.slot_runs_served[static_cast<std::size_t>(r.id)];
        ++stats_.endpoints[static_cast<std::size_t>(r.id)].runs_done;
        shard_append(static_cast<std::size_t>(r.id), keys[index], payload);
      } else if (inflight_copies[index] == 0) {
        // A workload failure is deterministic — every copy reports the same
        // verdict — so only the last outstanding copy drives the retry.
        requeue_or_quarantine(index, fl.attempt, p.what);
      }
    } catch (const std::exception&) {
      return false;  // undecodable payload: the stream is broken
    }
    return true;
  };

  const auto on_readable = [&](Remote& r) {
    char chunk[65536];
    const ssize_t nread = ::read(r.fd, chunk, sizeof(chunk));
    if (nread < 0) {
      if (errno == EINTR) return;
      drop_endpoint(r, std::string("read error: ") + std::strerror(errno),
                    false);
      return;
    }
    if (nread == 0) {
      drop_endpoint(r, "connection closed", false);
      return;
    }
    r.last_rx = Clock::now();
    r.rbuf.append(chunk, static_cast<std::size_t>(nread));
    for (;;) {
      const FrameSplit fs = try_unframe(r.rbuf);
      if (fs.status == FrameSplit::Status::kNeedMore) break;
      if (fs.status == FrameSplit::Status::kCorrupt) {
        drop_endpoint(r, "corrupt frame", false);
        return;
      }
      r.rbuf.erase(0, fs.consumed);
      TransportMsg msg;
      try {
        msg = parse_transport_msg(fs.payload);
      } catch (const std::exception& e) {
        drop_endpoint(r, std::string("bad message: ") + e.what(), false);
        return;
      }
      switch (msg.type) {
        case TransportMsgType::kHelloAck: {
          if (r.state != EpState::kHandshake ||
              msg.proto_version != kTransportProtocolVersion) {
            drop_endpoint(r, "unexpected handshake ack", false);
            return;
          }
          r.state = EpState::kReady;
          r.slots = std::max<std::uint32_t>(1, msg.slots);
          r.connect_attempts = 0;
          if (r.sessions > 0) ++stats_.reconnects;
          ++r.sessions;
          // NTP-style midpoint estimate: the daemon read its clock (t1)
          // roughly halfway between our send (t0) and this receive (t2).
          const auto t2 = steady_now_ns();
          clock_offset_ns[static_cast<std::size_t>(r.id)] =
              static_cast<std::int64_t>(msg.clock_ns) -
              static_cast<std::int64_t>(
                  (hello_sent_ns[static_cast<std::size_t>(r.id)] + t2) / 2);
          EndpointTelemetry& et =
              stats_.endpoints[static_cast<std::size_t>(r.id)];
          et.state = "ready";
          et.slots = r.slots;
          et.reconnects = r.sessions - 1;
          et.clock_offset_sec =
              static_cast<double>(
                  clock_offset_ns[static_cast<std::size_t>(r.id)]) *
              1e-9;
          break;
        }
        case TransportMsgType::kHelloReject:
          // The daemon refused this campaign (fingerprint or protocol
          // mismatch) — reconnecting cannot help.
          drop_endpoint(r, "rejected: " + msg.reason, true);
          return;
        case TransportMsgType::kHeartbeat:
          break;  // last_rx already refreshed
        case TransportMsgType::kTelemetry: {
          if (r.state != EpState::kReady) {
            drop_endpoint(r, "protocol violation", false);
            return;
          }
          try {
            if (telemetry_subtype(msg.body) == kTelemetryRunCapture) {
              fold_capture(decode_telemetry_capture(msg.body));
            } else {
              const TelemetryAggregate agg =
                  decode_telemetry_aggregate(msg.body);
              EndpointTelemetry& et =
                  stats_.endpoints[static_cast<std::size_t>(r.id)];
              // Counters and histograms are cumulative snapshots (latest
              // wins); spans arrive incrementally and accumulate.
              et.launched = agg.launched;
              et.respawns = agg.respawns;
              et.timeouts = agg.timeouts;
              et.signal_deaths = agg.signal_deaths;
              et.checkpoint_hits = agg.checkpoint_hits;
              et.checkpoint_misses = agg.checkpoint_misses;
              et.checkpoint_evictions = agg.checkpoint_evictions;
              et.trace_dropped = agg.trace_dropped;
              et.histograms = agg.histograms;
              et.base_sec =
                  static_cast<double>(
                      static_cast<std::int64_t>(agg.base_ns) -
                      clock_offset_ns[static_cast<std::size_t>(r.id)] -
                      batch_start_ns) *
                  1e-9;
              et.spans.insert(et.spans.end(), agg.spans.begin(),
                              agg.spans.end());
            }
          } catch (const std::exception& e) {
            drop_endpoint(r, std::string("bad telemetry: ") + e.what(),
                          false);
            return;
          }
          break;
        }
        case TransportMsgType::kRunResult:
          if (r.state != EpState::kReady ||
              !on_result(r, msg.index, msg.body)) {
            drop_endpoint(r, "protocol violation", false);
            return;
          }
          break;
        default:
          drop_endpoint(r, "unexpected message type", false);
          return;
      }
    }
  };

  SigpipeGuard sigpipe_guard;
  const double hb_window = std::max(3.0 * opts_.heartbeat_sec, 1.0);

  while (remaining > 0) {
    Clock::time_point now = Clock::now();

    // (Re)connect and open the handshake.
    for (Remote& r : remotes) {
      if (r.state != EpState::kDisconnected || now < r.reconnect_at) continue;
      std::string err;
      const int fd = connect_endpoint(r.ep, &err);
      if (fd < 0) {
        r.last_error = err;
        ++r.connect_attempts;
        if (r.connect_attempts > kMaxConnectAttempts) {
          r.state = EpState::kFailed;
          continue;
        }
        r.reconnect_at =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(backoff_delay_sec(
                          kReconnectBaseSec, r.connect_attempts,
                          fnv1a64(r.ep.spec.data(), r.ep.spec.size()),
                          kReconnectCapSec)));
        continue;
      }
      r.fd = fd;
      r.state = EpState::kHandshake;
      r.last_rx = now;
      stats_.endpoints[static_cast<std::size_t>(r.id)].state = "handshake";
      hello_sent_ns[static_cast<std::size_t>(r.id)] = steady_now_ns();
      send_frame(fd, msg_hello(opts_.campaign_fingerprint,
                               hello_sent_ns[static_cast<std::size_t>(r.id)]));
    }

    // Every endpoint permanently failed with work outstanding: fail loudly
    // instead of spinning (the journal shards preserve finished work).
    bool any_alive = false;
    for (const Remote& r : remotes) {
      if (r.state != EpState::kFailed) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) {
      std::string detail;
      for (const Remote& r : remotes) {
        detail += "\n  " + r.ep.spec + ": " +
                  (r.last_error.empty() ? "unreachable" : r.last_error);
      }
      throw std::runtime_error(
          "executor: no distributed worker endpoint is usable, " +
          std::to_string(remaining) + " runs unfinished" + detail);
    }

    // Straggler re-dispatch: a run in flight past the deadline gets one
    // extra copy queued for another endpoint; the first result wins.
    if (opts_.straggler_sec > 0.0) {
      for (Remote& r : remotes) {
        if (r.state != EpState::kReady) continue;
        for (const auto& [index, fl] : r.flights) {
          if (completed[index] != 0 || inflight_copies[index] != 1) continue;
          if (elapsed_sec(fl.sent, now) < opts_.straggler_sec) continue;
          if (extra_copies[index] >=
              static_cast<int>(remotes.size()) - 1) {
            continue;
          }
          bool queued = false;
          for (const Pending& p : pending) {
            if (p.index == index) {
              queued = true;
              break;
            }
          }
          if (queued) continue;
          pending.push_back(Pending{index, fl.attempt, now});
          ++extra_copies[index];
          ++stats_.redispatches;
        }
      }
    }

    // Work-stealing dispatch: every ready endpoint with free slots pulls
    // from the shared queue, so fast endpoints naturally take more runs. A
    // straggler copy never lands on an endpoint that already runs the index.
    for (Remote& r : remotes) {
      if (r.state != EpState::kReady) continue;
      for (auto it = pending.begin();
           it != pending.end() && r.flights.size() < r.slots;) {
        if (completed[it->index] != 0) {
          it = pending.erase(it);  // stale straggler copy
          continue;
        }
        if (it->eligible > now || r.flights.count(it->index) != 0) {
          ++it;
          continue;
        }
        send_frame(r.fd,
                   msg_run_request(it->index,
                                   serialize_run_config(effective_config(
                                       cfgs[it->index], opts_))));
        r.flights[it->index] = Flight{it->attempt, now};
        ++inflight_copies[it->index];
        it = pending.erase(it);
      }
    }

    // Sleep until the next event: socket bytes, a retry or reconnect coming
    // due, a straggler deadline, or a heartbeat-silence verdict.
    Clock::time_point wake = now + std::chrono::seconds(1);
    for (const Pending& p : pending) {
      if (p.eligible > now) wake = std::min(wake, p.eligible);
    }
    const auto hb_duration = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(hb_window));
    const auto straggler_duration =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(opts_.straggler_sec));
    std::vector<pollfd> fds;
    std::vector<Remote*> polled;
    for (Remote& r : remotes) {
      if (r.state == EpState::kFailed) continue;
      if (r.state == EpState::kDisconnected) {
        wake = std::min(wake, r.reconnect_at);
        continue;
      }
      fds.push_back(pollfd{r.fd, POLLIN, 0});
      polled.push_back(&r);
      wake = std::min(wake, r.last_rx + hb_duration);
      if (opts_.straggler_sec > 0.0) {
        for (const auto& [index, fl] : r.flights) {
          wake = std::min(wake, fl.sent + straggler_duration);
        }
      }
    }
    const int timeout_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));
    const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                          static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("executor: poll failed: ") +
                               std::strerror(errno));
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if (fds[i].revents != 0) on_readable(*polled[i]);
    }

    // Declare heartbeat-silent endpoints dead (covers a hung daemon and a
    // dropped network path — no FIN ever arrives in either case).
    now = Clock::now();
    for (Remote& r : remotes) {
      if ((r.state == EpState::kReady || r.state == EpState::kHandshake) &&
          elapsed_sec(r.last_rx, now) > hb_window) {
        drop_endpoint(r,
                      "no traffic for " + std::to_string(hb_window) +
                          " s (heartbeat silence)",
                      false);
      }
    }

    write_metrics_snapshot(n, n - remaining, /*force=*/false);
  }

  for (Remote& r : remotes) {
    if (r.fd >= 0) ::close(r.fd);
    r.fd = -1;
  }

  // Endpoint aggregates are cumulative snapshots (latest wins); fold the
  // final ones into the batch totals so distributed campaigns report
  // checkpoint-store effectiveness the same way local pools do.
  for (const EndpointTelemetry& et : stats_.endpoints) {
    stats_.checkpoint_hits += et.checkpoint_hits;
    stats_.checkpoint_misses += et.checkpoint_misses;
    stats_.checkpoint_evictions += et.checkpoint_evictions;
  }

  if (journaling) {
    // Deterministic merge: append every record this batch produced to the
    // main journal in plan order. The payload encoder is bit-exact, so the
    // merged journal is byte-identical to one written by a serial run; a
    // crash mid-merge leaves a plan-order prefix the next attempt's main
    // load skips over, and the shards still hold everything unmerged.
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] != 0) continue;
      journal_append(keys[i],
                     failed[i] != 0
                         ? make_result_payload(false, fail_what[i], results[i])
                         : make_result_payload(true, {}, results[i]));
    }
    for (std::size_t s = 0; s < shards.size(); ++s) {
      shards[s]->close();
      std::remove(shard_paths[s].c_str());
    }
    fsync_parent_dir(opts_.journal_path);
  }
}

#else  // !DAV_EXECUTOR_POSIX

void CampaignExecutor::run_forked(const std::vector<RunConfig>& cfgs,
                                  const std::vector<std::uint64_t>& keys,
                                  std::vector<RunResult>& results,
                                  const std::vector<char>& done) {
  run_in_process(cfgs, keys, results, done);
}

void CampaignExecutor::run_pool(const std::vector<RunConfig>& cfgs,
                                const std::vector<std::uint64_t>& keys,
                                std::vector<RunResult>& results,
                                const std::vector<char>& done) {
  run_in_process(cfgs, keys, results, done);
}

void CampaignExecutor::run_distributed(const std::vector<RunConfig>& cfgs,
                                       const std::vector<std::uint64_t>& keys,
                                       std::vector<RunResult>& results,
                                       const std::vector<char>& done) {
  run_in_process(cfgs, keys, results, done);
}

struct PoolSupervisor::Impl {
  Telemetry tele;
};

PoolSupervisor::PoolSupervisor(const ExecutorOptions&,
                               CampaignExecutor::CheckpointRunFn,
                               std::chrono::steady_clock::time_point) {
  throw std::runtime_error("executor: PoolSupervisor requires a POSIX host");
}

PoolSupervisor::~PoolSupervisor() = default;

int PoolSupervisor::slots() const { return 0; }
int PoolSupervisor::busy() const { return 0; }
bool PoolSupervisor::can_dispatch() const { return false; }

void PoolSupervisor::dispatch(std::size_t, int, const RunConfig&,
                              std::uint64_t) {
  throw std::runtime_error("executor: PoolSupervisor requires a POSIX host");
}

void PoolSupervisor::pump(int, std::vector<Completion>&, int, bool*) {
  throw std::runtime_error("executor: PoolSupervisor requires a POSIX host");
}

void PoolSupervisor::shutdown() {}

const PoolSupervisor::Telemetry& PoolSupervisor::telemetry() const {
  static const Telemetry kEmpty;
  return kEmpty;
}

#endif

}  // namespace dav
