#include "campaign/executor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define DAV_EXECUTOR_POSIX 1
#include <csignal>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "campaign/env_options.h"
#include "campaign/serialize.h"
#include "util/bits.h"

namespace dav {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_sec(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// ---- wire format ----------------------------------------------------------
//
// Frames (serialize.h: u32 len | u64 fnv1a64 | payload) carry:
//   result payload       = u8 ok | [str what, when !ok] | serialized RunResult
//   pool request payload = u64 index | serialized RunConfig
//   pool response payload = u64 index | u32 runs_served | u64 warm_hits |
//                           u64 warm_misses | result payload
// The response embeds the plain result payload verbatim, so the journaled
// record is byte-compatible across pool, fork-per-run and serial modes.
//
// A worker that dies mid-write leaves a frame that fails the length or
// checksum test; the supervisor treats that exactly like a signal death.

struct Payload {
  bool ok = false;
  std::string what;
  RunResult result;
};

std::string make_payload(bool ok, const std::string& what,
                         const RunResult& r) {
  ByteWriter w;
  w.u8(ok ? 1 : 0);
  if (!ok) w.str(what);
  w.raw(serialize_run_result(r));
  return w.take();
}

Payload parse_payload(const std::string& bytes) {
  ByteReader r(bytes);
  Payload p;
  p.ok = r.u8() != 0;
  if (!p.ok) p.what = r.str();
  std::string rest(bytes.data() + (bytes.size() - r.remaining()),
                   r.remaining());
  p.result = deserialize_run_result(rest);
  return p;
}

/// One-shot unframe (fork-per-run pipes, where EOF delimits the frame):
/// the buffer must hold exactly one complete, checksummed frame.
std::optional<std::string> unframe(const std::string& buf) {
  const FrameSplit fs = try_unframe(buf);
  if (fs.status != FrameSplit::Status::kOk || fs.consumed != buf.size()) {
    return std::nullopt;
  }
  return fs.payload;
}

}  // namespace

RunResult harness_error_result(const RunConfig& cfg) {
  RunResult r;
  r.scenario = cfg.scenario;
  r.mode = cfg.mode;
  r.fault = cfg.fault;
  r.run_seed = cfg.run_seed;
  r.dt = cfg.dt;
  r.outcome = FaultOutcome::kHarnessError;
  return r;
}

ExecutorOptions ExecutorOptions::from_env() {
  return EnvOptions::from_env().executor_options();
}

void ExecutorOptions::validate() const {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("ExecutorOptions: " + what);
  };
  if (!(run_timeout_sec > 0.0)) {
    reject("run_timeout_sec must be positive, got " +
           std::to_string(run_timeout_sec));
  }
  if (max_retries < 0) {
    reject("max_retries must be non-negative, got " +
           std::to_string(max_retries));
  }
  if (retry_backoff_sec < 0.0) {
    reject("retry_backoff_sec must be non-negative, got " +
           std::to_string(retry_backoff_sec));
  }
  if (cpu_limit_sec < 0.0) {
    reject("cpu_limit_sec must be non-negative, got " +
           std::to_string(cpu_limit_sec));
  }
}

CampaignExecutor::CampaignExecutor(ExecutorOptions opts, RunFn fn)
    : CampaignExecutor(
          std::move(opts),
          fn ? WarmRunFn([f = std::move(fn)](const RunConfig& c,
                                             WarmStateCache*) { return f(c); })
             : WarmRunFn{}) {}

CampaignExecutor::CampaignExecutor(ExecutorOptions opts, WarmRunFn fn)
    : opts_(std::move(opts)),
      fn_(fn ? std::move(fn)
             : WarmRunFn([](const RunConfig& c, WarmStateCache* w) {
                 return run_experiment(c, w);
               })) {
  opts_.validate();
}

void CampaignExecutor::journal_append(std::uint64_t key,
                                      const std::string& payload) {
  journal_.append(key, payload);
  ++stats_.journal_appends;
  stats_.journal_bytes += payload.size();
}

std::vector<RunResult> CampaignExecutor::run_all(
    const std::vector<RunConfig>& cfgs) {
  quarantined_.clear();
  stats_ = ExecutorStats{};
  batch_start_ = Clock::now();
  stats_.jobs = std::max(1, opts_.jobs);
  stats_.slot_busy_sec.assign(static_cast<std::size_t>(stats_.jobs), 0.0);
  stats_.slot_runs_served.assign(static_cast<std::size_t>(stats_.jobs), 0);

  std::vector<RunResult> results(cfgs.size());
  std::vector<char> done(cfgs.size(), 0);
  std::vector<std::uint64_t> keys(cfgs.size(), 0);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    keys[i] = run_config_digest(cfgs[i]);
  }

  if (!opts_.journal_path.empty()) {
    const JournalLoad load =
        load_journal(opts_.journal_path, opts_.campaign_fingerprint);
    stats_.torn_bytes_discarded = load.torn_bytes;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      const auto it = load.records.find(keys[i]);
      if (it == load.records.end()) continue;
      try {
        Payload p = parse_payload(it->second);
        results[i] = std::move(p.result);
        done[i] = 1;
        ++stats_.journal_hits;
        if (!p.ok) {
          // Replay the quarantine verdict too, so a resumed campaign reports
          // the same quarantined() list as the uninterrupted one.
          quarantined_.push_back(RunQuarantine{i, cfgs[i], p.what});
          ++stats_.quarantined;
        }
      } catch (const std::exception&) {
        // Undeserializable (e.g. written by an older record version):
        // re-execute the run.
      }
    }
    journal_ = JournalWriter(opts_.journal_path, opts_.campaign_fingerprint,
                             load);
  } else {
    journal_ = JournalWriter();
  }

#if DAV_EXECUTOR_POSIX
  if (opts_.force_in_process) {
    run_in_process(cfgs, keys, results, done);
  } else if (opts_.pool) {
    run_pool(cfgs, keys, results, done);
  } else {
    run_forked(cfgs, keys, results, done);
  }
#else
  run_in_process(cfgs, keys, results, done);
#endif

  journal_.close();
  stats_.wall_sec = elapsed_sec(batch_start_, Clock::now());
  // Workers finish in nondeterministic order; the quarantine report must not.
  std::sort(quarantined_.begin(), quarantined_.end(),
            [](const RunQuarantine& a, const RunQuarantine& b) {
              return a.index < b.index;
            });
  return results;
}

void CampaignExecutor::run_in_process(const std::vector<RunConfig>& cfgs,
                                      const std::vector<std::uint64_t>& keys,
                                      std::vector<RunResult>& results,
                                      const std::vector<char>& done) {
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] != 0) continue;
    const Clock::time_point started = Clock::now();
    try {
      RunResult r = fn_(cfgs[i], nullptr);
      if (journal_.enabled()) {
        journal_append(keys[i], make_payload(true, {}, r));
      }
      results[i] = std::move(r);
    } catch (const std::exception& e) {
      // In-process exceptions are deterministic; retrying them is futile.
      results[i] = harness_error_result(cfgs[i]);
      quarantined_.push_back(RunQuarantine{i, cfgs[i], e.what()});
      ++stats_.quarantined;
      if (journal_.enabled()) {
        journal_append(keys[i],
                       make_payload(false, e.what(), results[i]));
      }
    }
    const double dur = elapsed_sec(started, Clock::now());
    stats_.slot_busy_sec[0] += dur;
    stats_.spans.push_back(
        WorkerSpan{i, 0, 0, elapsed_sec(batch_start_, started), dur});
  }
}

#if DAV_EXECUTOR_POSIX

namespace {

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // supervisor gone; nothing useful left to do
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Death path for a forked worker: the child shares the supervisor's heap,
/// stdio and journal buffers via fork, so everything off the happy path must
/// stick to pre-formatted buffers and raw write(2) — no allocation, no
/// stdio, no unwinding (enforced by davlint's fork-safety rule).
[[noreturn]] void child_panic(const char* note, int code) {
  std::size_t len = 0;
  while (note[len] != '\0') ++len;
  ::write(2, note, len);
  ::_exit(code);
}

/// Pre-formatted SIGXCPU note: the handler may only touch the
/// async-signal-safe allowlist, so the text is fixed at arm time.
constexpr char kXcpuNote[] = "dav-worker: CPU budget exhausted (SIGXCPU)\n";

void xcpu_death_note(int sig) {
  ::write(2, kXcpuNote, sizeof(kXcpuNote) - 1);
  // Die by the signal itself (restore the default action and re-raise) so
  // the supervisor still sees WIFSIGNALED and counts a signal death.
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

/// Arm the SIGXCPU death note in a freshly forked worker, before the CPU
/// rlimit can fire. Registered with sigaction, so davlint's signal-safety
/// rule walks xcpu_death_note's call chain.
void arm_death_note() {
  struct sigaction sa {};
  sa.sa_handler = xcpu_death_note;
  ::sigaction(SIGXCPU, &sa, nullptr);
}

void apply_rlimits(const ExecutorOptions& opts) {
  if (opts.cpu_limit_sec > 0.0) {
    const auto sec = static_cast<rlim_t>(opts.cpu_limit_sec + 0.999);
    // Hard limit one second past the soft one: SIGXCPU at the soft limit,
    // guaranteed SIGKILL shortly after if the worker somehow survives it.
    rlimit lim{sec, sec + 1};
    ::setrlimit(RLIMIT_CPU, &lim);
  }
  if (opts.address_space_mb > 0) {
    const auto bytes =
        static_cast<rlim_t>(opts.address_space_mb) * 1024u * 1024u;
    rlimit lim{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &lim);
  }
}

[[noreturn]] void worker_main(int fd, const RunConfig& cfg,
                              const CampaignExecutor::WarmRunFn& fn,
                              const ExecutorOptions& opts) {
  arm_death_note();
  apply_rlimits(opts);
  // The workload handoff below allocates freely, and may: the child is a
  // fresh single-threaded copy of a single-threaded supervisor, so its heap
  // is consistent. fork-safety strictness is for the death paths
  // (child_panic / xcpu_death_note), which run after arbitrary signals.
  std::string payload;
  try {
    payload = make_payload(true, {}, fn(cfg, nullptr));  // davlint: allow(fork-safety) sanctioned workload handoff
  } catch (const std::exception& e) {
    payload = make_payload(false, e.what(), harness_error_result(cfg));  // davlint: allow(fork-safety) sanctioned workload handoff
  } catch (...) {
    payload = make_payload(false, "unknown exception",  // davlint: allow(fork-safety) sanctioned workload handoff
                           harness_error_result(cfg));
  }
  write_all(fd, frame_message(payload));
  // _exit, not exit: the worker shares the supervisor's stdio and journal
  // buffers via fork; running atexit/flush here would emit them twice.
  ::_exit(0);
}

/// Reset the soft CPU limit to (CPU used so far) + budget before each pool
/// run, so a long-lived worker gets the same per-run CPU budget a fork-per-
/// run worker gets from RLIMIT_CPU at birth. Only the soft limit moves (an
/// unprivileged process cannot raise a hard limit once lowered); SIGXCPU's
/// default action kills the worker, which the supervisor quarantines.
void rearm_cpu_limit(const ExecutorOptions& opts) {
  if (opts.cpu_limit_sec <= 0.0) return;
  rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return;
  const double used =
      static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
      static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) * 1e-6;
  const auto soft = static_cast<rlim_t>(used + opts.cpu_limit_sec + 0.999);
  rlimit lim{};
  if (::getrlimit(RLIMIT_CPU, &lim) != 0) return;
  lim.rlim_cur = lim.rlim_max == RLIM_INFINITY
                     ? soft
                     : std::min<rlim_t>(soft, lim.rlim_max);
  ::setrlimit(RLIMIT_CPU, &lim);
}

/// Long-lived pool worker: read request frames (u64 index | RunConfig) off
/// `req_fd` until the supervisor closes it, execute each config through the
/// worker's WarmStateCache, and ship response frames back on `resp_fd`.
[[noreturn]] void pool_worker_main(int req_fd, int resp_fd,
                                   const CampaignExecutor::WarmRunFn& fn,
                                   const ExecutorOptions& opts) {
  arm_death_note();
  // Address-space limit applies for the worker's life; the CPU budget is
  // per-run, re-armed before each request (see rearm_cpu_limit).
  ExecutorOptions life = opts;
  life.cpu_limit_sec = 0.0;
  apply_rlimits(life);
  WarmStateCache cache;
  WarmStateCache* warm = opts.warm_cache ? &cache : nullptr;
  std::string buf;
  std::uint32_t served = 0;
  // As in worker_main: the request/response codec below allocates, and may —
  // the loop body runs on a consistent heap. Death paths go through
  // child_panic (pre-formatted note + write(2) + _exit only).
  for (;;) {
    const FrameSplit fs = try_unframe(buf);  // davlint: allow(fork-safety) sanctioned request codec
    if (fs.status == FrameSplit::Status::kCorrupt) {
      child_panic("dav-worker: corrupt request frame\n", 3);
    }
    if (fs.status == FrameSplit::Status::kNeedMore) {
      char chunk[65536];
      const ssize_t n = ::read(req_fd, chunk, sizeof(chunk));
      if (n == 0) ::_exit(0);  // request pipe closed: batch complete
      if (n < 0) {
        if (errno == EINTR) continue;
        child_panic("dav-worker: request pipe read error\n", 3);
      }
      buf.append(chunk, static_cast<std::size_t>(n));  // davlint: allow(fork-safety) sanctioned request codec
      continue;
    }
    buf.erase(0, fs.consumed);
    ByteReader req(fs.payload);
    const std::uint64_t index = req.u64();
    const std::string cfg_bytes =
        fs.payload.substr(fs.payload.size() - req.remaining());  // davlint: allow(fork-safety) sanctioned request codec
    rearm_cpu_limit(opts);
    std::string result_payload;
    try {
      const RunConfigRecord rec = deserialize_run_config(cfg_bytes);  // davlint: allow(fork-safety) sanctioned workload handoff
      result_payload = make_payload(true, {}, fn(rec.cfg, warm));  // davlint: allow(fork-safety) sanctioned workload handoff
    } catch (const std::exception& e) {
      result_payload =
          make_payload(false, e.what(), harness_error_result(RunConfig{}));  // davlint: allow(fork-safety) sanctioned workload handoff
    } catch (...) {
      result_payload = make_payload(false, "unknown exception",  // davlint: allow(fork-safety) sanctioned workload handoff
                                    harness_error_result(RunConfig{}));
    }
    ++served;
    ByteWriter resp;
    resp.u64(index);
    resp.u32(served);
    resp.u64(cache.hits());
    resp.u64(cache.misses());
    resp.raw(result_payload);
    write_all(resp_fd, frame_message(resp.take()));
  }
}

int await_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) break;
  }
  return status;
}

std::string describe_death(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    return "worker died: signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "worker exited with code " + std::to_string(WEXITSTATUS(status)) +
           " without a complete result record";
  }
  return "worker ended without a complete result record";
}

}  // namespace

void CampaignExecutor::run_forked(const std::vector<RunConfig>& cfgs,
                                  const std::vector<std::uint64_t>& keys,
                                  std::vector<RunResult>& results,
                                  const std::vector<char>& done) {
  struct Pending {
    std::size_t index = 0;
    int attempt = 0;
    Clock::time_point eligible{};
  };
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::size_t index = 0;
    int attempt = 0;
    int slot = 0;  // utilization accounting + Perfetto pid
    std::string buf;
    Clock::time_point started{};
    Clock::time_point deadline{};
    bool timed_out = false;
  };

  const int jobs = std::max(1, opts_.jobs);
  const auto timeout =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(opts_.run_timeout_sec));

  std::deque<Pending> pending;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] == 0) pending.push_back(Pending{i, 0, start});
  }
  std::vector<Worker> workers;
  std::vector<char> slot_used(static_cast<std::size_t>(jobs), 0);

  const auto claim_slot = [&]() {
    for (std::size_t s = 0; s < slot_used.size(); ++s) {
      if (slot_used[s] == 0) {
        slot_used[s] = 1;
        return static_cast<int>(s);
      }
    }
    return 0;  // unreachable: launches are capped at `jobs` live workers
  };

  const auto launch = [&](const Pending& p) {
    int pipefd[2] = {-1, -1};
    if (::pipe(pipefd) != 0) {
      throw std::runtime_error(std::string("executor: pipe failed: ") +
                               std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      throw std::runtime_error(std::string("executor: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      ::close(pipefd[0]);
      worker_main(pipefd[1], cfgs[p.index], fn_, opts_);
    }
    ::close(pipefd[1]);
    Worker w;
    w.pid = pid;
    w.fd = pipefd[0];
    w.index = p.index;
    w.attempt = p.attempt;
    w.slot = claim_slot();
    w.started = Clock::now();
    w.deadline = w.started + timeout;
    workers.push_back(std::move(w));
    ++stats_.launched;
  };

  const auto requeue_or_quarantine = [&](const Worker& w,
                                         const std::string& what) {
    if (w.attempt < opts_.max_retries) {
      ++stats_.retries;
      const double backoff_sec =
          opts_.retry_backoff_sec * static_cast<double>(1 << w.attempt);
      pending.push_back(Pending{
          w.index, w.attempt + 1,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_sec))});
      return;
    }
    results[w.index] = harness_error_result(cfgs[w.index]);
    quarantined_.push_back(RunQuarantine{w.index, cfgs[w.index], what});
    ++stats_.quarantined;
    if (journal_.enabled()) {
      journal_append(keys[w.index],
                     make_payload(false, what, results[w.index]));
    }
  };

  const auto finalize = [&](Worker w) {
    ::close(w.fd);
    const int status = await_child(w.pid);
    const double dur = elapsed_sec(w.started, Clock::now());
    stats_.slot_busy_sec[static_cast<std::size_t>(w.slot)] += dur;
    stats_.spans.push_back(WorkerSpan{w.index, w.slot, w.attempt,
                                      elapsed_sec(batch_start_, w.started),
                                      dur});
    slot_used[static_cast<std::size_t>(w.slot)] = 0;

    // A complete, checksummed frame wins regardless of exit status (the
    // watchdog may race a worker that finished its write).
    if (const auto payload = unframe(w.buf)) {
      try {
        Payload p = parse_payload(*payload);
        if (p.ok) {
          if (journal_.enabled()) journal_append(keys[w.index], *payload);
          results[w.index] = std::move(p.result);
        } else {
          requeue_or_quarantine(w, p.what);
        }
        return;
      } catch (const std::exception&) {
        // fall through to the death diagnosis
      }
    }
    std::string what;
    if (w.timed_out) {
      what = "watchdog: no result after " +
             std::to_string(opts_.run_timeout_sec) + " s; worker killed";
    } else {
      what = describe_death(status);
      if (WIFSIGNALED(status)) ++stats_.signal_deaths;
    }
    requeue_or_quarantine(w, what);
  };

  while (!pending.empty() || !workers.empty()) {
    // Launch every eligible pending run into free worker slots.
    Clock::time_point now = Clock::now();
    for (auto it = pending.begin();
         it != pending.end() && static_cast<int>(workers.size()) < jobs;) {
      if (it->eligible <= now) {
        launch(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    // Sleep until the next event: readable pipe, watchdog deadline, or a
    // retry becoming eligible.
    Clock::time_point wake = now + std::chrono::seconds(1);
    for (const Worker& w : workers) wake = std::min(wake, w.deadline);
    if (static_cast<int>(workers.size()) < jobs) {
      for (const Pending& p : pending) wake = std::min(wake, p.eligible);
    }
    const int timeout_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));

    std::vector<pollfd> fds;
    fds.reserve(workers.size());
    for (const Worker& w : workers) fds.push_back(pollfd{w.fd, POLLIN, 0});
    const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                          static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("executor: poll failed: ") +
                               std::strerror(errno));
    }

    // Drain readable pipes; an EOF means the worker is done (or dead).
    for (std::size_t i = 0; i < workers.size();) {
      Worker& w = workers[i];
      const short revents = i < fds.size() ? fds[i].revents : 0;
      if (revents == 0) {
        ++i;
        continue;
      }
      char chunk[65536];
      const ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
      if (n > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(n));
        ++i;
      } else if (n < 0 && errno == EINTR) {
        ++i;
      } else {
        Worker finished = std::move(w);
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        finalize(std::move(finished));
      }
    }

    // Enforce the wall-clock watchdog; the kill produces an EOF picked up by
    // the next poll round.
    now = Clock::now();
    for (Worker& w : workers) {
      if (!w.timed_out && now >= w.deadline) {
        w.timed_out = true;
        ++stats_.timeouts;
        ::kill(w.pid, SIGKILL);
      }
    }
  }
}

void CampaignExecutor::run_pool(const std::vector<RunConfig>& cfgs,
                                const std::vector<std::uint64_t>& keys,
                                std::vector<RunResult>& results,
                                const std::vector<char>& done) {
  struct Pending {
    std::size_t index = 0;
    int attempt = 0;
    Clock::time_point eligible{};
  };
  /// One persistent worker. Lives until it dies (crash/hang/rlimit) or the
  /// batch ends; serves many runs, at most one in flight at a time.
  struct PoolWorker {
    pid_t pid = -1;
    int req_fd = -1;   // supervisor -> worker: request frames
    int resp_fd = -1;  // worker -> supervisor: response frames
    int slot = 0;
    bool busy = false;
    std::size_t index = 0;  // in-flight run (when busy)
    int attempt = 0;
    std::string buf;  // response bytes accumulated so far
    Clock::time_point started{};
    Clock::time_point deadline{};
    bool timed_out = false;
    // Cumulative counters from the worker's latest response; folded into
    // stats_ when the worker retires.
    int served = 0;
    std::uint64_t warm_hits = 0;
    std::uint64_t warm_misses = 0;
  };

  const int jobs = std::max(1, opts_.jobs);
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(opts_.run_timeout_sec));

  std::deque<Pending> pending;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (done[i] == 0) pending.push_back(Pending{i, 0, start});
  }
  if (pending.empty()) return;

  // The supervisor writes requests into worker pipes; a worker that died
  // between dispatches would otherwise turn that write into a fatal SIGPIPE
  // here. Ignore it for the pool's lifetime (the failed write surfaces as an
  // EOF on the response pipe, which requeues the run).
  struct SigpipeGuard {
    struct sigaction prev {};
    SigpipeGuard() {
      struct sigaction ign {};
      ign.sa_handler = SIG_IGN;
      ::sigaction(SIGPIPE, &ign, &prev);
    }
    ~SigpipeGuard() { ::sigaction(SIGPIPE, &prev, nullptr); }
  } sigpipe_guard;

  std::vector<PoolWorker> workers;
  std::vector<char> slot_used(static_cast<std::size_t>(jobs), 0);
  const auto claim_slot = [&]() {
    for (std::size_t s = 0; s < slot_used.size(); ++s) {
      if (slot_used[s] == 0) {
        slot_used[s] = 1;
        return static_cast<int>(s);
      }
    }
    return 0;  // unreachable: live workers are capped at `jobs`
  };

  const auto spawn = [&]() {
    int req[2] = {-1, -1};
    int resp[2] = {-1, -1};
    if (::pipe(req) != 0 || ::pipe(resp) != 0) {
      throw std::runtime_error(std::string("executor: pipe failed: ") +
                               std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : {req[0], req[1], resp[0], resp[1]}) ::close(fd);
      throw std::runtime_error(std::string("executor: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      ::close(req[1]);
      ::close(resp[0]);
      pool_worker_main(req[0], resp[1], fn_, opts_);
    }
    ::close(req[0]);
    ::close(resp[1]);
    PoolWorker w;
    w.pid = pid;
    w.req_fd = req[1];
    w.resp_fd = resp[0];
    w.slot = claim_slot();
    workers.push_back(std::move(w));
    ++stats_.launched;
  };

  const auto requeue_or_quarantine = [&](std::size_t index, int attempt,
                                         const std::string& what) {
    if (attempt < opts_.max_retries) {
      ++stats_.retries;
      const double backoff_sec =
          opts_.retry_backoff_sec * static_cast<double>(1 << attempt);
      pending.push_back(Pending{
          index, attempt + 1,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_sec))});
      return;
    }
    results[index] = harness_error_result(cfgs[index]);
    quarantined_.push_back(RunQuarantine{index, cfgs[index], what});
    ++stats_.quarantined;
    if (journal_.enabled()) {
      journal_append(keys[index], make_payload(false, what, results[index]));
    }
  };

  const auto account_attempt = [&](const PoolWorker& w) {
    const double dur = elapsed_sec(w.started, Clock::now());
    stats_.slot_busy_sec[static_cast<std::size_t>(w.slot)] += dur;
    stats_.spans.push_back(WorkerSpan{w.index, w.slot, w.attempt,
                                      elapsed_sec(batch_start_, w.started),
                                      dur});
  };

  /// Reap a worker (dead, corrupt, or batch-complete) and fold its counters
  /// into stats_. A run in flight is requeued or quarantined.
  const auto retire = [&](PoolWorker w, bool clean_shutdown) {
    if (w.req_fd >= 0) ::close(w.req_fd);
    ::close(w.resp_fd);
    if (!clean_shutdown) ::kill(w.pid, SIGKILL);
    const int status = await_child(w.pid);
    slot_used[static_cast<std::size_t>(w.slot)] = 0;
    stats_.slot_runs_served[static_cast<std::size_t>(w.slot)] += w.served;
    stats_.warm_hits += w.warm_hits;
    stats_.warm_misses += w.warm_misses;
    if (!w.busy) return;
    account_attempt(w);
    std::string what;
    if (w.timed_out) {
      what = "watchdog: no result after " +
             std::to_string(opts_.run_timeout_sec) + " s; worker killed";
    } else {
      what = describe_death(status);
      if (WIFSIGNALED(status)) ++stats_.signal_deaths;
    }
    requeue_or_quarantine(w.index, w.attempt, what);
  };

  const auto dispatch = [&](PoolWorker& w, const Pending& p) {
    ByteWriter req;
    req.u64(p.index);
    req.raw(serialize_run_config(cfgs[p.index]));
    write_all(w.req_fd, frame_message(req.take()));
    w.busy = true;
    w.index = p.index;
    w.attempt = p.attempt;
    w.started = Clock::now();
    w.deadline = w.started + timeout;
    w.timed_out = false;
  };

  /// Handle one complete response frame. Returns false when the worker broke
  /// protocol and must be retired.
  const auto on_response = [&](PoolWorker& w,
                               const std::string& payload) -> bool {
    try {
      ByteReader r(payload);
      const std::uint64_t index = r.u64();
      const int served = static_cast<int>(r.u32());
      const std::uint64_t hits = r.u64();
      const std::uint64_t misses = r.u64();
      const std::string result_payload =
          payload.substr(payload.size() - r.remaining());
      if (!w.busy || index != w.index) return false;  // protocol violation
      Payload p = parse_payload(result_payload);
      w.served = served;
      w.warm_hits = hits;
      w.warm_misses = misses;
      account_attempt(w);
      w.busy = false;
      if (p.ok) {
        if (journal_.enabled()) journal_append(keys[index], result_payload);
        results[index] = std::move(p.result);
      } else {
        requeue_or_quarantine(index, w.attempt, p.what);
      }
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };

  // Prefork the pool: one long-lived worker per slot, capped by the work
  // actually pending. Later spawns are respawns after a worker death.
  const int initial = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), pending.size()));
  for (int i = 0; i < initial; ++i) spawn();
  stats_.pool_workers = initial;

  while (!pending.empty() ||
         std::any_of(workers.begin(), workers.end(),
                     [](const PoolWorker& w) { return w.busy; })) {
    // Feed eligible pending runs to idle workers; respawn replacements for
    // dead slots while work remains.
    Clock::time_point now = Clock::now();
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->eligible > now) {
        ++it;
        continue;
      }
      PoolWorker* idle = nullptr;
      for (PoolWorker& w : workers) {
        if (!w.busy) {
          idle = &w;
          break;
        }
      }
      if (idle == nullptr && static_cast<int>(workers.size()) < jobs) {
        spawn();
        ++stats_.respawns;
        idle = &workers.back();
      }
      if (idle == nullptr) break;  // every worker busy
      dispatch(*idle, *it);
      it = pending.erase(it);
    }

    // Sleep until the next event: a readable response pipe, a watchdog
    // deadline, or a retry becoming eligible.
    Clock::time_point wake = now + std::chrono::seconds(1);
    for (const PoolWorker& w : workers) {
      if (w.busy) wake = std::min(wake, w.deadline);
    }
    for (const Pending& p : pending) wake = std::min(wake, p.eligible);
    const int timeout_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));

    std::vector<pollfd> fds;
    fds.reserve(workers.size());
    for (const PoolWorker& w : workers) {
      fds.push_back(pollfd{w.resp_fd, POLLIN, 0});
    }
    const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                          static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("executor: poll failed: ") +
                               std::strerror(errno));
    }

    // Drain readable pipes. A complete frame is a finished run; EOF or a
    // corrupt stream is a dead worker.
    for (std::size_t i = 0; i < workers.size();) {
      PoolWorker& w = workers[i];
      const short revents = i < fds.size() ? fds[i].revents : 0;
      if (revents == 0) {
        ++i;
        continue;
      }
      bool dead = false;
      char chunk[65536];
      const ssize_t n = ::read(w.resp_fd, chunk, sizeof(chunk));
      if (n > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(n));
        for (;;) {
          const FrameSplit fs = try_unframe(w.buf);
          if (fs.status == FrameSplit::Status::kNeedMore) break;
          if (fs.status == FrameSplit::Status::kCorrupt ||
              !on_response(w, fs.payload)) {
            dead = true;
            break;
          }
          w.buf.erase(0, fs.consumed);
        }
      } else if (n < 0 && errno == EINTR) {
        // retry next round
      } else if (n == 0) {
        dead = true;  // EOF: the worker died (clean exits only happen after
                      // the supervisor closes the request pipe below)
      } else {
        dead = true;
      }
      if (dead) {
        PoolWorker finished = std::move(w);
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        retire(std::move(finished), /*clean_shutdown=*/false);
      } else {
        ++i;
      }
    }

    // Wall-clock watchdog: a worker still busy past its deadline is killed;
    // the kill surfaces as EOF on the next poll round.
    now = Clock::now();
    for (PoolWorker& w : workers) {
      if (w.busy && !w.timed_out && now >= w.deadline) {
        w.timed_out = true;
        ++stats_.timeouts;
        ::kill(w.pid, SIGKILL);
      }
    }
  }

  // Batch complete: close the request pipes; each worker reads EOF and
  // exits cleanly.
  while (!workers.empty()) {
    PoolWorker w = std::move(workers.back());
    workers.pop_back();
    ::close(w.req_fd);
    w.req_fd = -1;
    retire(std::move(w), /*clean_shutdown=*/true);
  }
}

#else  // !DAV_EXECUTOR_POSIX

void CampaignExecutor::run_forked(const std::vector<RunConfig>& cfgs,
                                  const std::vector<std::uint64_t>& keys,
                                  std::vector<RunResult>& results,
                                  const std::vector<char>& done) {
  run_in_process(cfgs, keys, results, done);
}

void CampaignExecutor::run_pool(const std::vector<RunConfig>& cfgs,
                                const std::vector<std::uint64_t>& keys,
                                std::vector<RunResult>& results,
                                const std::vector<char>& done) {
  run_in_process(cfgs, keys, results, done);
}

#endif

}  // namespace dav
