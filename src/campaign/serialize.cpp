#include "campaign/serialize.h"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/threshold_lut.h"
#include "util/bits.h"

namespace dav {

namespace {

[[noreturn]] void malformed(const char* what) {
  throw std::runtime_error(std::string("run record: ") + what);
}

}  // namespace

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::f64(double v) { u64(double_bits(v)); }

void ByteWriter::f32(float v) { u32(float_bits(v)); }

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  buf_ += s;
}

const char* ByteReader::need(std::size_t n) {
  if (size_ - pos_ < n) malformed("truncated");
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint32_t ByteReader::u32() {
  const char* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return bits_double(u64()); }

float ByteReader::f32() { return bits_float(u32()); }

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (size_ - pos_ < n) malformed("truncated string");
  const char* p = need(static_cast<std::size_t>(n));
  return std::string(p, static_cast<std::size_t>(n));
}

namespace {

void put_fault_plan(ByteWriter& w, const FaultPlan& p) {
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u8(static_cast<std::uint8_t>(p.domain));
  w.u64(p.target_dyn_index);
  w.i32(p.target_opcode);
  w.i32(p.bit);
}

FaultPlan get_fault_plan(ByteReader& r) {
  FaultPlan p;
  p.kind = static_cast<FaultModelKind>(r.u8());
  p.domain = static_cast<FaultDomain>(r.u8());
  p.target_dyn_index = r.u64();
  p.target_opcode = r.i32();
  p.bit = r.i32();
  return p;
}

// --- Sensor extension (trailing, optional) ---------------------------------
// The sensor-fault / fusion fields ride in a trailing section that is written
// ONLY when active. A plan-free, fusion-free config or result serializes to
// the exact pre-extension byte stream (pinned by test_sensor_fault), so
// existing journals and digests are untouched; readers probe `!r.done()`
// before the trailing-bytes check, so both generations parse.

void put_sensor_plan(ByteWriter& w, const SensorFaultPlan& p) {
  w.u8(static_cast<std::uint8_t>(p.model));
  w.i32(p.sensor_index);
  w.i32(p.onset_tick);
  w.i32(p.duration_ticks);
  w.u64(p.seed);
  w.f64(p.magnitude);
  w.i32(p.layer);
  w.i32(p.bit);
}

SensorFaultPlan get_sensor_plan(ByteReader& r) {
  SensorFaultPlan p;
  p.model = static_cast<SensorFaultModel>(r.u8());
  p.sensor_index = r.i32();
  p.onset_tick = r.i32();
  p.duration_ticks = r.i32();
  p.seed = r.u64();
  p.magnitude = r.f64();
  p.layer = r.i32();
  p.bit = r.i32();
  return p;
}

/// Everything a worker needs to reproduce the fused agent + monitor exactly.
void put_fusion_config(ByteWriter& w, const FusionConfig& f) {
  w.i32(f.health.degrade_after);
  w.i32(f.health.drop_after);
  w.i32(f.health.rejoin_after);
  w.f64(f.health.degraded_weight);
  w.f64(f.health.cam_min_mean);
  w.f64(f.health.cam_extreme_frac);
  w.f64(f.health.gps_jump_m);
  w.f64(f.health.gps_velocity_mismatch_mps);
  w.i32(f.health.gps_window_ticks);
  w.f64(f.health.lidar_invalid_frac);
  w.f64(f.health.lidar_ghost_range_m);
  w.f64(f.health.lidar_ghost_frac);
  w.f64(f.lidar_corridor_half_deg);
  w.f64(f.min_cruise_mps);
}

FusionConfig get_fusion_config(ByteReader& r) {
  FusionConfig f;
  f.health.degrade_after = r.i32();
  f.health.drop_after = r.i32();
  f.health.rejoin_after = r.i32();
  f.health.degraded_weight = r.f64();
  f.health.cam_min_mean = r.f64();
  f.health.cam_extreme_frac = r.f64();
  f.health.gps_jump_m = r.f64();
  f.health.gps_velocity_mismatch_mps = r.f64();
  f.health.gps_window_ticks = r.i32();
  f.health.lidar_invalid_frac = r.f64();
  f.health.lidar_ghost_range_m = r.f64();
  f.health.lidar_ghost_frac = r.f64();
  f.lidar_corridor_half_deg = r.f64();
  f.min_cruise_mps = r.f64();
  return f;
}

bool config_has_sensor_extension(const RunConfig& cfg) {
  return cfg.sensor_fault.active() || cfg.fusion.enabled;
}

// Second trailing section (checkpoint routing). Trailing sections carry no
// tags — readers probe `!r.done()` in order — so a config that needs the
// checkpoint section must also FORCE-write the sensor section in front of
// it, or the reader would misparse checkpoint bytes as a sensor plan. A
// default CheckpointOptions writes nothing, keeping checkpoint-off configs
// byte-identical to the PR-9 encoding.
bool config_has_checkpoint_extension(const RunConfig& cfg) {
  return cfg.checkpoint.enabled || cfg.checkpoint.capture_tick >= 0;
}

void put_config_sensor_extension(ByteWriter& w, const RunConfig& cfg) {
  w.u8(cfg.fusion.enabled ? 1 : 0);
  put_sensor_plan(w, cfg.sensor_fault);
  put_fusion_config(w, cfg.fusion);
}

void put_vehicle_state(ByteWriter& w, const VehicleState& s) {
  w.f64(s.pose.pos.x);
  w.f64(s.pose.pos.y);
  w.f64(s.pose.yaw);
  w.f64(s.v);
  w.f64(s.a);
  w.f64(s.omega);
  w.f64(s.alpha);
}

VehicleState get_vehicle_state(ByteReader& r) {
  VehicleState s;
  s.pose.pos.x = r.f64();
  s.pose.pos.y = r.f64();
  s.pose.yaw = r.f64();
  s.v = r.f64();
  s.a = r.f64();
  s.omega = r.f64();
  s.alpha = r.f64();
  return s;
}

template <typename T, typename PutFn>
void put_vec(ByteWriter& w, const std::vector<T>& v, PutFn put) {
  w.u64(v.size());
  for (const T& e : v) put(w, e);
}

std::uint64_t get_count(ByteReader& r) {
  const std::uint64_t n = r.u64();
  // An element is at least one byte; a count past the remaining bytes is
  // corruption, caught here instead of in a giant allocation.
  if (n > r.remaining()) malformed("implausible element count");
  return n;
}

}  // namespace

std::string serialize_run_result(const RunResult& r) {
  ByteWriter w;
  w.u32(kRunRecordVersion);
  w.u8(static_cast<std::uint8_t>(r.scenario));
  w.u8(static_cast<std::uint8_t>(r.mode));
  put_fault_plan(w, r.fault);
  w.u64(r.run_seed);
  w.u8(static_cast<std::uint8_t>(r.outcome));
  w.u8(r.fault_activated ? 1 : 0);
  w.u8(r.collision ? 1 : 0);
  w.f64(r.collision_time);
  w.u8(r.flags.collision ? 1 : 0);
  w.u8(r.flags.red_light_violation ? 1 : 0);
  w.u8(r.flags.speeding ? 1 : 0);
  w.u8(r.flags.off_road ? 1 : 0);
  put_vec(w, r.trajectory.points(), [](ByteWriter& o, const Vec2& p) {
    o.f64(p.x);
    o.f64(p.y);
  });
  w.f64(r.duration);
  w.f64(r.scheduled_duration);
  w.f64(r.dt);
  w.i32(r.steps);
  w.u8(r.due ? 1 : 0);
  w.f64(r.due_time);
  w.u8(static_cast<std::uint8_t>(r.due_source));
  w.u8(r.online_alarmed ? 1 : 0);
  w.f64(r.online_alarm_time);
  w.i32(r.recovery.attempts);
  w.i32(r.recovery.completed);
  w.u8(r.recovery.escalated ? 1 : 0);
  w.f64(r.recovery.first_detector_alarm_time);
  put_vec(w, r.recovery.events, [](ByteWriter& o, const RecoveryEvent& e) {
    o.i32(e.suspect);
    o.u8(static_cast<std::uint8_t>(e.trigger));
    o.f64(e.alarm_time);
    o.f64(e.restart_time);
    o.f64(e.rejoin_time);
    o.i32(e.alarm_tick);
    o.i32(e.restart_tick);
    o.i32(e.rejoin_tick);
  });
  w.i32(r.recovery.nominal_ticks);
  w.i32(r.recovery.probe_ticks);
  w.i32(r.recovery.degraded_ticks);
  w.i32(r.recovery.failback_ticks);
  put_vec(w, r.observations, [](ByteWriter& o, const StepObservation& s) {
    o.f64(s.time);
    put_vehicle_state(o, s.state);
    o.f64(s.delta.throttle);
    o.f64(s.delta.brake);
    o.f64(s.delta.steer);
  });
  const auto put_f64_vec = [&w](const std::vector<double>& v) {
    put_vec(w, v, [](ByteWriter& o, double d) { o.f64(d); });
  };
  put_f64_vec(r.time_trace);
  put_f64_vec(r.throttle_trace);
  put_f64_vec(r.brake_trace);
  put_f64_vec(r.steer_trace);
  put_f64_vec(r.cvip_trace);
  put_vec(w, r.acting_agent_trace,
          [](ByteWriter& o, int v) { o.i32(v); });
  w.u64(r.gpu_instructions);
  w.u64(r.cpu_instructions);
  w.u64(r.agent_state_bytes);
  w.u64(r.sensor_frame_bytes);
  if (r.sensor_fault.active() || r.sensor_corruptions != 0 ||
      r.recovery.sensor_degraded_ticks != 0 ||
      !r.recovery.sensor_events.empty()) {
    put_sensor_plan(w, r.sensor_fault);
    w.u64(r.sensor_corruptions);
    w.i32(r.recovery.sensor_degraded_ticks);
    put_vec(w, r.recovery.sensor_events,
            [](ByteWriter& o, const SensorDegradeEvent& e) {
              o.i32(e.channel);
              o.i32(e.onset_tick);
              o.f64(e.onset_time);
              o.i32(e.rejoin_tick);
              o.f64(e.rejoin_time);
              o.u8(e.dropped ? 1 : 0);
              o.u8(e.escalated ? 1 : 0);
            });
  }
  return w.take();
}

RunResult deserialize_run_result(const std::string& bytes) {
  ByteReader r(bytes);
  if (r.u32() != kRunRecordVersion) malformed("version mismatch");
  RunResult out;
  out.scenario = static_cast<ScenarioId>(r.u8());
  out.mode = static_cast<AgentMode>(r.u8());
  out.fault = get_fault_plan(r);
  out.run_seed = r.u64();
  out.outcome = static_cast<FaultOutcome>(r.u8());
  out.fault_activated = r.u8() != 0;
  out.collision = r.u8() != 0;
  out.collision_time = r.f64();
  out.flags.collision = r.u8() != 0;
  out.flags.red_light_violation = r.u8() != 0;
  out.flags.speeding = r.u8() != 0;
  out.flags.off_road = r.u8() != 0;
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    const double x = r.f64();
    const double y = r.f64();
    out.trajectory.push({x, y});
  }
  out.duration = r.f64();
  out.scheduled_duration = r.f64();
  out.dt = r.f64();
  out.steps = r.i32();
  out.due = r.u8() != 0;
  out.due_time = r.f64();
  out.due_source = static_cast<DueSource>(r.u8());
  out.online_alarmed = r.u8() != 0;
  out.online_alarm_time = r.f64();
  out.recovery.attempts = r.i32();
  out.recovery.completed = r.i32();
  out.recovery.escalated = r.u8() != 0;
  out.recovery.first_detector_alarm_time = r.f64();
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    RecoveryEvent e;
    e.suspect = r.i32();
    e.trigger = static_cast<DueSource>(r.u8());
    e.alarm_time = r.f64();
    e.restart_time = r.f64();
    e.rejoin_time = r.f64();
    e.alarm_tick = r.i32();
    e.restart_tick = r.i32();
    e.rejoin_tick = r.i32();
    out.recovery.events.push_back(e);
  }
  out.recovery.nominal_ticks = r.i32();
  out.recovery.probe_ticks = r.i32();
  out.recovery.degraded_ticks = r.i32();
  out.recovery.failback_ticks = r.i32();
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    StepObservation s;
    s.time = r.f64();
    s.state = get_vehicle_state(r);
    s.delta.throttle = r.f64();
    s.delta.brake = r.f64();
    s.delta.steer = r.f64();
    out.observations.push_back(s);
  }
  const auto get_f64_vec = [&r]() {
    std::vector<double> v;
    for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) v.push_back(r.f64());
    return v;
  };
  out.time_trace = get_f64_vec();
  out.throttle_trace = get_f64_vec();
  out.brake_trace = get_f64_vec();
  out.steer_trace = get_f64_vec();
  out.cvip_trace = get_f64_vec();
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    out.acting_agent_trace.push_back(r.i32());
  }
  out.gpu_instructions = r.u64();
  out.cpu_instructions = r.u64();
  out.agent_state_bytes = r.u64();
  out.sensor_frame_bytes = r.u64();
  if (!r.done()) {  // sensor extension (absent in pre-extension records)
    out.sensor_fault = get_sensor_plan(r);
    out.sensor_corruptions = r.u64();
    out.recovery.sensor_degraded_ticks = r.i32();
    for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
      SensorDegradeEvent e;
      e.channel = r.i32();
      e.onset_tick = r.i32();
      e.onset_time = r.f64();
      e.rejoin_tick = r.i32();
      e.rejoin_time = r.f64();
      e.dropped = r.u8() != 0;
      e.escalated = r.u8() != 0;
      out.recovery.sensor_events.push_back(e);
    }
  }
  if (!r.done()) malformed("trailing bytes");
  return out;
}

std::string frame_message(const std::string& payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(fnv1a64(payload.data(), payload.size()));
  w.raw(payload);
  return w.take();
}

FrameSplit try_unframe(const std::string& buf) {
  FrameSplit out;
  if (buf.size() < 12) return out;  // header not complete yet
  ByteReader r(buf);
  const std::uint32_t len = r.u32();
  const std::uint64_t checksum = r.u64();
  if (buf.size() - 12 < len) return out;  // payload not complete yet
  std::string payload = buf.substr(12, len);
  if (fnv1a64(payload.data(), payload.size()) != checksum) {
    out.status = FrameSplit::Status::kCorrupt;
    return out;
  }
  out.status = FrameSplit::Status::kOk;
  out.payload = std::move(payload);
  out.consumed = 12 + static_cast<std::size_t>(len);
  return out;
}

std::string serialize_run_config(const RunConfig& cfg) {
  ByteWriter w;
  w.u32(kRunConfigVersion);
  w.u8(static_cast<std::uint8_t>(cfg.scenario));
  w.u64(cfg.scenario_seed);
  w.f64(cfg.scenario_opts.long_route_duration_sec);
  w.f64(cfg.scenario_opts.safety_duration_sec);
  w.u8(static_cast<std::uint8_t>(cfg.mode));
  w.f64(cfg.overlap_ratio);
  put_fault_plan(w, cfg.fault);
  w.u64(cfg.run_seed);
  w.f64(cfg.dt);
  w.i32(cfg.cam_width);
  w.i32(cfg.cam_height);
  w.f64(cfg.camera_noise_sigma);
  w.u8(cfg.record_traces ? 1 : 0);
  w.f64(cfg.watchdog_sec);
  w.f64(cfg.stuck_watchdog_sec);
  w.u8(static_cast<std::uint8_t>(cfg.mitigation));
  w.i32(cfg.recovery.probe_ticks);
  w.i32(cfg.recovery.rewarm_ticks);
  w.i32(cfg.recovery.max_recoveries);
  w.i32(cfg.recovery.recovery_window_ticks);
  w.u8(cfg.online_lut != nullptr ? 1 : 0);
  if (cfg.online_lut != nullptr) {
    w.u64(cfg.online_detector.rw);
    w.f64(cfg.online_detector.min_eval_speed);
    w.i32(cfg.online_detector.debounce);
    // max_digits10 precision makes the text round-trip bit-exact: the
    // worker's reconstructed thresholds match the supervisor's to the last
    // ULP, so the bit-identity invariant survives the request codec.
    std::ostringstream lut_text;
    lut_text.precision(std::numeric_limits<double>::max_digits10);
    cfg.online_lut->save(lut_text);
    w.str(lut_text.str());
  }
  w.str(cfg.trace.dir);
  w.u64(cfg.trace.capacity);
  w.i32(cfg.trace.pid);
  w.str(cfg.trace.label);
  const bool ckpt_ext = config_has_checkpoint_extension(cfg);
  if (config_has_sensor_extension(cfg) || ckpt_ext) {
    put_config_sensor_extension(w, cfg);
  }
  if (ckpt_ext) {
    w.u8(cfg.checkpoint.enabled ? 1 : 0);
    w.i32(cfg.checkpoint.capture_tick);
  }
  return w.take();
}

RunConfigRecord deserialize_run_config(const std::string& bytes) {
  ByteReader r(bytes);
  if (r.u32() != kRunConfigVersion) malformed("config version mismatch");
  RunConfigRecord out;
  RunConfig& cfg = out.cfg;
  cfg.scenario = static_cast<ScenarioId>(r.u8());
  cfg.scenario_seed = r.u64();
  cfg.scenario_opts.long_route_duration_sec = r.f64();
  cfg.scenario_opts.safety_duration_sec = r.f64();
  cfg.mode = static_cast<AgentMode>(r.u8());
  cfg.overlap_ratio = r.f64();
  cfg.fault = get_fault_plan(r);
  cfg.run_seed = r.u64();
  cfg.dt = r.f64();
  cfg.cam_width = r.i32();
  cfg.cam_height = r.i32();
  cfg.camera_noise_sigma = r.f64();
  cfg.record_traces = r.u8() != 0;
  cfg.watchdog_sec = r.f64();
  cfg.stuck_watchdog_sec = r.f64();
  cfg.mitigation = static_cast<MitigationPolicy>(r.u8());
  cfg.recovery.probe_ticks = r.i32();
  cfg.recovery.rewarm_ticks = r.i32();
  cfg.recovery.max_recoveries = r.i32();
  cfg.recovery.recovery_window_ticks = r.i32();
  if (r.u8() != 0) {
    cfg.online_detector.rw = static_cast<std::size_t>(r.u64());
    cfg.online_detector.min_eval_speed = r.f64();
    cfg.online_detector.debounce = r.i32();
    std::istringstream lut_text(r.str());
    out.lut = std::make_unique<ThresholdLut>(ThresholdLut::load(lut_text));
    cfg.online_lut = out.lut.get();
  }
  cfg.trace.dir = r.str();
  cfg.trace.capacity = static_cast<std::size_t>(r.u64());
  cfg.trace.pid = r.i32();
  cfg.trace.label = r.str();
  if (!r.done()) {  // sensor extension (absent in pre-extension records)
    cfg.fusion.enabled = r.u8() != 0;
    cfg.sensor_fault = get_sensor_plan(r);
    const FusionConfig wire = get_fusion_config(r);
    const bool enabled = cfg.fusion.enabled;
    cfg.fusion = wire;
    cfg.fusion.enabled = enabled;
  }
  if (!r.done()) {  // checkpoint extension (absent unless checkpointing)
    cfg.checkpoint.enabled = r.u8() != 0;
    cfg.checkpoint.capture_tick = r.i32();
  }
  if (!r.done()) malformed("trailing bytes");
  return out;
}

std::string make_result_payload(bool ok, const std::string& what,
                                const RunResult& r) {
  ByteWriter w;
  w.u8(ok ? 1 : 0);
  if (!ok) w.str(what);
  w.raw(serialize_run_result(r));
  return w.take();
}

ResultPayload parse_result_payload(const std::string& bytes) {
  ByteReader r(bytes);
  ResultPayload p;
  p.ok = r.u8() != 0;
  if (!p.ok) p.what = r.str();
  std::string rest(bytes.data() + (bytes.size() - r.remaining()),
                   r.remaining());
  p.result = deserialize_run_result(rest);
  return p;
}

std::uint64_t run_config_digest(const RunConfig& cfg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(cfg.scenario));
  w.u64(cfg.scenario_seed);
  w.f64(cfg.scenario_opts.long_route_duration_sec);
  w.f64(cfg.scenario_opts.safety_duration_sec);
  w.u8(static_cast<std::uint8_t>(cfg.mode));
  w.f64(cfg.overlap_ratio);
  put_fault_plan(w, cfg.fault);
  w.u64(cfg.run_seed);
  w.f64(cfg.dt);
  w.i32(cfg.cam_width);
  w.i32(cfg.cam_height);
  w.f64(cfg.camera_noise_sigma);
  w.u8(cfg.record_traces ? 1 : 0);
  w.f64(cfg.watchdog_sec);
  w.f64(cfg.stuck_watchdog_sec);
  w.u8(static_cast<std::uint8_t>(cfg.mitigation));
  w.i32(cfg.recovery.probe_ticks);
  w.i32(cfg.recovery.rewarm_ticks);
  w.i32(cfg.recovery.max_recoveries);
  w.i32(cfg.recovery.recovery_window_ticks);
  w.u8(cfg.online_lut != nullptr ? 1 : 0);
  if (cfg.online_lut != nullptr) {
    w.u64(cfg.online_detector.rw);
    w.f64(cfg.online_detector.min_eval_speed);
    w.i32(cfg.online_detector.debounce);
    // The trained table is part of the run's identity: the same sweep with a
    // differently trained LUT produces different alarms.
    std::ostringstream lut_text;
    cfg.online_lut->save(lut_text);
    w.str(lut_text.str());
  }
  // Same only-when-active discipline as serialize_run_config: plan-free,
  // fusion-free configs keep their pre-extension digest (journals, warm
  // caches and resume keyed on it stay valid). CheckpointOptions are
  // excluded entirely, like TraceOptions: neither changes the run outcome.
  if (config_has_sensor_extension(cfg)) put_config_sensor_extension(w, cfg);
  const std::string& b = w.bytes();
  return fnv1a64(b.data(), b.size());
}

std::uint64_t checkpoint_setup_digest(const RunConfig& cfg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(cfg.scenario));
  w.u64(cfg.scenario_seed);
  w.f64(cfg.scenario_opts.long_route_duration_sec);
  w.f64(cfg.scenario_opts.safety_duration_sec);
  w.u8(static_cast<std::uint8_t>(cfg.mode));
  w.i32(cfg.cam_width);
  w.i32(cfg.cam_height);
  w.f64(cfg.camera_noise_sigma);
  // Fusion changes the constructed agent (health monitor config) — a fused
  // and an unfused run must not share a setup slot.
  w.u8(cfg.fusion.enabled ? 1 : 0);
  const std::string& b = w.bytes();
  return fnv1a64(b.data(), b.size());
}

std::uint64_t run_config_prefix_digest(const RunConfig& cfg, int tick) {
  ByteWriter w;
  w.u64(0x6461762d70667831ULL);  // domain separation: "dav-pfx1"
  w.i32(tick);
  w.u8(static_cast<std::uint8_t>(cfg.scenario));
  w.u64(cfg.scenario_seed);
  w.f64(cfg.scenario_opts.long_route_duration_sec);
  w.f64(cfg.scenario_opts.safety_duration_sec);
  w.u8(static_cast<std::uint8_t>(cfg.mode));
  w.f64(cfg.overlap_ratio);
  // Register fault plan: a permanent fault can fire from the first opcode
  // instance, so it is part of the prefix the moment any instruction has
  // run. A transient fault is a single strike at one dynamic instruction
  // index — the store gates eligibility on the captured instruction totals,
  // so the plan stays OUT of the digest and sweep variants share a prefix.
  const bool fault_in_prefix =
      cfg.fault.kind == FaultModelKind::kPermanent && tick > 0;
  w.u8(fault_in_prefix ? 1 : 0);
  if (fault_in_prefix) put_fault_plan(w, cfg.fault);
  w.u64(cfg.run_seed);
  w.f64(cfg.dt);
  w.i32(cfg.cam_width);
  w.i32(cfg.cam_height);
  w.f64(cfg.camera_noise_sigma);
  w.u8(cfg.record_traces ? 1 : 0);
  w.f64(cfg.watchdog_sec);
  w.f64(cfg.stuck_watchdog_sec);
  w.u8(static_cast<std::uint8_t>(cfg.mitigation));
  w.i32(cfg.recovery.probe_ticks);
  w.i32(cfg.recovery.rewarm_ticks);
  w.i32(cfg.recovery.max_recoveries);
  w.i32(cfg.recovery.recovery_window_ticks);
  w.u8(cfg.online_lut != nullptr ? 1 : 0);
  if (cfg.online_lut != nullptr) {
    w.u64(cfg.online_detector.rw);
    w.f64(cfg.online_detector.min_eval_speed);
    w.i32(cfg.online_detector.debounce);
    std::ostringstream lut_text;
    cfg.online_lut->save(lut_text);
    w.str(lut_text.str());
  }
  // Sensor plan: invisible until its onset tick has actually been stepped
  // through; the fusion wiring shapes the agent from tick 0 when enabled.
  const bool sensor_in_prefix =
      cfg.sensor_fault.active() && cfg.sensor_fault.onset_tick < tick;
  w.u8(sensor_in_prefix ? 1 : 0);
  if (sensor_in_prefix) put_sensor_plan(w, cfg.sensor_fault);
  w.u8(cfg.fusion.enabled ? 1 : 0);
  if (cfg.fusion.enabled) put_fusion_config(w, cfg.fusion);
  const std::string& b = w.bytes();
  return fnv1a64(b.data(), b.size());
}

}  // namespace dav
