#include "campaign/checkpoint.h"

#include <stdexcept>
#include <utility>

#include "campaign/serialize.h"

namespace dav {

namespace {

[[noreturn]] void malformed(const char* what) {
  throw std::runtime_error(std::string("run checkpoint: ") + what);
}

std::uint64_t get_count(ByteReader& r) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) malformed("implausible element count");
  return n;
}

void put_bytes(ByteWriter& w, const std::vector<std::uint8_t>& v) {
  w.u64(v.size());
  w.raw(std::string(v.begin(), v.end()));
}

std::vector<std::uint8_t> get_bytes(ByteReader& r) {
  const std::string s = r.str();
  return {s.begin(), s.end()};
}

void put_f64_vec(ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (double d : v) w.f64(d);
}

std::vector<double> get_f64_vec(ByteReader& r) {
  std::vector<double> v;
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) v.push_back(r.f64());
  return v;
}

void put_actuation(ByteWriter& w, const Actuation& a) {
  w.f64(a.throttle);
  w.f64(a.brake);
  w.f64(a.steer);
}

Actuation get_actuation(ByteReader& r) {
  Actuation a;
  a.throttle = r.f64();
  a.brake = r.f64();
  a.steer = r.f64();
  return a;
}

void put_vehicle(ByteWriter& w, const VehicleState& s) {
  w.f64(s.pose.pos.x);
  w.f64(s.pose.pos.y);
  w.f64(s.pose.yaw);
  w.f64(s.v);
  w.f64(s.a);
  w.f64(s.omega);
  w.f64(s.alpha);
}

VehicleState get_vehicle(ByteReader& r) {
  VehicleState s;
  s.pose.pos.x = r.f64();
  s.pose.pos.y = r.f64();
  s.pose.yaw = r.f64();
  s.v = r.f64();
  s.a = r.f64();
  s.omega = r.f64();
  s.alpha = r.f64();
  return s;
}

void put_rng(ByteWriter& w, const std::array<std::uint64_t, 4>& s) {
  for (std::uint64_t word : s) w.u64(word);
}

std::array<std::uint64_t, 4> get_rng(ByteReader& r) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) word = r.u64();
  return s;
}

void put_engine(ByteWriter& w, const EngineState& e) {
  w.u64(e.counts.size());
  for (std::uint64_t c : e.counts) w.u64(c);
  w.u64(e.total);
  put_rng(w, e.rng);
  w.u8(e.armed ? 1 : 0);
  w.u8(e.activated ? 1 : 0);
  w.u64(e.corruptions);
  w.u8(e.permanent_outcome_decided ? 1 : 0);
  w.u8(e.permanent_lethal ? 1 : 0);
}

EngineState get_engine(ByteReader& r) {
  EngineState e;
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    e.counts.push_back(r.u64());
  }
  e.total = r.u64();
  e.rng = get_rng(r);
  e.armed = r.u8() != 0;
  e.activated = r.u8() != 0;
  e.corruptions = r.u64();
  e.permanent_outcome_decided = r.u8() != 0;
  e.permanent_lethal = r.u8() != 0;
  return e;
}

void put_window(ByteWriter& w, const WindowState& s) {
  put_f64_vec(w, s.values);
  w.f64(s.running_sum);  // verbatim: float addition is order-dependent
}

WindowState get_window(ByteReader& r) {
  WindowState s;
  s.values = get_f64_vec(r);
  s.running_sum = r.f64();
  return s;
}

void put_detector(ByteWriter& w, const DetectorState& d) {
  put_window(w, d.signal.throttle);
  put_window(w, d.signal.brake);
  put_window(w, d.signal.steer);
  w.u8(d.alarmed ? 1 : 0);
  w.f64(d.alarm_time);
  w.i32(d.streak);
  w.f64(d.streak_start_time);
}

DetectorState get_detector(ByteReader& r) {
  DetectorState d;
  d.signal.throttle = get_window(r);
  d.signal.brake = get_window(r);
  d.signal.steer = get_window(r);
  d.alarmed = r.u8() != 0;
  d.alarm_time = r.f64();
  d.streak = r.i32();
  d.streak_start_time = r.f64();
  return d;
}

void put_gps_sample(ByteWriter& w, const GpsImuSample& s) {
  w.f32(s.gps_x);
  w.f32(s.gps_y);
  w.f32(s.speed);
  w.f32(s.accel_long);
  w.f32(s.yaw);
  w.f32(s.yaw_rate);
}

GpsImuSample get_gps_sample(ByteReader& r) {
  GpsImuSample s;
  s.gps_x = r.f32();
  s.gps_y = r.f32();
  s.speed = r.f32();
  s.accel_long = r.f32();
  s.yaw = r.f32();
  s.yaw_rate = r.f32();
  return s;
}

void put_health_ladder(ByteWriter& w, const SensorHealthSnapshot& s) {
  for (int i = 0; i < kSensorChannelCount; ++i) {
    w.u8(s.status[static_cast<std::size_t>(i)]);
    w.i32(s.bad_streak[static_cast<std::size_t>(i)]);
    w.i32(s.good_streak[static_cast<std::size_t>(i)]);
  }
}

SensorHealthSnapshot get_health_ladder(ByteReader& r) {
  SensorHealthSnapshot s;
  for (int i = 0; i < kSensorChannelCount; ++i) {
    s.status[static_cast<std::size_t>(i)] = r.u8();
    s.bad_streak[static_cast<std::size_t>(i)] = r.i32();
    s.good_streak[static_cast<std::size_t>(i)] = r.i32();
  }
  return s;
}

void put_monitor(ByteWriter& w, const SensorHealthMonitor::State& m) {
  put_health_ladder(w, m.ladder);
  for (const auto& sample : m.prev_sample) put_bytes(w, sample);
  w.u64(m.gps_window.size());
  for (const auto& p : m.gps_window) {
    w.f64(p.gx);
    w.f64(p.gy);
    w.f64(p.ex);
    w.f64(p.ey);
    w.f64(p.t);
  }
  w.f64(m.exp_x);
  w.f64(m.exp_y);
  w.u8(m.gps_primed ? 1 : 0);
  put_gps_sample(w, m.prev_gps);
  w.f64(m.prev_time);
  w.u8(m.lidar_seen ? 1 : 0);
}

SensorHealthMonitor::State get_monitor(ByteReader& r) {
  SensorHealthMonitor::State m;
  m.ladder = get_health_ladder(r);
  for (auto& sample : m.prev_sample) sample = get_bytes(r);
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    SensorHealthMonitor::GpsPoint p;
    p.gx = r.f64();
    p.gy = r.f64();
    p.ex = r.f64();
    p.ey = r.f64();
    p.t = r.f64();
    m.gps_window.push_back(p);
  }
  m.exp_x = r.f64();
  m.exp_y = r.f64();
  m.gps_primed = r.u8() != 0;
  m.prev_gps = get_gps_sample(r);
  m.prev_time = r.f64();
  m.lidar_seen = r.u8() != 0;
  return m;
}

void put_agent(ByteWriter& w, const AgentCheckpoint& a) {
  const AgentSnapshot& s = a.snapshot;
  w.f32(s.perception.lane_offset_ema);
  w.f32(s.perception.heading_ema);
  w.f32(s.perception.obstacle_ema);
  for (float h : s.perception.obstacle_hist) w.f32(h);
  w.i32(s.perception.hist_idx);
  w.u8(s.perception.ema_init ? 1 : 0);
  w.f64(s.planner_progress);
  w.f64(s.control.integral);
  w.f64(s.control.steer_ema);
  w.f64(s.control.throttle_ema);
  w.f64(s.control.brake_ema);
  w.f64(s.control.prev_v_tgt);
  w.u8(s.control.first_step ? 1 : 0);
  w.u8(s.control.stopped ? 1 : 0);
  w.i32(s.steps);
  put_health_ladder(w, s.sensor_health);
  w.f64(s.v_held);
  put_monitor(w, a.health);
  w.u64(a.perception_scratch);
}

AgentCheckpoint get_agent(ByteReader& r) {
  AgentCheckpoint a;
  AgentSnapshot& s = a.snapshot;
  s.perception.lane_offset_ema = r.f32();
  s.perception.heading_ema = r.f32();
  s.perception.obstacle_ema = r.f32();
  for (float& h : s.perception.obstacle_hist) h = r.f32();
  s.perception.hist_idx = r.i32();
  s.perception.ema_init = r.u8() != 0;
  s.planner_progress = r.f64();
  s.control.integral = r.f64();
  s.control.steer_ema = r.f64();
  s.control.throttle_ema = r.f64();
  s.control.brake_ema = r.f64();
  s.control.prev_v_tgt = r.f64();
  s.control.first_step = r.u8() != 0;
  s.control.stopped = r.u8() != 0;
  s.steps = r.i32();
  s.sensor_health = get_health_ladder(r);
  s.v_held = r.f64();
  a.health = get_monitor(r);
  a.perception_scratch = static_cast<std::size_t>(r.u64());
  return a;
}

void put_ads(ByteWriter& w, const AdsState& s) {
  put_agent(w, s.agent0);
  w.u8(s.has_agent1 ? 1 : 0);
  if (s.has_agent1) put_agent(w, s.agent1);
  w.u8(s.has_prev_output ? 1 : 0);
  if (s.has_prev_output) put_actuation(w, s.prev_output);
  w.i32(s.step);
  w.i32(s.executing);
}

AdsState get_ads(ByteReader& r) {
  AdsState s;
  s.agent0 = get_agent(r);
  s.has_agent1 = r.u8() != 0;
  if (s.has_agent1) s.agent1 = get_agent(r);
  s.has_prev_output = r.u8() != 0;
  if (s.has_prev_output) s.prev_output = get_actuation(r);
  s.step = r.i32();
  s.executing = r.i32();
  return s;
}

void put_world(ByteWriter& w, const WorldState& s) {
  put_vehicle(w, s.ego);
  w.f64(s.ego_s);
  w.f64(s.ego_lat);
  w.f64(s.time);
  w.i32(s.step_count);
  w.f64(s.cvip);
  w.u8(s.flags.collision ? 1 : 0);
  w.u8(s.flags.red_light_violation ? 1 : 0);
  w.u8(s.flags.speeding ? 1 : 0);
  w.u8(s.flags.off_road ? 1 : 0);
  w.u64(s.trajectory.size());
  for (const Vec2& p : s.trajectory) {
    w.f64(p.x);
    w.f64(p.y);
  }
  w.f64(s.collision_time);
  w.f64(s.prev_ego_s);
  w.u64(s.npcs.size());
  for (const NpcState& n : s.npcs) {
    w.f64(n.s);
    w.f64(n.lateral);
    w.f64(n.target_lateral);
    w.f64(n.lane_change_rate);
    w.f64(n.v);
    w.f64(n.desired_speed);
    w.u8(n.braking_override ? 1 : 0);
    w.f64(n.brake_decel);
    w.f64(n.brake_until);
    w.u8(n.crashed ? 1 : 0);
    put_bytes(w, n.events_fired);
  }
}

WorldState get_world(ByteReader& r) {
  WorldState s;
  s.ego = get_vehicle(r);
  s.ego_s = r.f64();
  s.ego_lat = r.f64();
  s.time = r.f64();
  s.step_count = r.i32();
  s.cvip = r.f64();
  s.flags.collision = r.u8() != 0;
  s.flags.red_light_violation = r.u8() != 0;
  s.flags.speeding = r.u8() != 0;
  s.flags.off_road = r.u8() != 0;
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    const double x = r.f64();
    const double y = r.f64();
    s.trajectory.push_back({x, y});
  }
  s.collision_time = r.f64();
  s.prev_ego_s = r.f64();
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    NpcState npc;
    npc.s = r.f64();
    npc.lateral = r.f64();
    npc.target_lateral = r.f64();
    npc.lane_change_rate = r.f64();
    npc.v = r.f64();
    npc.desired_speed = r.f64();
    npc.braking_override = r.u8() != 0;
    npc.brake_decel = r.f64();
    npc.brake_until = r.f64();
    npc.crashed = r.u8() != 0;
    npc.events_fired = get_bytes(r);
    s.npcs.push_back(std::move(npc));
  }
  return s;
}

void put_injector(ByteWriter& w, const SensorFaultInjector::State& s) {
  w.u64(s.corruptions);
  w.i32(s.patch_x);
  w.i32(s.patch_y);
  w.i32(s.patch_w);
  w.i32(s.patch_h);
  w.u8(s.patch_drawn ? 1 : 0);
  w.f64(s.drift_cos);
  w.f64(s.drift_sin);
  put_bytes(w, s.frozen);
}

SensorFaultInjector::State get_injector(ByteReader& r) {
  SensorFaultInjector::State s;
  s.corruptions = r.u64();
  s.patch_x = r.i32();
  s.patch_y = r.i32();
  s.patch_w = r.i32();
  s.patch_h = r.i32();
  s.patch_drawn = r.u8() != 0;
  s.drift_cos = r.f64();
  s.drift_sin = r.f64();
  s.frozen = get_bytes(r);
  return s;
}

void put_recovery(ByteWriter& w, const RecoveryState& s) {
  w.i32(s.state);
  put_actuation(w, s.last_applied);
  w.i32(s.probe_left);
  w.f64(s.probe_score0);
  w.f64(s.probe_score1);
  w.f64(s.probe_alarm_time);
  w.i32(s.probe_alarm_tick);
  w.i32(s.rewarm_left);
  w.i32(s.healthy);
  w.u64(s.restart_ticks.size());
  for (int t : s.restart_ticks) w.i32(t);
  const MitigationStats& m = s.stats;
  w.i32(m.attempts);
  w.i32(m.completed);
  w.u8(m.escalated ? 1 : 0);
  w.f64(m.first_detector_alarm_time);
  w.u64(m.events.size());
  for (const RecoveryEvent& e : m.events) {
    w.i32(e.suspect);
    w.u8(static_cast<std::uint8_t>(e.trigger));
    w.f64(e.alarm_time);
    w.f64(e.restart_time);
    w.f64(e.rejoin_time);
    w.i32(e.alarm_tick);
    w.i32(e.restart_tick);
    w.i32(e.rejoin_tick);
  }
  w.i32(m.nominal_ticks);
  w.i32(m.probe_ticks);
  w.i32(m.degraded_ticks);
  w.i32(m.failback_ticks);
  w.i32(m.sensor_degraded_ticks);
  w.u64(m.sensor_events.size());
  for (const SensorDegradeEvent& e : m.sensor_events) {
    w.i32(e.channel);
    w.i32(e.onset_tick);
    w.f64(e.onset_time);
    w.i32(e.rejoin_tick);
    w.f64(e.rejoin_time);
    w.u8(e.dropped ? 1 : 0);
    w.u8(e.escalated ? 1 : 0);
  }
  w.u8(s.has_sensor_monitor ? 1 : 0);
  if (s.has_sensor_monitor) put_monitor(w, s.sensor_monitor);
  for (int idx : s.open_sensor_event) w.i32(idx);
}

RecoveryState get_recovery(ByteReader& r) {
  RecoveryState s;
  s.state = r.i32();
  s.last_applied = get_actuation(r);
  s.probe_left = r.i32();
  s.probe_score0 = r.f64();
  s.probe_score1 = r.f64();
  s.probe_alarm_time = r.f64();
  s.probe_alarm_tick = r.i32();
  s.rewarm_left = r.i32();
  s.healthy = r.i32();
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    s.restart_ticks.push_back(r.i32());
  }
  MitigationStats& m = s.stats;
  m.attempts = r.i32();
  m.completed = r.i32();
  m.escalated = r.u8() != 0;
  m.first_detector_alarm_time = r.f64();
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    RecoveryEvent e;
    e.suspect = r.i32();
    e.trigger = static_cast<DueSource>(r.u8());
    e.alarm_time = r.f64();
    e.restart_time = r.f64();
    e.rejoin_time = r.f64();
    e.alarm_tick = r.i32();
    e.restart_tick = r.i32();
    e.rejoin_tick = r.i32();
    m.events.push_back(e);
  }
  m.nominal_ticks = r.i32();
  m.probe_ticks = r.i32();
  m.degraded_ticks = r.i32();
  m.failback_ticks = r.i32();
  m.sensor_degraded_ticks = r.i32();
  for (std::uint64_t i = 0, n = get_count(r); i < n; ++i) {
    SensorDegradeEvent e;
    e.channel = r.i32();
    e.onset_tick = r.i32();
    e.onset_time = r.f64();
    e.rejoin_tick = r.i32();
    e.rejoin_time = r.f64();
    e.dropped = r.u8() != 0;
    e.escalated = r.u8() != 0;
    m.sensor_events.push_back(e);
  }
  s.has_sensor_monitor = r.u8() != 0;
  if (s.has_sensor_monitor) s.sensor_monitor = get_monitor(r);
  for (int& idx : s.open_sensor_event) idx = r.i32();
  return s;
}

}  // namespace

std::string serialize_run_checkpoint(const RunCheckpoint& c) {
  ByteWriter w;
  w.u32(kRunCheckpointVersion);
  w.i32(c.tick);
  w.u8(c.clean ? 1 : 0);
  w.u64(c.full_digest);
  w.u64(c.prefix_digest);
  w.u64(c.gpu0_total);
  w.u64(c.cpu0_total);
  put_world(w, c.world);
  put_rng(w, c.rig.camera);
  put_rng(w, c.rig.imu);
  put_rng(w, c.rig.lidar);
  put_engine(w, c.gpu0);
  put_engine(w, c.cpu0);
  put_engine(w, c.gpu1);
  put_engine(w, c.cpu1);
  put_ads(w, c.ads);
  w.u8(c.has_injector ? 1 : 0);
  if (c.has_injector) put_injector(w, c.injector);
  w.u8(c.has_detector ? 1 : 0);
  if (c.has_detector) put_detector(w, c.detector);
  w.u8(c.has_recovery ? 1 : 0);
  if (c.has_recovery) put_recovery(w, c.recovery);
  put_actuation(w, c.last_applied);
  w.u8(c.failing_back ? 1 : 0);
  w.f64(c.stationary_sec);
  w.i32(c.failback_ticks);
  w.u64(c.traced_corruptions);
  w.str(c.partial_result);
  w.u8(c.has_cameras ? 1 : 0);
  if (c.has_cameras) {
    for (const auto& cam : c.cameras) put_bytes(w, cam);
  }
  return w.take();
}

RunCheckpoint deserialize_run_checkpoint(const std::string& bytes) {
  ByteReader r(bytes);
  if (r.u32() != kRunCheckpointVersion) malformed("version mismatch");
  RunCheckpoint c;
  c.tick = r.i32();
  c.clean = r.u8() != 0;
  c.full_digest = r.u64();
  c.prefix_digest = r.u64();
  c.gpu0_total = r.u64();
  c.cpu0_total = r.u64();
  c.world = get_world(r);
  c.rig.camera = get_rng(r);
  c.rig.imu = get_rng(r);
  c.rig.lidar = get_rng(r);
  c.gpu0 = get_engine(r);
  c.cpu0 = get_engine(r);
  c.gpu1 = get_engine(r);
  c.cpu1 = get_engine(r);
  c.ads = get_ads(r);
  c.has_injector = r.u8() != 0;
  if (c.has_injector) c.injector = get_injector(r);
  c.has_detector = r.u8() != 0;
  if (c.has_detector) c.detector = get_detector(r);
  c.has_recovery = r.u8() != 0;
  if (c.has_recovery) c.recovery = get_recovery(r);
  c.last_applied = get_actuation(r);
  c.failing_back = r.u8() != 0;
  c.stationary_sec = r.f64();
  c.failback_ticks = r.i32();
  c.traced_corruptions = r.u64();
  c.partial_result = r.str();
  c.has_cameras = r.u8() != 0;
  if (c.has_cameras) {
    for (auto& cam : c.cameras) cam = get_bytes(r);
  }
  if (!r.done()) malformed("trailing bytes");
  return c;
}

CheckpointStore::SetupLease CheckpointStore::acquire_setup(
    const RunConfig& cfg) {
  const std::uint64_t key = checkpoint_setup_digest(cfg);
  const auto it = setup_.find(key);
  if (it != setup_.end()) {
    ++hits_;
    return SetupLease{it->second, true};
  }
  ++misses_;
  return SetupLease{setup_[key], false};
}

const CheckpointStore::DeepEntry* CheckpointStore::find_deep(
    const RunConfig& cfg) {
  const std::uint64_t full = run_config_digest(cfg);
  const DeepEntry* best = nullptr;
  for (const DeepEntry& e : deep_) {
    bool eligible = e.full_digest == full;
    if (!eligible && e.clean &&
        run_config_prefix_digest(cfg, e.tick) == e.prefix_digest) {
      // A transient strike below the captured instruction totals would have
      // landed inside the prefix — the straight-through run diverges there.
      if (cfg.fault.kind == FaultModelKind::kTransient) {
        const std::uint64_t executed = cfg.fault.domain == FaultDomain::kGpu
                                           ? e.gpu0_total
                                           : e.cpu0_total;
        eligible = cfg.fault.target_dyn_index >= executed;
      } else {
        eligible = true;
      }
    }
    // Deepest wins; FIFO order breaks ties deterministically (first stored).
    if (eligible && (best == nullptr || e.tick > best->tick)) best = &e;
  }
  if (best != nullptr) {
    ++deep_hits_;
  } else {
    ++deep_misses_;
  }
  return best;
}

void CheckpointStore::insert_deep(DeepEntry e) {
  deep_bytes_ += e.blob.size();
  deep_.push_back(std::move(e));
  evict_to_budget();
}

void CheckpointStore::set_max_deep_bytes(std::size_t bytes) {
  max_deep_bytes_ = bytes;
  evict_to_budget();
}

void CheckpointStore::evict_to_budget() {
  while (deep_bytes_ > max_deep_bytes_ && !deep_.empty()) {
    deep_bytes_ -= deep_.front().blob.size();
    deep_.pop_front();
    ++evictions_;
  }
}

}  // namespace dav
