// Socket transport for distributed campaign execution.
//
// The executor already ships RunConfig/RunResult records between processes as
// checksummed length-prefixed frames over pipes (serialize.h). This layer
// lifts the exact same framing and payload codecs onto stream sockets — TCP
// ("host:port") or Unix-domain ("unix:/path") — so a campaign can span
// worker daemons. Because the frame and payload bytes are unchanged, a
// journal record produced by a remote worker is byte-identical to one
// produced by the in-process, fork-per-run, or pool strategy, and resume
// works across all of them.
//
// Protocol (every message is one frame_message()-wrapped payload):
//   coordinator -> worker : kHello(version, fingerprint, coordinator clock)
//   worker -> coordinator : kHelloAck(version, slots, worker clock)
//                           | kHelloReject(reason)
//   coordinator -> worker : kRunRequest(plan index, serialized RunConfig)*
//   worker -> coordinator : kRunResult(plan index, result payload)*
//                           kTelemetry(run capture | aggregate snapshot)
//                           kHeartbeat (idle-timer liveness)
// A worker pins the campaign fingerprint of its first coordinator (or the
// one given up front) and rejects mismatched campaigns — the same binding
// the journal header enforces on disk.
//
// Clock alignment: kHello and kHelloAck exchange steady-clock readings so
// the coordinator can place a worker's wall-clock telemetry (slot spans) on
// its own timeline. With t0 = coordinator send time, t1 = worker reply time,
// t2 = coordinator receive time (all monotonic ns since each host's own
// epoch), offset = t1 - (t0 + t2) / 2 maps worker time onto the coordinator
// clock assuming symmetric transit — the classic NTP estimate, plenty for
// trace visualization. Telemetry is observability-only: none of it enters
// the journal or the deterministic campaign summary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/executor.h"
#include "util/trace.h"

namespace dav {

/// Bumped whenever the message set or a message layout changes; a daemon
/// rejects a coordinator speaking a different version instead of misdecoding
/// its requests.
inline constexpr std::uint32_t kTransportProtocolVersion = 3;

enum class TransportMsgType : std::uint8_t {
  kHello = 1,       ///< coordinator handshake: version + fingerprint + clock
  kHelloAck = 2,    ///< worker accepts: version + worker slots + clock
  kHelloReject = 3, ///< worker refuses: human-readable reason
  kRunRequest = 4,  ///< plan index + serialized RunConfig
  kRunResult = 5,   ///< plan index + result payload (serialize.h)
  kHeartbeat = 6,   ///< idle-timer liveness beacon, no body
  kTelemetry = 7,   ///< worker observability batch (run capture / aggregate)
};

/// A decoded transport message; only the fields for its type are meaningful.
struct TransportMsg {
  TransportMsgType type = TransportMsgType::kHeartbeat;
  std::uint32_t proto_version = 0;  ///< kHello / kHelloAck
  std::uint64_t fingerprint = 0;    ///< kHello
  std::uint32_t slots = 0;          ///< kHelloAck
  std::uint64_t clock_ns = 0;       ///< kHello / kHelloAck: sender steady ns
  std::string reason;               ///< kHelloReject
  std::uint64_t index = 0;          ///< kRunRequest / kRunResult
  std::string body;                 ///< config / result / telemetry payload
};

// Message encoders; wrap the returned payload in frame_message() to put it
// on the wire.
std::string msg_hello(std::uint64_t fingerprint, std::uint64_t clock_ns);
std::string msg_hello_ack(std::uint32_t slots, std::uint64_t clock_ns);
std::string msg_hello_reject(const std::string& reason);
std::string msg_run_request(std::uint64_t index, const std::string& cfg_bytes);
std::string msg_run_result(std::uint64_t index,
                           const std::string& result_payload);
std::string msg_heartbeat();

/// Decode one unframed transport payload. Throws std::runtime_error on an
/// unknown type or truncated body — callers treat that like a corrupt frame
/// (the peer is broken; drop the connection).
TransportMsg parse_transport_msg(const std::string& payload);

// --- Telemetry payloads -----------------------------------------------------
// A kTelemetry body is one sub-typed blob. Two kinds exist:
//   kTelemetryRunCapture — the deterministic residue of one finished run
//     (plan index, instant events, per-stage histograms, ring drop count),
//     flushed immediately BEFORE the matching kRunResult so the coordinator
//     holds every completed run's capture by the time the campaign drains.
//   kTelemetryAggregate — the daemon's cumulative pool picture (slot spans
//     since the last flush, worker counters, cumulative histograms), flushed
//     on the heartbeat cadence and once at session teardown.

inline constexpr std::uint8_t kTelemetryRunCapture = 1;
inline constexpr std::uint8_t kTelemetryAggregate = 2;

/// A daemon's cumulative pool telemetry. `spans` is incremental (only spans
/// completed since the previous aggregate); counters and histograms are
/// cumulative for the session.
struct TelemetryAggregate {
  std::uint64_t base_ns = 0;  ///< daemon steady clock at supervisor start
  std::uint64_t launched = 0;
  std::uint64_t respawns = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t signal_deaths = 0;
  std::uint64_t checkpoint_hits = 0;
  std::uint64_t checkpoint_misses = 0;
  std::uint64_t checkpoint_evictions = 0;
  std::uint64_t trace_dropped = 0;   ///< total ring drops across runs served
  obs::StageHistogramSet histograms; ///< cumulative across runs served
  std::vector<WorkerSpan> spans;     ///< start_sec relative to base_ns
};

/// Sub-type of a kTelemetry body (its first byte). Throws on empty body.
std::uint8_t telemetry_subtype(const std::string& body);

/// Capture blob codec (RunTraceCapture lives in executor.h: it is also what
/// a pool worker appends to its response frame, so the daemon can forward it
/// verbatim — msg_telemetry_capture() just prefixes the sub-type byte).
/// Decoders throw std::runtime_error on truncated or trailing bytes.
std::string encode_run_capture(const RunTraceCapture& cap);
RunTraceCapture decode_run_capture(const std::string& blob);

std::string msg_telemetry_capture(const std::string& capture_blob);
std::string msg_telemetry_aggregate(const TelemetryAggregate& agg);

/// Decode a kTelemetry body of sub-type kTelemetryAggregate.
TelemetryAggregate decode_telemetry_aggregate(const std::string& body);
/// Decode a kTelemetry body of sub-type kTelemetryRunCapture.
RunTraceCapture decode_telemetry_capture(const std::string& body);

/// A parsed worker address: "host:port" (TCP) or "unix:/path" (Unix-domain).
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;  ///< kTcp
  int port = 0;      ///< kTcp, 1..65535
  std::string path;  ///< kUnix
  std::string spec;  ///< the original text, for diagnostics
};

/// Parse "host:port" or "unix:/path". Throws std::invalid_argument naming
/// the offending spec.
Endpoint parse_endpoint(const std::string& spec);

/// Split a DAV_WORKERS-style comma list into trimmed, non-empty specs.
/// Throws std::invalid_argument on an empty list entry.
std::vector<std::string> split_worker_list(const std::string& csv);

/// Capped exponential backoff with deterministic seeded jitter:
/// base * 2^min(attempt,16), capped at cap_sec, scaled by a jitter factor in
/// [0.75, 1.25) derived from fnv1a64(salt, attempt). Pure — the same
/// (base, attempt, salt) always yields the same delay — so retry schedules
/// are replayable, yet fleets of retries keyed by different salts (run
/// digest, endpoint name) never synchronize into thundering herds.
double backoff_delay_sec(double base_sec, int attempt, std::uint64_t salt,
                         double cap_sec = 60.0);

// --- POSIX socket helpers --------------------------------------------------
// All return -1 and fill *err on failure; on non-POSIX hosts they fail with
// "sockets unsupported". Connects are blocking (loopback/LAN latency).

/// Create a listening socket on `ep` (SO_REUSEADDR for TCP; a pre-existing
/// Unix-socket file is unlinked first).
int listen_endpoint(const Endpoint& ep, std::string* err);

/// Connect a stream socket to `ep`.
int connect_endpoint(const Endpoint& ep, std::string* err);

/// frame_message(payload) + write the whole frame. Returns false once the
/// peer is gone (callers learn the details from the next read's EOF).
bool send_frame(int fd, const std::string& payload);

/// Worker daemon configuration (davcamp serve).
struct ServeOptions {
  /// Listen address, "host:port" or "unix:/path".
  std::string listen_spec;
  /// Send a kHeartbeat whenever nothing else was written for this long;
  /// <= 0 disables the beacon.
  double heartbeat_sec = 5.0;
  /// Campaign fingerprint to enforce up front; 0 pins whatever the first
  /// coordinator presents.
  std::uint64_t expected_fingerprint = 0;
  /// Exit after serving this many coordinator sessions; <= 0 serves until
  /// SIGINT/SIGTERM.
  int max_sessions = 0;
};

/// Run a worker daemon: accept one coordinator at a time, handshake on the
/// campaign fingerprint, execute requests through a PoolSupervisor (the
/// PR-5 prefork pool: fork-isolated workers, watchdog, per-worker
/// CheckpointStore), and stream result frames back. A worker death is
/// reported as a kHarnessError result payload — the coordinator applies the
/// same retry/quarantine policy it uses for local deaths. When the
/// coordinator disconnects, in-flight pool workers are torn down and the
/// daemon returns to accepting (so a restarted coordinator can resume).
/// Returns 0 on a clean stop (signal or max_sessions); throws
/// std::runtime_error when the listen address is unusable. `fn` defaults to
/// run_experiment.
int serve_campaign(const ServeOptions& sopts, const ExecutorOptions& eopts,
                   CampaignExecutor::CheckpointRunFn fn = {});

}  // namespace dav
