// Socket transport for distributed campaign execution.
//
// The executor already ships RunConfig/RunResult records between processes as
// checksummed length-prefixed frames over pipes (serialize.h). This layer
// lifts the exact same framing and payload codecs onto stream sockets — TCP
// ("host:port") or Unix-domain ("unix:/path") — so a campaign can span
// worker daemons. Because the frame and payload bytes are unchanged, a
// journal record produced by a remote worker is byte-identical to one
// produced by the in-process, fork-per-run, or pool strategy, and resume
// works across all of them.
//
// Protocol (every message is one frame_message()-wrapped payload):
//   coordinator -> worker : kHello(version, campaign fingerprint)
//   worker -> coordinator : kHelloAck(version, slots) | kHelloReject(reason)
//   coordinator -> worker : kRunRequest(plan index, serialized RunConfig)*
//   worker -> coordinator : kRunResult(plan index, result payload)*
//                           kHeartbeat (idle-timer liveness)
// A worker pins the campaign fingerprint of its first coordinator (or the
// one given up front) and rejects mismatched campaigns — the same binding
// the journal header enforces on disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/executor.h"

namespace dav {

/// Bumped whenever the message set or a message layout changes; a daemon
/// rejects a coordinator speaking a different version instead of misdecoding
/// its requests.
inline constexpr std::uint32_t kTransportProtocolVersion = 1;

enum class TransportMsgType : std::uint8_t {
  kHello = 1,       ///< coordinator handshake: protocol version + fingerprint
  kHelloAck = 2,    ///< worker accepts: protocol version + worker slots
  kHelloReject = 3, ///< worker refuses: human-readable reason
  kRunRequest = 4,  ///< plan index + serialized RunConfig
  kRunResult = 5,   ///< plan index + result payload (serialize.h)
  kHeartbeat = 6,   ///< idle-timer liveness beacon, no body
};

/// A decoded transport message; only the fields for its type are meaningful.
struct TransportMsg {
  TransportMsgType type = TransportMsgType::kHeartbeat;
  std::uint32_t proto_version = 0;  ///< kHello / kHelloAck
  std::uint64_t fingerprint = 0;    ///< kHello
  std::uint32_t slots = 0;          ///< kHelloAck
  std::string reason;               ///< kHelloReject
  std::uint64_t index = 0;          ///< kRunRequest / kRunResult
  std::string body;                 ///< config bytes / result payload
};

// Message encoders; wrap the returned payload in frame_message() to put it
// on the wire.
std::string msg_hello(std::uint64_t fingerprint);
std::string msg_hello_ack(std::uint32_t slots);
std::string msg_hello_reject(const std::string& reason);
std::string msg_run_request(std::uint64_t index, const std::string& cfg_bytes);
std::string msg_run_result(std::uint64_t index,
                           const std::string& result_payload);
std::string msg_heartbeat();

/// Decode one unframed transport payload. Throws std::runtime_error on an
/// unknown type or truncated body — callers treat that like a corrupt frame
/// (the peer is broken; drop the connection).
TransportMsg parse_transport_msg(const std::string& payload);

/// A parsed worker address: "host:port" (TCP) or "unix:/path" (Unix-domain).
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;  ///< kTcp
  int port = 0;      ///< kTcp, 1..65535
  std::string path;  ///< kUnix
  std::string spec;  ///< the original text, for diagnostics
};

/// Parse "host:port" or "unix:/path". Throws std::invalid_argument naming
/// the offending spec.
Endpoint parse_endpoint(const std::string& spec);

/// Split a DAV_WORKERS-style comma list into trimmed, non-empty specs.
/// Throws std::invalid_argument on an empty list entry.
std::vector<std::string> split_worker_list(const std::string& csv);

/// Capped exponential backoff with deterministic seeded jitter:
/// base * 2^min(attempt,16), capped at cap_sec, scaled by a jitter factor in
/// [0.75, 1.25) derived from fnv1a64(salt, attempt). Pure — the same
/// (base, attempt, salt) always yields the same delay — so retry schedules
/// are replayable, yet fleets of retries keyed by different salts (run
/// digest, endpoint name) never synchronize into thundering herds.
double backoff_delay_sec(double base_sec, int attempt, std::uint64_t salt,
                         double cap_sec = 60.0);

// --- POSIX socket helpers --------------------------------------------------
// All return -1 and fill *err on failure; on non-POSIX hosts they fail with
// "sockets unsupported". Connects are blocking (loopback/LAN latency).

/// Create a listening socket on `ep` (SO_REUSEADDR for TCP; a pre-existing
/// Unix-socket file is unlinked first).
int listen_endpoint(const Endpoint& ep, std::string* err);

/// Connect a stream socket to `ep`.
int connect_endpoint(const Endpoint& ep, std::string* err);

/// frame_message(payload) + write the whole frame. Returns false once the
/// peer is gone (callers learn the details from the next read's EOF).
bool send_frame(int fd, const std::string& payload);

/// Worker daemon configuration (davcamp serve).
struct ServeOptions {
  /// Listen address, "host:port" or "unix:/path".
  std::string listen_spec;
  /// Send a kHeartbeat whenever nothing else was written for this long;
  /// <= 0 disables the beacon.
  double heartbeat_sec = 5.0;
  /// Campaign fingerprint to enforce up front; 0 pins whatever the first
  /// coordinator presents.
  std::uint64_t expected_fingerprint = 0;
  /// Exit after serving this many coordinator sessions; <= 0 serves until
  /// SIGINT/SIGTERM.
  int max_sessions = 0;
};

/// Run a worker daemon: accept one coordinator at a time, handshake on the
/// campaign fingerprint, execute requests through a PoolSupervisor (the
/// PR-5 prefork pool: fork-isolated workers, watchdog, warm-state cache),
/// and stream result frames back. A worker death is reported as a
/// kHarnessError result payload — the coordinator applies the same
/// retry/quarantine policy it uses for local deaths. When the coordinator
/// disconnects, in-flight pool workers are torn down and the daemon returns
/// to accepting (so a restarted coordinator can resume). Returns 0 on a
/// clean stop (signal or max_sessions); throws std::runtime_error when the
/// listen address is unusable. `fn` defaults to run_experiment.
int serve_campaign(const ServeOptions& sopts, const ExecutorOptions& eopts,
                   CampaignExecutor::WarmRunFn fn = {});

}  // namespace dav
