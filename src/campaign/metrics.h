// Safety and detection metrics (paper §V-C, §V-D).
//
// Ground truth per run: "positive" = accident (ego collision) or trajectory
// violation (max divergence from the golden-mean baseline >= td meters).
// Detection decision per run: statistical-detector alarm (offline replay at
// the chosen rw) OR a platform-detected DUE (the paper's policy: raise an
// alarm on hang/crash).
#pragma once

#include <vector>

#include "campaign/driver.h"
#include "core/detector.h"
#include "util/stats.h"

namespace dav {

/// Mean trajectory of the golden runs — the paper's baseline trajectory.
Trajectory golden_baseline(const std::vector<RunResult>& golden_runs);

/// Max divergence of a run against the baseline (delta_pos^{E,B}).
double run_divergence(const RunResult& run, const Trajectory& baseline);

/// Ground-truth label.
bool is_positive(const RunResult& run, const Trajectory& baseline, double td);

/// Time of the safety-violation onset: the collision time if the run ended
/// in an accident, otherwise the first instant the trajectory divergence
/// exceeded td. Negative if neither occurred.
double violation_onset_time(const RunResult& run, const Trajectory& baseline,
                            double td);

/// Detection decision + alarm time (the earlier of detector alarm and DUE).
struct Detection {
  bool alarm = false;
  double time = -1.0;
};
Detection detect_run(const RunResult& run, const ThresholdLut& lut,
                     std::size_t rw);

/// Full evaluation of a detector configuration over FI runs + golden runs.
struct DetectionEval {
  Confusion confusion;           // over fault-injected runs only
  int golden_false_alarms = 0;   // paper requires zero
  int golden_total = 0;
  std::vector<double> lead_times_sec;  // collision_time - alarm_time, for
                                       // detected runs that ended in accident
  double precision() const { return confusion.precision(); }
  double recall() const { return confusion.recall(); }
  double f1() const { return confusion.f1(); }
};
DetectionEval evaluate_detection(const std::vector<RunResult>& fi_runs,
                                 const std::vector<RunResult>& golden_runs,
                                 const Trajectory& baseline,
                                 const ThresholdLut& lut, std::size_t rw,
                                 double td);

/// Row of the paper's Table I.
struct CampaignSummary {
  int total = 0;
  int active = 0;
  int hang_crash = 0;
  int accidents = 0;
  int traj_violations = 0;  // with violation but without accident
  int harness_errors = 0;   // quarantined runs, excluded from the other rows
};
CampaignSummary summarize_campaign(const std::vector<RunResult>& fi_runs,
                                   const Trajectory& baseline, double td);

/// Availability of one run: fraction of the scheduled mission time the
/// vehicle spent operating under closed-loop control (nominal, arbitration
/// probe, or degraded ticks). Safe-stop (failback) ticks and the forfeited
/// remainder of an aborted mission count as unavailable.
double availability_fraction(const RunResult& run);

/// Mitigation metrics over one FI campaign (paper §I/§VII: detection is only
/// useful if it can invoke mitigation). MTTR is alarm -> rejoin over
/// completed recovery episodes.
struct RecoverySummary {
  int total = 0;
  int harness_errors = 0;  // quarantined runs, excluded from the rest
  int due_runs = 0;
  int recovered_runs = 0;   // runs with >= 1 restart that reached rejoin
  int escalated_runs = 0;   // presumed-permanent: ended in safe-stop failback
  int recovery_episodes = 0;  // completed restart->rejoin episodes
  int hazard_after_recovery = 0;  // collision at/after the first rejoin
  double mean_mttr_ticks = 0.0;
  double mean_mttr_sec = 0.0;
  double mean_availability = 0.0;  // over non-quarantined runs
  /// Sensor-path mitigation (fusion + platform monitor): runs that spent at
  /// least one tick in kSensorDegraded, per-channel degradation episodes,
  /// how many of those episodes rejoined, and mean sensor MTTR
  /// (onset -> rejoin) over the rejoined episodes.
  int sensor_degraded_runs = 0;
  int sensor_episodes = 0;
  int sensor_rejoins = 0;
  int hazard_after_sensor_degrade = 0;  // collision at/after the first onset
  double mean_sensor_mttr_sec = 0.0;
};
RecoverySummary summarize_recovery(const std::vector<RunResult>& fi_runs);

}  // namespace dav
