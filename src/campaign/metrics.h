// Safety and detection metrics (paper §V-C, §V-D).
//
// Ground truth per run: "positive" = accident (ego collision) or trajectory
// violation (max divergence from the golden-mean baseline >= td meters).
// Detection decision per run: statistical-detector alarm (offline replay at
// the chosen rw) OR a platform-detected DUE (the paper's policy: raise an
// alarm on hang/crash).
#pragma once

#include <vector>

#include "campaign/driver.h"
#include "core/detector.h"
#include "util/stats.h"

namespace dav {

/// Mean trajectory of the golden runs — the paper's baseline trajectory.
Trajectory golden_baseline(const std::vector<RunResult>& golden_runs);

/// Max divergence of a run against the baseline (delta_pos^{E,B}).
double run_divergence(const RunResult& run, const Trajectory& baseline);

/// Ground-truth label.
bool is_positive(const RunResult& run, const Trajectory& baseline, double td);

/// Time of the safety-violation onset: the collision time if the run ended
/// in an accident, otherwise the first instant the trajectory divergence
/// exceeded td. Negative if neither occurred.
double violation_onset_time(const RunResult& run, const Trajectory& baseline,
                            double td);

/// Detection decision + alarm time (the earlier of detector alarm and DUE).
struct Detection {
  bool alarm = false;
  double time = -1.0;
};
Detection detect_run(const RunResult& run, const ThresholdLut& lut,
                     std::size_t rw);

/// Full evaluation of a detector configuration over FI runs + golden runs.
struct DetectionEval {
  Confusion confusion;           // over fault-injected runs only
  int golden_false_alarms = 0;   // paper requires zero
  int golden_total = 0;
  std::vector<double> lead_times_sec;  // collision_time - alarm_time, for
                                       // detected runs that ended in accident
  double precision() const { return confusion.precision(); }
  double recall() const { return confusion.recall(); }
  double f1() const { return confusion.f1(); }
};
DetectionEval evaluate_detection(const std::vector<RunResult>& fi_runs,
                                 const std::vector<RunResult>& golden_runs,
                                 const Trajectory& baseline,
                                 const ThresholdLut& lut, std::size_t rw,
                                 double td);

/// Row of the paper's Table I.
struct CampaignSummary {
  int total = 0;
  int active = 0;
  int hang_crash = 0;
  int accidents = 0;
  int traj_violations = 0;  // with violation but without accident
};
CampaignSummary summarize_campaign(const std::vector<RunResult>& fi_runs,
                                   const Trajectory& baseline, double td);

}  // namespace dav
