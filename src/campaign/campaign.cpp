#include "campaign/campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "campaign/serialize.h"
#include "obs/export.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dav {

CampaignScale CampaignScale::from_env() {
  return EnvOptions::from_env().campaign_scale();
}

void CampaignScale::validate() const {
  const auto positive = [](const char* name, double v) {
    if (v > 0.0) return;
    throw std::invalid_argument(std::string("CampaignScale: ") + name +
                                " must be positive, got " +
                                std::to_string(v));
  };
  positive("transient_runs", transient_runs);
  positive("permanent_repeats", permanent_repeats);
  positive("golden_runs", golden_runs);
  positive("training_runs_per_scenario", training_runs_per_scenario);
  positive("safety_duration_sec", safety_duration_sec);
  positive("long_route_duration_sec", long_route_duration_sec);
}

CampaignManager::CampaignManager(CampaignScale scale, std::uint64_t seed)
    : CampaignManager(scale, EnvOptions::defaults(), seed) {}

CampaignManager::CampaignManager(const EnvOptions& env, std::uint64_t seed)
    : CampaignManager(env.campaign_scale(), env, seed) {}

CampaignManager::CampaignManager(CampaignScale scale, EnvOptions env,
                                 std::uint64_t seed)
    : scale_(scale), env_(std::move(env)), seed_(seed) {
  scale_.validate();
  env_.validate();
}

RunResult CampaignManager::run_supervised(const RunConfig& cfg) {
  try {
    return run_experiment(cfg);
  } catch (const std::exception& e) {
    // Quarantine the run (offending seed + plan) and keep the sweep alive —
    // one pathological configuration must not abort a week-long campaign.
    quarantined_.push_back(Quarantine{cfg, e.what()});
    return harness_error_result(cfg);
  }
}

std::uint64_t CampaignManager::fingerprint() const {
  ByteWriter w;
  w.u64(seed_);
  w.i32(scale_.transient_runs);
  w.i32(scale_.permanent_repeats);
  w.i32(scale_.golden_runs);
  w.i32(scale_.training_runs_per_scenario);
  w.f64(scale_.safety_duration_sec);
  w.f64(scale_.long_route_duration_sec);
  const std::string& b = w.bytes();
  return fnv1a64(b.data(), b.size());
}

void CampaignManager::accumulate_executor_stats(const ExecutorStats& s) {
  executor_used_ = true;
  ExecutorStats& t = executor_stats_;
  t.launched += s.launched;
  t.journal_hits += s.journal_hits;
  t.retries += s.retries;
  t.signal_deaths += s.signal_deaths;
  t.timeouts += s.timeouts;
  t.quarantined += s.quarantined;
  t.torn_bytes_discarded += s.torn_bytes_discarded;
  t.pool_workers += s.pool_workers;
  t.respawns += s.respawns;
  t.checkpoint_hits += s.checkpoint_hits;
  t.checkpoint_misses += s.checkpoint_misses;
  t.checkpoint_evictions += s.checkpoint_evictions;
  t.remote_endpoints = std::max(t.remote_endpoints, s.remote_endpoints);
  t.reconnects += s.reconnects;
  t.redispatches += s.redispatches;
  t.duplicate_discards += s.duplicate_discards;
  t.jobs = std::max(t.jobs, s.jobs);
  t.wall_sec += s.wall_sec;
  t.journal_appends += s.journal_appends;
  t.journal_bytes += s.journal_bytes;
  if (t.slot_busy_sec.size() < s.slot_busy_sec.size()) {
    t.slot_busy_sec.resize(s.slot_busy_sec.size(), 0.0);
  }
  for (std::size_t i = 0; i < s.slot_busy_sec.size(); ++i) {
    t.slot_busy_sec[i] += s.slot_busy_sec[i];
  }
  if (t.slot_runs_served.size() < s.slot_runs_served.size()) {
    t.slot_runs_served.resize(s.slot_runs_served.size(), 0);
  }
  for (std::size_t i = 0; i < s.slot_runs_served.size(); ++i) {
    t.slot_runs_served[i] += s.slot_runs_served[i];
  }
  // Observability residue (davcamp's stderr report and the CI drop gate
  // read the campaign-level totals; the per-batch trace files are written
  // from the batch stats before they land here). Captures are deliberately
  // not accumulated — they are per-batch trace inputs, not totals.
  t.trace_dropped += s.trace_dropped;
  t.stage_hist.merge(s.stage_hist);
  for (const EndpointTelemetry& ep : s.endpoints) {
    EndpointTelemetry* mine = nullptr;
    for (EndpointTelemetry& cand : t.endpoints) {
      if (cand.index == ep.index) {
        mine = &cand;
        break;
      }
    }
    if (mine == nullptr) {
      t.endpoints.push_back(ep);
      t.endpoints.back().spans.clear();  // batch-local timeline, not a total
      continue;
    }
    mine->spec = ep.spec;
    mine->state = ep.state;
    mine->slots = ep.slots;
    mine->runs_done += ep.runs_done;
    mine->reconnects += ep.reconnects;
    mine->clock_offset_sec = ep.clock_offset_sec;
    mine->launched += ep.launched;
    mine->respawns += ep.respawns;
    mine->timeouts += ep.timeouts;
    mine->signal_deaths += ep.signal_deaths;
    mine->checkpoint_hits += ep.checkpoint_hits;
    mine->checkpoint_misses += ep.checkpoint_misses;
    mine->checkpoint_evictions += ep.checkpoint_evictions;
    mine->trace_dropped += ep.trace_dropped;
    mine->histograms.merge(ep.histograms);
  }
}

namespace {

/// Histogram summary rows for a trace's otherData: per populated stage,
/// "hist.<stage>" = "count,p50_ns,p95_ns,p99_ns". Derived from the
/// eviction-proof recorder histograms, so the numbers describe every span of
/// every run in the batch even where the per-run event rings wrapped.
void append_histogram_metadata(
    const obs::StageHistogramSet& hist,
    std::vector<std::pair<std::string, std::string>>& out) {
  for (std::size_t i = 0; i < hist.stages.size(); ++i) {
    const obs::StageHistogram& h = hist.stages[i];
    const std::uint64_t n = h.count();
    if (n == 0) continue;
    char row[128];
    std::snprintf(row, sizeof(row), "%llu,%llu,%llu,%llu",
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(h.percentile_ns(50.0)),
                  static_cast<unsigned long long>(h.percentile_ns(95.0)),
                  static_cast<unsigned long long>(h.percentile_ns(99.0)));
    out.emplace_back(
        std::string("hist.") + to_string(static_cast<obs::Stage>(i)), row);
  }
}

}  // namespace

void CampaignManager::export_campaign_trace(const ExecutorStats& s) {
  const obs::TraceOptions topts = env_.trace_options();
  if (!topts.enabled()) return;
  char fp[17];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(fingerprint()));
  obs::ChromeTrace trace;
  trace.other_data = {{"tool", "dav-campaign-telemetry"},
                      {"fingerprint", fp},
                      {"jobs", std::to_string(s.jobs)},
                      {"launched", std::to_string(s.launched)},
                      {"retries", std::to_string(s.retries)},
                      {"journal_hits", std::to_string(s.journal_hits)},
                      {"pool_workers", std::to_string(s.pool_workers)},
                      {"respawns", std::to_string(s.respawns)},
                      {"checkpoint_hits", std::to_string(s.checkpoint_hits)},
                      {"checkpoint_misses",
                       std::to_string(s.checkpoint_misses)},
                      {"checkpoint_evictions",
                       std::to_string(s.checkpoint_evictions)},
                      {"trace_dropped", std::to_string(s.trace_dropped)}};
  append_histogram_metadata(s.stage_hist, trace.other_data);
  // Per-worker lifetime telemetry: one runs-served counter sample per slot
  // at batch end (pool mode; fork-per-run leaves these zero).
  for (std::size_t slot = 0; slot < s.slot_runs_served.size(); ++slot) {
    if (s.slot_runs_served[slot] == 0) continue;
    obs::ChromeEvent c;
    c.name = "runs_served";
    c.cat = "worker";
    c.ph = 'C';
    c.pid = static_cast<int>(slot) + 1;
    c.tid = 0;
    c.ts_us = s.wall_sec * 1e6;
    c.value = static_cast<double>(s.slot_runs_served[slot]);
    c.has_value = true;
    trace.events.push_back(std::move(c));
  }
  for (const WorkerSpan& w : s.spans) {
    obs::ChromeEvent e;
    e.name = "run " + std::to_string(w.index);
    if (w.attempt > 0) e.name += " retry" + std::to_string(w.attempt);
    e.cat = "worker";
    e.ph = 'X';
    e.pid = w.slot + 1;
    e.tid = 0;
    e.ts_us = w.start_sec * 1e6;
    e.dur_us = w.dur_sec * 1e6;
    trace.events.push_back(std::move(e));
  }
  // Distributed fleet view: one process group per endpoint. The coordinator's
  // own spans above already use pid = endpoint index + 1 (slot == endpoint id
  // in distributed mode, tid 0); each daemon's pool-slot spans land in the
  // same group on tid = slot + 1, placed on the coordinator timeline via the
  // handshake clock offset. Pid assignment follows opts.workers order, so the
  // merged layout is stable for a given campaign regardless of completion
  // interleaving.
  for (const EndpointTelemetry& et : s.endpoints) {
    const std::string prefix = "endpoint." + std::to_string(et.index);
    char summary[192];
    std::snprintf(summary, sizeof(summary),
                  "%s state=%s slots=%u runs=%llu reconnects=%d "
                  "clock_offset_sec=%.6f",
                  et.spec.c_str(), et.state.c_str(), et.slots,
                  static_cast<unsigned long long>(et.runs_done), et.reconnects,
                  et.clock_offset_sec);
    trace.other_data.emplace_back(prefix, summary);
    for (const WorkerSpan& w : et.spans) {
      obs::ChromeEvent e;
      e.name = "run " + std::to_string(w.index);
      if (w.attempt > 0) e.name += " retry" + std::to_string(w.attempt);
      e.cat = "endpoint";
      e.ph = 'X';
      e.pid = et.index + 1;
      e.tid = w.slot + 1;
      e.ts_us = (et.base_sec + w.start_sec) * 1e6;
      e.dur_us = w.dur_sec * 1e6;
      trace.events.push_back(std::move(e));
    }
  }
  obs::ensure_dir(topts.dir);
  const std::string stem = topts.dir + "/campaign_" + fp + "_batch" +
                           std::to_string(trace_batches_++);
  obs::write_text_file(stem + ".trace.json", obs::chrome_trace_json(trace));

  if (!s.captures.empty()) {
    obs::write_text_file(stem + ".runs.trace.json",
                         campaign_runs_trace_json(s, fp));
  }
}

std::string campaign_runs_trace_json(const ExecutorStats& s,
                                     const std::string& fingerprint_hex) {
  // Entirely deterministic — two identical campaigns produce byte-identical
  // JSON (CI diffs them) — because captures carry only seed-derived data and
  // the merge order is plan order, not arrival order.
  std::vector<const RunTraceCapture*> sorted;
  sorted.reserve(s.captures.size());
  for (const RunTraceCapture& c : s.captures) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const RunTraceCapture* a, const RunTraceCapture* b) {
              return a->plan_index < b->plan_index;
            });
  obs::ChromeTrace runs;
  runs.other_data = {{"tool", "dav-campaign-runs"},
                     {"fingerprint", fingerprint_hex},
                     {"runs_captured", std::to_string(sorted.size())},
                     {"trace_dropped", std::to_string(s.trace_dropped)}};
  for (const RunTraceCapture* c : sorted) {
    const int pid = static_cast<int>(c->plan_index) + 1;
    for (obs::ChromeEvent& e :
         obs::to_chrome_events(c->capture.instants, c->capture.dt, pid)) {
      runs.events.push_back(std::move(e));
    }
  }
  return obs::chrome_trace_json(runs);
}

std::vector<RunResult> CampaignManager::run_all(
    const std::vector<RunConfig>& cfgs) {
  std::vector<RunConfig> staged = cfgs;
  bool tracing = false;
  for (std::size_t i = 0; i < staged.size(); ++i) {
    if (!staged[i].trace.enabled()) continue;
    tracing = true;
    // One Perfetto pid per run in the batch; the run-config-digest file stem
    // (driver.cpp default) keeps batches from colliding on disk.
    staged[i].trace.pid = static_cast<int>(i) + 1;
  }
  ExecutorOptions opts = env_.executor_options();
  if (opts.enabled()) {
    // Process-isolated path: sandboxed workers (persistent pool by default),
    // wall-clock watchdog, write-ahead journal with lossless resume. Merged
    // by config index, so the batch is bit-identical to the serial path
    // below.
    opts.campaign_fingerprint = fingerprint();
    CampaignExecutor exec(opts);
    std::vector<RunResult> out = exec.run_all(staged);
    for (const RunQuarantine& q : exec.quarantined()) {
      quarantined_.push_back(Quarantine{q.cfg, q.what});
    }
    accumulate_executor_stats(exec.stats());
    if (tracing) export_campaign_trace(exec.stats());
    return out;
  }
  std::vector<RunResult> out;
  out.reserve(staged.size());
  for (const RunConfig& cfg : staged) out.push_back(run_supervised(cfg));
  return out;
}

std::uint64_t CampaignManager::run_seed(ScenarioId scenario, AgentMode mode,
                                        int domain_tag, int kind_tag,
                                        int index) const {
  std::uint64_t s = seed_;
  s = splitmix64(s) ^ (static_cast<std::uint64_t>(scenario) << 8);
  s = splitmix64(s) ^ (static_cast<std::uint64_t>(mode) << 16);
  s = splitmix64(s) ^ (static_cast<std::uint64_t>(domain_tag) << 24);
  s = splitmix64(s) ^ (static_cast<std::uint64_t>(kind_tag) << 32);
  s = splitmix64(s) ^ static_cast<std::uint64_t>(index);
  return splitmix64(s);
}

RunConfig CampaignManager::base_config(ScenarioId scenario,
                                       AgentMode mode) const {
  RunConfig cfg;
  cfg.scenario = scenario;
  cfg.mode = mode;
  cfg.scenario_opts = scale_.scenario_options();
  // Flight recorder opt-in (injected EnvOptions): routed through RunConfig
  // so executor workers inherit it. Not part of run_config_digest.
  cfg.trace = env_.trace_options();
  return cfg;
}

std::vector<RunResult> CampaignManager::golden(ScenarioId scenario,
                                               AgentMode mode, int count) {
  std::vector<RunConfig> cfgs;
  cfgs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    RunConfig cfg = base_config(scenario, mode);
    cfg.run_seed = run_seed(scenario, mode, /*domain_tag=*/9, /*kind_tag=*/0, i);
    cfgs.push_back(cfg);
  }
  return run_all(cfgs);
}

ExecutionProfile CampaignManager::profile(ScenarioId scenario, AgentMode mode,
                                          FaultDomain domain) {
  RunConfig cfg = base_config(scenario, mode);
  cfg.run_seed = run_seed(scenario, mode, /*domain_tag=*/8, /*kind_tag=*/0, 0);
  const RunResult r = run_all({cfg}).front();
  if (r.outcome == FaultOutcome::kHarnessError) {
    // Transient plans are sampled over the profiled instruction span; without
    // a profile the whole campaign is meaningless, so fail loudly instead of
    // generating degenerate plans.
    throw std::runtime_error("CampaignManager: profile run was quarantined; "
                             "cannot generate transient plans");
  }
  ExecutionProfile p;
  p.domain = domain;
  p.total_dyn_instructions = domain == FaultDomain::kGpu
                                 ? r.gpu_instructions
                                 : r.cpu_instructions;
  // In duplicate mode only engine set 0 is faulted; halve the span.
  if (mode == AgentMode::kDuplicate) p.total_dyn_instructions /= 2;
  return p;
}

std::vector<RunResult> CampaignManager::fi_campaign(
    ScenarioId scenario, AgentMode mode, FaultDomain domain,
    FaultModelKind kind, const MitigationSetup* mitigation) {
  const int domain_tag = domain == FaultDomain::kGpu ? 0 : 1;
  const int kind_tag = kind == FaultModelKind::kTransient ? 1 : 2;
  InjectionPlanGenerator gen(
      run_seed(scenario, mode, domain_tag, kind_tag, /*index=*/-1));

  std::vector<FaultPlan> plans;
  if (kind == FaultModelKind::kTransient) {
    const ExecutionProfile prof = profile(scenario, mode, domain);
    // GPU transient sites always land inside the execution (all 500 GPU
    // injections in Table I activated); CPU sites oversample past the end so
    // a realistic fraction never activates.
    const double over = domain == FaultDomain::kGpu ? 0.95 : 1.3;
    plans = gen.transient_plans(prof, scale_.transient_runs, over);
  } else {
    plans = gen.permanent_plans(domain, scale_.permanent_repeats);
  }

  std::vector<RunConfig> cfgs;
  cfgs.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    RunConfig cfg = base_config(scenario, mode);
    cfg.fault = plans[i];
    cfg.run_seed = run_seed(scenario, mode, domain_tag, kind_tag,
                            static_cast<int>(i));
    if (mitigation != nullptr) mitigation->apply(cfg);
    cfgs.push_back(cfg);
  }
  return run_all(cfgs);
}

std::vector<RunResult> CampaignManager::sensor_fi_campaign(
    ScenarioId scenario, AgentMode mode,
    const std::vector<SensorFaultModel>& models, int runs_per_model,
    int onset_tick, int duration_ticks, const MitigationSetup* mitigation) {
  // Domain tag 2: distinct from the register campaigns (0/1) and the
  // golden/profile/training reservations (9/8/7), so sensor sweeps never
  // collide with register sweeps on run seeds.
  const int domain_tag = 2;
  const int kind_tag = 3;
  if (runs_per_model <= 0) {
    // Spread the transient budget across the swept models (at least one run
    // each) instead of multiplying campaign cost by the model count.
    const int n = std::max<int>(1, static_cast<int>(models.size()));
    runs_per_model = std::max(1, scale_.transient_runs / n);
  }
  InjectionPlanGenerator gen(
      run_seed(scenario, mode, domain_tag, kind_tag, /*index=*/-1));
  const std::vector<SensorFaultPlan> plans =
      gen.sensor_plans(models, runs_per_model, onset_tick, duration_ticks);

  FusionConfig fusion;
  fusion.enabled = true;
  std::vector<RunConfig> cfgs;
  cfgs.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    RunConfig cfg = base_config(scenario, mode);
    cfg.sensor_fault = plans[i];
    cfg.fusion = fusion;
    cfg.run_seed = run_seed(scenario, mode, domain_tag, kind_tag,
                            static_cast<int>(i));
    if (mitigation != nullptr) mitigation->apply(cfg);
    cfgs.push_back(cfg);
  }
  return run_all(cfgs);
}

std::vector<std::vector<StepObservation>>
CampaignManager::training_observations(AgentMode mode) {
  std::vector<RunConfig> cfgs;
  for (ScenarioId scenario : training_scenarios()) {
    for (int i = 0; i < scale_.training_runs_per_scenario; ++i) {
      RunConfig cfg = base_config(scenario, mode);
      cfg.run_seed = run_seed(scenario, mode, /*domain_tag=*/7, /*kind_tag=*/0, i);
      cfgs.push_back(cfg);
    }
  }
  std::vector<std::vector<StepObservation>> out;
  for (RunResult& r : run_all(cfgs)) {
    if (r.outcome == FaultOutcome::kHarnessError) continue;
    out.push_back(std::move(r.observations));
  }
  return out;
}

}  // namespace dav
