// Typed façade over every DAV_* environment variable.
//
// The campaign layer grew one ad-hoc getenv per knob (scale, executor
// routing, trace opt-in); each parsed its variable with its own lenient
// rules, so a typo like DAV_JOBS=fuor silently ran serial. EnvOptions is the
// single place the process environment is read: from_env() parses and
// validates ALL DAV_* variables with actionable errors, and everything
// downstream (CampaignScale sizing, ExecutorOptions routing, TraceOptions
// opt-in, CampaignManager construction) consumes the struct — never the
// environment. A davlint rule (env-read) bans std::getenv outside
// env_options.cpp, so the façade cannot rot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/executor.h"
#include "fi/sensor_fault.h"
#include "util/trace.h"

namespace dav {

struct CampaignScale;  // campaign.h (env_options.cpp sees the full type)

struct EnvOptions {
  // --- campaign sizing (DAV_SCALE) ----------------------------------------
  /// Multiplier on the campaign run counts; 1.0 is the paper-shaped default
  /// structure at simulation scale.
  double scale = 1.0;

  // --- process-isolated executor (executor.h) -----------------------------
  /// Parallel worker processes (DAV_JOBS). 0 = executor not requested.
  int jobs = 0;
  /// Persistent prefork worker pool (DAV_POOL); false falls back to the
  /// fork-per-run executor.
  bool pool = true;
  /// Per-worker warm-state cache (DAV_WARM_CACHE); pool mode only.
  bool warm_cache = true;
  /// Fork-point checkpoint sharing (DAV_CHECKPOINT): capture a RunCheckpoint
  /// at each run's injection onset and restore it for fault variants sharing
  /// the fault-free prefix. Never changes results.
  bool checkpoint = false;
  /// Per-worker deep-checkpoint byte budget, MiB (DAV_CHECKPOINT_MAX_MB);
  /// oldest checkpoints are evicted past the budget.
  std::size_t checkpoint_max_mb = 64;
  /// Write-ahead journal path (DAV_JOURNAL); empty disables journaling.
  std::string journal_path;
  /// Wall-clock watchdog per run attempt, seconds (DAV_RUN_TIMEOUT_SEC).
  double run_timeout_sec = 600.0;
  /// Retries for a quarantined run before the final kHarnessError
  /// (DAV_RUN_RETRIES).
  int run_retries = 1;
  /// RLIMIT_CPU per worker, seconds; 0 disables (DAV_RUN_CPU_SEC).
  double run_cpu_sec = 0.0;
  /// RLIMIT_AS per worker, MiB; 0 disables (DAV_RUN_AS_MB).
  std::size_t run_as_mb = 0;

  // --- distributed campaign service (transport.h) --------------------------
  /// Remote worker endpoints (DAV_WORKERS, comma-separated "host:port" or
  /// "unix:/path"). Non-empty routes the campaign through the distributed
  /// coordinator.
  std::vector<std::string> workers;
  /// Worker-daemon listen address (DAV_SERVE); empty means "not a daemon".
  /// Consumed by `davcamp serve`, ignored by campaign runs.
  std::string serve;
  /// Distributed heartbeat cadence, seconds (DAV_HEARTBEAT_SEC): daemons
  /// beacon when idle this long; the coordinator declares an endpoint dead
  /// after ~3x of silence.
  double heartbeat_sec = 5.0;
  /// Straggler deadline, seconds (DAV_STRAGGLER_SEC): a remote run in flight
  /// longer than this is re-dispatched to another endpoint; first result
  /// wins. 0 disables re-dispatch.
  double straggler_sec = 0.0;

  // --- live campaign metrics (executor.h) ----------------------------------
  /// Metrics snapshot path (DAV_METRICS, or davcamp --metrics): the executor
  /// periodically rewrites this file with a key=value progress snapshot via
  /// temp-file + atomic rename. Empty disables.
  std::string metrics_path;
  /// Minimum seconds between snapshots (DAV_METRICS_INTERVAL_SEC).
  double metrics_interval_sec = 2.0;

  // --- sensor-path fault injection (fi/sensor_fault.h) ---------------------
  /// Models swept by `davcamp --faults=sensor` (DAV_SENSOR_FAULTS: comma-
  /// separated canonical names, or "all"). Empty selects every model.
  std::vector<SensorFaultModel> sensor_faults;
  /// Tick the swept sensor faults switch on (DAV_SENSOR_ONSET_TICK).
  int sensor_onset_tick = 40;
  /// How many ticks the swept faults stay active (DAV_SENSOR_DURATION_TICKS).
  int sensor_duration_ticks = 80;

  // --- flight recorder (util/trace.h) --------------------------------------
  /// Trace output directory (DAV_TRACE); empty disables tracing.
  std::string trace_dir;
  /// Trace ring capacity in events (DAV_TRACE_CAPACITY).
  std::size_t trace_capacity = 65536;

  /// THE env-reading entry point: parses and validates every DAV_* variable.
  /// Unset variables keep the defaults above. Throws std::invalid_argument
  /// naming the variable and the offending value on malformed input.
  static EnvOptions from_env();

  /// The compiled-in defaults, untouched by the environment (what a
  /// default-constructed EnvOptions holds; spelled out for call sites that
  /// want to say "no environment" explicitly).
  static EnvOptions defaults() { return EnvOptions{}; }

  /// Throws std::invalid_argument on nonsensical values (also called by
  /// from_env after parsing).
  void validate() const;

  // --- projections consumed by the subsystems -----------------------------
  /// Campaign sizing with `scale` applied (same floors as the historic
  /// DAV_SCALE handling, so existing campaigns reproduce exactly).
  CampaignScale campaign_scale() const;
  /// Executor routing: jobs/pool/cache/journal/rlimits. The caller stamps
  /// campaign_fingerprint before use.
  ExecutorOptions executor_options() const;
  /// Flight-recorder opt-in for RunConfig::trace.
  obs::TraceOptions trace_options() const;

  /// One documented knob; docs() drives the README env-var table and
  /// `davcamp --env-help`, so the docs cannot drift from the parser.
  struct VarDoc {
    const char* name;
    const char* fallback;  // rendered default
    const char* summary;
  };
  static const std::vector<VarDoc>& docs();
};

}  // namespace dav
