// The ONLY translation unit allowed to read the process environment
// (davlint rule env-read). Every DAV_* knob is parsed here, strictly: a
// malformed value is an error naming the variable, never a silent fallback.
#include "campaign/env_options.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "campaign/campaign.h"
#include "campaign/transport.h"

namespace dav {

namespace {

[[noreturn]] void reject(const char* var, const std::string& value,
                         const std::string& want) {
  throw std::invalid_argument(std::string("EnvOptions: ") + var + " must be " +
                              want + ", got \"" + value + "\"");
}

const char* get(const char* var) { return std::getenv(var); }

double parse_double(const char* var, const std::string& value,
                    const std::string& want) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(v)) {
    reject(var, value, want);
  }
  return v;
}

long parse_long(const char* var, const std::string& value,
                const std::string& want) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') reject(var, value, want);
  return v;
}

bool parse_bool(const char* var, const std::string& value) {
  std::string s = value;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
  if (s == "0" || s == "false" || s == "off" || s == "no") return false;
  reject(var, value, "a boolean (1/0, true/false, on/off, yes/no)");
}

}  // namespace

EnvOptions EnvOptions::from_env() {
  EnvOptions o;
  if (const char* v = get("DAV_SCALE")) {
    o.scale = parse_double("DAV_SCALE", v, "a positive number");
    if (!(o.scale > 0.0)) reject("DAV_SCALE", v, "a positive number");
  }
  if (const char* v = get("DAV_JOBS")) {
    const long n = parse_long("DAV_JOBS", v, "a non-negative integer");
    if (n < 0) reject("DAV_JOBS", v, "a non-negative integer");
    o.jobs = static_cast<int>(n);
  }
  if (const char* v = get("DAV_POOL")) o.pool = parse_bool("DAV_POOL", v);
  if (const char* v = get("DAV_WARM_CACHE")) {
    o.warm_cache = parse_bool("DAV_WARM_CACHE", v);
  }
  if (const char* v = get("DAV_CHECKPOINT")) {
    o.checkpoint = parse_bool("DAV_CHECKPOINT", v);
  }
  if (const char* v = get("DAV_CHECKPOINT_MAX_MB")) {
    const long n = parse_long("DAV_CHECKPOINT_MAX_MB", v,
                              "a non-negative integer number of MiB");
    if (n < 0) {
      reject("DAV_CHECKPOINT_MAX_MB", v,
             "a non-negative integer number of MiB");
    }
    o.checkpoint_max_mb = static_cast<std::size_t>(n);
  }
  if (const char* v = get("DAV_JOURNAL")) o.journal_path = v;
  if (const char* v = get("DAV_RUN_TIMEOUT_SEC")) {
    o.run_timeout_sec =
        parse_double("DAV_RUN_TIMEOUT_SEC", v, "a positive number of seconds");
    if (!(o.run_timeout_sec > 0.0)) {
      reject("DAV_RUN_TIMEOUT_SEC", v, "a positive number of seconds");
    }
  }
  if (const char* v = get("DAV_RUN_RETRIES")) {
    const long n = parse_long("DAV_RUN_RETRIES", v, "a non-negative integer");
    if (n < 0) reject("DAV_RUN_RETRIES", v, "a non-negative integer");
    o.run_retries = static_cast<int>(n);
  }
  if (const char* v = get("DAV_RUN_CPU_SEC")) {
    o.run_cpu_sec = parse_double("DAV_RUN_CPU_SEC", v,
                                 "a non-negative number of seconds");
    if (o.run_cpu_sec < 0.0) {
      reject("DAV_RUN_CPU_SEC", v, "a non-negative number of seconds");
    }
  }
  if (const char* v = get("DAV_RUN_AS_MB")) {
    const long n = parse_long("DAV_RUN_AS_MB", v, "a non-negative integer "
                                                  "number of MiB");
    if (n < 0) reject("DAV_RUN_AS_MB", v, "a non-negative integer number of "
                                          "MiB");
    o.run_as_mb = static_cast<std::size_t>(n);
  }
  // An empty value disables distribution, mirroring DAV_JOURNAL's empty =
  // off (so `DAV_WORKERS= davcamp serve` works under a coordinator's env).
  if (const char* v = get("DAV_WORKERS"); v != nullptr && *v != '\0') {
    try {
      o.workers = split_worker_list(v);
      for (const std::string& spec : o.workers) parse_endpoint(spec);
    } catch (const std::exception& e) {
      reject("DAV_WORKERS", v,
             std::string("a comma-separated list of host:port or unix:/path "
                         "endpoints (") +
                 e.what() + ")");
    }
  }
  if (const char* v = get("DAV_SERVE"); v != nullptr && *v != '\0') {
    try {
      parse_endpoint(v);
    } catch (const std::exception& e) {
      reject("DAV_SERVE", v,
             std::string("a host:port or unix:/path listen address (") +
                 e.what() + ")");
    }
    o.serve = v;
  }
  if (const char* v = get("DAV_HEARTBEAT_SEC")) {
    o.heartbeat_sec =
        parse_double("DAV_HEARTBEAT_SEC", v, "a positive number of seconds");
    if (!(o.heartbeat_sec > 0.0)) {
      reject("DAV_HEARTBEAT_SEC", v, "a positive number of seconds");
    }
  }
  if (const char* v = get("DAV_STRAGGLER_SEC")) {
    o.straggler_sec = parse_double("DAV_STRAGGLER_SEC", v,
                                   "a non-negative number of seconds");
    if (o.straggler_sec < 0.0) {
      reject("DAV_STRAGGLER_SEC", v, "a non-negative number of seconds");
    }
  }
  if (const char* v = get("DAV_SENSOR_FAULTS"); v != nullptr && *v != '\0') {
    std::string list = v;
    if (list == "all") {
      o.sensor_faults = all_sensor_fault_models();
    } else {
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string name = list.substr(pos, comma - pos);
        const SensorFaultModel m = parse_sensor_fault_model(name);
        if (m == SensorFaultModel::kNone) {
          std::string names = "\"all\"";
          for (const SensorFaultModel known : all_sensor_fault_models()) {
            names += ", " + to_string(known);
          }
          reject("DAV_SENSOR_FAULTS", v,
                 "a comma-separated list of sensor fault models (unknown "
                 "\"" + name + "\"; known: " + names + ")");
        }
        o.sensor_faults.push_back(m);
        pos = comma + 1;
      }
    }
  }
  if (const char* v = get("DAV_SENSOR_ONSET_TICK")) {
    const long n =
        parse_long("DAV_SENSOR_ONSET_TICK", v, "a non-negative tick index");
    if (n < 0) reject("DAV_SENSOR_ONSET_TICK", v, "a non-negative tick index");
    o.sensor_onset_tick = static_cast<int>(n);
  }
  if (const char* v = get("DAV_SENSOR_DURATION_TICKS")) {
    const long n =
        parse_long("DAV_SENSOR_DURATION_TICKS", v, "a positive tick count");
    if (n <= 0) reject("DAV_SENSOR_DURATION_TICKS", v, "a positive tick count");
    o.sensor_duration_ticks = static_cast<int>(n);
  }
  // Mirror DAV_JOURNAL: empty = off, so a coordinator's env can be inherited
  // with the snapshot disabled.
  if (const char* v = get("DAV_METRICS")) o.metrics_path = v;
  if (const char* v = get("DAV_METRICS_INTERVAL_SEC")) {
    o.metrics_interval_sec = parse_double("DAV_METRICS_INTERVAL_SEC", v,
                                          "a positive number of seconds");
    if (!(o.metrics_interval_sec > 0.0)) {
      reject("DAV_METRICS_INTERVAL_SEC", v, "a positive number of seconds");
    }
  }
  if (const char* v = get("DAV_TRACE")) o.trace_dir = v;
  if (const char* v = get("DAV_TRACE_CAPACITY")) {
    const long n =
        parse_long("DAV_TRACE_CAPACITY", v, "a positive event count");
    if (n <= 0) reject("DAV_TRACE_CAPACITY", v, "a positive event count");
    o.trace_capacity = static_cast<std::size_t>(n);
  }
  o.validate();
  return o;
}

void EnvOptions::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("EnvOptions: " + what);
  };
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    bad("scale must be positive and finite, got " + std::to_string(scale));
  }
  if (jobs < 0) bad("jobs must be non-negative, got " + std::to_string(jobs));
  if (!(run_timeout_sec > 0.0)) {
    bad("run_timeout_sec must be positive, got " +
        std::to_string(run_timeout_sec));
  }
  if (run_retries < 0) {
    bad("run_retries must be non-negative, got " +
        std::to_string(run_retries));
  }
  if (run_cpu_sec < 0.0) {
    bad("run_cpu_sec must be non-negative, got " +
        std::to_string(run_cpu_sec));
  }
  for (const std::string& spec : workers) {
    try {
      parse_endpoint(spec);
    } catch (const std::exception& e) {
      bad(std::string("workers entry is not an endpoint: ") + e.what());
    }
  }
  if (!serve.empty()) {
    try {
      parse_endpoint(serve);
    } catch (const std::exception& e) {
      bad(std::string("serve is not a listen address: ") + e.what());
    }
  }
  if (!(heartbeat_sec > 0.0)) {
    bad("heartbeat_sec must be positive, got " +
        std::to_string(heartbeat_sec));
  }
  if (straggler_sec < 0.0) {
    bad("straggler_sec must be non-negative, got " +
        std::to_string(straggler_sec));
  }
  if (!(metrics_interval_sec > 0.0) || !std::isfinite(metrics_interval_sec)) {
    bad("metrics_interval_sec must be positive and finite, got " +
        std::to_string(metrics_interval_sec));
  }
  for (const SensorFaultModel m : sensor_faults) {
    if (m == SensorFaultModel::kNone) {
      bad("sensor_faults must name injectable models (kNone is not one)");
    }
  }
  if (sensor_onset_tick < 0) {
    bad("sensor_onset_tick must be non-negative, got " +
        std::to_string(sensor_onset_tick));
  }
  if (sensor_duration_ticks <= 0) {
    bad("sensor_duration_ticks must be positive, got " +
        std::to_string(sensor_duration_ticks));
  }
  if (trace_capacity == 0) bad("trace_capacity must be positive");
}

CampaignScale EnvOptions::campaign_scale() const {
  CampaignScale s;
  const double k = scale;
  s.transient_runs = std::max(4, static_cast<int>(s.transient_runs * k));
  s.permanent_repeats =
      std::max(1, static_cast<int>(std::lround(s.permanent_repeats * k)));
  s.golden_runs = std::max(3, static_cast<int>(s.golden_runs * k));
  s.training_runs_per_scenario = std::max(
      1, static_cast<int>(std::lround(s.training_runs_per_scenario * k)));
  return s;
}

ExecutorOptions EnvOptions::executor_options() const {
  ExecutorOptions o;
  o.jobs = jobs;
  o.pool = pool;
  o.warm_cache = warm_cache;
  o.checkpoint = checkpoint;
  o.checkpoint_max_mb = checkpoint_max_mb;
  o.journal_path = journal_path;
  o.run_timeout_sec = run_timeout_sec;
  o.max_retries = run_retries;
  o.cpu_limit_sec = run_cpu_sec;
  o.address_space_mb = run_as_mb;
  o.workers = workers;
  o.heartbeat_sec = heartbeat_sec;
  o.straggler_sec = straggler_sec;
  o.metrics_path = metrics_path;
  o.metrics_interval_sec = metrics_interval_sec;
  return o;
}

obs::TraceOptions EnvOptions::trace_options() const {
  obs::TraceOptions t;
  t.dir = trace_dir;
  t.capacity = trace_capacity;
  return t;
}

const std::vector<EnvOptions::VarDoc>& EnvOptions::docs() {
  static const std::vector<VarDoc> kDocs = {
      {"DAV_SCALE", "1.0",
       "campaign size multiplier (run counts scale with paper-shaped floors)"},
      {"DAV_JOBS", "0",
       "parallel worker processes; >0 enables the process-isolated executor"},
      {"DAV_POOL", "1",
       "persistent prefork worker pool; 0 falls back to fork-per-run"},
      {"DAV_WARM_CACHE", "1",
       "per-worker warm-state cache (scenario + initial agent snapshot)"},
      {"DAV_CHECKPOINT", "0",
       "fork-point checkpoint sharing: variants that share a fault-free "
       "prefix restore a mid-run snapshot instead of replaying it"},
      {"DAV_CHECKPOINT_MAX_MB", "64",
       "per-worker deep-checkpoint byte budget in MiB; oldest entries are "
       "evicted past it"},
      {"DAV_JOURNAL", "(unset)",
       "write-ahead journal path; enables lossless campaign resume"},
      {"DAV_RUN_TIMEOUT_SEC", "600",
       "wall-clock watchdog per run attempt; hung workers are killed"},
      {"DAV_RUN_RETRIES", "1",
       "retries for a quarantined run before the final harness-error verdict"},
      {"DAV_RUN_CPU_SEC", "0",
       "RLIMIT_CPU per worker in seconds; 0 disables"},
      {"DAV_RUN_AS_MB", "0",
       "RLIMIT_AS per worker in MiB; 0 disables (keep 0 under ASan)"},
      {"DAV_WORKERS", "(unset)",
       "comma-separated worker endpoints (host:port or unix:/path); enables "
       "the distributed coordinator"},
      {"DAV_SERVE", "(unset)",
       "listen address for `davcamp serve`; runs this process as a worker "
       "daemon"},
      {"DAV_HEARTBEAT_SEC", "5",
       "distributed liveness: daemon idle-beacon cadence; endpoints silent "
       "for ~3x are declared dead"},
      {"DAV_STRAGGLER_SEC", "0",
       "re-dispatch a remote run still in flight after this long; first "
       "result wins, duplicates are discarded; 0 disables"},
      {"DAV_METRICS", "(unset)",
       "live metrics snapshot path: key=value campaign progress rewritten "
       "atomically while a campaign runs"},
      {"DAV_METRICS_INTERVAL_SEC", "2",
       "minimum seconds between metrics snapshot rewrites"},
      {"DAV_SENSOR_FAULTS", "(unset)",
       "sensor models swept by `davcamp --faults=sensor`: comma-separated "
       "canonical names (camera-blackout, gps-drift, ...) or \"all\""},
      {"DAV_SENSOR_ONSET_TICK", "40",
       "tick the swept sensor faults switch on"},
      {"DAV_SENSOR_DURATION_TICKS", "80",
       "ticks the swept sensor faults stay active"},
      {"DAV_TRACE", "(unset)",
       "flight-recorder output directory; enables per-run + campaign traces"},
      {"DAV_TRACE_CAPACITY", "65536",
       "trace ring capacity in events (~24 B each)"},
  };
  return kDocs;
}

}  // namespace dav
