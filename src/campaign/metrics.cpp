#include "campaign/metrics.h"

#include <algorithm>

namespace dav {

Trajectory golden_baseline(const std::vector<RunResult>& golden_runs) {
  std::vector<Trajectory> trajs;
  trajs.reserve(golden_runs.size());
  for (const auto& r : golden_runs) trajs.push_back(r.trajectory);
  return mean_trajectory(trajs);
}

double run_divergence(const RunResult& run, const Trajectory& baseline) {
  return max_divergence(run.trajectory, baseline);
}

bool is_positive(const RunResult& run, const Trajectory& baseline, double td) {
  if (run.collision) return true;
  // A DUE run stops under the failback system; its divergence from the
  // baseline is the *intended* safe-stop, not a silent hazard.
  if (run.due) return false;
  return run_divergence(run, baseline) >= td;
}

double violation_onset_time(const RunResult& run, const Trajectory& baseline,
                            double td) {
  if (run.collision) return run.collision_time;
  const std::size_t n = std::min(run.trajectory.size(), baseline.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (distance(run.trajectory.at(i), baseline.at(i)) >= td) {
      return static_cast<double>(i) * run.dt;
    }
  }
  return -1.0;
}

Detection detect_run(const RunResult& run, const ThresholdLut& lut,
                     std::size_t rw) {
  Detection d;
  const ReplayResult rr = replay_detector(run.observations, lut, {rw});
  if (rr.alarmed) {
    d.alarm = true;
    d.time = rr.alarm_time;
  }
  if (run.due && (!d.alarm || run.due_time < d.time)) {
    d.alarm = true;
    d.time = run.due_time;
  }
  return d;
}

DetectionEval evaluate_detection(const std::vector<RunResult>& fi_runs,
                                 const std::vector<RunResult>& golden_runs,
                                 const Trajectory& baseline,
                                 const ThresholdLut& lut, std::size_t rw,
                                 double td) {
  DetectionEval eval;
  for (const auto& run : fi_runs) {
    if (run.outcome == FaultOutcome::kHarnessError) continue;  // quarantined
    // Hangs and crashes are platform-detected DUEs; the statistical detector
    // is evaluated on the runs that survive (the paper's platform policy
    // alarms on DUEs unconditionally, so they are neither its true nor its
    // false positives). A DUE run that still ends in an accident counts as a
    // detected positive (the platform alarm fired).
    if (run.due && !run.collision) continue;
    const bool positive = is_positive(run, baseline, td);
    const Detection det = detect_run(run, lut, rw);
    eval.confusion.add(det.alarm, positive);
    if (det.alarm && positive && det.time >= 0.0) {
      const double onset = violation_onset_time(run, baseline, td);
      if (onset > det.time) {
        eval.lead_times_sec.push_back(onset - det.time);
      }
    }
  }
  eval.golden_total = static_cast<int>(golden_runs.size());
  for (const auto& run : golden_runs) {
    if (detect_run(run, lut, rw).alarm) ++eval.golden_false_alarms;
  }
  return eval;
}

CampaignSummary summarize_campaign(const std::vector<RunResult>& fi_runs,
                                   const Trajectory& baseline, double td) {
  CampaignSummary s;
  s.total = static_cast<int>(fi_runs.size());
  for (const auto& run : fi_runs) {
    if (run.outcome == FaultOutcome::kHarnessError) {
      ++s.harness_errors;
      continue;
    }
    if (run.fault_activated || run.due) ++s.active;
    if (run.outcome == FaultOutcome::kCrash ||
        run.outcome == FaultOutcome::kHang) {
      ++s.hang_crash;
    }
    if (run.collision) {
      ++s.accidents;
    } else if (!run.due && run_divergence(run, baseline) >= td) {
      ++s.traj_violations;
    }
  }
  return s;
}

double availability_fraction(const RunResult& run) {
  if (run.scheduled_duration <= 0.0) return 0.0;
  const MitigationStats& m = run.recovery;
  // kSensorDegraded counts as up: full compute redundancy, still driving on
  // fused (degraded) sensing — the availability win over whole-agent restart.
  const double up_ticks = static_cast<double>(m.nominal_ticks) +
                          static_cast<double>(m.probe_ticks) +
                          static_cast<double>(m.degraded_ticks) +
                          static_cast<double>(m.sensor_degraded_ticks);
  return std::min(1.0, up_ticks * run.dt / run.scheduled_duration);
}

RecoverySummary summarize_recovery(const std::vector<RunResult>& fi_runs) {
  RecoverySummary s;
  s.total = static_cast<int>(fi_runs.size());
  double mttr_ticks = 0.0;
  double mttr_sec = 0.0;
  double sensor_mttr_sec = 0.0;
  double avail = 0.0;
  int counted = 0;
  for (const auto& run : fi_runs) {
    if (run.outcome == FaultOutcome::kHarnessError) {
      ++s.harness_errors;
      continue;
    }
    ++counted;
    avail += availability_fraction(run);
    if (run.due) ++s.due_runs;
    if (run.recovery.completed > 0) ++s.recovered_runs;
    if (run.recovery.escalated) ++s.escalated_runs;
    double first_rejoin = -1.0;
    for (const RecoveryEvent& ev : run.recovery.events) {
      if (ev.rejoin_tick < 0) continue;  // open episode (escalated mid-way)
      mttr_ticks += static_cast<double>(ev.rejoin_tick - ev.alarm_tick);
      mttr_sec += ev.rejoin_time - ev.alarm_time;
      ++s.recovery_episodes;
      if (first_rejoin < 0.0) first_rejoin = ev.rejoin_time;
    }
    if (run.collision && first_rejoin >= 0.0 &&
        run.collision_time >= first_rejoin) {
      ++s.hazard_after_recovery;
    }
    if (run.recovery.sensor_degraded_ticks > 0 ||
        !run.recovery.sensor_events.empty()) {
      ++s.sensor_degraded_runs;
    }
    double first_onset = -1.0;
    for (const SensorDegradeEvent& ev : run.recovery.sensor_events) {
      ++s.sensor_episodes;
      if (first_onset < 0.0 || ev.onset_time < first_onset) {
        first_onset = ev.onset_time;
      }
      if (ev.rejoin_tick < 0) continue;  // open at end of run
      sensor_mttr_sec += ev.rejoin_time - ev.onset_time;
      ++s.sensor_rejoins;
    }
    if (run.collision && first_onset >= 0.0 &&
        run.collision_time >= first_onset) {
      ++s.hazard_after_sensor_degrade;
    }
  }
  if (s.recovery_episodes > 0) {
    s.mean_mttr_ticks = mttr_ticks / s.recovery_episodes;
    s.mean_mttr_sec = mttr_sec / s.recovery_episodes;
  }
  if (s.sensor_rejoins > 0) {
    s.mean_sensor_mttr_sec = sensor_mttr_sec / s.sensor_rejoins;
  }
  if (counted > 0) s.mean_availability = avail / counted;
  return s;
}

}  // namespace dav
