#include "campaign/metrics.h"

#include <algorithm>

namespace dav {

Trajectory golden_baseline(const std::vector<RunResult>& golden_runs) {
  std::vector<Trajectory> trajs;
  trajs.reserve(golden_runs.size());
  for (const auto& r : golden_runs) trajs.push_back(r.trajectory);
  return mean_trajectory(trajs);
}

double run_divergence(const RunResult& run, const Trajectory& baseline) {
  return max_divergence(run.trajectory, baseline);
}

bool is_positive(const RunResult& run, const Trajectory& baseline, double td) {
  if (run.collision) return true;
  // A DUE run stops under the failback system; its divergence from the
  // baseline is the *intended* safe-stop, not a silent hazard.
  if (run.due) return false;
  return run_divergence(run, baseline) >= td;
}

double violation_onset_time(const RunResult& run, const Trajectory& baseline,
                            double td) {
  if (run.collision) return run.collision_time;
  const std::size_t n = std::min(run.trajectory.size(), baseline.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (distance(run.trajectory.at(i), baseline.at(i)) >= td) {
      return static_cast<double>(i) * run.dt;
    }
  }
  return -1.0;
}

Detection detect_run(const RunResult& run, const ThresholdLut& lut,
                     std::size_t rw) {
  Detection d;
  const ReplayResult rr = replay_detector(run.observations, lut, {rw});
  if (rr.alarmed) {
    d.alarm = true;
    d.time = rr.alarm_time;
  }
  if (run.due && (!d.alarm || run.due_time < d.time)) {
    d.alarm = true;
    d.time = run.due_time;
  }
  return d;
}

DetectionEval evaluate_detection(const std::vector<RunResult>& fi_runs,
                                 const std::vector<RunResult>& golden_runs,
                                 const Trajectory& baseline,
                                 const ThresholdLut& lut, std::size_t rw,
                                 double td) {
  DetectionEval eval;
  for (const auto& run : fi_runs) {
    // Hangs and crashes are platform-detected DUEs; the statistical detector
    // is evaluated on the runs that survive (the paper's platform policy
    // alarms on DUEs unconditionally, so they are neither its true nor its
    // false positives). A DUE run that still ends in an accident counts as a
    // detected positive (the platform alarm fired).
    if (run.due && !run.collision) continue;
    const bool positive = is_positive(run, baseline, td);
    const Detection det = detect_run(run, lut, rw);
    eval.confusion.add(det.alarm, positive);
    if (det.alarm && positive && det.time >= 0.0) {
      const double onset = violation_onset_time(run, baseline, td);
      if (onset > det.time) {
        eval.lead_times_sec.push_back(onset - det.time);
      }
    }
  }
  eval.golden_total = static_cast<int>(golden_runs.size());
  for (const auto& run : golden_runs) {
    if (detect_run(run, lut, rw).alarm) ++eval.golden_false_alarms;
  }
  return eval;
}

CampaignSummary summarize_campaign(const std::vector<RunResult>& fi_runs,
                                   const Trajectory& baseline, double td) {
  CampaignSummary s;
  s.total = static_cast<int>(fi_runs.size());
  for (const auto& run : fi_runs) {
    if (run.fault_activated || run.due) ++s.active;
    if (run.outcome == FaultOutcome::kCrash ||
        run.outcome == FaultOutcome::kHang) {
      ++s.hang_crash;
    }
    if (run.collision) {
      ++s.accidents;
    } else if (!run.due && run_divergence(run, baseline) >= td) {
      ++s.traj_violations;
    }
  }
  return s;
}

}  // namespace dav
