#include "agent/warmup.h"

#include <cmath>

namespace dav {

namespace {

/// The same arithmetic chain evaluated with and without instrumentation; the
/// ratio is exactly 1.0 unless a fault corrupted the instrumented path.
template <typename Exec>
float gpu_chain(Exec&& x, float seed) {
  float g = x(GpuOpcode::kMovReg, seed);
  g = x(GpuOpcode::kFAdd, g + 0.5f);
  g = x(GpuOpcode::kFSub, g - 0.5f);
  g = x(GpuOpcode::kFMul, g * 2.0f);
  g = x(GpuOpcode::kFFma, g * 0.5f + 0.25f);
  g = x(GpuOpcode::kFBias, g - 0.25f);
  g = x(GpuOpcode::kFDiv, g / 1.0f);
  g = x(GpuOpcode::kFRcp, 1.0f / g);
  g = x(GpuOpcode::kFSqrt, std::sqrt(std::fabs(g)));
  g = x(GpuOpcode::kFRsqrt, 1.0f / std::sqrt(std::fabs(g) + 1e-12f));
  g = x(GpuOpcode::kFMin, g < 2.0f ? g : 2.0f);
  g = x(GpuOpcode::kFMax, g > 0.25f ? g : 0.25f);
  g = x(GpuOpcode::kFAbs, std::fabs(g));
  g = x(GpuOpcode::kFNeg, -g);
  g = x(GpuOpcode::kFNeg, -g);
  g = x(GpuOpcode::kFExp, std::exp(g - 1.0f));
  g = x(GpuOpcode::kFLog, std::log(std::fabs(g) + 1e-12f) + 1.0f);
  g = x(GpuOpcode::kFTanh, std::tanh(g));
  g = x(GpuOpcode::kFSigmoid, 1.0f / (1.0f + std::exp(-g)));
  g = x(GpuOpcode::kFScale, g * (1.0f / 0.67503753f));  // undo tanh+sigmoid
  g = x(GpuOpcode::kFRelu, g > 0.0f ? g : 0.0f);
  g = x(GpuOpcode::kFFloor, std::floor(g + 0.5f));
  // Re-inject the live seed: floor quantizes, which would otherwise collapse
  // the data diversity for the rest of the chain.
  g = x(GpuOpcode::kFMul, g * seed);
  g = x(GpuOpcode::kFClampLo, g < 0.1f ? 0.1f : g);
  g = x(GpuOpcode::kFClampHi, g > 10.0f ? 10.0f : g);
  x(GpuOpcode::kFCmpLt, g - 2.0f);
  x(GpuOpcode::kFCmpGt, g - 0.5f);
  g = x(GpuOpcode::kFSel, g > 0.5f ? g : 0.5f);
  // The select can collapse to its constant arm; keep the live data flowing.
  g = x(GpuOpcode::kFDot, g * (0.5f + 0.5f * seed));
  g = x(GpuOpcode::kFMacc, g + 0.01f * seed);
  g = x(GpuOpcode::kRedAdd, g);
  g = x(GpuOpcode::kRedMax, g);
  g = x(GpuOpcode::kRedMin, g);
  const float i0 = x(GpuOpcode::kCvtF2I, std::trunc(g * 8.0f));
  const float i1 = x(GpuOpcode::kIAdd, i0 + 8.0f);
  const float i2 = x(GpuOpcode::kIMul, i1 * 2.0f);
  const float i3 = x(GpuOpcode::kIMad, i2 * 1.0f + 0.0f);
  g = x(GpuOpcode::kCvtI2F, i3 / 32.0f);
  // Final seed blend: the integer stage truncates, re-diversify once more.
  g = x(GpuOpcode::kFFma, g * seed + seed);
  return g;
}

template <typename Exec>
double cpu_chain(Exec&& x, double seed) {
  double g = x(CpuOpcode::kMovReg, seed);
  g = x(CpuOpcode::kAdd, g + 0.5);
  g = x(CpuOpcode::kSub, g - 0.5);
  g = x(CpuOpcode::kMul, g * 2.0);
  g = x(CpuOpcode::kDiv, g / 2.0);
  g = x(CpuOpcode::kFma, g * 1.0 + 0.0);
  g = x(CpuOpcode::kMin, g < 2.0 ? g : 2.0);
  g = x(CpuOpcode::kMax, g > 0.25 ? g : 0.25);
  g = x(CpuOpcode::kAbs, std::fabs(g));
  g = x(CpuOpcode::kSqrt, std::sqrt(std::fabs(g)));
  const double s = x(CpuOpcode::kSin, std::sin(g));
  const double c = x(CpuOpcode::kCos, std::cos(g));
  g = x(CpuOpcode::kAtan2, std::atan2(s, c));  // == g for g in (-pi, pi)
  x(CpuOpcode::kCmp, g - 1.0);
  g = x(CpuOpcode::kSel, g > 0.0 ? g : 1.0);
  g = x(CpuOpcode::kClampOp, g < 0.01 ? 0.01 : (g > 100.0 ? 100.0 : g));
  g = x(CpuOpcode::kNeg, -g);
  g = x(CpuOpcode::kNeg, -g);
  g = x(CpuOpcode::kCvt, static_cast<double>(static_cast<float>(g)));
  return g;
}

}  // namespace

float gpu_isa_warmup(GpuEngine& eng, float seed) {
  // Keep the chain's operating point benign regardless of the raw seed.
  const float s = 1.0f + 0.25f * (seed - std::floor(seed));
  const float instrumented =
      gpu_chain([&](GpuOpcode op, float v) { return eng.exec(op, v); }, s);
  const float expected =
      gpu_chain([](GpuOpcode, float v) { return v; }, s);
  // Touch the memory/control opcodes not covered by the value chain.
  eng.bulk(GpuOpcode::kLdg, 8);
  eng.bulk(GpuOpcode::kStg, 4);
  eng.bulk(GpuOpcode::kShflIdx, 2);
  eng.mark(GpuOpcode::kBra);
  eng.mark(GpuOpcode::kBar);
  // Exact zero is a sentinel for "no instructions expected", never a
  // computed value.
  if (expected == 0.0f) return 1.0f;  // davlint: allow(float-eq)
  return instrumented / expected;
}

double cpu_isa_warmup(CpuEngine& eng, double seed) {
  const double s = 1.0 + 0.25 * (seed - std::floor(seed));
  const double instrumented = cpu_chain(
      [&](CpuOpcode op, double v) {
        return static_cast<double>(eng.exec(op, static_cast<float>(v)));
      },
      s);
  const double expected = cpu_chain(
      [](CpuOpcode, double v) {
        return static_cast<double>(static_cast<float>(v));
      },
      s);
  eng.bulk(CpuOpcode::kLea, 4);
  eng.bulk(CpuOpcode::kLoad, 6);
  eng.bulk(CpuOpcode::kStore, 3);
  eng.bulk(CpuOpcode::kPush, 2);
  eng.bulk(CpuOpcode::kPop, 2);
  eng.bulk(CpuOpcode::kIndex, 2);
  eng.bulk(CpuOpcode::kPtrAdd, 2);
  eng.bulk(CpuOpcode::kMemCpy, 1);
  eng.mark(CpuOpcode::kJmp);
  eng.mark(CpuOpcode::kJcc);
  eng.mark(CpuOpcode::kCall);
  eng.mark(CpuOpcode::kRet);
  eng.mark(CpuOpcode::kLoopCnt);
  eng.mark(CpuOpcode::kSwitch);
  // Exact zero is a sentinel for "no instructions expected", never a
  // computed value.
  if (expected == 0.0) return 1.0;  // davlint: allow(float-eq)
  return instrumented / expected;
}

}  // namespace dav
