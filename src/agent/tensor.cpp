#include "agent/tensor.h"

#include <algorithm>
#include <cmath>

namespace dav {

Tensor image_to_tensor(GpuEngine& eng, const Image& img) {
  return image_rows_to_tensor(eng, img, 0, img.height());
}

Tensor image_rows_to_tensor(GpuEngine& eng, const Image& img, int y0, int y1) {
  Tensor t(3, y1 - y0, img.width());
  eng.bulk(GpuOpcode::kLdg, static_cast<std::uint64_t>(y1 - y0) *
                                static_cast<std::uint64_t>(img.width()) * 3);
  for (int y = y0; y < y1; ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Rgb c = img.get(x, y);
      t.at(0, y - y0, x) = eng.exec(GpuOpcode::kFScale, c.r * (1.0f / 255.0f));
      t.at(1, y - y0, x) = eng.exec(GpuOpcode::kFScale, c.g * (1.0f / 255.0f));
      t.at(2, y - y0, x) = eng.exec(GpuOpcode::kFScale, c.b * (1.0f / 255.0f));
    }
  }
  eng.bulk(GpuOpcode::kStg, t.size());
  return t;
}

Tensor conv2d_plane(GpuEngine& eng, const Tensor& plane,
                    const std::vector<float>& kernel, int radius) {
  const int h = plane.height();
  const int w = plane.width();
  const int kdim = 2 * radius + 1;
  Tensor out(1, h, w);
  eng.bulk(GpuOpcode::kLdg, plane.size());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int ky = -radius; ky <= radius; ++ky) {
        const int yy = y + ky;
        if (yy < 0 || yy >= h) continue;
        for (int kx = -radius; kx <= radius; ++kx) {
          const int xx = x + kx;
          if (xx < 0 || xx >= w) continue;
          const float kv = kernel[static_cast<std::size_t>(
              (ky + radius) * kdim + (kx + radius))];
          acc = eng.exec(GpuOpcode::kFMacc, acc + kv * plane.at(0, yy, xx));
        }
      }
      out.at(0, y, x) = eng.exec(GpuOpcode::kFFma, acc);
    }
  }
  eng.bulk(GpuOpcode::kStg, out.size());
  return out;
}

Tensor avg_pool(GpuEngine& eng, const Tensor& t, int k) {
  const int oh = t.height() / k;
  const int ow = t.width() / k;
  Tensor out(t.channels(), oh, ow);
  eng.bulk(GpuOpcode::kLdg, t.size());
  const float inv = 1.0f / static_cast<float>(k * k);
  for (int c = 0; c < t.channels(); ++c) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        // Every partial sum is an instrumented FADD: a permanent fault on
        // the accumulate opcode corrupts each step of the reduction (the
        // register-level semantics of the paper's injectors), which is what
        // makes corrupted aggregates diverge between data-diverse agents.
        float acc = 0.0f;
        for (int dy = 0; dy < k; ++dy) {
          for (int dx = 0; dx < k; ++dx) {
            acc = eng.exec(GpuOpcode::kFAdd,
                           acc + t.at(c, y * k + dy, x * k + dx));
          }
        }
        out.at(c, y, x) = eng.exec(GpuOpcode::kRedAdd, acc * inv);
      }
    }
  }
  eng.bulk(GpuOpcode::kStg, out.size());
  return out;
}

void relu_inplace(GpuEngine& eng, Tensor& t) {
  for (auto& v : t.data()) {
    v = eng.exec(GpuOpcode::kFRelu, v > 0.0f ? v : 0.0f);
  }
}

float row_sum(GpuEngine& eng, const Tensor& t, int channel, int row) {
  float acc = 0.0f;
  for (int x = 0; x < t.width(); ++x) {
    acc = eng.exec(GpuOpcode::kFAdd, acc + t.at(channel, row, x));
  }
  return eng.exec(GpuOpcode::kRedAdd, acc);
}

CentroidResult col_centroid(GpuEngine& eng, const Tensor& t, int channel,
                            int row_begin, int row_end, int col_begin,
                            int col_end) {
  float mass = 0.0f;
  float weighted = 0.0f;
  for (int y = row_begin; y < row_end; ++y) {
    for (int x = col_begin; x < col_end; ++x) {
      const float v = t.at(channel, y, x);
      mass = eng.exec(GpuOpcode::kFAdd, mass + v);
      weighted =
          eng.exec(GpuOpcode::kFMacc, weighted + v * static_cast<float>(x));
    }
  }
  CentroidResult r;
  r.mass = eng.exec(GpuOpcode::kRedAdd, mass);
  if (r.mass > 1e-6f) {
    r.centroid = eng.exec(GpuOpcode::kFDiv, weighted / r.mass);
  } else {
    r.centroid = eng.exec(GpuOpcode::kMovReg, -1.0f);
  }
  return r;
}

float window_sum(GpuEngine& eng, const Tensor& t, int channel, int row_begin,
                 int row_end, int col_begin, int col_end) {
  float acc = 0.0f;
  for (int y = row_begin; y < row_end; ++y) {
    for (int x = col_begin; x < col_end; ++x) {
      acc = eng.exec(GpuOpcode::kFAdd, acc + t.at(channel, y, x));
    }
  }
  return eng.exec(GpuOpcode::kRedAdd, acc);
}

std::vector<float> fully_connected(GpuEngine& eng, const std::vector<float>& in,
                                   const std::vector<float>& weights,
                                   const std::vector<float>& bias,
                                   bool apply_relu) {
  const std::size_t n = in.size();
  const std::size_t m = bias.size();
  std::vector<float> out(m, 0.0f);
  eng.bulk(GpuOpcode::kLdg, n + weights.size());
  for (std::size_t j = 0; j < m; ++j) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      acc = eng.exec(GpuOpcode::kFMacc, acc + weights[j * n + i] * in[i]);
    }
    acc = eng.exec(GpuOpcode::kFBias, acc + bias[j]);
    if (apply_relu) acc = eng.exec(GpuOpcode::kFRelu, acc > 0.0f ? acc : 0.0f);
    out[j] = acc;
  }
  eng.bulk(GpuOpcode::kStg, m);
  return out;
}

}  // namespace dav
