// Tensors and tensor operations executed on the instrumented GPU engine.
//
// Every elementwise arithmetic result flows through GpuEngine::exec, so the
// fault injector can corrupt the destination register of any dynamic
// instruction; loads/stores are accounted in bulk. This is the perception
// pipeline's compute fabric (the paper's CNN runs on the GPU; §V-C notes the
// agent "uses the GPU mostly for computations").
#pragma once

#include <vector>

#include "fi/engine.h"
#include "sensors/image.h"

namespace dav {

/// Dense CHW float tensor.
class Tensor {
 public:
  Tensor() = default;
  Tensor(int channels, int height, int width)
      : c_(channels), h_(height), w_(width),
        data_(static_cast<std::size_t>(channels) * height * width, 0.0f) {}

  int channels() const { return c_; }
  int height() const { return h_; }
  int width() const { return w_; }
  std::size_t size() const { return data_.size(); }

  float at(int c, int y, int x) const { return data_[idx(c, y, x)]; }
  float& at(int c, int y, int x) { return data_[idx(c, y, x)]; }
  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  std::size_t byte_size() const { return data_.size() * sizeof(float); }

 private:
  std::size_t idx(int c, int y, int x) const {
    return (static_cast<std::size_t>(c) * h_ + y) * w_ + x;
  }
  int c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

/// Convert an RGB8 image to a 3xHxW tensor in [0,1]. Counts the global loads
/// and executes the per-element normalization on the engine.
Tensor image_to_tensor(GpuEngine& eng, const Image& img);

/// Like image_to_tensor but converts only rows [y0, y1) — the perception
/// pipeline crops to the ground region below the horizon.
Tensor image_rows_to_tensor(GpuEngine& eng, const Image& img, int y0, int y1);

/// 2-D convolution of a single-channel plane with a (2r+1)^2 kernel, same
/// padding. Every multiply-accumulate is an instrumented FMACC and the final
/// write-back an FFMA (destination register).
Tensor conv2d_plane(GpuEngine& eng, const Tensor& plane,
                    const std::vector<float>& kernel, int radius);

/// Average pooling by integer factor k (each output = scaled REDADD).
Tensor avg_pool(GpuEngine& eng, const Tensor& t, int k);

/// Elementwise ReLU.
void relu_inplace(GpuEngine& eng, Tensor& t);

/// Sum of one row of one channel (REDADD reduction).
float row_sum(GpuEngine& eng, const Tensor& t, int channel, int row);

/// Column-centroid and mass of a row/column window of one channel:
/// mass = sum(v), centroid = sum(v * x) / mass (0 mass -> centroid = -1).
struct CentroidResult {
  float mass = 0.0f;
  float centroid = -1.0f;
};
CentroidResult col_centroid(GpuEngine& eng, const Tensor& t, int channel,
                            int row_begin, int row_end, int col_begin,
                            int col_end);

/// Sum of one channel over a row/column window.
float window_sum(GpuEngine& eng, const Tensor& t, int channel, int row_begin,
                 int row_end, int col_begin, int col_end);

/// Fully connected layer: out[j] = relu(sum_i in[i] * w[j*n+i] + b[j]).
std::vector<float> fully_connected(GpuEngine& eng, const std::vector<float>& in,
                                   const std::vector<float>& weights,
                                   const std::vector<float>& bias,
                                   bool apply_relu = true);

}  // namespace dav
