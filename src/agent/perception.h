// Vision-based local perception (the paper's CNN stage), executed entirely on
// the instrumented GPU engine.
//
// From the three front cameras it estimates: the nearest in-path obstacle
// distance (vehicles via body color / underside shadow; red stop lines when a
// traffic light is not green), the ego's lateral offset from the lane center,
// and the lane's heading slope — using ground-plane ranging: an image row
// below the horizon maps to depth d = f * h_mount / (row - horizon).
// Persistent EMA filters are private per-agent state, so fault corruption of
// an estimate propagates across time steps (paper §II-C).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "agent/tensor.h"
#include "fi/sensor_fault.h"
#include "sensors/camera.h"

namespace dav {

struct PerceptionConfig {
  CameraModel center_cam;          // geometry of the center camera
  double corridor_half_m = 1.7;    // half width of the "in path" corridor
  double max_range_m = 75.0;
  double dark_thresh = 0.12;       // underside-shadow brightness cutoff
  double dark_weight = 8.0;
  double blue_thresh = 0.10;
  double blue_weight = 2.0;
  double red_thresh = 0.10;
  double white_thresh = 0.55;
  double row_mass_thresh = 0.30;   // min in-corridor row mass for a detection
  double head_mass_thresh = 0.30;  // min red mass for a traffic-light head
  double light_head_height = 4.6;  // mount height of light heads (m)
  int upper_band_rows = 18;        // above-horizon rows scanned for heads
  double ema_alpha = 0.45;         // smoothing of the lane-offset estimate
  double heading_alpha = 0.22;     // slower smoothing of the heading slope
                                   // (it feeds steering and speed planning)
  double side_mass_thresh = 60.0;  // side-camera proximity warning cutoff
};

struct PerceptionOutput {
  bool obstacle_valid = false;
  double obstacle_distance = 200.0;  // m (vehicle or red stop line)
  double lane_offset = 0.0;          // m, + = lane center left of ego
  double heading_slope = 0.0;        // lateral change of lane center per m
  bool side_warning = false;         // very close object in a side camera
  double gain = 1.0;                 // ISA-warmup gain (1.0 fault-free)
  /// Total smoothed-mask mass in the forward view. Downstream speed planning
  /// applies a mild continuous caution factor from it, so corrupted
  /// perception influences actuation continuously (a corrupted CNN never
  /// degrades to clean defaults) — this is what lets the two data-diverse
  /// agents diverge visibly when a fault blinds or floods the masks.
  double scene_clutter = 0.0;
  /// Coarse patch-sum features of the raw masks (a 2x4 grid over vehicle and
  /// lane masks), consumed by the waypoint head's fully-connected refinement
  /// layer — the end-to-end CNN structure of the Sensorimotor agent. Each
  /// feature is an instrumented accumulation over raw pixels, so register-
  /// level corruption makes it chaotic in the agent's bit-diverse input.
  std::array<float, 8> features{};
};

/// The persistent filter state of one Perception instance — everything a
/// restarted replica needs to resynchronize from its healthy peer.
struct PerceptionSnapshot {
  float lane_offset_ema = 0.0f;
  float heading_ema = 0.0f;
  float obstacle_ema = 200.0f;
  float obstacle_hist[3] = {200.0f, 200.0f, 200.0f};
  int hist_idx = 0;
  bool ema_init = false;
};

class Perception {
 public:
  Perception(GpuEngine& eng, PerceptionConfig cfg);

  /// `cams` must be {left, center, right} as produced by front_camera_rig.
  /// `tick` is the world step, used only to window spatiotemporal bit-flip
  /// injection; -1 (the default) disables injection for this call.
  PerceptionOutput process(const std::vector<Image>& cams, int tick = -1);

  /// Spatiotemporal bit-flip target hook (SensorFaultModel::kTensorBitFlip).
  /// Non-owning; nullptr detaches. Injection layers: 0 = raw vehicle mask,
  /// 1 = CNN-smoothed mask, 2 = patch-sum features, 3 = persistent EMA state.
  void attach_fault_injector(SensorFaultInjector* injector) {
    injector_ = injector;
  }

  void reset();
  PerceptionSnapshot snapshot() const;
  void restore(const PerceptionSnapshot& s);
  /// Bytes of persistent state + scratch tensors (resource accounting).
  std::size_t state_bytes() const;
  /// The scratch-tensor footprint alone, for checkpoint capture/adopt: an
  /// agent parked by recovery never rebuilds its masks after a resume, so
  /// the restored footprint must match what the straight-through run kept.
  std::size_t scratch_footprint() const { return scratch_bytes_; }
  void set_scratch_footprint(std::size_t bytes) { scratch_bytes_ = bytes; }

 private:
  struct Masks {
    Tensor vehicle;         // raw, ground band (below horizon)
    Tensor vehicle_smooth;  // 3x3-box smoothed (confirmation gate)
    Tensor red;             // ground band (painted stop lines)
    Tensor white;           // ground band (lane markings)
    Tensor red_upper;       // above-horizon band (traffic-light heads)
  };
  Masks build_masks(const Image& img, float gain);

  GpuEngine& eng_;
  PerceptionConfig cfg_;
  SensorFaultInjector* injector_ = nullptr;
  // Persistent (private, fault-corruptible) state.
  float lane_offset_ema_ = 0.0f;
  float heading_ema_ = 0.0f;
  float obstacle_ema_ = 200.0f;
  float obstacle_hist_[3] = {200.0f, 200.0f, 200.0f};  // median-of-3 input
  int hist_idx_ = 0;
  bool ema_init_ = false;
  std::size_t scratch_bytes_ = 0;
};

}  // namespace dav
