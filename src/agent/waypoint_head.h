// Waypoint head: the final stage of the GPU pipeline. From the perception
// estimates it emits four local waypoints (the Sensorimotor agent's CNN
// "predicts the path ... by outputting four local waypoints for each time
// step"); their spacing encodes the desired speed, which the CPU-side
// waypoint tracker decodes.
#pragma once

#include <array>

#include "agent/perception.h"
#include "fi/engine.h"
#include "util/vec2.h"

namespace dav {

struct WaypointHeadConfig {
  double comfort_decel = 3.6;  // m/s^2 used to derive the braking envelope
  double stop_margin = 5.0;    // m, standstill gap behind an obstacle
  double headway = 1.05;       // s, desired time gap
  double wp_dt = 0.5;          // s between successive waypoints
  double min_spacing = 0.12;   // m, spacing emitted at standstill
};

/// Four waypoints in the ego frame (x forward, y left).
struct Waypoints {
  std::array<Vec2, 4> pts;
};

Waypoints waypoint_head(GpuEngine& eng, const PerceptionOutput& p,
                        double v_meas, double cruise,
                        const WaypointHeadConfig& cfg);

}  // namespace dav
