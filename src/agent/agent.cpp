#include "agent/agent.h"

#include <algorithm>
#include <cmath>

#include "agent/warmup.h"
#include "util/trace.h"

namespace dav {
namespace {

/// Minimum valid return inside the forward corridor (beam 0 is ego-forward,
/// beam i sits at i * 360/n degrees). Dropout zeros and ~max_range misses
/// are excluded; 200 m (perception's "nothing seen") when no beam qualifies.
double lidar_forward_min(const std::vector<float>& ranges, double half_deg) {
  const int n = static_cast<int>(ranges.size());
  if (n == 0) return 200.0;
  const double step_deg = 360.0 / n;
  double best = 200.0;
  for (int i = 0; i < n; ++i) {
    const double deg = (i <= n / 2) ? i * step_deg : (i - n) * step_deg;
    if (std::abs(deg) > half_deg) continue;
    const double r = ranges[static_cast<std::size_t>(i)];
    if (r > 0.3 && r < 76.0 && r < best) best = r;
  }
  return best;
}

}  // namespace

SensorimotorAgent::SensorimotorAgent(std::string name, AgentConfig cfg,
                                     GpuEngine& gpu, CpuEngine& cpu,
                                     const RoadMap* map)
    : name_(std::move(name)),
      cfg_(cfg),
      gpu_(gpu),
      cpu_(cpu),
      perception_(gpu, cfg.perception),
      planner_(cpu, map, cfg.mission_speed, cfg.route_start_s),
      control_(cpu, cfg.control),
      health_(cfg.fusion.health) {}

void SensorimotorAgent::reset() {
  perception_.reset();
  planner_.reset(cfg_.route_start_s);
  control_.reset();
  last_perception_ = {};
  last_waypoints_ = {};
  steps_ = 0;
  health_ = SensorHealthMonitor(cfg_.fusion.health);
  v_held_ = 0.0;
}

AgentSnapshot SensorimotorAgent::snapshot() const {
  AgentSnapshot s;
  s.perception = perception_.snapshot();
  s.planner_progress = planner_.progress();
  s.control = control_.snapshot();
  s.steps = steps_;
  s.sensor_health = health_.snapshot();
  s.v_held = v_held_;
  return s;
}

void SensorimotorAgent::restore(const AgentSnapshot& s) {
  perception_.restore(s.perception);
  planner_.restore_progress(s.planner_progress);
  control_.restore(s.control);
  steps_ = s.steps;
  health_.restore(s.sensor_health);
  v_held_ = s.v_held;
}

AgentCheckpoint SensorimotorAgent::capture() const {
  return {snapshot(), health_.capture(), perception_.scratch_footprint()};
}

void SensorimotorAgent::adopt(const AgentCheckpoint& c) {
  restore(c.snapshot);
  // restore() re-primes the monitor's transient buffers; a byte-exact resume
  // puts the captured ones back.
  health_.adopt(c.health);
  perception_.set_scratch_footprint(c.perception_scratch);
}

void SensorimotorAgent::rewarm() {
  // Seed both warmup kernels from live private state (filter contents and
  // step parity), not constants: a permanent fault corrupting the warmup
  // chain then produces agent-dependent garbage, exactly as in the per-frame
  // housekeeping path.
  const AgentSnapshot s = snapshot();
  gpu_isa_warmup(gpu_, static_cast<float>(s.perception.obstacle_ema) +
                           0.013f * static_cast<float>(steps_));
  cpu_isa_warmup(cpu_, s.planner_progress + 0.173 * s.control.prev_v_tgt +
                           0.031 * steps_);
}

Actuation SensorimotorAgent::act(const SensorFrame& frame, double dt) {
  if (cfg_.fusion.enabled) return act_fused(frame, dt);
  // Obs track = agent index (derived from the name, "agent0"/"agent1"), so
  // the two diverse agents land on separate Perfetto threads.
  const int track = (!name_.empty() && name_.back() == '1') ? 1 : 0;
  const obs::SpanScope act_span(obs::Stage::kAgentAct, track);
  const double v_meas = frame.gps_imu.speed;
  // Live seed for the CPU housekeeping chain (noisy measurements differ at
  // the bit level between the agents' frames).
  const double cpu_gain = cpu_isa_warmup(
      cpu_, v_meas + 0.173 * frame.gps_imu.gps_x + 0.031 * steps_);
  double cruise = 0.0;
  {
    const obs::SpanScope span(obs::Stage::kPlanner, track);
    cruise = planner_.plan_cruise(v_meas, dt);
  }
  {
    const obs::SpanScope span(obs::Stage::kPerception, track);
    last_perception_ = perception_.process(frame.cameras, frame.step);
  }
  {
    const obs::SpanScope span(obs::Stage::kWaypointHead, track);
    last_waypoints_ =
        waypoint_head(gpu_, last_perception_, v_meas, cruise, cfg_.head);
  }
  Actuation cmd;
  {
    const obs::SpanScope span(obs::Stage::kControl, track);
    cmd = control_.act(last_waypoints_, v_meas, dt, cpu_gain);
  }
  ++steps_;
  return cmd;
}

Actuation SensorimotorAgent::act_fused(const SensorFrame& frame, double dt) {
  const int track = (!name_.empty() && name_.back() == '1') ? 1 : 0;
  const obs::SpanScope act_span(obs::Stage::kAgentAct, track);
  health_.observe(frame);

  // GPS: blend toward the held estimate as the channel degrades; a dropped
  // receiver contributes nothing and the agent dead-reckons on v_held_.
  const double w_gps = health_.weight(SensorChannel::kGps);
  const double v_meas =
      w_gps * frame.gps_imu.speed + (1.0 - w_gps) * v_held_;
  const double gps_x = w_gps > 0.0 ? frame.gps_imu.gps_x : 0.0;
  const double cpu_gain =
      cpu_isa_warmup(cpu_, v_meas + 0.173 * gps_x + 0.031 * steps_);
  double cruise = 0.0;
  {
    const obs::SpanScope span(obs::Stage::kPlanner, track);
    cruise = planner_.plan_cruise(v_meas, dt);
  }
  {
    const obs::SpanScope span(obs::Stage::kPerception, track);
    last_perception_ = perception_.process(frame.cameras, frame.step);
  }

  // Conservative ranging fusion: the nearest estimate from any channel the
  // monitor still trusts wins (under-estimating distance costs speed;
  // over-estimating costs the crash).
  const double w_cam = health_.weight(SensorChannel::kCamCenter);
  const double w_lidar =
      frame.lidar.empty() ? 0.0 : health_.weight(SensorChannel::kLidar);
  double fused = (w_cam > 0.0 && last_perception_.obstacle_valid)
                     ? last_perception_.obstacle_distance
                     : 200.0;
  if (w_cam <= 0.0) {
    // Blind camera: neutral lane geometry (drive straight in-lane) beats
    // steering on hallucinated markings.
    last_perception_.lane_offset = 0.0;
    last_perception_.heading_slope = 0.0;
  }
  if (w_lidar > 0.0) {
    fused = std::min(
        fused,
        lidar_forward_min(frame.lidar, cfg_.fusion.lidar_corridor_half_deg));
  }
  last_perception_.obstacle_distance = fused;
  last_perception_.obstacle_valid = fused < 150.0;
  if (health_.ranging_lost()) {
    cruise = std::min(cruise, cfg_.fusion.min_cruise_mps);
  }

  {
    const obs::SpanScope span(obs::Stage::kWaypointHead, track);
    last_waypoints_ =
        waypoint_head(gpu_, last_perception_, v_meas, cruise, cfg_.head);
  }
  Actuation cmd;
  {
    const obs::SpanScope span(obs::Stage::kControl, track);
    cmd = control_.act(last_waypoints_, v_meas, dt, cpu_gain);
  }
  v_held_ = v_meas;
  ++steps_;
  return cmd;
}

std::size_t SensorimotorAgent::state_bytes() const {
  // The perception injection hook is non-owning wiring, not checkpointable
  // state; it is excluded here (the copy inside the perception_ member) and
  // in Perception::state_bytes (the one its own sizeof sees).
  std::size_t bytes = sizeof(*this) + perception_.state_bytes() -
                      sizeof(SensorFaultInjector*);
  if (!cfg_.fusion.enabled) {
    // Fusion-off agents report their pre-fusion checkpoint footprint: the
    // health monitor, the held-speed bridge, and the fusion config block are
    // dead weight unless fusion is on, and plan-free RunResults are pinned
    // byte-identical to the pre-fusion build (test_sensor_fault.cpp).
    bytes -= sizeof(FusionConfig) + sizeof(health_) + sizeof(v_held_);
  }
  return bytes;
}

}  // namespace dav
