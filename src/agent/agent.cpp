#include "agent/agent.h"

#include "agent/warmup.h"
#include "util/trace.h"

namespace dav {

SensorimotorAgent::SensorimotorAgent(std::string name, AgentConfig cfg,
                                     GpuEngine& gpu, CpuEngine& cpu,
                                     const RoadMap* map)
    : name_(std::move(name)),
      cfg_(cfg),
      gpu_(gpu),
      cpu_(cpu),
      perception_(gpu, cfg.perception),
      planner_(cpu, map, cfg.mission_speed, cfg.route_start_s),
      control_(cpu, cfg.control) {}

void SensorimotorAgent::reset() {
  perception_.reset();
  planner_.reset(cfg_.route_start_s);
  control_.reset();
  last_perception_ = {};
  last_waypoints_ = {};
  steps_ = 0;
}

AgentSnapshot SensorimotorAgent::snapshot() const {
  AgentSnapshot s;
  s.perception = perception_.snapshot();
  s.planner_progress = planner_.progress();
  s.control = control_.snapshot();
  s.steps = steps_;
  return s;
}

void SensorimotorAgent::restore(const AgentSnapshot& s) {
  perception_.restore(s.perception);
  planner_.restore_progress(s.planner_progress);
  control_.restore(s.control);
  steps_ = s.steps;
}

void SensorimotorAgent::rewarm() {
  // Seed both warmup kernels from live private state (filter contents and
  // step parity), not constants: a permanent fault corrupting the warmup
  // chain then produces agent-dependent garbage, exactly as in the per-frame
  // housekeeping path.
  const AgentSnapshot s = snapshot();
  gpu_isa_warmup(gpu_, static_cast<float>(s.perception.obstacle_ema) +
                           0.013f * static_cast<float>(steps_));
  cpu_isa_warmup(cpu_, s.planner_progress + 0.173 * s.control.prev_v_tgt +
                           0.031 * steps_);
}

Actuation SensorimotorAgent::act(const SensorFrame& frame, double dt) {
  // Obs track = agent index (derived from the name, "agent0"/"agent1"), so
  // the two diverse agents land on separate Perfetto threads.
  const int track = (!name_.empty() && name_.back() == '1') ? 1 : 0;
  const obs::SpanScope act_span(obs::Stage::kAgentAct, track);
  const double v_meas = frame.gps_imu.speed;
  // Live seed for the CPU housekeeping chain (noisy measurements differ at
  // the bit level between the agents' frames).
  const double cpu_gain = cpu_isa_warmup(
      cpu_, v_meas + 0.173 * frame.gps_imu.gps_x + 0.031 * steps_);
  double cruise = 0.0;
  {
    const obs::SpanScope span(obs::Stage::kPlanner, track);
    cruise = planner_.plan_cruise(v_meas, dt);
  }
  {
    const obs::SpanScope span(obs::Stage::kPerception, track);
    last_perception_ = perception_.process(frame.cameras);
  }
  {
    const obs::SpanScope span(obs::Stage::kWaypointHead, track);
    last_waypoints_ =
        waypoint_head(gpu_, last_perception_, v_meas, cruise, cfg_.head);
  }
  Actuation cmd;
  {
    const obs::SpanScope span(obs::Stage::kControl, track);
    cmd = control_.act(last_waypoints_, v_meas, dt, cpu_gain);
  }
  ++steps_;
  return cmd;
}

std::size_t SensorimotorAgent::state_bytes() const {
  return sizeof(*this) + perception_.state_bytes();
}

}  // namespace dav
