#include "agent/waypoint_head.h"

#include "agent/calc.h"
#include "agent/tensor.h"

namespace dav {

namespace {

/// Fixed weights of the FC refinement layer (a pretrained network's weights
/// are constants at inference time). Deterministic pseudo-random small
/// values; two output units refine the lateral path, two the speed.
struct FcWeights {
  std::vector<float> w;
  std::vector<float> b;
  FcWeights() : b(4, 0.02f) {
    std::uint32_t s = 0x5a17c3d1u;
    for (int i = 0; i < 4 * 8; ++i) {
      s = s * 1664525u + 1013904223u;
      w.push_back(((s >> 8) & 0xFFFF) / 65535.0f * 0.04f - 0.02f);
    }
  }
};

}  // namespace

Waypoints waypoint_head(GpuEngine& eng, const PerceptionOutput& p,
                        double v_meas, double cruise,
                        const WaypointHeadConfig& cfg) {
  GpuCalc c(eng);
  const auto obst = static_cast<float>(p.obstacle_distance);
  const auto margin = static_cast<float>(cfg.stop_margin);

  // Speed envelope: headway-limited and braking-limited approach speeds
  // toward the nearest obstacle, capped by the cruise set-point.
  const float gap = c.max(0.0f, c.sub(obst, margin));
  const float v_headway = c.div(gap, static_cast<float>(cfg.headway));
  const float v_brake =
      c.sqrt(c.mul(2.0f * static_cast<float>(cfg.comfort_decel), gap));
  // Curve slowdown is handled upstream by the route planner's map-based
  // cornering envelope (deterministic across replicas); basing it on the
  // noisy perceived slope here would add fault-free divergence.
  float v_des = c.min(static_cast<float>(cruise), c.min(v_headway, v_brake));
  // Continuous caution from the scene-clutter signal: saturates at 1.0 for
  // ordinary scenes (no fault-free effect) and sheds speed smoothly when the
  // forward view reads as heavily cluttered — which is also how a corrupted
  // perception pipeline keeps influencing actuation rather than degrading to
  // clean defaults.
  const float clutter = c.max(static_cast<float>(p.scene_clutter), 0.0f);
  const float caution =
      c.clamp(1.1f - 0.0125f * c.sqrt(clutter), 0.55f, 1.0f);
  v_des = c.mul(v_des, caution);

  // FC refinement layer over the coarse mask features (the CNN's final
  // fully-connected stage). Its fault-free contribution is a small, scene-
  // consistent trim; under register-level corruption the MAC chains turn
  // chaotic in the agent's bit-diverse input, so the refinement is where a
  // "cleanly degraded" fault still shows up in the actuation.
  static const FcWeights kFc;
  const std::vector<float> feat(p.features.begin(), p.features.end());
  const std::vector<float> fc = fully_connected(eng, feat, kFc.w, kFc.b);
  const float lat_refine =
      c.clamp(c.mul(0.05f, c.sub(fc[0], fc[1])), -0.4f, 0.4f);
  const float v_factor =
      c.clamp(c.fma(0.04f, fc[2] - fc[3], 1.0f), 0.8f, 1.2f);
  v_des = c.mul(v_des, v_factor);
  if (p.side_warning) {
    // Something very close in a side camera: hold speed, do not accelerate.
    v_des = c.min(v_des, static_cast<float>(v_meas));
  }
  v_des = c.clamp(v_des, 0.0f, static_cast<float>(cruise));

  // Spacing encodes speed; lane geometry shapes the lateral profile.
  const float spacing =
      c.max(static_cast<float>(cfg.min_spacing),
            c.mul(v_des, static_cast<float>(cfg.wp_dt)));
  Waypoints wps;
  for (int i = 0; i < 4; ++i) {
    const float xi = c.mul(spacing, static_cast<float>(i + 1));
    const float yi = c.add(c.fma(static_cast<float>(p.heading_slope), xi,
                                 static_cast<float>(p.lane_offset)),
                           lat_refine);
    wps.pts[static_cast<std::size_t>(i)] = {xi, yi};
  }
  return wps;
}

}  // namespace dav
