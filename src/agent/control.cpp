#include "agent/control.h"

#include <cmath>

#include "agent/calc.h"

namespace dav {

RoutePlanner::RoutePlanner(CpuEngine& eng, const RoadMap* map,
                           double mission_speed, double start_s)
    : eng_(eng), map_(map), mission_speed_(mission_speed), start_s_(start_s),
      s_est_(start_s) {}

void RoutePlanner::reset(double s0) { s_est_ = s0; }

double RoutePlanner::plan_cruise(double v_meas, double dt) {
  CpuCalc c(eng_);
  c.call();
  // Dead-reckon progress along the route (persistent state).
  s_est_ = c.fma(c.load(v_meas), dt, c.load(s_est_));
  c.store();
  double limit = mission_speed_;
  if (map_ != nullptr) {
    limit = c.min(limit, c.load(map_->speed_limit_at(s_est_, mission_speed_)));
    // Map-based cornering envelope: scan the curvature over a lookahead
    // horizon (with margin for dead-reckoning drift) and cap the speed so
    // lateral acceleration stays within the comfort envelope.
    for (double ahead = 0.0; ahead <= 30.0; ahead += 7.5) {
      c.loop_iter();
      const double kappa =
          c.abs(c.load(map_->route().curvature_at(s_est_ + ahead)));
      if (c.less(1e-4, kappa)) {
        limit = c.min(limit, c.sqrt(c.div(lat_accel_max_, kappa)));
      }
    }
  }
  c.ret();
  return limit;
}

ControlUnit::ControlUnit(CpuEngine& eng, ControlConfig cfg)
    : eng_(eng), cfg_(cfg) {}

void ControlUnit::reset() {
  integral_ = 0.0;
  steer_ema_ = 0.0;
  throttle_ema_ = 0.0;
  brake_ema_ = 0.0;
  prev_v_tgt_ = 0.0;
  first_step_ = true;
  stopped_ = false;
}

ControlSnapshot ControlUnit::snapshot() const {
  ControlSnapshot s;
  s.integral = integral_;
  s.steer_ema = steer_ema_;
  s.throttle_ema = throttle_ema_;
  s.brake_ema = brake_ema_;
  s.prev_v_tgt = prev_v_tgt_;
  s.first_step = first_step_;
  s.stopped = stopped_;
  return s;
}

void ControlUnit::restore(const ControlSnapshot& s) {
  integral_ = s.integral;
  steer_ema_ = s.steer_ema;
  throttle_ema_ = s.throttle_ema;
  brake_ema_ = s.brake_ema;
  prev_v_tgt_ = s.prev_v_tgt;
  first_step_ = s.first_step;
  stopped_ = s.stopped;
}

Actuation ControlUnit::act(const Waypoints& wps, double v_meas, double dt,
                           double cpu_gain) {
  CpuCalc c(eng_);
  c.call();

  // --- Waypoint tracker: decode target speed from spacing. -----------------
  double spacing_sum = 0.0;
  Vec2 prev{0.0, 0.0};
  for (const Vec2& wp : wps.pts) {
    c.loop_iter();
    const double dx = c.sub(c.load(wp.x), prev.x);
    const double dy = c.sub(c.load(wp.y), prev.y);
    spacing_sum = c.add(spacing_sum, c.sqrt(c.fma(dx, dx, dy * dy)));
    prev = wp;
  }
  const double spacing = c.div(spacing_sum, 4.0);
  double v_tgt = c.mul(c.div(spacing, cfg_.wp_dt), cpu_gain);
  // A near-degenerate spacing encodes "stop"; the standstill latch adds
  // hysteresis so the command does not flip-flop on perception noise right
  // at the stop threshold.
  if (c.less(spacing, 0.16)) v_tgt = 0.0;
  if (stopped_) {
    if (c.less(1.2, v_tgt)) {
      stopped_ = false;
    } else {
      v_tgt = 0.0;
    }
  } else if (c.less(v_tgt, 0.5) && c.less(v_meas, 0.8)) {
    stopped_ = true;
    v_tgt = 0.0;
  }
  c.store();
  if (stopped_) {
    // Deterministic hold: firm brake, parked steering.
    integral_ = 0.0;
    steer_ema_ = 0.0;
    prev_v_tgt_ = 0.0;
    throttle_ema_ = 0.0;
    brake_ema_ = 0.45;
    c.ret();
    return Actuation{0.0, 0.45, 0.0};
  }
  // Mild slew limiting on the target (tracker state). Seed the slew state
  // from the measured speed on the first step so start-up is smooth.
  if (first_step_) {
    first_step_ = false;
    prev_v_tgt_ = v_meas;
  }
  v_tgt = c.clamp(v_tgt, prev_v_tgt_ - 25.0 * dt, prev_v_tgt_ + 15.0 * dt);
  prev_v_tgt_ = v_tgt;
  c.store();

  // --- PI speed loop. --------------------------------------------------------
  Actuation cmd;
  const double err = c.sub(v_tgt, c.load(v_meas));
  integral_ = c.clamp(c.fma(err, dt, c.load(integral_)),
                      -cfg_.integral_limit, cfg_.integral_limit);
  c.store();
  double throttle_raw = 0.0;
  double brake_raw = 0.0;
  if (c.less(0.0, err)) {
    throttle_raw =
        c.clamp(c.fma(cfg_.kp_speed, err, c.mul(cfg_.ki_speed, integral_)),
                0.0, 1.0);
  } else {
    brake_raw = c.mul(cfg_.kb_speed, c.neg(err));
    // Full-stop intent: press firmly so the vehicle actually halts.
    if (c.less(v_tgt, 0.5)) brake_raw = c.add(brake_raw, 0.25);
    brake_raw = c.clamp(brake_raw, 0.0, 1.0);
  }
  // Pedal smoothing (persistent state): damps fault-free jitter from noisy
  // perception; a fault-induced offset persists in the filter state.
  const double ps = cfg_.pedal_smooth;
  throttle_ema_ = c.fma(1.0 - ps, c.sub(throttle_raw, throttle_ema_),
                        c.load(throttle_ema_));
  brake_ema_ =
      c.fma(1.0 - ps, c.sub(brake_raw, brake_ema_), c.load(brake_ema_));
  c.store();
  cmd.throttle = c.clamp(throttle_ema_, 0.0, 1.0);
  // Hard braking blends continuously past the filter (safety over
  // smoothness, without a discontinuity that would desynchronize replicas).
  const double urgency = c.clamp(c.div(c.sub(brake_raw, 0.5), 0.3), 0.0, 1.0);
  brake_ema_ = c.fma(urgency, c.sub(brake_raw, brake_ema_), c.load(brake_ema_));
  c.store();
  cmd.brake = c.clamp(brake_ema_, 0.0, 1.0);

  // --- Pure-pursuit steering on a speed-scaled lookahead waypoint. ----------
  const double lookahead = c.max(2.2, c.mul(0.5, v_meas));
  Vec2 target = wps.pts.back();
  for (const Vec2& wp : wps.pts) {
    c.loop_iter();
    if (c.less(lookahead, wp.x)) {
      target = wp;
      break;
    }
  }
  // The denominator floor keeps the curvature bounded when waypoints bunch
  // up at low speed; the speed fade parks the steering near standstill
  // (pure pursuit is degenerate there and would flail on perception noise).
  const double denom = c.fma(target.x, target.x, target.y * target.y);
  const double curvature = c.div(c.mul(2.0, target.y), c.max(denom, 4.0));
  const double steer_angle = c.atan2(c.mul(curvature, cfg_.wheelbase), 1.0);
  const double low_speed_fade =
      c.clamp(c.div(c.sub(v_meas, 1.2), 2.0), 0.0, 1.0);
  const double steer_raw = c.mul(
      c.clamp(c.div(steer_angle, cfg_.max_steer_angle), -1.0, 1.0),
      low_speed_fade);
  steer_ema_ = c.fma(1.0 - cfg_.steer_smooth, c.sub(steer_raw, steer_ema_),
                     c.load(steer_ema_));
  c.store();
  cmd.steer = c.clamp(steer_ema_, -1.0, 1.0);

  c.ret();
  return cmd;
}

}  // namespace dav
