// CPU-side control: high-level route planner, waypoint tracker and PID
// control unit (the paper's agent "uses the CPU for loading and setting" —
// the lightweight glue around the GPU pipeline). All arithmetic runs on the
// instrumented CPU engine; PID integrators and smoothing filters are
// persistent private state.
#pragma once

#include <cstddef>

#include "agent/waypoint_head.h"
#include "fi/engine.h"
#include "sim/road.h"
#include "sim/types.h"

namespace dav {

/// High-level route planner: dead-reckons route progress from measured speed
/// and yields the cruise set-point = min(mission speed, local speed limit,
/// curvature-limited cornering speed over a lookahead horizon) — the map-
/// based speed planning a real ADS performs.
class RoutePlanner {
 public:
  RoutePlanner(CpuEngine& eng, const RoadMap* map, double mission_speed,
               double start_s = 0.0);

  double plan_cruise(double v_meas, double dt);
  void reset(double s0);
  double progress() const { return s_est_; }
  /// Resync hook: adopt the dead-reckoned progress of the healthy replica.
  void restore_progress(double s) { s_est_ = s; }

 private:
  CpuEngine& eng_;
  const RoadMap* map_;
  double mission_speed_;
  double start_s_;
  double s_est_ = 0.0;  // persistent dead-reckoned progress
  double lat_accel_max_ = 2.3;  // m/s^2 comfort cornering envelope
};

struct ControlConfig {
  double kp_speed = 0.38;
  double ki_speed = 0.07;
  double kb_speed = 0.42;      // braking proportional gain
  double integral_limit = 2.0;
  double wheelbase = 2.7;
  double max_steer_angle = 0.5;
  double steer_smooth = 0.4;   // EMA factor on the steering command
  double pedal_smooth = 0.35;  // EMA factor on throttle/brake commands
  double wp_dt = 0.5;          // must match WaypointHeadConfig::wp_dt
};

/// The persistent tracker/PID state of one ControlUnit — everything a
/// restarted replica needs to resynchronize from its healthy peer.
struct ControlSnapshot {
  double integral = 0.0;
  double steer_ema = 0.0;
  double throttle_ema = 0.0;
  double brake_ema = 0.0;
  double prev_v_tgt = 0.0;
  bool first_step = true;
  bool stopped = false;
};

/// Waypoint tracker + PID: decodes target speed from waypoint spacing, runs a
/// PI speed loop and pure-pursuit steering on the chosen waypoint.
class ControlUnit {
 public:
  ControlUnit(CpuEngine& eng, ControlConfig cfg);

  Actuation act(const Waypoints& wps, double v_meas, double dt,
                double cpu_gain);
  void reset();
  ControlSnapshot snapshot() const;
  void restore(const ControlSnapshot& s);
  std::size_t state_bytes() const { return sizeof(*this); }

 private:
  CpuEngine& eng_;
  ControlConfig cfg_;
  // Persistent private state.
  double integral_ = 0.0;
  double steer_ema_ = 0.0;
  double throttle_ema_ = 0.0;
  double brake_ema_ = 0.0;
  double prev_v_tgt_ = 0.0;
  bool first_step_ = true;
  bool stopped_ = false;  // standstill latch (hold brake, park steering)
};

}  // namespace dav
