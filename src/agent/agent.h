// The Sensorimotor agent facade (paper §IV-A): High-level Route Planner +
// CNN perception/waypoint head (GPU engine) + Waypoint Tracker and PID
// Control Unit (CPU engine). The agent is a black box to the rest of the
// system: sensor frames in, actuation commands out — which is what makes
// DiverseAV a plug-and-play wrapper (paper §III-A).
#pragma once

#include <cstddef>
#include <string>

#include "agent/control.h"
#include "agent/perception.h"
#include "agent/waypoint_head.h"
#include "sensors/sensor_health.h"
#include "sensors/sensor_rig.h"

namespace dav {

/// Fail-degraded multi-sensor fusion (DESIGN.md §14.2). Off by default: the
/// classic Sensorimotor agent trusts every sensor unconditionally and its
/// byte-exact behavior is pinned by golden tests. When enabled, the agent
/// runs a SensorHealthMonitor over its input frames, down-weights implausible
/// channels, covers a lost camera with the LiDAR forward corridor, holds the
/// last plausible speed through a GPS outage, and limps at min_cruise_mps
/// when every ranging source is gone.
struct FusionConfig {
  bool enabled = false;
  SensorHealthConfig health;
  /// Half-angle of the forward LiDAR corridor that substitutes for camera
  /// ranging (beam 0 is ego-forward).
  double lidar_corridor_half_deg = 6.0;
  /// Cruise ceiling once no sensor can bound the obstacle distance.
  double min_cruise_mps = 2.0;
};

struct AgentConfig {
  PerceptionConfig perception;
  WaypointHeadConfig head;
  ControlConfig control;
  FusionConfig fusion;
  double mission_speed = 10.0;  // route cruise set-point
  double route_start_s = 0.0;   // initial localization along the route
};

/// Full private state of a Sensorimotor agent (perception filters, planner
/// progress, tracker/PID state). Captured from the healthy replica and
/// restored into a freshly constructed one during fault recovery, so the
/// restarted agent rejoins with semantically consistent state instead of
/// cold-start transients (which would look like divergence to the detector).
struct AgentSnapshot {
  PerceptionSnapshot perception;
  double planner_progress = 0.0;
  ControlSnapshot control;
  int steps = 0;
  // Fusion-mode state (inert when fusion is disabled).
  SensorHealthSnapshot sensor_health;
  double v_held = 0.0;
};

/// Mid-run agent state for checkpoint capture/adopt: the recovery-resync
/// snapshot plus the fusion monitor's full check buffers (AgentSnapshot
/// carries only the ladder and lets transients re-prime — fine for a
/// restarted replica, not for a byte-exact resume).
struct AgentCheckpoint {
  AgentSnapshot snapshot;
  SensorHealthMonitor::State health;
  // Perception scratch-tensor footprint: pure accounting, but it feeds
  // RunResult::agent_state_bytes, and an agent parked by recovery keeps its
  // last value without ever rebuilding masks after a resume.
  std::size_t perception_scratch = 0;
};

class SensorimotorAgent {
 public:
  /// The engines are the (possibly shared) compute fabric: DiverseAV
  /// time-multiplexes both agents on the same engines; the FD baseline gives
  /// each agent dedicated engines.
  SensorimotorAgent(std::string name, AgentConfig cfg, GpuEngine& gpu,
                    CpuEngine& cpu, const RoadMap* map);

  /// One control step: frame in, actuation out. `dt` is the time since this
  /// agent's previous frame (2x the world tick in round-robin mode).
  /// Propagates CrashError / HangError from the engines.
  Actuation act(const SensorFrame& frame, double dt);

  void reset();

  /// Capture / adopt the agent's private state (fault-recovery resync).
  AgentSnapshot snapshot() const;
  void restore(const AgentSnapshot& s);

  /// Byte-exact mid-run capture / adopt (campaign checkpoints).
  AgentCheckpoint capture() const;
  void adopt(const AgentCheckpoint& c);

  /// Route tensor bit-flip injection into this agent's perception state
  /// (SensorFaultModel::kTensorBitFlip). Non-owning; nullptr detaches.
  void attach_sensor_fault_injector(SensorFaultInjector* injector) {
    perception_.attach_fault_injector(injector);
  }

  /// Live per-channel health, meaningful only when fusion is enabled.
  const SensorHealthMonitor& sensor_health() const { return health_; }

  /// Re-run the per-ISA warmup kernels once, seeded from live state. Called
  /// after a fault-recovery restart: it re-establishes the housekeeping
  /// pipeline and — crucially — gives a permanent fault an immediate chance
  /// to re-manifest (CrashError/HangError propagate), which is how the
  /// recovery manager distinguishes transient from permanent faults.
  void rewarm();

  const std::string& name() const { return name_; }
  const PerceptionOutput& last_perception() const { return last_perception_; }
  const Waypoints& last_waypoints() const { return last_waypoints_; }
  int steps_executed() const { return steps_; }

  /// Private state footprint (resource accounting, Table II: DiverseAV and FD
  /// double memory because each agent keeps independent state).
  std::size_t state_bytes() const;

 private:
  Actuation act_fused(const SensorFrame& frame, double dt);

  std::string name_;
  AgentConfig cfg_;
  GpuEngine& gpu_;
  CpuEngine& cpu_;
  Perception perception_;
  RoutePlanner planner_;
  ControlUnit control_;
  PerceptionOutput last_perception_;
  Waypoints last_waypoints_;
  int steps_ = 0;
  // Fusion mode only: per-channel plausibility and the held speed estimate
  // that bridges GPS outages.
  SensorHealthMonitor health_;
  double v_held_ = 0.0;
};

}  // namespace dav
