// Per-frame ISA coverage routines.
//
// The paper's permanent-fault campaigns sweep every opcode of the target ISA
// and report every injection as activated (Table I: 513/513 GPU, 393/393
// CPU), i.e. the workload executes the full instruction vocabulary each run.
// Our perception/control pipelines exercise most — these warmup kernels
// compute per-frame normalization constants using the remaining opcodes so
// that a permanent fault in ANY opcode is activated and feeds (mildly) into
// the live data path, exactly as miscellaneous housekeeping instructions do
// in a real binary.
#pragma once

#include "fi/engine.h"

namespace dav {

/// Returns a gain factor that is exactly 1.0 fault-free; computed through
/// every GPU opcode. `seed` must be live, frame-derived data (pixel values,
/// filter state): real housekeeping instructions operate on live data, so a
/// corrupted instruction produces agent-dependent garbage — which is what
/// gives DiverseAV's data diversity its detection power. Seeding with a
/// constant would make the corruption common-mode across the two agents.
float gpu_isa_warmup(GpuEngine& eng, float seed);

/// CPU counterpart; seed from live measurements (e.g. noisy wheel speed).
double cpu_isa_warmup(CpuEngine& eng, double seed);

}  // namespace dav
