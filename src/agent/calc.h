// Scalar calculators that route every arithmetic operation through an
// instrumented engine, with a realistic accompanying memory/control
// instruction mix (so the injected-fault manifestation statistics match the
// dynamic instruction profiles the paper's tools observed).
#pragma once

#include <cmath>

#include "fi/engine.h"

namespace dav {

/// CPU-side calculator. Each data op is preceded by an operand load and every
/// few ops issue a store, approximating a compiled x86 mix where roughly half
/// the dynamic instructions touch memory.
class CpuCalc {
 public:
  explicit CpuCalc(CpuEngine& eng) : eng_(eng) {}

  double add(double a, double b) { return data(CpuOpcode::kAdd, a + b); }
  double sub(double a, double b) { return data(CpuOpcode::kSub, a - b); }
  double mul(double a, double b) { return data(CpuOpcode::kMul, a * b); }
  double div(double a, double b) { return data(CpuOpcode::kDiv, a / b); }
  double fma(double a, double b, double c) {
    return data(CpuOpcode::kFma, a * b + c);
  }
  double min(double a, double b) { return data(CpuOpcode::kMin, a < b ? a : b); }
  double max(double a, double b) { return data(CpuOpcode::kMax, a > b ? a : b); }
  double abs(double a) { return data(CpuOpcode::kAbs, a < 0 ? -a : a); }
  double sqrt(double a) {
    return data(CpuOpcode::kSqrt, a > 0 ? std::sqrt(a) : 0.0);
  }
  double sin(double a) { return data(CpuOpcode::kSin, std::sin(a)); }
  double cos(double a) { return data(CpuOpcode::kCos, std::cos(a)); }
  double atan2(double y, double x) {
    return data(CpuOpcode::kAtan2, std::atan2(y, x));
  }
  double neg(double a) { return data(CpuOpcode::kNeg, -a); }
  double clamp(double v, double lo, double hi) {
    return data(CpuOpcode::kClampOp, v < lo ? lo : (v > hi ? hi : v));
  }
  /// Comparison consumes a CMP and a conditional branch.
  bool less(double a, double b) {
    eng_.exec(CpuOpcode::kCmp, static_cast<float>(a - b));
    eng_.mark(CpuOpcode::kJcc);
    return a < b;
  }
  double select(bool c, double a, double b) {
    return data(CpuOpcode::kSel, c ? a : b);
  }
  /// Load a value from agent state (memory-class; corruption can flip bits
  /// of the loaded value or fault the address).
  double load(double v) {
    return static_cast<double>(eng_.exec(CpuOpcode::kLoad, static_cast<float>(v)));
  }
  void store() { eng_.mark(CpuOpcode::kStore); }
  void call() { eng_.mark(CpuOpcode::kCall); }
  void ret() { eng_.mark(CpuOpcode::kRet); }
  void loop_iter() { eng_.mark(CpuOpcode::kLoopCnt); }

  CpuEngine& engine() { return eng_; }

 private:
  double data(CpuOpcode op, double value) {
    eng_.bulk(CpuOpcode::kLoad, 1);  // operand fetch
    const auto r =
        static_cast<double>(eng_.exec(op, static_cast<float>(value)));
    if (++since_store_ >= 3) {
      since_store_ = 0;
      eng_.bulk(CpuOpcode::kStore, 1);  // spill/writeback
    }
    return r;
  }

  CpuEngine& eng_;
  int since_store_ = 0;
};

/// GPU-side scalar calculator for the waypoint head.
class GpuCalc {
 public:
  explicit GpuCalc(GpuEngine& eng) : eng_(eng) {}

  float add(float a, float b) { return eng_.exec(GpuOpcode::kFAdd, a + b); }
  float sub(float a, float b) { return eng_.exec(GpuOpcode::kFSub, a - b); }
  float mul(float a, float b) { return eng_.exec(GpuOpcode::kFMul, a * b); }
  float div(float a, float b) { return eng_.exec(GpuOpcode::kFDiv, a / b); }
  float fma(float a, float b, float c) {
    return eng_.exec(GpuOpcode::kFFma, a * b + c);
  }
  float min(float a, float b) { return eng_.exec(GpuOpcode::kFMin, a < b ? a : b); }
  float max(float a, float b) { return eng_.exec(GpuOpcode::kFMax, a > b ? a : b); }
  float sqrt(float a) {
    return eng_.exec(GpuOpcode::kFSqrt, a > 0.0f ? std::sqrt(a) : 0.0f);
  }
  float relu(float a) { return eng_.exec(GpuOpcode::kFRelu, a > 0.0f ? a : 0.0f); }
  float clamp(float v, float lo, float hi) {
    v = eng_.exec(GpuOpcode::kFClampLo, v < lo ? lo : v);
    return eng_.exec(GpuOpcode::kFClampHi, v > hi ? hi : v);
  }
  bool less(float a, float b) {
    eng_.exec(GpuOpcode::kFCmpLt, a - b);
    return a < b;
  }
  float select(bool c, float a, float b) {
    return eng_.exec(GpuOpcode::kFSel, c ? a : b);
  }

  GpuEngine& engine() { return eng_; }

 private:
  GpuEngine& eng_;
};

}  // namespace dav
