#include "agent/perception.h"

#include <algorithm>
#include <cmath>

#include "agent/calc.h"
#include "agent/warmup.h"

namespace dav {

Perception::Perception(GpuEngine& eng, PerceptionConfig cfg)
    : eng_(eng), cfg_(std::move(cfg)) {}

void Perception::reset() {
  lane_offset_ema_ = 0.0f;
  heading_ema_ = 0.0f;
  obstacle_ema_ = 200.0f;
  obstacle_hist_[0] = obstacle_hist_[1] = obstacle_hist_[2] = 200.0f;
  hist_idx_ = 0;
  ema_init_ = false;
}

PerceptionSnapshot Perception::snapshot() const {
  PerceptionSnapshot s;
  s.lane_offset_ema = lane_offset_ema_;
  s.heading_ema = heading_ema_;
  s.obstacle_ema = obstacle_ema_;
  for (int i = 0; i < 3; ++i) s.obstacle_hist[i] = obstacle_hist_[i];
  s.hist_idx = hist_idx_;
  s.ema_init = ema_init_;
  return s;
}

void Perception::restore(const PerceptionSnapshot& s) {
  lane_offset_ema_ = s.lane_offset_ema;
  heading_ema_ = s.heading_ema;
  obstacle_ema_ = s.obstacle_ema;
  for (int i = 0; i < 3; ++i) obstacle_hist_[i] = s.obstacle_hist[i];
  hist_idx_ = s.hist_idx;
  ema_init_ = s.ema_init;
}

std::size_t Perception::state_bytes() const {
  // injector_ is a non-owning hook, not checkpointable state.
  return sizeof(*this) - sizeof(injector_) + scratch_bytes_;
}

Perception::Masks Perception::build_masks(const Image& img, float gain) {
  const int h = img.height();
  const int horizon = h / 2;
  Tensor rgb = image_rows_to_tensor(eng_, img, horizon, h);
  const int th = rgb.height();
  const int w = rgb.width();

  Tensor vehicle(1, th, w);
  Tensor red(1, th, w);
  Tensor white(1, th, w);
  const float dark_t = static_cast<float>(cfg_.dark_thresh) * gain;
  const float blue_t = static_cast<float>(cfg_.blue_thresh) * gain;
  const float red_t = static_cast<float>(cfg_.red_thresh) * gain;
  const float white_t = static_cast<float>(cfg_.white_thresh) * gain;
  for (int y = 0; y < th; ++y) {
    for (int x = 0; x < w; ++x) {
      const float r = rgb.at(0, y, x);
      const float g = rgb.at(1, y, x);
      const float b = rgb.at(2, y, x);
      const float bright =
          eng_.exec(GpuOpcode::kFMacc, (r + g + b) * (1.0f / 3.0f));
      const float dark = eng_.exec(
          GpuOpcode::kFRelu, dark_t - bright > 0.0f ? dark_t - bright : 0.0f);
      const float blue = eng_.exec(
          GpuOpcode::kFRelu, b - r - blue_t > 0.0f ? b - r - blue_t : 0.0f);
      vehicle.at(0, y, x) =
          eng_.exec(GpuOpcode::kFFma,
                    static_cast<float>(cfg_.dark_weight) * dark +
                        static_cast<float>(cfg_.blue_weight) * blue);
      const float rd = r - 0.5f * (g + b) - red_t;
      red.at(0, y, x) = eng_.exec(GpuOpcode::kFRelu, rd > 0.0f ? rd : 0.0f);
      // Lane markings are bright AND achromatic; the chroma penalty rejects
      // bright-but-colored blobs (vehicle bodies, painted stop lines).
      const float chroma = std::abs(r - g) + std::abs(g - b);
      const float wt = bright - white_t - 3.0f * chroma;
      white.at(0, y, x) = eng_.exec(GpuOpcode::kFRelu, wt > 0.0f ? wt : 0.0f);
    }
  }

  // Above-horizon band: red traffic-light heads (ranged via their known
  // mount height; the painted stop line on the ground foreshortens to less
  // than a pixel beyond ~15 m, so the head is the long-range cue).
  const int band = std::min(cfg_.upper_band_rows, horizon);
  Tensor red_upper(1, band, w);
  Tensor rgb_u = image_rows_to_tensor(eng_, img, horizon - band, horizon);
  for (int y = 0; y < band; ++y) {
    for (int x = 0; x < w; ++x) {
      const float r = rgb_u.at(0, y, x);
      const float g = rgb_u.at(1, y, x);
      const float b = rgb_u.at(2, y, x);
      const float rd = r - 0.5f * (g + b) - red_t;
      red_upper.at(0, y, x) =
          eng_.exec(GpuOpcode::kFRelu, rd > 0.0f ? rd : 0.0f);
    }
  }

  // The CNN stage: a 3x3 box convolution of the vehicle mask. Ranging uses
  // the RAW mask (the box filter would smear the ground-contact edge a full
  // row, biasing the depth estimate); the smoothed mask serves as the
  // detection confirmation gate, so conv-pipeline faults propagate into the
  // obstacle decision.
  static const std::vector<float> kBox(9, 1.0f / 9.0f);
  Tensor smoothed = conv2d_plane(eng_, vehicle, kBox, 1);
  Masks m{std::move(vehicle), std::move(smoothed), std::move(red),
          std::move(white), std::move(red_upper)};
  scratch_bytes_ = rgb.byte_size() + m.vehicle.byte_size() * 4 +
                   rgb_u.byte_size() + m.red_upper.byte_size();
  return m;
}

PerceptionOutput Perception::process(const std::vector<Image>& cams,
                                     int tick) {
  // Layer 3: the persistent EMA filters — corrupt BEFORE this frame reads
  // them, so the flip propagates through the temporal smoothing exactly like
  // a register fault landing between frames.
  if (injector_ != nullptr && tick >= 0) {
    float state[6] = {lane_offset_ema_, heading_ema_,    obstacle_ema_,
                      obstacle_hist_[0], obstacle_hist_[1], obstacle_hist_[2]};
    injector_->corrupt_tensor(3, tick, state, 6);
    lane_offset_ema_ = state[0];
    heading_ema_ = state[1];
    obstacle_ema_ = state[2];
    obstacle_hist_[0] = state[3];
    obstacle_hist_[1] = state[4];
    obstacle_hist_[2] = state[5];
  }
  const Image& center = cams.size() > 1 ? cams[1] : cams.front();
  // Live, bit-diverse seed for the housekeeping chain: raw pixels plus the
  // private filter state (see warmup.h for why this must not be constant).
  const Rgb probe = center.get(center.width() / 2, center.height() - 1);
  const float seed = (probe.r + 2.0f * probe.g + 3.0f * probe.b) *
                         (0.37f / 255.0f) +
                     0.11f * lane_offset_ema_;
  const float gain = gpu_isa_warmup(eng_, seed);
  PerceptionOutput out;
  out.gain = gain;
  Masks m = build_masks(center, gain);
  if (injector_ != nullptr && tick >= 0) {
    // Layers 0/1: mask tensors between the CNN stages and their consumers.
    injector_->corrupt_tensor(0, tick, m.vehicle.data().data(),
                              m.vehicle.data().size());
    injector_->corrupt_tensor(1, tick, m.vehicle_smooth.data().data(),
                              m.vehicle_smooth.data().size());
  }
  const int th = m.vehicle.height();
  const int w = m.vehicle.width();
  const auto f = static_cast<float>(cfg_.center_cam.focal_px());
  const auto mh = static_cast<float>(cfg_.center_cam.mount_height);
  const float cx = w * 0.5f;

  // --- Ground-plane ranging scan: nearest in-path obstacle. -----------------
  // Tensor row ty corresponds to depth f*mh/(ty + 0.5); scanning from the
  // bottom row upward finds the nearest mass above threshold.
  const float prev_lane = ema_init_ ? lane_offset_ema_ : 0.0f;
  double vehicle_dist = 200.0;
  double red_dist = 200.0;
  bool vehicle_found = false;
  bool red_found = false;
  GpuCalc c(eng_);
  const float threshold = static_cast<float>(cfg_.row_mass_thresh) * gain;
  // Subpixel edge: interpolate the threshold crossing between the hit row
  // and the (sub-threshold) row below it, so the range estimate varies
  // smoothly instead of jumping whole rows on noise.
  const auto edge_depth = [&](int ty, float m_hit, float m_below) {
    const float denom = c.max(m_hit - m_below, 1e-3f);
    const float e = c.clamp(
        static_cast<float>(ty) + c.div(c.sub(m_hit, threshold), denom),
        static_cast<float>(ty), static_cast<float>(ty) + 1.0f);
    return c.div(f * mh, c.add(e, 0.5f));
  };
  float prev_vehicle_mass = 0.0f;
  float prev_red_mass = 0.0f;
  for (int ty = th - 1; ty >= 1; --ty) {
    const float depth = c.div(f * mh, static_cast<float>(ty) + 0.5f);
    if (depth > static_cast<float>(cfg_.max_range_m)) break;
    const float center_px = c.sub(cx, c.div(c.mul(f, prev_lane), depth));
    const float half_px =
        c.div(c.mul(f, static_cast<float>(cfg_.corridor_half_m)), depth);
    const int c0 = std::max(0, static_cast<int>(center_px - half_px));
    const int c1 = std::min(w, static_cast<int>(center_px + half_px) + 1);
    if (c0 >= c1) continue;
    eng_.mark(GpuOpcode::kBra);
    if (!vehicle_found) {
      const float mass = window_sum(eng_, m.vehicle, 0, ty, ty + 1, c0, c1);
      if (c.less(threshold, mass)) {
        // Confirmation gate on the smoothed (CNN) mask around the hit row.
        const float confirm =
            window_sum(eng_, m.vehicle_smooth, 0, std::max(0, ty - 1),
                       std::min(th, ty + 2), c0, c1);
        if (c.less(c.mul(0.25f, mass), confirm)) {
          vehicle_found = true;
          vehicle_dist = edge_depth(ty, mass, prev_vehicle_mass);
        }
      }
      prev_vehicle_mass = mass;
    }
    if (!red_found) {
      const float mass = window_sum(eng_, m.red, 0, ty, ty + 1, c0, c1);
      if (c.less(threshold, mass)) {
        red_found = true;
        red_dist = edge_depth(ty, mass, prev_red_mass);
      }
      prev_red_mass = mass;
    }
    if (vehicle_found && red_found) break;
  }

  // --- Traffic-light head scan (above-horizon band). ------------------------
  // Heads sit at a known mount height on the left roadside; an image row
  // above the horizon maps to depth f * (head_h - cam_h) / (horizon - row).
  // Scanning from the top of the band downward finds the nearest red head.
  if (!red_found) {
    const int band = m.red_upper.height();
    const float rise =
        f * static_cast<float>(cfg_.light_head_height -
                               cfg_.center_cam.mount_height);
    for (int ty = 0; ty < band; ++ty) {
      const float drop = static_cast<float>(band - ty) - 0.5f;
      const float depth = c.div(rise, drop);
      if (depth < 6.0f) continue;
      if (depth > static_cast<float>(cfg_.max_range_m)) break;
      const int c0 =
          std::max(0, static_cast<int>(cx - c.div(f * 9.0f, depth)));
      const int c1 =
          std::min(w, static_cast<int>(cx - c.div(f * 1.2f, depth)) + 1);
      if (c0 >= c1) continue;
      eng_.mark(GpuOpcode::kBra);
      const float mass = window_sum(eng_, m.red_upper, 0, ty, ty + 1, c0, c1);
      if (c.less(static_cast<float>(cfg_.head_mass_thresh) * gain, mass)) {
        // Sub-row refinement: the head spans ~2 rows; weight with the row
        // below so the range varies smoothly instead of sticking to the
        // coarse row-quantized depths at long range.
        float mass_below = 0.0f;
        if (ty + 1 < band) {
          mass_below =
              window_sum(eng_, m.red_upper, 0, ty + 1, ty + 2, c0, c1);
        }
        const float row_frac =
            c.div(mass_below, c.max(mass + mass_below, 1e-3f));
        const float drop_refined =
            c.max(static_cast<float>(band - ty) - 0.5f - row_frac, 0.5f);
        red_found = true;
        red_dist = c.div(rise, drop_refined);
        break;
      }
    }
  }

  // --- Lane centering from the white-marking mask. ---------------------------
  // Near band (depth ~3-6.5 m) gives lateral offset; far band (~10-22 m)
  // gives the heading slope of the lane center.
  const auto band_rows = [&](double d_far, double d_near) {
    const int r0 = std::max(0, static_cast<int>(f * mh / d_far));
    const int r1 = std::min(th, static_cast<int>(f * mh / d_near) + 1);
    return std::pair<int, int>{r0, r1};
  };
  // The ego lane is bounded by markings at +-half_lane. The lane center is
  // estimated from the boundary PAIR: centroids of the left and right halves
  // of the search window. When only one boundary is visible (dash gap,
  // occlusion), the center is reconstructed from it and the known half-lane
  // width — this avoids the bias a single whole-window centroid would have
  // toward the solid edge line.
  constexpr float kHalfLane = 1.75f;
  const auto band_center = [&](double d_far, double d_near, double search_half)
      -> std::pair<bool, float> {
    const auto [r0, r1] = band_rows(d_far, d_near);
    if (r0 >= r1) return {false, 0.0f};
    const double d_mid = 0.5 * (d_far + d_near);
    const float prev_center_px =
        c.sub(cx, c.div(c.mul(f, prev_lane), static_cast<float>(d_mid)));
    const float half_px = c.div(
        c.mul(f, static_cast<float>(search_half)), static_cast<float>(d_mid));
    const int c0 = std::max(0, static_cast<int>(prev_center_px - half_px));
    const int mid = std::clamp(static_cast<int>(prev_center_px), c0, w);
    const int c1 = std::min(w, static_cast<int>(prev_center_px + half_px) + 1);
    if (c0 >= c1) return {false, 0.0f};
    const CentroidResult left = col_centroid(eng_, m.white, 0, r0, r1, c0, mid);
    const CentroidResult right =
        col_centroid(eng_, m.white, 0, r0, r1, mid, c1);
    const auto to_lat = [&](float col) {
      return c.mul(c.sub(cx, col), static_cast<float>(d_mid) / f);
    };
    const bool left_ok = left.mass > 0.4f;
    const bool right_ok = right.mass > 0.4f;
    if (left_ok && right_ok) {
      return {true, c.mul(0.5f, c.add(to_lat(left.centroid),
                                      to_lat(right.centroid)))};
    }
    if (right_ok) return {true, c.add(to_lat(right.centroid), kHalfLane)};
    if (left_ok) return {true, c.sub(to_lat(left.centroid), kHalfLane)};
    return {false, 0.0f};
  };

  const auto [near_ok, near_lat] = band_center(6.5, 3.0, 2.6);
  const auto [far_ok, far_lat] = band_center(22.0, 10.0, 3.8);

  float lane_now = prev_lane;
  float heading_now = ema_init_ ? heading_ema_ : 0.0f;
  if (near_ok) lane_now = near_lat;
  if (near_ok && far_ok) {
    heading_now = c.div(c.sub(far_lat, near_lat), 16.0f - 4.75f);
  }
  // Sanity clamps: the ego cannot plausibly be further than a lane width off
  // center; reject estimates that would run the search window off the road.
  lane_now = c.clamp(lane_now, -3.2f, 3.2f);
  heading_now = c.clamp(heading_now, -0.5f, 0.5f);

  // --- Side cameras: proximity warning + (mostly masked) compute load. ------
  float side_mass = 0.0f;
  if (cams.size() == 3) {
    for (int side = 0; side < 3; side += 2) {
      Tensor rgb = image_rows_to_tensor(
          eng_, cams[static_cast<std::size_t>(side)],
          cams[static_cast<std::size_t>(side)].height() / 2,
          cams[static_cast<std::size_t>(side)].height());
      Tensor pooled = avg_pool(eng_, rgb, 4);
      float mass = 0.0f;
      for (int y = 0; y < pooled.height(); ++y) {
        for (int x = 0; x < pooled.width(); ++x) {
          const float r = pooled.at(0, y, x);
          const float g = pooled.at(1, y, x);
          const float b = pooled.at(2, y, x);
          const float bright =
              eng_.exec(GpuOpcode::kFMacc, (r + g + b) * (1.0f / 3.0f));
          const float dark = eng_.exec(GpuOpcode::kFRelu,
                                       0.09f - bright > 0.0f ? 0.09f - bright
                                                             : 0.0f);
          const float blue = eng_.exec(GpuOpcode::kFRelu,
                                       b - r - 0.1f > 0.0f ? b - r - 0.1f : 0.0f);
          mass = eng_.exec(GpuOpcode::kFMacc, mass + 8.0f * dark + 2.0f * blue);
        }
      }
      side_mass = c.max(side_mass, mass);
    }
  }
  out.side_warning = side_mass > static_cast<float>(cfg_.side_mass_thresh) * gain;

  // --- Scene clutter from the CNN-smoothed mask (live consumer of the conv
  // output; see PerceptionOutput::scene_clutter).
  out.scene_clutter = window_sum(eng_, m.vehicle_smooth, 0, 0, th, w / 4,
                                 3 * w / 4);

  // --- Patch-sum features for the waypoint head's FC refinement layer:
  // a 2x4 grid, vehicle mask on the top half rows, lane mask on the bottom.
  for (int i = 0; i < 4; ++i) {
    const int c0 = i * w / 4;
    const int c1 = (i + 1) * w / 4;
    out.features[static_cast<std::size_t>(i)] =
        window_sum(eng_, m.vehicle, 0, 0, th / 2, c0, c1);
    out.features[static_cast<std::size_t>(4 + i)] =
        window_sum(eng_, m.white, 0, th / 2, th, c0, c1);
  }
  if (injector_ != nullptr && tick >= 0) {
    // Layer 2: the FC-refinement feature vector feeding the waypoint head.
    injector_->corrupt_tensor(2, tick, out.features.data(),
                              out.features.size());
  }

  // --- Temporal smoothing (persistent private state). ------------------------
  const auto alpha = static_cast<float>(cfg_.ema_alpha);
  // Median-of-3 prefilter: a single-frame phantom or dropout (sensor noise,
  // one transiently corrupted reduction) cannot capture the estimate.
  obstacle_hist_[hist_idx_] = static_cast<float>(std::min(vehicle_dist, red_dist));
  hist_idx_ = (hist_idx_ + 1) % 3;
  const float ma = obstacle_hist_[0];
  const float mb = obstacle_hist_[1];
  const float mc = obstacle_hist_[2];
  const float med =
      c.max(c.min(ma, mb), c.min(c.max(ma, mb), mc));  // median of three
  const double obstacle_now = med;
  const bool found_now = med < 150.0f;
  if (!ema_init_) {
    ema_init_ = true;
    lane_offset_ema_ = lane_now;
    heading_ema_ = heading_now;
    obstacle_ema_ = static_cast<float>(obstacle_now);
  } else {
    lane_offset_ema_ =
        c.fma(alpha, lane_now - lane_offset_ema_, lane_offset_ema_);
    heading_ema_ = c.fma(static_cast<float>(cfg_.heading_alpha),
                         heading_now - heading_ema_, heading_ema_);
    // The obstacle estimate tracks fast on approach (danger) and relaxes
    // slowly when the obstacle vanishes (dropout robustness).
    const float target = static_cast<float>(found_now ? obstacle_now : 200.0);
    // Approaching obstacles are adopted immediately (latency costs safety
    // margin, and in round-robin mode each agent already samples at half
    // rate); estimates only relax slowly when the obstacle vanishes.
    const float rate = (target < obstacle_ema_) ? 1.0f : 0.25f;
    obstacle_ema_ = c.fma(rate, target - obstacle_ema_, obstacle_ema_);
  }

  out.lane_offset = lane_offset_ema_;
  out.heading_slope = heading_ema_;
  out.obstacle_distance = obstacle_ema_;
  out.obstacle_valid = obstacle_ema_ < 150.0f;
  return out;
}

}  // namespace dav
