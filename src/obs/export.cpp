#include "obs/export.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace dav::obs {

namespace {

const char* kChannelNames[3] = {"throttle", "brake", "steer"};

/// Shortest-round-trip decimal rendering; JSON has no NaN/Inf so non-finite
/// values (which the instrumentation never produces) degrade to 0.
std::string fmt(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---- minimal JSON parser (for our own emitted traces) ----------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    for (const auto& kv : obj) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return JsonValue{};
    }
    return number();
  }

  void literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) fail("bad literal");
    pos_ += n;
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.b = true;
    } else {
      literal("false");
    }
    return v;
  }

  JsonValue number() {
    const char* start = s_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) fail("bad number");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.num = d;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // We only ever emit control characters this way; encode as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

double num_or(const JsonValue* v, double fallback) {
  return (v != nullptr && v->type == JsonValue::Type::kNumber) ? v->num
                                                               : fallback;
}

std::string str_or(const JsonValue* v, const std::string& fallback) {
  return (v != nullptr && v->type == JsonValue::Type::kString) ? v->str
                                                               : fallback;
}

}  // namespace

std::vector<ChromeEvent> to_chrome_events(const std::vector<TraceEvent>& evs,
                                          double dt, int pid) {
  std::vector<ChromeEvent> out;
  out.reserve(evs.size());
  const double tick_us = dt * 1e6;
  for (const TraceEvent& ev : evs) {
    ChromeEvent ce;
    ce.pid = pid;
    ce.ts_us = static_cast<double>(ev.tick) * tick_us;
    ce.tick = static_cast<int>(ev.tick);
    switch (ev.kind) {
      case EventKind::kSpan: {
        ce.ph = 'X';
        ce.cat = "stage";
        ce.name = to_string(static_cast<Stage>(ev.id));
        ce.tid = ev.track < 0 ? 0 : ev.track;
        ce.dur_us = static_cast<double>(ev.dur_ns) / 1000.0;
        break;
      }
      case EventKind::kCounter: {
        ce.ph = 'C';
        ce.cat = "counter";
        const auto c = static_cast<Counter>(ev.id);
        ce.name = to_string(c);
        // Per-channel counters become separate named counter tracks.
        if ((c == Counter::kDivergence || c == Counter::kThreshold) &&
            ev.track >= 0 && ev.track < 3) {
          ce.name += std::string(".") + kChannelNames[ev.track];
        }
        ce.value = ev.value;
        ce.has_value = true;
        break;
      }
      case EventKind::kInstant: {
        ce.ph = 'i';
        ce.cat = "mark";
        ce.name = to_string(static_cast<Instant>(ev.id));
        ce.tid = ev.track < 0 ? 0 : ev.track;
        ce.value = ev.value;
        ce.has_value = true;
        break;
      }
    }
    out.push_back(std::move(ce));
  }
  return out;
}

std::string chrome_trace_json(const ChromeTrace& trace) {
  std::string out;
  out.reserve(trace.events.size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  for (std::size_t i = 0; i < trace.other_data.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(trace.other_data[i].first);
    out += "\":\"";
    out += json_escape(trace.other_data[i].second);
    out += '"';
  }
  out += "},\"traceEvents\":[";
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const ChromeEvent& e = trace.events[i];
    if (i > 0) out += ',';
    out += "\n{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.cat);
    out += "\",\"ph\":\"";
    out.push_back(e.ph);
    out += "\",\"pid\":" + std::to_string(e.pid);
    out += ",\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":" + fmt(e.ts_us);
    if (e.ph == 'X') out += ",\"dur\":" + fmt(e.dur_us);
    if (e.ph == 'i') out += ",\"s\":\"g\"";
    out += ",\"args\":{";
    bool first = true;
    if (e.tick >= 0) {
      out += "\"tick\":" + std::to_string(e.tick);
      first = false;
    }
    if (e.has_value) {
      if (!first) out += ',';
      out += "\"value\":" + fmt(e.value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

ChromeTrace parse_chrome_trace(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.type != JsonValue::Type::kObject) {
    throw std::runtime_error("trace JSON: top level is not an object");
  }
  ChromeTrace trace;
  if (const JsonValue* other = root.find("otherData")) {
    for (const auto& kv : other->obj) {
      trace.other_data.emplace_back(
          kv.first, kv.second.type == JsonValue::Type::kString
                        ? kv.second.str
                        : fmt(kv.second.num));
    }
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    throw std::runtime_error("trace JSON: missing traceEvents array");
  }
  for (const JsonValue& ev : events->arr) {
    if (ev.type != JsonValue::Type::kObject) continue;
    ChromeEvent ce;
    ce.name = str_or(ev.find("name"), "");
    ce.cat = str_or(ev.find("cat"), "");
    const std::string ph = str_or(ev.find("ph"), "X");
    ce.ph = ph.empty() ? 'X' : ph[0];
    ce.pid = static_cast<int>(num_or(ev.find("pid"), 1));
    ce.tid = static_cast<int>(num_or(ev.find("tid"), 0));
    ce.ts_us = num_or(ev.find("ts"), 0.0);
    ce.dur_us = num_or(ev.find("dur"), 0.0);
    if (const JsonValue* args = ev.find("args")) {
      ce.tick = static_cast<int>(num_or(args->find("tick"), -1.0));
      if (const JsonValue* value = args->find("value")) {
        ce.value = num_or(value, 0.0);
        ce.has_value = true;
      }
    }
    trace.events.push_back(std::move(ce));
  }
  return trace;
}

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("obs: cannot create trace dir " + dir + ": " +
                             ec.message());
  }
}

void write_text_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("obs: cannot open " + tmp + ": " +
                               std::strerror(errno));
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("obs: write failed for " + tmp + ": " +
                               std::strerror(errno));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("obs: rename " + tmp + " -> " + path +
                             " failed: " + ec.message());
  }
}

std::string run_csv(const std::vector<ChromeEvent>& events) {
  // Column order matches the header below; counters carry forward, alarm
  // latches at detector_alarm and clears when recovery restarts or rejoins
  // (the points where the online detector is reset).
  const std::vector<std::string> counter_cols = {
      "divergence.throttle", "divergence.brake", "divergence.steer",
      "threshold.throttle",  "threshold.brake",  "threshold.steer"};
  std::map<std::string, double> current;
  for (const auto& col : counter_cols) current[col] = 0.0;
  int alarm = 0;
  double recovery_state = 0.0;

  std::ostringstream out;
  out << "tick,time_sec,div_throttle,div_brake,div_steer,"
         "thr_throttle,thr_brake,thr_steer,alarm,recovery_state\n";

  int row_tick = -1;
  double row_time = 0.0;
  bool have_row = false;
  const auto flush_row = [&]() {
    if (!have_row) return;
    out << row_tick << ',' << fmt(row_time);
    for (const auto& col : counter_cols) out << ',' << fmt(current[col]);
    out << ',' << alarm << ',' << fmt(recovery_state) << '\n';
    have_row = false;
  };

  for (const ChromeEvent& e : events) {
    if (e.ph != 'C' && e.ph != 'i') continue;
    if (e.tick != row_tick) {
      flush_row();
      row_tick = e.tick;
      row_time = e.ts_us / 1e6;
    }
    have_row = true;
    if (e.ph == 'C') {
      if (e.name == "recovery_state") {
        recovery_state = e.value;
      } else if (current.count(e.name) != 0) {
        current[e.name] = e.value;
      }
    } else {
      if (e.name == "detector_alarm") alarm = 1;
      if (e.name == "recovery_restart" || e.name == "recovery_rejoin") {
        alarm = 0;
      }
    }
  }
  flush_row();
  return out.str();
}

void export_run_trace(
    const TraceOptions& opts, const std::string& label, double dt,
    const TraceRecorder& rec,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  ensure_dir(opts.dir);
  ChromeTrace trace;
  trace.other_data.emplace_back("tool", "dav-flight-recorder");
  trace.other_data.emplace_back("dt_sec", fmt(dt));
  trace.other_data.emplace_back("dropped_events",
                                std::to_string(rec.dropped()));
  for (const auto& kv : metadata) trace.other_data.push_back(kv);
  trace.events = to_chrome_events(rec.drain(), dt, opts.pid);

  const std::string stem = opts.dir + "/run_" + label;
  write_text_file(stem + ".trace.json", chrome_trace_json(trace));
  write_text_file(stem + ".csv", run_csv(trace.events));
}

}  // namespace dav::obs
