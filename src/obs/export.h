// Trace exporters: Chrome trace-event JSON (loads in Perfetto and
// chrome://tracing) and a compact tick-indexed CSV of the detection /
// recovery story. The JSON is also parsed back (tools/davtrace, test_obs),
// so both directions live here and round-trip exactly.
//
// Timestamp convention: ts is SIMULATED microseconds (tick * dt * 1e6) for
// per-run traces — bit-deterministic — and wall microseconds only for the
// campaign-level telemetry trace the executor emits. dur is wall-clock
// profiling data and is the one intentionally nondeterministic field.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/trace.h"

namespace dav::obs {

/// One Chrome trace-event, the exported/parsed form of a TraceEvent.
///   ph 'X' complete span | 'C' counter | 'i' instant
struct ChromeEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;  // spans only
  int pid = 1;
  int tid = 0;
  int tick = -1;        // args.tick; -1 omits it
  double value = 0.0;   // args.value (counters/instants)
  bool has_value = false;
};

/// A whole trace file: events plus the "otherData" string map (metadata such
/// as dt, dropped-event count, campaign fingerprint).
struct ChromeTrace {
  std::vector<ChromeEvent> events;
  std::vector<std::pair<std::string, std::string>> other_data;
};

/// Convert drained recorder events into Chrome events. Spans/counters/
/// instants get their taxonomy names; per-channel counters (divergence,
/// threshold) are suffixed ".throttle"/".brake"/".steer"; ts = tick*dt*1e6.
std::vector<ChromeEvent> to_chrome_events(const std::vector<TraceEvent>& evs,
                                          double dt, int pid);

/// Render a ChromeTrace as Chrome trace-event JSON ({"traceEvents": [...]}).
std::string chrome_trace_json(const ChromeTrace& trace);

/// Parse JSON produced by chrome_trace_json (tolerant general JSON parser;
/// unknown keys are ignored). Throws std::runtime_error on malformed input.
ChromeTrace parse_chrome_trace(const std::string& json);

/// Create `dir` (and parents) if needed. Throws std::runtime_error on
/// failure.
void ensure_dir(const std::string& dir);

/// Atomically write `text` to `path` (temp file + rename, like CsvWriter).
/// Throws std::runtime_error with path + strerror on failure.
void write_text_file(const std::string& path, const std::string& text);

/// Tick-indexed CSV of the detection/recovery story: one row per tick that
/// produced counter or instant events, columns
///   tick,time_sec,div_throttle,div_brake,div_steer,
///   thr_throttle,thr_brake,thr_steer,alarm,recovery_state
/// Counter values carry forward between samples; alarm latches at a
/// detector_alarm instant and clears on recovery restart/rejoin.
std::string run_csv(const std::vector<ChromeEvent>& events);

/// Drain `rec` and publish "<dir>/run_<label>.trace.json" plus
/// "<dir>/run_<label>.csv" (creating dir if needed). Extra metadata rows are
/// appended to otherData. Throws on I/O failure.
void export_run_trace(const TraceOptions& opts, const std::string& label,
                      double dt, const TraceRecorder& rec,
                      const std::vector<std::pair<std::string, std::string>>&
                          metadata = {});

}  // namespace dav::obs
