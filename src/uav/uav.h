// UAV extension (paper §VIII future work: "explore the efficacy of DiverseAV
// in other dynamical systems such as unmanned aerial vehicles").
//
// A longitudinal-plane quadrotor: altitude + forward velocity control with a
// mission profile (climb, cruise, descend) and scripted wind gusts. The agent
// is a pure CPU-engine workload (PID loops over noisy baro/GPS samples),
// which complements the car agent's GPU-heavy profile: here CPU faults are
// the SDC source. The DiverseAV core (distributor, divergence signal,
// threshold LUT, detector) is reused unchanged — commands map onto the
// generic actuation channels (thrust -> throttle, pitch -> steer).
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.h"
#include "core/distributor.h"
#include "fi/engine.h"
#include "util/rng.h"

namespace dav::uav {

struct UavState {
  double z = 0.0;   // altitude, m
  double vz = 0.0;  // climb rate, m/s
  double x = 0.0;   // along-track position, m
  double vx = 0.0;  // forward speed, m/s
};

/// Normalized commands: thrust in [0,1] (hover ~0.5), pitch in [-1,1].
struct UavCommand {
  double thrust = 0.5;
  double pitch = 0.0;
};

struct UavParams {
  double max_climb_accel = 6.0;   // m/s^2 at full minus hover thrust
  double max_fwd_accel = 3.0;     // m/s^2 at full pitch
  double drag_z = 0.6;            // 1/s
  double drag_x = 0.25;           // 1/s
};

/// One physics tick, including the current vertical wind disturbance (m/s^2).
UavState step_uav(const UavState& s, const UavCommand& cmd,
                  const UavParams& p, double wind_accel, double dt);

/// Mission profile: climb to cruise altitude, fly out, descend to land.
struct UavMission {
  double cruise_alt = 30.0;     // m
  double cruise_speed = 12.0;   // m/s
  double out_distance = 250.0;  // start descending past this along-track x
  double duration_sec = 40.0;

  double ref_altitude(double x, double t) const;
};

/// Scripted vertical gust (triangular pulse).
struct WindGust {
  double t_start = 12.0;
  double duration = 3.0;
  double peak_accel = 2.5;  // m/s^2 downward

  double accel_at(double t) const;
};

/// Noisy sensor sample (float32, as in the paper's bit-diversity analysis).
struct UavSensorSample {
  float baro_alt = 0.0f;
  float climb_rate = 0.0f;
  float gps_x = 0.0f;
  float gps_vx = 0.0f;
};

UavSensorSample sample_uav_sensors(const UavState& s, Rng& noise);

/// PID flight controller on the instrumented CPU engine; private integrator
/// and filter state per replica.
class UavAgent {
 public:
  UavAgent(CpuEngine& engine, UavMission mission);

  UavCommand act(const UavSensorSample& sensors, double t, double dt);
  void reset();

 private:
  CpuEngine& eng_;
  UavMission mission_;
  double alt_integral_ = 0.0;
  double thrust_ema_ = 0.5;
  double pitch_ema_ = 0.0;
  bool first_ = true;
};

/// One closed-loop UAV experiment under the given agent mode and fault.
struct UavRunResult {
  bool crashed = false;           // ground impact away from the landing zone
  double crash_time = -1.0;
  double max_alt_error = 0.0;     // vs the mission reference
  bool due = false;               // engine crash/hang (platform-detected)
  std::vector<StepObservation> observations;  // divergence stream
  std::vector<double> altitude_trace;
};

struct UavRunConfig {
  AgentMode mode = AgentMode::kRoundRobin;
  FaultPlan fault;
  std::uint64_t run_seed = 1;
  double dt = 0.05;
  UavMission mission;
};

UavRunResult run_uav_experiment(const UavRunConfig& cfg);

}  // namespace dav::uav
