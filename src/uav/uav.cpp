#include "uav/uav.h"

#include <algorithm>
#include <cmath>

#include "agent/calc.h"
#include "agent/warmup.h"

namespace dav::uav {

UavState step_uav(const UavState& s, const UavCommand& cmd_in,
                  const UavParams& p, double wind_accel, double dt) {
  UavCommand cmd;
  cmd.thrust = clamp(cmd_in.thrust, 0.0, 1.0);
  cmd.pitch = clamp(cmd_in.pitch, -1.0, 1.0);
  UavState n = s;
  // Thrust above/below the hover point accelerates vertically.
  const double az =
      (cmd.thrust - 0.5) * 2.0 * p.max_climb_accel - p.drag_z * s.vz -
      wind_accel;
  const double ax = cmd.pitch * p.max_fwd_accel - p.drag_x * s.vx;
  n.vz = s.vz + az * dt;
  n.vx = s.vx + ax * dt;
  n.z = std::max(0.0, s.z + 0.5 * (s.vz + n.vz) * dt);
  // z is clamped to exactly 0.0 by the std::max above, so the compare is
  // a ground-contact flag, not arithmetic.
  if (n.z == 0.0 && n.vz < 0.0) n.vz = 0.0;  // on the ground. davlint: allow(float-eq)
  n.x = s.x + 0.5 * (s.vx + n.vx) * dt;
  return n;
}

double UavMission::ref_altitude(double x, double t) const {
  // Climb during the first quarter of the mission; descend past the
  // out-distance; cruise in between.
  const double climb_time = duration_sec * 0.2;
  if (t < climb_time) return cruise_alt * (t / climb_time);
  if (x > out_distance) {
    const double gone = x - out_distance;
    return std::max(2.0, cruise_alt - gone * 0.4);
  }
  return cruise_alt;
}

double WindGust::accel_at(double t) const {
  const double u = (t - t_start) / duration;
  if (u < 0.0 || u > 1.0) return 0.0;
  return peak_accel * (1.0 - std::abs(2.0 * u - 1.0));  // triangular pulse
}

UavSensorSample sample_uav_sensors(const UavState& s, Rng& noise) {
  UavSensorSample out;
  out.baro_alt = static_cast<float>(s.z + noise.normal(0.0, 0.12));
  out.climb_rate = static_cast<float>(s.vz + noise.normal(0.0, 0.05));
  out.gps_x = static_cast<float>(s.x + noise.normal(0.0, 0.2));
  out.gps_vx = static_cast<float>(s.vx + noise.normal(0.0, 0.06));
  return out;
}

UavAgent::UavAgent(CpuEngine& engine, UavMission mission)
    : eng_(engine), mission_(mission) {}

void UavAgent::reset() {
  alt_integral_ = 0.0;
  thrust_ema_ = 0.5;
  pitch_ema_ = 0.0;
  first_ = true;
}

UavCommand UavAgent::act(const UavSensorSample& s, double t, double dt) {
  // Live-seeded housekeeping gain, as in the car agent.
  const double gain =
      cpu_isa_warmup(eng_, s.baro_alt + 0.173 * s.gps_x + 0.031 * t);
  CpuCalc c(eng_);
  c.call();
  if (first_) {
    first_ = false;
    thrust_ema_ = 0.5;
  }

  // Altitude loop: PI on (ref - baro) plus climb-rate damping.
  const double ref = mission_.ref_altitude(s.gps_x, t);
  const double err = c.sub(c.mul(ref, gain), c.load(s.baro_alt));
  alt_integral_ = c.clamp(c.fma(err, dt, c.load(alt_integral_)), -6.0, 6.0);
  c.store();
  const double thrust_raw = c.clamp(
      c.add(0.5, c.fma(0.09, err,
                       c.fma(0.012, alt_integral_,
                             c.mul(-0.10, c.load(s.climb_rate))))),
      0.0, 1.0);
  thrust_ema_ = c.fma(0.6, c.sub(thrust_raw, thrust_ema_), c.load(thrust_ema_));
  c.store();

  // Forward-speed loop: P control toward the cruise speed, ramped to zero
  // over the approach (a hard switch would flip on sensor noise and inject
  // gratuitous divergence between replicas).
  const double approach = c.clamp(
      c.div(c.sub(mission_.out_distance + 70.0, c.load(s.gps_x)), 40.0), 0.0,
      1.0);
  const double v_ref = c.mul(mission_.cruise_speed, approach);
  const double v_err = c.sub(c.mul(v_ref, gain), c.load(s.gps_vx));
  const double pitch_raw = c.clamp(c.mul(0.35, v_err), -1.0, 1.0);
  pitch_ema_ = c.fma(0.5, c.sub(pitch_raw, pitch_ema_), c.load(pitch_ema_));
  c.store();
  c.ret();

  return {clamp(thrust_ema_, 0.0, 1.0), clamp(pitch_ema_, -1.0, 1.0)};
}

UavRunResult run_uav_experiment(const UavRunConfig& cfg) {
  UavRunResult result;
  Rng seeder(cfg.run_seed);
  Rng noise = seeder.split(1);

  CpuEngine cpu0;
  CpuEngine cpu1;
  cpu0.configure(cfg.fault, seeder.split(2)(),
                 CrashHangModel::for_model(FaultDomain::kCpu, cfg.fault.kind));
  cpu1.configure({}, 0);

  UavAgent agent0(cpu0, cfg.mission);
  // DiverseAV time-multiplexes both replicas on the shared engine; the FD
  // baseline gives the replica its own clean engine.
  UavAgent agent1(cfg.mode == AgentMode::kDuplicate ? cpu1 : cpu0,
                  cfg.mission);
  SensorDataDistributor distributor(cfg.mode);

  UavState state;
  UavParams params;
  WindGust gust;
  UavCommand last;
  bool prev_valid = false;
  UavCommand prev;
  const int steps = static_cast<int>(cfg.mission.duration_sec / cfg.dt);
  for (int step = 0; step < steps; ++step) {
    const double t = step * cfg.dt;
    const UavSensorSample sensors = sample_uav_sensors(state, noise);
    UavCommand cmd = last;
    bool have_pair = false;
    UavCommand other;
    try {
      const auto disp = distributor.dispatch(step);
      const double agent_dt = cfg.dt * distributor.agent_period();
      switch (cfg.mode) {
        case AgentMode::kSingle:
          cmd = agent0.act(sensors, t, agent_dt);
          if (prev_valid) {
            have_pair = true;
            other = prev;
          }
          break;
        case AgentMode::kRoundRobin:
          cmd = disp.acting_agent == 0 ? agent0.act(sensors, t, agent_dt)
                                       : agent1.act(sensors, t, agent_dt);
          if (prev_valid) {
            have_pair = true;
            other = prev;
          }
          break;
        case AgentMode::kDuplicate: {
          cmd = agent0.act(sensors, t, agent_dt);
          other = agent1.act(sensors, t, agent_dt);
          have_pair = true;
          break;
        }
      }
    } catch (const CrashError&) {
      result.due = true;
      break;
    } catch (const HangError&) {
      result.due = true;
      break;
    }
    if (!std::isfinite(cmd.thrust) || !std::isfinite(cmd.pitch)) {
      result.due = true;  // output validator
      break;
    }
    prev = cmd;
    prev_valid = true;

    if (have_pair) {
      StepObservation obs;
      obs.time = t;
      // Map the UAV state onto the detector's vehicle-state axes:
      // forward speed/accel index the thrust channel thresholds.
      obs.state.v = state.vx;
      obs.state.a = 0.0;
      obs.state.omega = clamp(state.vz * 0.05, -0.55, 0.55);
      obs.state.alpha = 0.0;
      obs.delta = {std::abs(cmd.thrust - other.thrust), 0.0,
                   std::abs(cmd.pitch - other.pitch)};
      result.observations.push_back(obs);
    }

    state = step_uav(state, cmd, params, gust.accel_at(t), cfg.dt);
    last = cmd;
    result.altitude_trace.push_back(state.z);
    const double ref = cfg.mission.ref_altitude(state.x, t);
    result.max_alt_error =
        std::max(result.max_alt_error, std::abs(state.z - ref));
    // Ground impact outside the landing zone (past the out distance the
    // mission intends to descend).
    if (t > 3.0 && state.z <= 0.01 && state.x < cfg.mission.out_distance) {
      result.crashed = true;
      result.crash_time = t;
      break;
    }
  }
  return result;
}

}  // namespace dav::uav
