#include "sensors/inertial.h"

#include <cmath>
#include <limits>

#include "sim/vehicle.h"

namespace dav {

GpsImuSample sample_gps_imu(const VehicleState& ego, const GpsImuModel& model,
                            Rng& noise) {
  GpsImuSample s;
  s.gps_x = static_cast<float>(ego.pose.pos.x + noise.normal(0.0, model.gps_sigma));
  s.gps_y = static_cast<float>(ego.pose.pos.y + noise.normal(0.0, model.gps_sigma));
  s.speed = static_cast<float>(
      std::max(0.0, ego.v + noise.normal(0.0, model.speed_sigma)));
  s.accel_long = static_cast<float>(ego.a + noise.normal(0.0, model.accel_sigma));
  s.yaw = static_cast<float>(
      wrap_angle(ego.pose.yaw + noise.normal(0.0, model.yaw_sigma)));
  s.yaw_rate =
      static_cast<float>(ego.omega + noise.normal(0.0, model.yaw_rate_sigma));
  return s;
}

namespace {

/// Distance along ray (origin, dir) to segment [a,b]; +inf if no hit.
double ray_segment(const Vec2& origin, const Vec2& dir, const Vec2& a,
                   const Vec2& b) {
  const Vec2 seg = b - a;
  const double denom = dir.cross(seg);
  if (std::abs(denom) < 1e-12) return std::numeric_limits<double>::infinity();
  const Vec2 ao = a - origin;
  const double t = ao.cross(seg) / denom;   // distance along the ray
  const double u = ao.cross(dir) / denom;   // position along the segment
  if (t >= 0.0 && u >= 0.0 && u <= 1.0) return t;
  return std::numeric_limits<double>::infinity();
}

}  // namespace

std::vector<float> sample_lidar(const World& world, const LidarModel& model,
                                Rng& noise) {
  std::vector<float> ranges(static_cast<std::size_t>(model.beams));
  const Vec2 origin = world.ego().pose.pos;
  for (int i = 0; i < model.beams; ++i) {
    const double angle =
        world.ego().pose.yaw + 2.0 * M_PI * i / model.beams;
    const Vec2 dir{std::cos(angle), std::sin(angle)};
    double best = model.max_range;
    for (const auto& npc : world.npcs()) {
      const Obb box = vehicle_obb(npc.state(world.map()), npc.spec());
      const auto corners = box.corners();
      for (int e = 0; e < 4; ++e) {
        const double t =
            ray_segment(origin, dir, corners[e], corners[(e + 1) % 4]);
        best = std::min(best, t);
      }
    }
    // Beams that miss every vehicle return ground/clutter near max range;
    // the return is noisy like any other (a hard clamp to an exact constant
    // would zero out the bit-level diversity the paper measures).
    best = std::max(0.0, best + noise.normal(0.0, model.range_sigma));
    ranges[static_cast<std::size_t>(i)] = static_cast<float>(best);
  }
  return ranges;
}

}  // namespace dav
