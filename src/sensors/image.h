// RGB8 image type produced by the camera sensors.
#pragma once

#include <cstdint>
#include <vector>

namespace dav {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// Row-major RGB8 image (3 bytes per pixel, 24-bit color as in the paper's
/// bit-diversity analysis: "24-bit RGB color value (8-bit per color)").
class Image {
 public:
  Image() = default;
  Image(int width, int height) : w_(width), h_(height),
        data_(static_cast<std::size_t>(width) * height * 3, 0) {}

  int width() const { return w_; }
  int height() const { return h_; }
  bool empty() const { return data_.empty(); }

  Rgb get(int x, int y) const {
    const std::size_t i = idx(x, y);
    return {data_[i], data_[i + 1], data_[i + 2]};
  }
  void set(int x, int y, Rgb c) {
    const std::size_t i = idx(x, y);
    data_[i] = c.r;
    data_[i + 1] = c.g;
    data_[i + 2] = c.b;
  }

  const std::vector<std::uint8_t>& bytes() const { return data_; }
  std::vector<std::uint8_t>& bytes() { return data_; }
  std::size_t byte_size() const { return data_.size(); }

 private:
  std::size_t idx(int x, int y) const {
    return (static_cast<std::size_t>(y) * w_ + x) * 3;
  }
  int w_ = 0;
  int h_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace dav
