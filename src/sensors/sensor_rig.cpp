#include "sensors/sensor_rig.h"

namespace dav {

SensorRig::SensorRig(std::vector<CameraModel> cameras, std::uint64_t noise_seed,
                     bool enable_lidar)
    : camera_noise_(Rng(noise_seed).split(1)),
      imu_noise_(Rng(noise_seed).split(2)),
      lidar_noise_(Rng(noise_seed).split(3)),
      enable_lidar_(enable_lidar) {
  renderers_.reserve(cameras.size());
  for (const auto& cm : cameras) renderers_.emplace_back(cm);
}

SensorFrame SensorRig::capture(const World& world, int step) {
  SensorFrame frame;
  frame.step = step;
  frame.time = world.time();
  frame.cameras.reserve(renderers_.size());
  for (const auto& r : renderers_) {
    frame.cameras.push_back(r.render(world, camera_noise_));
  }
  frame.gps_imu = sample_gps_imu(world.ego(), imu_model_, imu_noise_);
  if (enable_lidar_) {
    frame.lidar = sample_lidar(world, lidar_model_, lidar_noise_);
  }
  if (injector_ != nullptr) {
    for (std::size_t i = 0; i < frame.cameras.size(); ++i) {
      Image& img = frame.cameras[i];
      injector_->corrupt_camera(static_cast<int>(i), step, img.bytes().data(),
                                img.width(), img.height());
    }
    std::array<float, 6> fields = frame.gps_imu.as_array();
    injector_->corrupt_gps(step, fields.data(),
                           static_cast<int>(fields.size()));
    frame.gps_imu.gps_x = fields[0];
    frame.gps_imu.gps_y = fields[1];
    frame.gps_imu.speed = fields[2];
    frame.gps_imu.accel_long = fields[3];
    frame.gps_imu.yaw = fields[4];
    frame.gps_imu.yaw_rate = fields[5];
    injector_->corrupt_lidar(step, frame.lidar);
  }
  return frame;
}

std::size_t SensorRig::frame_bytes() const {
  std::size_t bytes = 0;
  for (const auto& r : renderers_) {
    bytes += static_cast<std::size_t>(r.model().width) * r.model().height * 3;
  }
  return bytes;
}

}  // namespace dav
