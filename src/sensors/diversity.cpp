#include "sensors/diversity.h"

#include <cmath>
#include <stdexcept>

#include "util/bits.h"

namespace dav {

void accumulate_image_bit_diversity(const Image& a, const Image& b,
                                    CountHistogram& hist) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("image_bit_diversity: size mismatch");
  }
  const auto& ba = a.bytes();
  const auto& bb = b.bytes();
  for (std::size_t i = 0; i + 2 < ba.size(); i += 3) {
    const int bits = bit_diff(ba[i], bb[i]) + bit_diff(ba[i + 1], bb[i + 1]) +
                     bit_diff(ba[i + 2], bb[i + 2]);
    hist.add(static_cast<std::size_t>(bits));
  }
}

CountHistogram image_bit_diversity(const Image& a, const Image& b) {
  CountHistogram hist(25);  // 0..24 differing bits per 24-bit pixel
  accumulate_image_bit_diversity(a, b, hist);
  return hist;
}

void accumulate_float_bit_diversity(const std::vector<float>& a,
                                    const std::vector<float>& b,
                                    CountHistogram& hist) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("float_bit_diversity: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    hist.add(static_cast<std::size_t>(bit_diff(a[i], b[i])));
  }
}

CountHistogram float_bit_diversity(const std::vector<float>& a,
                                   const std::vector<float>& b) {
  CountHistogram hist(33);  // 0..32 differing bits per float
  accumulate_float_bit_diversity(a, b, hist);
  return hist;
}

double bbox_center_shift(const BBox2& a, const BBox2& b) {
  const double dx = a.cx() - b.cx();
  const double dy = a.cy() - b.cy();
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace dav
