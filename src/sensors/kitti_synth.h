// KITTI-like synthetic trace generator.
//
// Substitution (see DESIGN.md): the paper measures bit diversity and semantic
// consistency on the real-world KITTI dataset, which we cannot ship. This
// generator produces sequences with the properties that analysis depends on:
// 10 Hz wide-aspect camera frames with real-world-grade texture and
// photometric noise, tracked objects with ground-truth 2-D boxes and ego-frame
// centers, IMU/GPS float samples, and LiDAR returns.
#pragma once

#include <cstdint>
#include <vector>

#include "sensors/camera.h"
#include "sensors/image.h"

namespace dav {

struct KittiLikeConfig {
  int num_frames = 60;
  double dt = 0.1;              // 10 Hz, KITTI's sensing frequency
  int width = 160;              // wide aspect, ~KITTI 1242x375 scaled
  int height = 48;
  double texture_strength = 1.0;  // real-world imagery is heavily textured
  double noise_sigma = 2.6;       // and noisier than the simulator
  double ego_speed = 8.0;         // m/s urban driving
  std::uint64_t seed = 7;
};

/// Per-object ground truth across the sequence. Frames where the object is
/// not visible have an invalid bbox.
struct ObjectTrack {
  int id = 0;
  std::vector<BBox2> bboxes;       // 2-D box per frame (image coords)
  std::vector<Vec2> ego_centers;   // object center in ego frame per frame (m)
};

struct KittiLikeSequence {
  std::vector<Image> frames;                 // center camera
  std::vector<std::vector<float>> imu_gps;   // 6 floats per frame
  std::vector<std::vector<float>> lidar;     // ranges per frame
  std::vector<ObjectTrack> tracks;
};

KittiLikeSequence generate_kitti_like(const KittiLikeConfig& cfg = {});

}  // namespace dav
