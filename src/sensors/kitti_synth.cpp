#include "sensors/kitti_synth.h"

#include <cmath>

#include "sensors/inertial.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "util/rng.h"

namespace dav {

namespace {

/// A simple oracle driver (not the AI agent): proportional cruise control and
/// lane centering, with emergency braking on short CVIP. Used only to move
/// the recording platform through the synthetic world.
Actuation oracle_drive(const World& world, double target_speed) {
  Actuation cmd;
  const double v_err = target_speed - world.ego().v;
  if (world.cvip() < 12.0) {
    cmd.brake = clamp(0.2 + (12.0 - world.cvip()) * 0.15, 0.0, 1.0);
  } else if (v_err > 0.0) {
    cmd.throttle = clamp(v_err * 0.4, 0.0, 0.8);
  } else {
    cmd.brake = clamp(-v_err * 0.25, 0.0, 0.6);
  }
  const double lat = world.ego_lateral();
  const double head_err =
      wrap_angle(world.map().heading_at(world.ego_route_s()) -
                 world.ego().pose.yaw);
  cmd.steer = clamp(-0.35 * lat + 1.2 * head_err, -1.0, 1.0);
  return cmd;
}

}  // namespace

KittiLikeSequence generate_kitti_like(const KittiLikeConfig& cfg) {
  // A gently curving suburban road with mixed traffic: some vehicles move
  // with the ego (small relative motion), one oncoming-ish fast vehicle.
  Polyline route = RouteBuilder()
                       .straight(150.0)
                       .turn(M_PI / 10, 120.0)
                       .straight(150.0)
                       .turn(-M_PI / 12, 150.0)
                       .straight(200.0)
                       .build();
  Scenario sc;
  sc.id = ScenarioId::kLongRoute02;
  sc.map = RoadMap(std::move(route), 3.7, 1, 0);
  sc.ego_start_s = 5.0;
  sc.ego_start_speed = cfg.ego_speed;
  sc.target_speed = cfg.ego_speed;
  sc.duration_sec = cfg.num_frames * cfg.dt + 5.0;

  Rng traffic(cfg.seed);
  IdmParams slow;
  slow.desired_speed = cfg.ego_speed * 0.9;
  sc.npcs.emplace_back(/*id=*/1, /*s=*/sc.ego_start_s + 18.0, /*lateral=*/0.0,
                       slow.desired_speed, slow);
  IdmParams mid;
  mid.desired_speed = cfg.ego_speed * 1.15;
  sc.npcs.emplace_back(/*id=*/2, /*s=*/sc.ego_start_s + 30.0, /*lateral=*/3.7,
                       mid.desired_speed, mid);
  IdmParams far_npc;
  far_npc.desired_speed = cfg.ego_speed;
  sc.npcs.emplace_back(/*id=*/3, /*s=*/sc.ego_start_s + 45.0, /*lateral=*/0.0,
                       far_npc.desired_speed, far_npc);
  // Parked vehicles on the shoulder: the ego passes them, so their apparent
  // motion is large — real-world streets (and KITTI's urban sequences) are
  // full of such high-relative-motion objects.
  IdmParams parked;
  parked.desired_speed = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double lateral =
        (i % 2 == 0) ? -2.6 : 3.7 + traffic.uniform(0.0, 0.4);
    sc.npcs.emplace_back(/*id=*/4 + i,
                         /*s=*/sc.ego_start_s + 22.0 + 33.0 * i +
                             traffic.uniform(-6.0, 6.0),
                         lateral, 0.0, parked);
  }

  World world(std::move(sc));

  CameraModel cam;
  cam.width = cfg.width;
  cam.height = cfg.height;
  cam.fov_deg = 82.0;  // KITTI's color cameras are ~80-90 deg horizontal
  cam.noise_sigma = cfg.noise_sigma;
  CameraRenderer renderer(cam);
  renderer.set_texture_strength(cfg.texture_strength);

  GpsImuModel imu_model;
  LidarModel lidar_model;
  lidar_model.beams = 180;  // denser, Velodyne-like

  Rng cam_noise = Rng(cfg.seed).split(11);
  Rng imu_noise = Rng(cfg.seed).split(12);
  Rng lidar_noise = Rng(cfg.seed).split(13);

  KittiLikeSequence seq;
  seq.tracks.resize(world.npcs().size());
  for (std::size_t i = 0; i < world.npcs().size(); ++i) {
    seq.tracks[i].id = world.npcs()[i].id();
  }

  for (int f = 0; f < cfg.num_frames; ++f) {
    seq.frames.push_back(renderer.render(world, cam_noise));
    const GpsImuSample imu = sample_gps_imu(world.ego(), imu_model, imu_noise);
    const auto arr = imu.as_array();
    seq.imu_gps.emplace_back(arr.begin(), arr.end());
    seq.lidar.push_back(sample_lidar(world, lidar_model, lidar_noise));

    for (std::size_t i = 0; i < world.npcs().size(); ++i) {
      const auto& npc = world.npcs()[i];
      seq.tracks[i].bboxes.push_back(renderer.project_npc(world, npc));
      const Vec2 local =
          world.ego().pose.to_local(npc.state(world.map()).pose.pos);
      seq.tracks[i].ego_centers.push_back(local);
    }

    world.step(oracle_drive(world, cfg.ego_speed), cfg.dt);
  }
  return seq;
}

}  // namespace dav
