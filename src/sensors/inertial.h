// GPS + IMU sensor model (32-bit floats, matching the paper's bit-diversity
// analysis of IMU/GPS data) and a planar LiDAR.
#pragma once

#include <array>
#include <vector>

#include "sim/world.h"
#include "util/rng.h"

namespace dav {

/// One GPS+IMU sample. Stored as float32 on purpose: the paper measures
/// bit diversity "using 32-bit floating points".
struct GpsImuSample {
  float gps_x = 0.0f;
  float gps_y = 0.0f;
  float speed = 0.0f;
  float accel_long = 0.0f;
  float yaw = 0.0f;
  float yaw_rate = 0.0f;

  std::array<float, 6> as_array() const {
    return {gps_x, gps_y, speed, accel_long, yaw, yaw_rate};
  }
};

struct GpsImuModel {
  double gps_sigma = 0.15;      // m
  double speed_sigma = 0.04;    // m/s
  double accel_sigma = 0.05;    // m/s^2
  double yaw_sigma = 0.004;     // rad
  double yaw_rate_sigma = 0.01; // rad/s
};

GpsImuSample sample_gps_imu(const VehicleState& ego, const GpsImuModel& model,
                            Rng& noise);

/// Planar LiDAR: `beams` rays spread over 360 degrees, range-limited,
/// returning per-beam range (float32). Rays hit NPC bounding boxes.
struct LidarModel {
  int beams = 72;
  double max_range = 80.0;
  double range_sigma = 0.03;  // m
};

std::vector<float> sample_lidar(const World& world, const LidarModel& model,
                                Rng& noise);

}  // namespace dav
