#include "sensors/camera.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dav {

double CameraModel::focal_px() const {
  return width / (2.0 * std::tan(fov_deg * M_PI / 360.0));
}

namespace {

/// Point in the camera frame: x forward, y left, z up (meters).
struct CamPoint {
  double x = 0.0, y = 0.0, z = 0.0;
};

struct Projector {
  double f = 0.0, cx = 0.0, cy = 0.0;
  Pose2 cam_pose;      // world pose of the camera (pos + yaw)
  double mount_height = 0.0;

  CamPoint to_cam(const Vec2& world, double height_above_ground) const {
    const Vec2 local = cam_pose.to_local(world);
    return {local.x, local.y, height_above_ground - mount_height};
  }

  /// Perspective projection. Caller must ensure p.x > 0.
  void project(const CamPoint& p, double& u, double& v) const {
    u = cx - f * p.y / p.x;
    v = cy - f * p.z / p.x;
  }
};

/// Scanline-fill a convex quad given in image coordinates. Vertices with
/// camera-space x <= kNearClip must be filtered by the caller.
void fill_quad(Image& img, const double ux[4], const double vy[4], Rgb color) {
  double v_lo = std::numeric_limits<double>::infinity();
  double v_hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < 4; ++i) {
    v_lo = std::min(v_lo, vy[i]);
    v_hi = std::max(v_hi, vy[i]);
  }
  const int row_lo = std::max(0, static_cast<int>(std::floor(v_lo)));
  const int row_hi = std::min(img.height() - 1, static_cast<int>(std::ceil(v_hi)));
  for (int row = row_lo; row <= row_hi; ++row) {
    const double y = row + 0.5;
    double x_lo = std::numeric_limits<double>::infinity();
    double x_hi = -std::numeric_limits<double>::infinity();
    bool any = false;
    for (int i = 0; i < 4; ++i) {
      const int j = (i + 1) % 4;
      const double y0 = vy[i];
      const double y1 = vy[j];
      if ((y0 <= y && y1 >= y) || (y1 <= y && y0 >= y)) {
        const double denom = y1 - y0;
        const double t = std::abs(denom) < 1e-12 ? 0.0 : (y - y0) / denom;
        const double x = ux[i] + t * (ux[j] - ux[i]);
        x_lo = std::min(x_lo, x);
        x_hi = std::max(x_hi, x);
        any = true;
      }
    }
    if (!any) continue;
    const int col_lo = std::max(0, static_cast<int>(std::floor(x_lo)));
    const int col_hi = std::min(img.width() - 1, static_cast<int>(std::ceil(x_hi) - 1));
    for (int col = col_lo; col <= col_hi; ++col) img.set(col, row, color);
  }
}

constexpr double kNearClip = 0.5;
constexpr double kRenderAhead = 120.0;  // meters of road drawn
constexpr double kRoadStep = 3.0;       // strip sampling

std::uint32_t hash2(std::int32_t a, std::int32_t b) {
  std::uint32_t h = static_cast<std::uint32_t>(a) * 0x85ebca6bu ^
                    static_cast<std::uint32_t>(b) * 0xc2b2ae35u;
  h ^= h >> 13;
  h *= 0x27d4eb2fu;
  h ^= h >> 15;
  return h;
}

Rgb shade(Rgb c, double dist) {
  const double k = 1.0 / (1.0 + 0.012 * dist);
  return {static_cast<std::uint8_t>(c.r * k), static_cast<std::uint8_t>(c.g * k),
          static_cast<std::uint8_t>(c.b * k)};
}

Rgb npc_color(int id) {
  // Scenario-scripted NPCs keep the paper's palette (blue / gray); background
  // traffic gets deterministic per-id colors.
  if (id == 1) return {40, 60, 200};
  if (id == 2) return {120, 120, 130};
  const std::uint32_t h = hash2(id, 977);
  return {static_cast<std::uint8_t>(45 + (h & 0x5F)),
          static_cast<std::uint8_t>(45 + ((h >> 8) & 0x5F)),
          static_cast<std::uint8_t>(45 + ((h >> 16) & 0x5F))};
}

/// Draw a quad strip along the route between lateral offsets [lat0, lat1].
void draw_route_strip(Image& img, const Projector& pr, const RoadMap& map,
                      double s_begin, double s_end, double lat0, double lat1,
                      Rgb color, bool dashed = false, double dash_on = 2.0,
                      double dash_period = 4.0) {
  const Polyline& route = map.route();
  const double step = dashed ? std::min(kRoadStep, dash_on) : kRoadStep;
  for (double s = s_begin; s < s_end; s += step) {
    if (dashed && std::fmod(s, dash_period) >= dash_on) continue;
    const double s2 = std::min(s + step, s_end);
    const Vec2 left_a = route.tangent_at(s).perp();
    const Vec2 left_b = route.tangent_at(s2).perp();
    const Vec2 pa = route.point_at(s);
    const Vec2 pb = route.point_at(s2);
    const CamPoint corners[4] = {
        pr.to_cam(pa + left_a * lat0, 0.0), pr.to_cam(pa + left_a * lat1, 0.0),
        pr.to_cam(pb + left_b * lat1, 0.0), pr.to_cam(pb + left_b * lat0, 0.0)};
    bool visible = true;
    double ux[4], vy[4];
    for (int i = 0; i < 4; ++i) {
      if (corners[i].x <= kNearClip) {
        visible = false;
        break;
      }
      pr.project(corners[i], ux[i], vy[i]);
    }
    if (!visible) continue;
    const double dist = corners[0].x;
    fill_quad(img, ux, vy, shade(color, dist));
  }
}

}  // namespace

Image CameraRenderer::render(const World& world, Rng& noise) const {
  const int w = model_.width;
  const int h = model_.height;
  Image img(w, h);

  Projector pr;
  pr.f = model_.focal_px();
  pr.cx = w * 0.5;
  pr.cy = h * 0.5;
  pr.cam_pose.pos = world.ego().pose.pos;
  pr.cam_pose.yaw = wrap_angle(world.ego().pose.yaw + model_.yaw_offset);
  pr.mount_height = model_.mount_height;

  // 1. Background: sky gradient above the horizon, ground below.
  for (int y = 0; y < h; ++y) {
    Rgb c;
    if (y < h / 2) {
      const auto t = static_cast<double>(y) / (h / 2);
      c = {static_cast<std::uint8_t>(110 - 30 * t),
           static_cast<std::uint8_t>(150 - 30 * t),
           static_cast<std::uint8_t>(220 - 40 * t)};
    } else {
      c = {62, 86, 48};  // grass
    }
    for (int x = 0; x < w; ++x) img.set(x, y, c);
  }

  const RoadMap& map = world.map();
  const double ego_s = world.ego_route_s();
  const double s0 = std::max(0.0, ego_s - 8.0);
  const double s1 = std::min(map.route().length(), ego_s + kRenderAhead);
  const double lane_w = map.lane_width();
  const double left_edge = (map.num_left_lanes() + 0.5) * lane_w;
  const double right_edge = -(map.num_right_lanes() + 0.5) * lane_w;

  // 2. Road surface, then lane markings on top.
  draw_route_strip(img, pr, map, s0, s1, right_edge, left_edge, {95, 95, 98});
  // Solid edge lines.
  draw_route_strip(img, pr, map, s0, s1, left_edge - 0.18, left_edge,
                   {225, 225, 225});
  draw_route_strip(img, pr, map, s0, s1, right_edge, right_edge + 0.18,
                   {225, 225, 225});
  // Dashed separators between lanes (short cycle so several dashes are
  // always visible in any depth band).
  for (int lane = -map.num_right_lanes(); lane < map.num_left_lanes(); ++lane) {
    const double lat = (lane + 0.5) * lane_w;
    draw_route_strip(img, pr, map, s0, s1, lat - 0.09, lat + 0.09,
                     {230, 230, 230}, /*dashed=*/true, /*dash_on=*/1.6,
                     /*dash_period=*/3.0);
  }

  // 3. Traffic light ahead (stop-line gantry with a colored head). When the
  // light is not green, the stop line itself is painted red across the road —
  // this is the ground-plane cue the perception pipeline ranges against.
  if (auto light = map.next_light_after(ego_s)) {
    if (light->s - ego_s < 100.0) {
      Rgb head{40, 200, 60};
      const auto phase = light->phase_at(world.time());
      if (phase == TrafficLight::Phase::kYellow) head = {235, 200, 40};
      if (phase == TrafficLight::Phase::kRed) head = {235, 40, 40};
      if (phase != TrafficLight::Phase::kGreen) {
        draw_route_strip(img, pr, map, std::max(s0, light->s - 0.7),
                         std::min(s1, light->s + 0.7), right_edge, left_edge,
                         {210, 35, 35});
      }
      const Vec2 base =
          map.route().point_at(light->s) +
          map.route().tangent_at(light->s).perp() * (left_edge + 0.6);
      const CamPoint top = pr.to_cam(base, 4.6);
      if (top.x > kNearClip) {
        double u, v;
        pr.project(top, u, v);
        const double size = pr.f * 0.9 / top.x;  // ~0.9 m head box
        const double ux[4] = {u - size, u + size, u + size, u - size};
        const double vy[4] = {v - size, v - size, v + size, v + size};
        fill_quad(img, ux, vy, head);
        // Pole.
        const CamPoint bot = pr.to_cam(base, 0.0);
        if (bot.x > kNearClip) {
          double ub, vb;
          pr.project(bot, ub, vb);
          const double pw = std::max(1.0, pr.f * 0.12 / top.x);
          const double pux[4] = {ub - pw, ub + pw, u + pw, u - pw};
          const double pvy[4] = {vb, vb, v + size, v + size};
          fill_quad(img, pux, pvy, {70, 70, 70});
        }
      }
    }
  }

  // 4. Vehicles as billboards, far to near.
  std::vector<const NpcVehicle*> order;
  for (const auto& npc : world.npcs()) order.push_back(&npc);
  std::sort(order.begin(), order.end(), [&](const NpcVehicle* a,
                                            const NpcVehicle* b) {
    return distance(a->state(map).pose.pos, pr.cam_pose.pos) >
           distance(b->state(map).pose.pos, pr.cam_pose.pos);
  });
  for (const NpcVehicle* npc : order) {
    const VehicleState st = npc->state(map);
    // Billboard anchored at the rear face of the vehicle (what a follower
    // actually sees), so close-range geometry stays visible and rangeable.
    const Vec2 rear_pos =
        st.pose.pos - st.pose.forward() * (npc->spec().length * 0.5);
    const CamPoint base = pr.to_cam(rear_pos, 0.0);
    if (base.x <= kNearClip) continue;
    double u, v_bottom;
    pr.project(base, u, v_bottom);
    const double depth = base.x;
    // Apparent width interpolates between the vehicle's width and length
    // depending on the viewing angle.
    const double rel_yaw = std::abs(wrap_angle(st.pose.yaw - pr.cam_pose.yaw));
    const double apparent =
        npc->spec().width +
        (npc->spec().length - npc->spec().width) * std::abs(std::sin(rel_yaw));
    const double half_w = 0.5 * pr.f * apparent / depth;
    const double height_px = pr.f * 1.5 / depth;  // 1.5 m body height
    const double ux[4] = {u - half_w, u + half_w, u + half_w, u - half_w};
    const double vy[4] = {v_bottom - height_px, v_bottom - height_px, v_bottom,
                          v_bottom};
    fill_quad(img, ux, vy, shade(npc_color(npc->id()), depth));
    // Windshield band to give the blob structure.
    const double wy[4] = {v_bottom - height_px, v_bottom - height_px,
                          v_bottom - 0.7 * height_px, v_bottom - 0.7 * height_px};
    const double wx[4] = {u - 0.7 * half_w, u + 0.7 * half_w, u + 0.7 * half_w,
                          u - 0.7 * half_w};
    fill_quad(img, wx, wy, shade({30, 34, 40}, depth));
    // Dark underside / shadow at the ground contact line: a stable signature
    // for the perception pipeline's ground-plane ranging.
    const double sy[4] = {v_bottom - 0.18 * height_px, v_bottom - 0.18 * height_px,
                          v_bottom, v_bottom};
    const double sx[4] = {u - half_w, u + half_w, u + half_w, u - half_w};
    fill_quad(img, sx, sy, {22, 22, 26});
  }

  // 5. World-anchored texture (KITTI-like realism) and photometric noise.
  const bool textured = texture_strength_ > 0.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      Rgb c = img.get(x, y);
      double extra = 0.0;
      if (textured && y > h / 2) {
        // Approximate world anchor of this ground pixel for the center
        // camera: depth from the row, lateral from the column.
        const double depth = pr.f * model_.mount_height / (y - h * 0.5 + 0.5);
        const double lon = world.ego_route_s() + depth;
        const double lat = (pr.cx - x) * depth / pr.f;
        const std::uint32_t hv =
            hash2(static_cast<std::int32_t>(std::floor(lon * 2.0)),
                  static_cast<std::int32_t>(std::floor(lat * 2.0)));
        extra = texture_strength_ * ((hv & 0xFF) / 255.0 - 0.5) * 2.0;
      }
      // One RNG draw per pixel: three byte lanes give per-channel uniform
      // dither scaled to the configured sigma (campaigns render millions of
      // frames, so per-channel Gaussian draws are too slow).
      const std::uint64_t r = noise();
      const double scale = model_.noise_sigma / 74.0;  // byte lane std -> sigma
      const auto jitter = [&](std::uint8_t ch, int lane) {
        const double n =
            (static_cast<int>((r >> (8 * lane)) & 0xFF) - 128) * scale;
        return static_cast<std::uint8_t>(clamp(ch + n + extra * 18.0, 0.0, 255.0));
      };
      img.set(x, y, {jitter(c.r, 0), jitter(c.g, 1), jitter(c.b, 2)});
    }
  }
  return img;
}

BBox2 CameraRenderer::project_npc(const World& world,
                                  const NpcVehicle& npc) const {
  Projector pr;
  pr.f = model_.focal_px();
  pr.cx = model_.width * 0.5;
  pr.cy = model_.height * 0.5;
  pr.cam_pose.pos = world.ego().pose.pos;
  pr.cam_pose.yaw = wrap_angle(world.ego().pose.yaw + model_.yaw_offset);
  pr.mount_height = model_.mount_height;

  const VehicleState st = npc.state(world.map());
  const Vec2 rear_pos =
      st.pose.pos - st.pose.forward() * (npc.spec().length * 0.5);
  const CamPoint base = pr.to_cam(rear_pos, 0.0);
  BBox2 box;
  if (base.x <= kNearClip) return box;
  double u, v_bottom;
  pr.project(base, u, v_bottom);
  const double rel_yaw = std::abs(wrap_angle(st.pose.yaw - pr.cam_pose.yaw));
  const double apparent =
      npc.spec().width +
      (npc.spec().length - npc.spec().width) * std::abs(std::sin(rel_yaw));
  const double half_w = 0.5 * pr.f * apparent / base.x;
  const double height_px = pr.f * 1.5 / base.x;
  box.x_min = u - half_w;
  box.x_max = u + half_w;
  box.y_min = v_bottom - height_px;
  box.y_max = v_bottom;
  if (box.x_max < 0 || box.x_min > model_.width || box.y_max < 0 ||
      box.y_min > model_.height) {
    return {};
  }
  return box;
}

std::vector<CameraModel> front_camera_rig(int width, int height,
                                          double noise_sigma) {
  CameraModel left, center, right;
  left.yaw_offset = M_PI / 4.0;
  right.yaw_offset = -M_PI / 4.0;
  for (CameraModel* m : {&left, &center, &right}) {
    m->width = width;
    m->height = height;
    m->noise_sigma = noise_sigma;
  }
  return {left, center, right};
}

}  // namespace dav
