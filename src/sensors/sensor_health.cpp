#include "sensors/sensor_health.h"

#include <algorithm>
#include <cmath>

namespace dav {
namespace {

// ~16x18 grid per camera: dense enough for photometric statistics, cheap
// enough to run every tick on every channel.
constexpr int kSampleCols = 16;
constexpr int kSampleRows = 18;

}  // namespace

std::string to_string(SensorChannel c) {
  switch (c) {
    case SensorChannel::kCamLeft: return "cam-left";
    case SensorChannel::kCamCenter: return "cam-center";
    case SensorChannel::kCamRight: return "cam-right";
    case SensorChannel::kLidar: return "lidar";
    case SensorChannel::kGps: return "gps";
  }
  return "?";
}

std::string to_string(SensorStatus s) {
  switch (s) {
    case SensorStatus::kHealthy: return "healthy";
    case SensorStatus::kDegraded: return "degraded";
    case SensorStatus::kDropped: return "dropped";
  }
  return "?";
}

SensorHealthMonitor::SensorHealthMonitor(const SensorHealthConfig& cfg)
    : cfg_(cfg) {
  status_.fill(SensorStatus::kHealthy);
  bad_streak_.fill(0);
  good_streak_.fill(0);
}

double SensorHealthMonitor::weight(SensorChannel c) const {
  switch (status(c)) {
    case SensorStatus::kHealthy: return 1.0;
    case SensorStatus::kDegraded: return cfg_.degraded_weight;
    case SensorStatus::kDropped: return 0.0;
  }
  return 1.0;
}

bool SensorHealthMonitor::any_unhealthy() const {
  for (SensorStatus s : status_) {
    if (s != SensorStatus::kHealthy) return true;
  }
  return false;
}

bool SensorHealthMonitor::ranging_lost() const {
  const bool cam_gone =
      status(SensorChannel::kCamCenter) == SensorStatus::kDropped;
  const bool lidar_gone =
      !lidar_seen_ || status(SensorChannel::kLidar) == SensorStatus::kDropped;
  return cam_gone && lidar_gone;
}

void SensorHealthMonitor::observe(const SensorFrame& frame) {
  for (int i = 0; i < 3 && i < static_cast<int>(frame.cameras.size()); ++i) {
    step_ladder(i, camera_plausible(i, frame.cameras[i]));
  }
  // An absent LiDAR (capture disabled) is not a fault: leave the channel
  // healthy so ranging_lost() keys off the absence flag downstream.
  if (!frame.lidar.empty()) {
    lidar_seen_ = true;
    step_ladder(static_cast<int>(SensorChannel::kLidar),
                lidar_plausible(frame.lidar));
  }
  step_ladder(static_cast<int>(SensorChannel::kGps),
              gps_plausible(frame.gps_imu, frame.time));
}

void SensorHealthMonitor::step_ladder(int channel, bool plausible) {
  if (plausible) {
    bad_streak_[channel] = 0;
    if (status_[channel] != SensorStatus::kHealthy &&
        ++good_streak_[channel] >= cfg_.rejoin_after) {
      status_[channel] = SensorStatus::kHealthy;
      good_streak_[channel] = 0;
    }
    return;
  }
  good_streak_[channel] = 0;
  ++bad_streak_[channel];
  if (bad_streak_[channel] >= cfg_.drop_after) {
    status_[channel] = SensorStatus::kDropped;
  } else if (bad_streak_[channel] >= cfg_.degrade_after &&
             status_[channel] == SensorStatus::kHealthy) {
    status_[channel] = SensorStatus::kDegraded;
  }
}

bool SensorHealthMonitor::camera_plausible(int index, const Image& img) {
  if (img.empty()) return true;
  const int w = img.width(), h = img.height();
  const int sx = std::max(1, w / kSampleCols);
  const int sy = std::max(1, h / kSampleRows);

  std::vector<std::uint8_t> sample;
  sample.reserve(static_cast<std::size_t>(kSampleCols) * kSampleRows * 3);
  std::uint64_t sum = 0;
  int extremes = 0, count = 0;
  for (int y = 0; y < h; y += sy) {
    for (int x = 0; x < w; x += sx) {
      const Rgb px = img.get(x, y);
      sample.push_back(px.r);
      sample.push_back(px.g);
      sample.push_back(px.b);
      sum += static_cast<std::uint64_t>(px.r) + px.g + px.b;
      if (px.r == px.g && px.g == px.b && (px.r == 0 || px.r == 255)) {
        ++extremes;
      }
      ++count;
    }
  }
  if (count == 0) return true;

  const double mean = static_cast<double>(sum) / (3.0 * count);
  const double extreme_frac = static_cast<double>(extremes) / count;
  // Photometric noise makes byte-identical consecutive samples impossible on
  // a live sensor; equality means a stuck buffer (or a dead all-zero one).
  const bool frozen =
      !prev_sample_[index].empty() && prev_sample_[index] == sample;
  prev_sample_[index] = std::move(sample);

  if (frozen) return false;
  if (mean < cfg_.cam_min_mean) return false;
  if (extreme_frac > cfg_.cam_extreme_frac) return false;
  return true;
}

bool SensorHealthMonitor::gps_plausible(const GpsImuSample& s, double time) {
  const std::array<float, 6> f = s.as_array();
  for (float v : f) {
    if (!std::isfinite(v)) return false;
  }
  // A receiver that lost its fix reports the all-zero null sample; sensor
  // noise makes an exact zero across every field unreachable otherwise.
  bool all_zero = true;
  for (float v : f) {
    if (std::fpclassify(v) != FP_ZERO) all_zero = false;
  }
  if (all_zero) return false;

  if (!gps_primed_) {
    gps_primed_ = true;
    prev_gps_ = s;
    prev_time_ = time;
    gps_window_.clear();
    gps_window_.push_back({s.gps_x, s.gps_y, 0.0, 0.0, time});
    exp_x_ = exp_y_ = 0.0;
    return true;
  }

  const double dt = time - prev_time_;
  const double dx = static_cast<double>(s.gps_x) - prev_gps_.gps_x;
  const double dy = static_cast<double>(s.gps_y) - prev_gps_.gps_y;
  const double jump = std::sqrt(dx * dx + dy * dy);

  // Dead-reckon with the PREVIOUS sample's speed/heading: the integral of
  // what the IMU claimed the vehicle was doing over this tick.
  exp_x_ += prev_gps_.speed * std::cos(prev_gps_.yaw) * dt;
  exp_y_ += prev_gps_.speed * std::sin(prev_gps_.yaw) * dt;
  prev_gps_ = s;
  prev_time_ = time;
  gps_window_.push_back({s.gps_x, s.gps_y, exp_x_, exp_y_, time});
  if (static_cast<int>(gps_window_.size()) > cfg_.gps_window_ticks + 1) {
    gps_window_.erase(gps_window_.begin());
  }

  if (jump > cfg_.gps_jump_m) return false;

  // Windowed mismatch: (GPS displacement) - (dead-reckoned displacement)
  // over the full window, as a velocity. Positional noise averages out over
  // the baseline; coherent drift does not.
  if (static_cast<int>(gps_window_.size()) > cfg_.gps_window_ticks) {
    const GpsPoint& a = gps_window_.front();
    const GpsPoint& b = gps_window_.back();
    const double span = b.t - a.t;
    if (span > 1e-9) {
      const double mx = (b.gx - a.gx) - (b.ex - a.ex);
      const double my = (b.gy - a.gy) - (b.ey - a.ey);
      const double mismatch = std::sqrt(mx * mx + my * my) / span;
      if (mismatch > cfg_.gps_velocity_mismatch_mps) return false;
    }
  }
  return true;
}

bool SensorHealthMonitor::lidar_plausible(const std::vector<float>& ranges) {
  int invalid = 0, ghosts = 0;
  for (float r : ranges) {
    if (!std::isfinite(r) || r <= 0.0f) {
      ++invalid;
    } else if (r < cfg_.lidar_ghost_range_m) {
      ++ghosts;
    }
  }
  const double n = static_cast<double>(ranges.size());
  if (invalid / n > cfg_.lidar_invalid_frac) return false;
  if (ghosts / n > cfg_.lidar_ghost_frac) return false;
  return true;
}

SensorHealthSnapshot SensorHealthMonitor::snapshot() const {
  SensorHealthSnapshot snap;
  for (int i = 0; i < kSensorChannelCount; ++i) {
    snap.status[i] = static_cast<std::uint8_t>(status_[i]);
    snap.bad_streak[i] = bad_streak_[i];
    snap.good_streak[i] = good_streak_[i];
  }
  return snap;
}

void SensorHealthMonitor::restore(const SensorHealthSnapshot& snap) {
  for (int i = 0; i < kSensorChannelCount; ++i) {
    status_[i] = static_cast<SensorStatus>(snap.status[i]);
    bad_streak_[i] = snap.bad_streak[i];
    good_streak_[i] = snap.good_streak[i];
  }
  // Transient check state re-primes over the next few observations.
  for (auto& p : prev_sample_) p.clear();
  gps_window_.clear();
  gps_primed_ = false;
  exp_x_ = exp_y_ = 0.0;
}

SensorHealthMonitor::State SensorHealthMonitor::capture() const {
  State st;
  st.ladder = snapshot();
  st.prev_sample = prev_sample_;
  st.gps_window = gps_window_;
  st.exp_x = exp_x_;
  st.exp_y = exp_y_;
  st.gps_primed = gps_primed_;
  st.prev_gps = prev_gps_;
  st.prev_time = prev_time_;
  st.lidar_seen = lidar_seen_;
  return st;
}

void SensorHealthMonitor::adopt(const State& st) {
  restore(st.ladder);
  prev_sample_ = st.prev_sample;
  gps_window_ = st.gps_window;
  exp_x_ = st.exp_x;
  exp_y_ = st.exp_y;
  gps_primed_ = st.gps_primed;
  prev_gps_ = st.prev_gps;
  prev_time_ = st.prev_time;
  lidar_seen_ = st.lidar_seen;
}

}  // namespace dav
