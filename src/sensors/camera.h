// Pinhole camera model and software rasterizer.
//
// Renders the driving scene (sky, road corridor, lane markings, vehicles,
// traffic-light gantries) from the ego vehicle's viewpoint, with per-pixel
// photometric sensor noise. Three front-facing cameras (left / center /
// right) feed the perception pipeline, as in the Sensorimotor agent.
#pragma once

#include <vector>

#include "sensors/image.h"
#include "sim/world.h"
#include "util/rng.h"

namespace dav {

struct CameraModel {
  int width = 96;
  int height = 72;
  double fov_deg = 90.0;     // horizontal field of view
  double yaw_offset = 0.0;   // mount yaw relative to vehicle heading
  double mount_height = 1.4; // meters above ground
  double noise_sigma = 2.0;  // photometric noise, 8-bit LSBs per channel

  double focal_px() const;   // fx = fy, square pixels
};

/// Rectangle in image coordinates (used for ground-truth 2-D boxes).
struct BBox2 {
  double x_min = 0, y_min = 0, x_max = 0, y_max = 0;
  double cx() const { return 0.5 * (x_min + x_max); }
  double cy() const { return 0.5 * (y_min + y_max); }
  bool valid() const { return x_max > x_min && y_max > y_min; }
};

class CameraRenderer {
 public:
  explicit CameraRenderer(CameraModel model) : model_(model) {}

  const CameraModel& model() const { return model_; }

  /// Render the world from the ego's current viewpoint. `noise` drives the
  /// photometric noise (one independent stream per run).
  Image render(const World& world, Rng& noise) const;

  /// Ground-truth projected 2-D bounding box of an NPC in this camera
  /// (invalid box if behind the camera or out of frame). Used by the
  /// KITTI-like semantic-consistency analysis.
  BBox2 project_npc(const World& world, const NpcVehicle& npc) const;

  /// Extra high-frequency scene texture (0 = clean simulator look; higher
  /// values emulate real-world imagery for the KITTI-like generator).
  void set_texture_strength(double s) { texture_strength_ = s; }

 private:
  CameraModel model_;
  double texture_strength_ = 0.0;
};

/// The standard three-camera rig of the Sensorimotor agent: left (-45 deg),
/// center, right (+45 deg).
std::vector<CameraModel> front_camera_rig(int width = 96, int height = 72,
                                          double noise_sigma = 2.0);

}  // namespace dav
