// PPM (P6) image export — the debugging window into the software renderer
// and the perception masks.
#pragma once

#include <string>

#include "sensors/image.h"

namespace dav {

/// Write the image as binary PPM (P6). Throws std::runtime_error on I/O
/// failure.
void write_ppm(const Image& img, const std::string& path);

/// Read a P6 PPM written by write_ppm (round-trip support for tests and
/// offline tooling). Throws std::runtime_error on malformed input.
Image read_ppm(const std::string& path);

}  // namespace dav
