// Temporal data-diversity and semantic-consistency analysis (paper §V-A).
//
// Bit diversity: per pixel location, the number of differing bits between the
// 24-bit RGB values of consecutive frames; for float sensors (IMU/GPS/LiDAR),
// per element differing bits of the 32-bit IEEE representation.
// Semantic consistency: per tracked object, the shift of its bounding-box
// center (pixels) or its ego-frame center (meters) between consecutive frames.
#pragma once

#include <vector>

#include "sensors/camera.h"
#include "sensors/image.h"
#include "util/stats.h"
#include "util/vec2.h"

namespace dav {

/// Histogram (bins 0..24) of per-pixel-location bit differences between two
/// equally sized RGB images. Requires matching dimensions.
CountHistogram image_bit_diversity(const Image& a, const Image& b);

/// Accumulate into an existing 25-bin histogram (for multi-frame sweeps).
void accumulate_image_bit_diversity(const Image& a, const Image& b,
                                    CountHistogram& hist);

/// Histogram (bins 0..32) of per-element bit differences between two float
/// vectors of equal length.
CountHistogram float_bit_diversity(const std::vector<float>& a,
                                   const std::vector<float>& b);

void accumulate_float_bit_diversity(const std::vector<float>& a,
                                    const std::vector<float>& b,
                                    CountHistogram& hist);

/// Center shift in pixels between two 2-D boxes (consecutive frames).
double bbox_center_shift(const BBox2& a, const BBox2& b);

}  // namespace dav
