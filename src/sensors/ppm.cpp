#include "sensors/ppm.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

namespace dav {

namespace {

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void write_ppm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_error("write_ppm: cannot open", path);
  out << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.bytes().data()),
            static_cast<std::streamsize>(img.byte_size()));
  // Flush before the final check: a full disk or dead mount often only
  // surfaces when buffered pixels hit the kernel, and a silent half-written
  // frame would poison any later diff against it.
  out.flush();
  if (!out) io_error("write_ppm: write failed for", path);
  out.close();
  if (out.fail()) io_error("write_ppm: close failed for", path);
}

Image read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_error("read_ppm: cannot open", path);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  if (magic != "P6" || w <= 0 || h <= 0 || maxval != 255) {
    throw std::runtime_error("read_ppm: unsupported header in " + path);
  }
  in.get();  // single whitespace after the header
  Image img(w, h);
  in.read(reinterpret_cast<char*>(img.bytes().data()),
          static_cast<std::streamsize>(img.byte_size()));
  if (in.gcount() != static_cast<std::streamsize>(img.byte_size())) {
    throw std::runtime_error("read_ppm: truncated pixel data in " + path);
  }
  return img;
}

}  // namespace dav
