// Per-sensor plausibility monitoring (DESIGN.md §14.2).
//
// Sensor-path faults (fi/sensor_fault.h) are common-mode: both temporal
// agents consume the same corrupted frames, so the divergence detector never
// fires. The monitor closes that gap with cheap physical-plausibility checks
// per channel — camera photometric statistics and frame deltas, GPS
// dead-reckoning innovation, LiDAR return density — and turns sustained
// violations into a Healthy -> Degraded -> Dropped ladder that fusion
// weights and core/recovery.h consume. Everything here is plain deterministic
// arithmetic on the frame contents: no randomness, no instrumented engines,
// so enabling the monitor never perturbs the simulation byte stream.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sensors/sensor_rig.h"

namespace dav {

/// Monitored input channels. Camera channels alias rig camera indices.
enum class SensorChannel : std::uint8_t {
  kCamLeft = 0,
  kCamCenter = 1,
  kCamRight = 2,
  kLidar = 3,
  kGps = 4,
};
inline constexpr int kSensorChannelCount = 5;

std::string to_string(SensorChannel c);

enum class SensorStatus : std::uint8_t { kHealthy, kDegraded, kDropped };

std::string to_string(SensorStatus s);

/// Thresholds for the plausibility checks and the degradation ladder.
/// Defaults are calibrated against clean runs of every safety scenario: no
/// channel may leave kHealthy without an injected fault (pinned by test).
struct SensorHealthConfig {
  // Ladder: consecutive implausible ticks before degrading / dropping, and
  // consecutive plausible ticks before a degraded or dropped channel rejoins.
  int degrade_after = 2;
  int drop_after = 6;
  int rejoin_after = 10;
  /// Fusion weight of a kDegraded channel (kHealthy = 1, kDropped = 0).
  double degraded_weight = 0.3;

  // Camera: mean sampled intensity below this reads as a dead sensor;
  // a larger fraction of saturated gray pixels (r==g==b at 0 or 255) than
  // this reads as impulse noise or an opaque patch; a byte-identical sampled
  // frame is impossible under photometric noise and reads as a stuck buffer.
  double cam_min_mean = 8.0;
  double cam_extreme_frac = 0.10;

  // GPS: per-tick position jumps beyond this are implausible at any speed
  // the sim reaches; the windowed GPS-displacement vs IMU dead-reckoning
  // velocity mismatch catches slow coherent drift that jump checks miss.
  double gps_jump_m = 2.5;
  double gps_velocity_mismatch_mps = 1.0;
  int gps_window_ticks = 20;

  // LiDAR: clean beams never return <= 0 (a miss reads ~max_range), and
  // sub-2 m returns are confined to imminent-collision geometry.
  double lidar_invalid_frac = 0.15;
  double lidar_ghost_range_m = 2.0;
  double lidar_ghost_frac = 0.08;
};

/// Ladder counters and statuses; transient check state (previous frames, the
/// dead-reckoning window) is deliberately excluded and re-primes after
/// restore, trading a few blind ticks for a small deterministic snapshot.
struct SensorHealthSnapshot {
  std::array<std::uint8_t, kSensorChannelCount> status{};
  std::array<int, kSensorChannelCount> bad_streak{};
  std::array<int, kSensorChannelCount> good_streak{};
};

/// Watches successive SensorFrames and maintains a status per channel.
class SensorHealthMonitor {
 public:
  explicit SensorHealthMonitor(const SensorHealthConfig& cfg = {});

  /// Run all plausibility checks for one tick and advance the ladder.
  void observe(const SensorFrame& frame);

  SensorStatus status(SensorChannel c) const {
    return status_[static_cast<int>(c)];
  }
  /// Fusion weight: 1 healthy, cfg.degraded_weight degraded, 0 dropped.
  double weight(SensorChannel c) const;
  bool any_unhealthy() const;
  /// True once the ego has lost every forward-ranging source (center camera
  /// dropped and LiDAR dropped or absent): nothing can bound obstacle
  /// distance, so recovery must escalate to a safe stop.
  bool ranging_lost() const;

  SensorHealthSnapshot snapshot() const;
  void restore(const SensorHealthSnapshot& snap);

  /// GPS dead-reckoning window entry (public so checkpoints can carry it).
  struct GpsPoint {
    double gx = 0, gy = 0;  // reported GPS position
    double ex = 0, ey = 0;  // cumulative dead-reckoned displacement
    double t = 0;
  };

  /// Complete monitor state for mid-run checkpoints. Unlike
  /// SensorHealthSnapshot (which drops transient buffers and re-primes over
  /// a few blind ticks), this carries every check buffer so a restored
  /// monitor is byte-equivalent to one that observed the whole prefix.
  struct State {
    SensorHealthSnapshot ladder;
    std::array<std::vector<std::uint8_t>, 3> prev_sample;
    std::vector<GpsPoint> gps_window;
    double exp_x = 0, exp_y = 0;
    bool gps_primed = false;
    GpsImuSample prev_gps;
    double prev_time = 0;
    bool lidar_seen = false;
  };

  State capture() const;
  void adopt(const State& st);

  const SensorHealthConfig& config() const { return cfg_; }

 private:
  void step_ladder(int channel, bool plausible);
  bool camera_plausible(int index, const Image& img);
  bool gps_plausible(const GpsImuSample& s, double time);
  bool lidar_plausible(const std::vector<float>& ranges);

  SensorHealthConfig cfg_;
  std::array<SensorStatus, kSensorChannelCount> status_{};
  std::array<int, kSensorChannelCount> bad_streak_{};
  std::array<int, kSensorChannelCount> good_streak_{};

  // Camera state: the previous sampled grid per camera (frozen detection).
  std::array<std::vector<std::uint8_t>, 3> prev_sample_;

  // GPS dead-reckoning window: ring buffer of (gps position, integrated
  // expected displacement, time) so the velocity-mismatch check compares a
  // full window baseline instead of noise-dominated per-tick deltas.
  std::vector<GpsPoint> gps_window_;
  double exp_x_ = 0, exp_y_ = 0;  // dead-reckoning accumulators
  bool gps_primed_ = false;
  GpsImuSample prev_gps_;
  double prev_time_ = 0;

  // Whether this run ever produced LiDAR returns (absence is a rig config
  // choice, not a fault, but it does mean LiDAR can't cover for a camera).
  bool lidar_seen_ = false;
};

}  // namespace dav
