// Sensor frame aggregation: what the ADS receives each tick (paper Fig 3:
// "all sensor data posted at 40 Hz" in synchronous mode).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fi/sensor_fault.h"
#include "sensors/camera.h"
#include "sensors/inertial.h"
#include "util/rng.h"

namespace dav {

/// All sensor data for one time step.
struct SensorFrame {
  int step = 0;
  double time = 0.0;
  std::vector<Image> cameras;  // left, center, right
  GpsImuSample gps_imu;
  std::vector<float> lidar;    // empty when LiDAR capture is disabled
};

/// Captures sensor frames from the world with per-run noise streams.
class SensorRig {
 public:
  /// `noise_seed` fixes this run's sensor noise (the only nondeterminism
  /// between golden runs, mirroring the paper's run-to-run variation).
  SensorRig(std::vector<CameraModel> cameras, std::uint64_t noise_seed,
            bool enable_lidar = false);

  SensorFrame capture(const World& world, int step);

  /// Corrupt frames at the capture seam — where real sensor faults enter,
  /// upstream of every consumer. Non-owning; nullptr detaches. The injector
  /// draws from its own plan-seeded streams, so attaching one never perturbs
  /// the rig's noise sequences.
  void attach_fault_injector(SensorFaultInjector* injector) {
    injector_ = injector;
  }

  const std::vector<CameraRenderer>& renderers() const { return renderers_; }
  /// Total bytes of one frame's camera payload (resource accounting).
  std::size_t frame_bytes() const;

  /// The rig's only mutable state is its three noise streams; checkpoints
  /// carry their exact positions so a restored rig continues the same noise
  /// sequence instead of re-seeding from the start.
  struct RngState {
    std::array<std::uint64_t, 4> camera{};
    std::array<std::uint64_t, 4> imu{};
    std::array<std::uint64_t, 4> lidar{};
  };
  RngState rng_state() const {
    return {camera_noise_.state(), imu_noise_.state(), lidar_noise_.state()};
  }
  void set_rng_state(const RngState& st) {
    camera_noise_.set_state(st.camera);
    imu_noise_.set_state(st.imu);
    lidar_noise_.set_state(st.lidar);
  }

 private:
  std::vector<CameraRenderer> renderers_;
  Rng camera_noise_;
  Rng imu_noise_;
  Rng lidar_noise_;
  GpsImuModel imu_model_;
  LidarModel lidar_model_;
  bool enable_lidar_;
  SensorFaultInjector* injector_ = nullptr;
};

}  // namespace dav
