// Bit-level utilities for the temporal-data-diversity analysis (paper §V-A).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace dav {

/// Rotate left, well-defined for any k (including 0 and multiples of 64,
/// where the naive `x >> (64 - k)` formulation shifts by 64 — UB).
inline std::uint64_t rotl64(std::uint64_t x, int k) {
  const unsigned s = static_cast<unsigned>(k) & 63u;
  if (s == 0) return x;
  return (x << s) | (x >> (64u - s));
}

/// Number of differing bits between two bytes.
inline int bit_diff(std::uint8_t a, std::uint8_t b) {
  return std::popcount(static_cast<unsigned>(a ^ b));
}

/// Number of differing bits between two 32-bit words.
inline int bit_diff(std::uint32_t a, std::uint32_t b) {
  return std::popcount(a ^ b);
}

/// Number of differing bits between the IEEE-754 representations of two floats
/// (the paper measures IMU/GPS/LiDAR diversity on 32-bit floating point).
inline int bit_diff(float a, float b) {
  std::uint32_t ua = 0;
  std::uint32_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return std::popcount(ua ^ ub);
}

/// Reinterpret a float's bits as u32.
inline std::uint32_t float_bits(float f) {
  std::uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

/// Reinterpret u32 bits as a float.
inline float bits_float(std::uint32_t u) {
  float f = 0.0f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

/// XOR a float's bit pattern with a mask (the fault-injection corruption model:
/// destination register contents XORed with a selected mask, paper §II-B).
inline float xor_float(float f, std::uint32_t mask) {
  return bits_float(float_bits(f) ^ mask);
}

inline std::uint64_t double_bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bits_double(std::uint64_t u) {
  double d = 0.0;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

inline double xor_double(double d, std::uint64_t mask) {
  return bits_double(double_bits(d) ^ mask);
}

/// FNV-1a 64-bit hash. Used for record checksums and config digests in the
/// campaign journal; chain calls by passing the previous hash as `h`.
inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t h = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dav
