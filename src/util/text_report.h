// Text rendering of tables, heat maps, box plots and CDFs for the bench
// binaries, which regenerate the paper's tables/figures as terminal output.
#pragma once

#include <string>
#include <vector>

#include "util/stats.h"

namespace dav {

/// Fixed-width text table. Column widths are derived from content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with column separators and a header rule.
  std::string render() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a numeric matrix as a text heat map (used for Fig 7a/7b): each cell
/// prints the value; row/column labels are caller-provided.
std::string render_heatmap(const std::string& title,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::vector<std::vector<double>>& values,
                           int precision = 2);

/// Render a horizontal ASCII box plot line for a five-number summary, scaled
/// to [lo, hi] over `width` characters (used for Fig 6).
std::string render_box(const BoxStats& b, double lo, double hi, int width = 60);

/// Render an empirical CDF of `xs` as "x  cum_count" rows plus a sparkline
/// (used for Fig 8 lead-detection-time plot).
std::string render_cdf(const std::string& title, std::vector<double> xs,
                       const std::string& x_label, int steps = 12);

}  // namespace dav
