#include "util/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace dav {

namespace {

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error("CsvWriter: " + what + " " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path)
    : path_(path), tmp_path_(path + ".tmp"), out_(tmp_path_, std::ios::trunc) {
  if (!out_) io_error("cannot open", tmp_path_);
}

CsvWriter::~CsvWriter() {
  try {
    close();
  } catch (...) {
    // A destructor must not throw; call close() explicitly to observe
    // publish failures.
  }
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cols[i]);
  }
  out_ << '\n';
  if (!out_) io_error("write failed for", tmp_path_);
}

void CsvWriter::endrow() {
  out_ << row_.str() << '\n';
  row_.str({});
  row_.clear();
  if (!out_) io_error("write failed for", tmp_path_);
}

void CsvWriter::flush() {
  out_.flush();
  if (!out_) io_error("flush failed for", tmp_path_);
}

void CsvWriter::close() {
  if (closed_) return;
  out_.flush();
  if (!out_) io_error("flush failed for", tmp_path_);
  out_.close();
  if (out_.fail()) io_error("close failed for", tmp_path_);
  // Atomic publish: readers see the old artifact or the complete new one.
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    io_error("cannot rename " + tmp_path_ + " to", path_);
  }
  closed_ = true;
}

}  // namespace dav
