#include "util/csv.h"

#include <stdexcept>

namespace dav {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i) out_ << ',';
    out_ << cols[i];
  }
  out_ << '\n';
}

void CsvWriter::endrow() {
  out_ << row_.str() << '\n';
  row_.str({});
  row_.clear();
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace dav
