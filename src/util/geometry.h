// Planar geometry: oriented bounding boxes (vehicle footprints, collision
// detection), segments, and polyline utilities (routes, trajectories).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "util/vec2.h"

namespace dav {

/// Oriented bounding box: center pose plus half extents. Vehicles are OBBs.
struct Obb {
  Pose2 pose;
  double half_length = 0.0;  // along heading
  double half_width = 0.0;   // across heading

  /// The four corners, counter-clockwise, in world coordinates.
  std::array<Vec2, 4> corners() const;
  bool contains(const Vec2& p) const;
};

/// Separating-axis test for two OBBs.
bool obb_intersect(const Obb& a, const Obb& b);

/// Shortest distance between two OBBs' corner/edge sets (0 if intersecting).
double obb_distance(const Obb& a, const Obb& b);

/// Distance from point p to segment [a, b].
double point_segment_distance(const Vec2& p, const Vec2& a, const Vec2& b);

/// True if segments [a1,a2] and [b1,b2] intersect (including touching).
bool segments_intersect(const Vec2& a1, const Vec2& a2, const Vec2& b1,
                        const Vec2& b2);

/// Polyline with arc-length parameterization. Routes and lane center lines are
/// polylines; vehicles track progress along them by arc length s.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const { return points_; }
  double length() const { return cum_.empty() ? 0.0 : cum_.back(); }
  bool empty() const { return points_.size() < 2; }
  std::size_t size() const { return points_.size(); }

  /// Point at arc length s (clamped to [0, length]).
  Vec2 point_at(double s) const;
  /// Unit tangent at arc length s.
  Vec2 tangent_at(double s) const;
  /// Heading (radians) at arc length s.
  double heading_at(double s) const;
  /// Arc length of the closest point on the polyline to p.
  double project(const Vec2& p) const;
  /// Signed lateral offset of p from the polyline (+ = left of direction).
  double lateral_offset(const Vec2& p) const;
  /// Approximate signed curvature at arc length s (1/m).
  double curvature_at(double s) const;

  void append(const Vec2& p);

 private:
  std::size_t segment_index(double s) const;
  std::vector<Vec2> points_;
  std::vector<double> cum_;  // cumulative arc length, cum_[i] = length to points_[i]
};

}  // namespace dav
