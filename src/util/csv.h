// Minimal CSV writer for exporting run traces and bench series.
//
// Crash-safe: rows stream to `<path>.tmp`, which is atomically renamed onto
// the final path by close() (or the destructor). A run killed mid-write —
// routine under fault injection — leaves either the previous artifact or
// none, never a torn one. String cells containing commas, quotes or
// newlines are quoted and their quotes doubled (RFC 4180).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dav {

/// RFC-4180 escape: quoted iff the cell contains a comma, quote or newline.
std::string csv_escape(const std::string& cell);

/// Streams rows of mixed string/number cells to a file. Throws on open
/// failure; write errors surface (with the path) from endrow/flush/close.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  /// Closes (flush + atomic rename) if close() was not already called;
  /// destructor errors are swallowed — call close() to observe them.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(const std::vector<std::string>& cols);

  /// Begin a row; append cells with `<<`; end with `endrow()`.
  template <typename T>
  CsvWriter& operator<<(const T& value) {
    if (!row_.str().empty()) row_ << ',';
    row_ << value;
    return *this;
  }
  CsvWriter& operator<<(const std::string& value) {
    if (!row_.str().empty()) row_ << ',';
    row_ << csv_escape(value);
    return *this;
  }
  CsvWriter& operator<<(const char* value) {
    if (!row_.str().empty()) row_ << ',';
    row_ << csv_escape(value);
    return *this;
  }

  void endrow();
  /// Flush buffered rows to the temp file (the final artifact still appears
  /// only at close()).
  void flush();
  /// Flush and atomically publish the temp file as `path`. Idempotent.
  void close();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  std::ostringstream row_;
  bool closed_ = false;
};

}  // namespace dav
