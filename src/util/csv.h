// Minimal CSV writer for exporting run traces and bench series.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dav {

/// Streams rows of mixed string/number cells to a file. Throws on open failure.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void header(const std::vector<std::string>& cols);

  /// Begin a row; append cells with `<<`; end with `endrow()`.
  template <typename T>
  CsvWriter& operator<<(const T& value) {
    if (!row_.str().empty()) row_ << ',';
    row_ << value;
    return *this;
  }

  void endrow();
  void flush();

 private:
  std::ofstream out_;
  std::ostringstream row_;
};

}  // namespace dav
