// Statistics helpers: summary stats, percentiles, rolling windows, histograms,
// and binary-classification accounting (precision / recall / F1, paper §III-D).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace dav {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double percentile(std::vector<double> xs, double p);

/// Five-number summary used for the Fig-6 style box plots.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t n = 0;
};
BoxStats box_stats(std::vector<double> xs);

/// Fixed-capacity rolling window with O(1) mean/max maintenance. This is the
/// "rw"-sized smoother of the error-detection engine (paper §III-D): the
/// detection signal is the rolling mean of per-step actuation differences.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);

  void push(double x);
  void clear();

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return buf_.size() == capacity_; }
  /// Mean of the current contents; 0 when empty.
  double mean() const;
  /// Max of the current contents; 0 when empty.
  double max() const;

  /// Contents oldest-first, for checkpoint capture.
  std::vector<double> values() const { return {buf_.begin(), buf_.end()}; }
  /// Running sum as maintained by push(); exposed (rather than recomputed
  /// from values()) because float addition is order-dependent and a restored
  /// window must produce bit-identical means.
  double running_sum() const { return sum_; }
  /// Restore contents + running sum captured by values()/running_sum().
  void restore(const std::vector<double>& xs, double running_sum);

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

/// Integer-valued histogram over [0, num_bins). Used for the per-pixel
/// bit-diversity distributions of paper Fig 5 (bins = bit counts).
class CountHistogram {
 public:
  explicit CountHistogram(std::size_t num_bins);

  void add(std::size_t bin, std::uint64_t count = 1);
  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t num_bins() const { return counts_.size(); }

  /// Value v such that at least p% of the mass lies at bins <= v.
  std::size_t percentile(double p) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Binary-classification confusion matrix.
struct Confusion {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  void add(bool predicted_positive, bool actually_positive);
  double precision() const;
  double recall() const;
  double f1() const;
  std::uint64_t total() const { return tp + fp + tn + fn; }
};

/// Online mean/min/max accumulator (single pass, no storage).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dav
