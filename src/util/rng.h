// Deterministic, splittable random number generation.
//
// Experiments must be exactly reproducible from a campaign seed, and sub-streams
// (per-run sensor noise, per-run fault site selection, NPC traffic) must be
// independent so adding draws to one stream does not perturb another. We use
// xoshiro256** seeded via splitmix64, the standard recipe.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/bits.h"

namespace dav {

/// splitmix64 step; used for seeding and for deriving child seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator. Deterministic in (this stream
  /// position, tag); does not advance this generator's own sequence in a way
  /// that correlates with the child.
  Rng split(std::uint64_t tag) {
    std::uint64_t s = (*this)() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless method is overkill here; modulo bias is
    // negligible for n << 2^64 and determinism is what matters.
    return (*this)() % n;
  }

  /// Standard normal via Box-Muller (polar form avoided to keep draw count
  /// deterministic: always exactly two uniforms per call).
  double normal() {
    const double u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
    return r * std::cos(2.0 * M_PI * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exact stream position, for checkpoint capture. Restoring via
  /// `set_state` resumes the sequence mid-stream, unlike re-seeding which
  /// restarts it from the beginning.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace dav
