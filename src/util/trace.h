// Flight recorder: per-run trace journal for the DiverseAV stack.
//
// The paper's argument is time-resolved — divergence vs. threshold (Fig 5),
// detection lead time (Fig 8), activation→corruption→DUE causality — but a
// RunResult only keeps end-of-run aggregates. The TraceRecorder captures the
// tick-by-tick story: a fixed-capacity ring buffer of POD events (scoped
// spans, counters, instants) recorded with zero allocation on the hot path
// and drained into Chrome-trace JSON / CSV at run end (see obs/export.h).
//
// Determinism contract (davlint-enforced, tested by test_obs.cpp):
//   * Every SEMANTIC field — event identity, tick index, counter value — is a
//     deterministic function of the run seed. Events are timestamped with the
//     simulation tick, never a wall clock.
//   * Wall time appears ONLY in span durations (dur_ns), is read only by
//     these primitives (std::chrono::steady_clock — util/trace holds the
//     davlint obs-clock carve-out), and never feeds back into simulation
//     state: a traced run's RunResult is bit-identical to the untraced run.
//
// This header lives in src/util (layer 0) so that every layer can record
// events without an upward include — the davlint layering rule forbids
// core/agent/fi → obs back-edges. It still *is* the obs layer's recording
// API (hence namespace dav::obs); the obs layer proper (src/obs) holds the
// exporters that drain the ring into trace files.
//   * Recording is a no-op (one pointer test) unless a recorder is installed,
//     so the instrumented hot paths cost nothing when DAV_TRACE is unset.
//
// The recorder is process-global but not thread-safe: one run per process is
// the execution model (campaign parallelism is fork-based, executor.h).
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dav::obs {

/// Span identities: the stages of one synchronous tick.
enum class Stage : std::uint8_t {
  kTick,           // whole run-loop iteration (driver)
  kSensorCapture,  // sensor rig render + noise (driver)
  kAgentAct,       // one agent's full sensorimotor step (ads_system)
  kPerception,     // camera pipeline (agent)
  kPlanner,        // route/cruise planning (agent)
  kWaypointHead,   // GPU waypoint head (agent)
  kControl,        // PID + steering (agent)
  kDetector,       // online detector observe (detector)
  kRecoveryTick,   // recovery FSM tick incl. probe/degraded steps (recovery)
  kWorldStep,      // physics + NPC update (driver)
  kCount
};
const char* to_string(Stage s);

/// Counter identities: tick-indexed scalar series.
enum class Counter : std::uint8_t {
  kDivergence,     // smoothed divergence, one track per actuation channel
  kThreshold,      // LUT threshold for the current state, per channel
  kAlarmStreak,    // consecutive exceedances toward the debounce gate
  kCorruptions,    // cumulative corrupted instructions (gpu0 + cpu0)
  kRecoveryState,  // 0 nominal, 1 probing, 2 degraded, 3 failback,
                   // 4 sensor-degraded
  kCvip,           // closest vehicle in path, meters
  kCount
};
const char* to_string(Counter c);

/// Instant identities: semantic point events.
enum class Instant : std::uint8_t {
  kDetectorAlarm,      // online detector latched (value = alarm time, sec)
  kDue,                // platform DUE raised (value = DueSource)
  kFailbackEngaged,    // safe-stop failback took over the vehicle
  kFaultActivated,     // first corrupted instruction (value = dyn index)
  kCrashManifested,    // corruption resolved to a CrashError
  kHangManifested,     // corruption resolved to a HangError
  kRecoveryProbe,      // arbitration probe began (value = alarm time, sec)
  kRecoveryRestart,    // agent restart began (track = suspect, value = trigger)
  kRecoveryRejoin,     // rewarm complete, full redundancy restored
  kRecoveryEscalated,  // presumed-permanent: recovery gave up
  kAgentRestart,       // fresh agent constructed + resynced (track = suspect)
  kSensorDegraded,     // a sensor channel left kHealthy (track = channel)
  kSensorRejoin,       // a degraded sensor channel rejoined (track = channel)
  kCount
};
const char* to_string(Instant i);

enum class EventKind : std::uint8_t { kSpan, kCounter, kInstant };

/// Fixed-bucket log2 latency histogram. POD, allocation-free, deterministic
/// layout: bucket b holds durations whose bit width is b, i.e. the half-open
/// range [2^(b-1), 2^b) nanoseconds (bucket 0 holds exact zeros). Nonzero
/// u64 bit widths run 1..64, so with the zero bucket the full range takes 65
/// buckets — add() never saturates or clamps a real duration into the wrong
/// bucket. Unlike the event ring, histograms never evict: percentiles
/// computed from them describe EVERY span recorded, even after the ring
/// wrapped and dropped the oldest events.
struct StageHistogram {
  std::array<std::uint64_t, 65> buckets{};

  void add(std::uint64_t dur_ns) {
    ++buckets[dur_ns == 0 ? 0 : std::bit_width(dur_ns)];
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (std::uint64_t b : buckets) n += b;
    return n;
  }

  void merge(const StageHistogram& other) {
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] += other.buckets[i];
    }
  }

  /// Lower bound (ns) of the bucket containing the p-th percentile
  /// (p in [0,100]), using the nearest-rank definition: the bucket holding
  /// the ceil(p/100 * count)-th smallest sample. Returns 0 when empty.
  /// For durations that are exact powers of two the estimate is exact.
  std::uint64_t percentile_ns(double p) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * n + 0.5);
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      seen += buckets[b];
      if (seen >= rank) {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
      }
    }
    return 0;
  }
};

/// One histogram per pipeline stage. The recorder updates these inline in
/// record(), so they ride along with the ring at zero extra allocation.
struct StageHistogramSet {
  std::array<StageHistogram, static_cast<std::size_t>(Stage::kCount)> stages{};

  StageHistogram& at(Stage s) {
    return stages[static_cast<std::size_t>(s)];
  }
  const StageHistogram& at(Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }

  void merge(const StageHistogramSet& other) {
    for (std::size_t i = 0; i < stages.size(); ++i) {
      stages[i].merge(other.stages[i]);
    }
  }

  std::uint64_t total_count() const {
    std::uint64_t n = 0;
    for (const StageHistogram& h : stages) n += h.count();
    return n;
  }
};

/// One POD trace event. 24 bytes; the ring holds these by value.
struct TraceEvent {
  std::uint32_t tick = 0;    // simulation tick index (semantic timestamp)
  std::uint16_t id = 0;      // Stage / Counter / Instant enum value
  EventKind kind = EventKind::kSpan;
  std::int8_t track = -1;    // agent index, channel, or -1
  double value = 0.0;        // counter value / instant argument
  std::uint64_t dur_ns = 0;  // span wall duration; obs-layer only
};

/// Fixed-capacity ring buffer of trace events. All storage is allocated in
/// the constructor; record() never allocates. Overflow overwrites the OLDEST
/// event (the newest events are the ones that explain the outcome) and
/// counts the drops.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity);

  void record(const TraceEvent& ev) {
    if (ev.kind == EventKind::kSpan &&
        ev.id < static_cast<std::uint16_t>(Stage::kCount)) {
      hist_.stages[ev.id].add(ev.dur_ns);
    }
    if (buf_.size() < capacity_) {
      buf_.push_back(ev);
      return;
    }
    buf_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events overwritten by overflow (oldest-first eviction).
  std::uint64_t dropped() const { return dropped_; }

  /// Per-stage latency histograms over EVERY span ever recorded — these
  /// survive ring eviction, so percentiles stay exact after overflow.
  const StageHistogramSet& histograms() const { return hist_; }

  /// Events in recording order, oldest surviving event first.
  std::vector<TraceEvent> drain() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest event when the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> buf_;
  StageHistogramSet hist_;
};

/// Per-run tracing options, routed through RunConfig so forked executor
/// workers inherit them. None of these fields affect run_experiment's result
/// (and none enter run_config_digest): tracing is observability only.
struct TraceOptions {
  /// Output directory; empty disables tracing entirely.
  std::string dir;
  /// Ring capacity in events (DAV_TRACE_CAPACITY; default 64 Ki ≈ 1.5 MiB).
  std::size_t capacity = 65536;
  /// Perfetto pid for this run's events; the campaign layer assigns one pid
  /// per plan index so multi-run traces stay distinguishable.
  int pid = 1;
  /// File stem override ("run_<label>.trace.json"); empty derives a stable
  /// stem from the run-config digest.
  std::string label;

  bool enabled() const { return !dir.empty(); }

  // Environment opt-in (DAV_TRACE / DAV_TRACE_CAPACITY) lives in
  // dav::EnvOptions::trace_options() — the obs layer never reads env vars.
};

/// The deterministic residue of one traced run, stashed by the driver after
/// the run finishes so the campaign executor can harvest it without holding a
/// reference to the (stack-local) recorder. Contains ONLY semantic data —
/// instant events (whose tick/id/track/value are functions of the run seed)
/// and the per-stage histograms + drop count (wall-clock summaries that never
/// feed back into results) — so shipping it over the campaign transport
/// cannot perturb journal or summary byte-determinism.
struct RunCapture {
  bool valid = false;
  std::uint64_t dropped = 0;
  double dt = 0.0;  ///< tick length, so merged traces keep simulated time
  StageHistogramSet histograms;
  std::vector<TraceEvent> instants;  // EventKind::kInstant only, run order
};

/// Stash/harvest the capture of the most recently completed traced run.
/// Process-global, single-slot: the executor consumes it immediately after
/// each run_experiment return (one run per process is the execution model).
void set_last_run_capture(RunCapture cap);
/// Returns the stashed capture and clears the slot; `valid` is false when no
/// traced run completed since the last take.
RunCapture take_last_run_capture();

namespace detail {
// Process-global recorder + current tick. Not thread-safe by design (one run
// per process; campaign parallelism forks).
extern TraceRecorder* g_recorder;
extern std::uint32_t g_tick;
}  // namespace detail

/// The installed recorder, or nullptr when tracing is off.
inline TraceRecorder* recorder() { return detail::g_recorder; }

/// The driver stamps the current simulation tick once per loop iteration;
/// all helpers below pick it up implicitly, so instrumented callees
/// (detector, engines) need no tick plumbing.
inline void set_tick(std::uint32_t tick) { detail::g_tick = tick; }
inline std::uint32_t current_tick() { return detail::g_tick; }

/// Installs a recorder for the current scope (the driver wraps one run);
/// restores the previous recorder on destruction.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(TraceRecorder* rec)
      : prev_(detail::g_recorder), prev_tick_(detail::g_tick) {
    detail::g_recorder = rec;
    detail::g_tick = 0;
  }
  ~ScopedRecorder() {
    detail::g_recorder = prev_;
    detail::g_tick = prev_tick_;
  }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  TraceRecorder* prev_;
  std::uint32_t prev_tick_;
};

/// RAII span: wall-clock duration is measured here (and only here); the
/// event's timestamp is the current simulation tick. When no recorder is
/// installed the constructor is a single pointer test and no clock is read.
class SpanScope {
 public:
  explicit SpanScope(Stage stage, int track = -1)
      : rec_(detail::g_recorder) {
    if (rec_ == nullptr) return;
    stage_ = stage;
    track_ = static_cast<std::int8_t>(track);
    start_ = std::chrono::steady_clock::now();
  }
  ~SpanScope() {
    if (rec_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    TraceEvent ev;
    ev.tick = detail::g_tick;
    ev.id = static_cast<std::uint16_t>(stage_);
    ev.kind = EventKind::kSpan;
    ev.track = track_;
    ev.dur_ns = static_cast<std::uint64_t>(ns < 0 ? 0 : ns);
    rec_->record(ev);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceRecorder* rec_;
  Stage stage_ = Stage::kTick;
  std::int8_t track_ = -1;
  std::chrono::steady_clock::time_point start_;
};

/// Record a tick-indexed counter sample. No-op without a recorder.
inline void counter(Counter c, double value, int track = -1) {
  TraceRecorder* rec = detail::g_recorder;
  if (rec == nullptr) return;
  TraceEvent ev;
  ev.tick = detail::g_tick;
  ev.id = static_cast<std::uint16_t>(c);
  ev.kind = EventKind::kCounter;
  ev.track = static_cast<std::int8_t>(track);
  ev.value = value;
  rec->record(ev);
}

/// Record a semantic point event. No-op without a recorder.
inline void instant(Instant i, double value = 0.0, int track = -1) {
  TraceRecorder* rec = detail::g_recorder;
  if (rec == nullptr) return;
  TraceEvent ev;
  ev.tick = detail::g_tick;
  ev.id = static_cast<std::uint16_t>(i);
  ev.kind = EventKind::kInstant;
  ev.track = static_cast<std::int8_t>(track);
  ev.value = value;
  rec->record(ev);
}

}  // namespace dav::obs
