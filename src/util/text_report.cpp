#include "util/text_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dav {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      out << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string render_heatmap(const std::string& title,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::vector<std::vector<double>>& values,
                           int precision) {
  std::ostringstream out;
  out << title << "\n";
  TextTable table([&] {
    std::vector<std::string> h{""};
    h.insert(h.end(), col_labels.begin(), col_labels.end());
    return h;
  }());
  for (std::size_t r = 0; r < values.size(); ++r) {
    std::vector<std::string> row;
    row.push_back(r < row_labels.size() ? row_labels[r] : "");
    for (double v : values[r]) row.push_back(TextTable::fmt(v, precision));
    table.add_row(std::move(row));
  }
  out << table.render();
  return out.str();
}

std::string render_box(const BoxStats& b, double lo, double hi, int width) {
  if (hi <= lo) hi = lo + 1.0;
  const auto col = [&](double v) {
    const double t = (v - lo) / (hi - lo);
    return static_cast<int>(std::round(std::clamp(t, 0.0, 1.0) * (width - 1)));
  };
  std::string line(static_cast<std::size_t>(width), ' ');
  const int cmin = col(b.min), cq1 = col(b.q1), cmed = col(b.median),
            cq3 = col(b.q3), cmax = col(b.max);
  for (int i = cmin; i <= cmax; ++i) line[static_cast<std::size_t>(i)] = '-';
  for (int i = cq1; i <= cq3; ++i) line[static_cast<std::size_t>(i)] = '=';
  line[static_cast<std::size_t>(cmin)] = '|';
  line[static_cast<std::size_t>(cmax)] = '|';
  line[static_cast<std::size_t>(cmed)] = '#';
  return line;
}

std::string render_cdf(const std::string& title, std::vector<double> xs,
                       const std::string& x_label, int steps) {
  std::ostringstream out;
  out << title << "\n";
  if (xs.empty()) {
    out << "  (no samples)\n";
    return out.str();
  }
  std::sort(xs.begin(), xs.end());
  const double lo = xs.front();
  const double hi = xs.back();
  out << "  " << x_label << " -> cumulative count (n=" << xs.size() << ")\n";
  for (int i = 0; i <= steps; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / steps;
    const auto cum = static_cast<std::size_t>(
        std::upper_bound(xs.begin(), xs.end(), x) - xs.begin());
    const int bar =
        static_cast<int>(std::round(40.0 * static_cast<double>(cum) /
                                    static_cast<double>(xs.size())));
    out << "  " << TextTable::fmt(x, 2) << "\t" << cum << "\t"
        << std::string(static_cast<std::size_t>(bar), '*') << "\n";
  }
  return out.str();
}

}  // namespace dav
