#include "util/trace.h"

#include <algorithm>
#include <utility>

namespace dav::obs {

namespace detail {
TraceRecorder* g_recorder = nullptr;
std::uint32_t g_tick = 0;
}  // namespace detail

namespace {
RunCapture g_last_capture;
}  // namespace

void set_last_run_capture(RunCapture cap) {
  g_last_capture = std::move(cap);
}

RunCapture take_last_run_capture() {
  RunCapture out = std::move(g_last_capture);
  g_last_capture = RunCapture{};
  return out;
}

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kTick: return "tick";
    case Stage::kSensorCapture: return "sensor_capture";
    case Stage::kAgentAct: return "agent_act";
    case Stage::kPerception: return "perception";
    case Stage::kPlanner: return "planner";
    case Stage::kWaypointHead: return "waypoint_head";
    case Stage::kControl: return "control";
    case Stage::kDetector: return "detector";
    case Stage::kRecoveryTick: return "recovery_tick";
    case Stage::kWorldStep: return "world_step";
    case Stage::kCount: break;
  }
  return "?";
}

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kDivergence: return "divergence";
    case Counter::kThreshold: return "threshold";
    case Counter::kAlarmStreak: return "alarm_streak";
    case Counter::kCorruptions: return "corruptions";
    case Counter::kRecoveryState: return "recovery_state";
    case Counter::kCvip: return "cvip";
    case Counter::kCount: break;
  }
  return "?";
}

const char* to_string(Instant i) {
  switch (i) {
    case Instant::kDetectorAlarm: return "detector_alarm";
    case Instant::kDue: return "due";
    case Instant::kFailbackEngaged: return "failback_engaged";
    case Instant::kFaultActivated: return "fault_activated";
    case Instant::kCrashManifested: return "crash_manifested";
    case Instant::kHangManifested: return "hang_manifested";
    case Instant::kRecoveryProbe: return "recovery_probe";
    case Instant::kRecoveryRestart: return "recovery_restart";
    case Instant::kRecoveryRejoin: return "recovery_rejoin";
    case Instant::kRecoveryEscalated: return "recovery_escalated";
    case Instant::kAgentRestart: return "agent_restart";
    case Instant::kSensorDegraded: return "sensor_degraded";
    case Instant::kSensorRejoin: return "sensor_rejoin";
    case Instant::kCount: break;
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  buf_.reserve(capacity_);
}

std::vector<TraceEvent> TraceRecorder::drain() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  // head_ marks the oldest surviving event once the ring has wrapped.
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

}  // namespace dav::obs
