#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace dav {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

BoxStats box_stats(std::vector<double> xs) {
  BoxStats b;
  b.n = xs.size();
  if (xs.empty()) return b;
  std::sort(xs.begin(), xs.end());
  b.min = xs.front();
  b.max = xs.back();
  // percentile() re-sorts, which is redundant but cheap at our sizes.
  b.q1 = percentile(xs, 25.0);
  b.median = percentile(xs, 50.0);
  b.q3 = percentile(xs, 75.0);
  return b;
}

RollingWindow::RollingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("RollingWindow capacity must be > 0");
}

void RollingWindow::push(double x) {
  buf_.push_back(x);
  sum_ += x;
  if (buf_.size() > capacity_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
}

void RollingWindow::clear() {
  buf_.clear();
  sum_ = 0.0;
}

void RollingWindow::restore(const std::vector<double>& xs,
                            double running_sum) {
  if (xs.size() > capacity_) {
    throw std::invalid_argument("RollingWindow restore exceeds capacity");
  }
  buf_.assign(xs.begin(), xs.end());
  sum_ = running_sum;
}

double RollingWindow::mean() const {
  return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
}

double RollingWindow::max() const {
  if (buf_.empty()) return 0.0;
  return *std::max_element(buf_.begin(), buf_.end());
}

CountHistogram::CountHistogram(std::size_t num_bins) : counts_(num_bins, 0) {
  if (num_bins == 0) throw std::invalid_argument("CountHistogram needs >= 1 bin");
}

void CountHistogram::add(std::size_t bin, std::uint64_t count) {
  counts_.at(bin) += count;
  total_ += count;
}

std::size_t CountHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(total_));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target && cum > 0) return i;
  }
  return counts_.size() - 1;
}

void Confusion::add(bool predicted_positive, bool actually_positive) {
  if (predicted_positive && actually_positive) {
    ++tp;
  } else if (predicted_positive && !actually_positive) {
    ++fp;
  } else if (!predicted_positive && actually_positive) {
    ++fn;
  } else {
    ++tn;
  }
}

double Confusion::precision() const {
  const std::uint64_t denom = tp + fp;
  return denom ? static_cast<double>(tp) / static_cast<double>(denom) : 0.0;
}

double Confusion::recall() const {
  const std::uint64_t denom = tp + fn;
  return denom ? static_cast<double>(tp) / static_cast<double>(denom) : 0.0;
}

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace dav
