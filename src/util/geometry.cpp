#include "util/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dav {

std::array<Vec2, 4> Obb::corners() const {
  const Vec2 f = pose.forward() * half_length;
  const Vec2 r = pose.forward().perp() * half_width;
  return {pose.pos + f + r, pose.pos - f + r, pose.pos - f - r,
          pose.pos + f - r};
}

bool Obb::contains(const Vec2& p) const {
  const Vec2 local = pose.to_local(p);
  return std::abs(local.x) <= half_length && std::abs(local.y) <= half_width;
}

namespace {

// Project corners onto axis; return [min, max].
std::pair<double, double> project_onto(const std::array<Vec2, 4>& corners,
                                       const Vec2& axis) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Vec2& c : corners) {
    const double d = c.dot(axis);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return {lo, hi};
}

}  // namespace

bool obb_intersect(const Obb& a, const Obb& b) {
  const auto ca = a.corners();
  const auto cb = b.corners();
  const std::array<Vec2, 4> axes = {a.pose.forward(), a.pose.forward().perp(),
                                    b.pose.forward(), b.pose.forward().perp()};
  for (const Vec2& axis : axes) {
    const auto [alo, ahi] = project_onto(ca, axis);
    const auto [blo, bhi] = project_onto(cb, axis);
    if (ahi < blo || bhi < alo) return false;  // separating axis found
  }
  return true;
}

double point_segment_distance(const Vec2& p, const Vec2& a, const Vec2& b) {
  const Vec2 ab = b - a;
  const double len_sq = ab.norm_sq();
  // Degenerate-segment guard: only an exactly-zero length divides by zero
  // below, so the exact compare is correct.
  if (len_sq == 0.0) return distance(p, a);  // davlint: allow(float-eq)
  const double t = clamp((p - a).dot(ab) / len_sq, 0.0, 1.0);
  return distance(p, a + ab * t);
}

double obb_distance(const Obb& a, const Obb& b) {
  if (obb_intersect(a, b)) return 0.0;
  const auto ca = a.corners();
  const auto cb = b.corners();
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      best = std::min(best,
                      point_segment_distance(ca[i], cb[j], cb[(j + 1) % 4]));
      best = std::min(best,
                      point_segment_distance(cb[i], ca[j], ca[(j + 1) % 4]));
    }
  }
  return best;
}

bool segments_intersect(const Vec2& a1, const Vec2& a2, const Vec2& b1,
                        const Vec2& b2) {
  const auto orient = [](const Vec2& p, const Vec2& q, const Vec2& r) {
    const double v = (q - p).cross(r - p);
    if (v > 1e-12) return 1;
    if (v < -1e-12) return -1;
    return 0;
  };
  const auto on_segment = [](const Vec2& p, const Vec2& q, const Vec2& r) {
    return std::min(p.x, r.x) - 1e-12 <= q.x && q.x <= std::max(p.x, r.x) + 1e-12 &&
           std::min(p.y, r.y) - 1e-12 <= q.y && q.y <= std::max(p.y, r.y) + 1e-12;
  };
  const int o1 = orient(a1, a2, b1);
  const int o2 = orient(a1, a2, b2);
  const int o3 = orient(b1, b2, a1);
  const int o4 = orient(b1, b2, a2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(a1, b1, a2)) return true;
  if (o2 == 0 && on_segment(a1, b2, a2)) return true;
  if (o3 == 0 && on_segment(b1, a1, b2)) return true;
  if (o4 == 0 && on_segment(b1, a2, b2)) return true;
  return false;
}

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {
  cum_.reserve(points_.size());
  double s = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) s += distance(points_[i - 1], points_[i]);
    cum_.push_back(s);
  }
}

void Polyline::append(const Vec2& p) {
  if (points_.empty()) {
    points_.push_back(p);
    cum_.push_back(0.0);
    return;
  }
  cum_.push_back(cum_.back() + distance(points_.back(), p));
  points_.push_back(p);
}

std::size_t Polyline::segment_index(double s) const {
  // Find i such that cum_[i] <= s <= cum_[i+1].
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), s);
  const auto idx = static_cast<std::size_t>(it - cum_.begin());
  if (idx == 0) return 0;
  if (idx >= points_.size()) return points_.size() - 2;
  return idx - 1;
}

Vec2 Polyline::point_at(double s) const {
  if (points_.empty()) return {};
  if (points_.size() == 1) return points_.front();
  s = clamp(s, 0.0, length());
  const std::size_t i = segment_index(s);
  const double seg_len = cum_[i + 1] - cum_[i];
  const double t = seg_len > 0.0 ? (s - cum_[i]) / seg_len : 0.0;
  return points_[i] + (points_[i + 1] - points_[i]) * t;
}

Vec2 Polyline::tangent_at(double s) const {
  if (points_.size() < 2) return {1.0, 0.0};
  s = clamp(s, 0.0, length());
  const std::size_t i = segment_index(s);
  return (points_[i + 1] - points_[i]).normalized();
}

double Polyline::heading_at(double s) const {
  const Vec2 t = tangent_at(s);
  return std::atan2(t.y, t.x);
}

double Polyline::project(const Vec2& p) const {
  if (points_.size() < 2) return 0.0;
  double best_d = std::numeric_limits<double>::infinity();
  double best_s = 0.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Vec2 a = points_[i];
    const Vec2 b = points_[i + 1];
    const Vec2 ab = b - a;
    const double len_sq = ab.norm_sq();
    const double t = len_sq > 0.0 ? clamp((p - a).dot(ab) / len_sq, 0.0, 1.0) : 0.0;
    const Vec2 q = a + ab * t;
    const double d = distance(p, q);
    if (d < best_d) {
      best_d = d;
      best_s = cum_[i] + t * std::sqrt(len_sq);
    }
  }
  return best_s;
}

double Polyline::lateral_offset(const Vec2& p) const {
  if (points_.size() < 2) return 0.0;
  const double s = project(p);
  const Vec2 base = point_at(s);
  const Vec2 tan = tangent_at(s);
  return tan.cross(p - base);
}

double Polyline::curvature_at(double s) const {
  if (points_.size() < 3) return 0.0;
  // The differencing span must exceed the polyline's sampling step (~2-3 m
  // for built routes), or both probes land on the same segment tangent.
  const double ds = 3.0;
  const double s0 = clamp(s - ds, 0.0, length());
  const double s1 = clamp(s + ds, 0.0, length());
  if (s1 - s0 < 1e-9) return 0.0;
  const double h0 = heading_at(s0);
  const double h1 = heading_at(s1);
  return wrap_angle(h1 - h0) / (s1 - s0);
}

}  // namespace dav
