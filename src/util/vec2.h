// Basic 2-D vector and pose types used throughout the simulator and agent.
#pragma once

#include <cmath>

namespace dav {

/// 2-D vector of doubles. Value type; all operations are constexpr-friendly.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2& o) const = default;

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z component of the 3-D cross product).
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm_sq() const { return x * x + y * y; }
  /// Unit vector; returns (0,0) for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Perpendicular vector (rotated +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }
  /// Rotate by `angle` radians counter-clockwise.
  Vec2 rotated(double angle) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

/// Wrap an angle to (-pi, pi].
inline double wrap_angle(double a) {
  while (a > M_PI) a -= 2.0 * M_PI;
  while (a <= -M_PI) a += 2.0 * M_PI;
  return a;
}

/// Rigid 2-D pose: position plus heading (radians, CCW from +x).
struct Pose2 {
  Vec2 pos;
  double yaw = 0.0;

  /// Transform a point from the pose's local frame to the world frame.
  Vec2 to_world(const Vec2& local) const { return pos + local.rotated(yaw); }
  /// Transform a world point into the pose's local frame.
  Vec2 to_local(const Vec2& world) const { return (world - pos).rotated(-yaw); }
  /// Unit vector in the heading direction.
  Vec2 forward() const { return {std::cos(yaw), std::sin(yaw)}; }
};

inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

inline double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace dav
