#include "core/divergence.h"

#include <cmath>

namespace dav {

ActuationDelta abs_delta(const Actuation& a, const Actuation& b) {
  return {std::abs(a.throttle - b.throttle), std::abs(a.brake - b.brake),
          std::abs(a.steer - b.steer)};
}

DivergenceSignal::DivergenceSignal(std::size_t rw)
    : throttle_(rw), brake_(rw), steer_(rw) {}

void DivergenceSignal::push(const ActuationDelta& d) {
  throttle_.push(d.throttle);
  brake_.push(d.brake);
  steer_.push(d.steer);
}

void DivergenceSignal::clear() {
  throttle_.clear();
  brake_.clear();
  steer_.clear();
}

ActuationDelta DivergenceSignal::smoothed() const {
  return {throttle_.mean(), brake_.mean(), steer_.mean()};
}

DivergenceState DivergenceSignal::capture() const {
  return {{throttle_.values(), throttle_.running_sum()},
          {brake_.values(), brake_.running_sum()},
          {steer_.values(), steer_.running_sum()}};
}

void DivergenceSignal::adopt(const DivergenceState& s) {
  throttle_.restore(s.throttle.values, s.throttle.running_sum);
  brake_.restore(s.brake.values, s.brake.running_sum);
  steer_.restore(s.steer.values, s.steer.running_sum);
}

}  // namespace dav
