// Rolling-window error detection engine (paper §III-D, Fig 2 (1)).
//
// Streams the per-step actuation deltas through rw-sized rolling windows and
// raises an alarm when a smoothed channel exceeds the LUT threshold for the
// current vehicle state. Also provided: an offline replay over recorded
// observation traces (used to sweep rw and td for Fig 7 without re-simulating)
// and the LUT training routine.
#pragma once

#include <cstddef>
#include <vector>

#include "core/divergence.h"
#include "core/threshold_lut.h"

namespace dav {

struct DetectorConfig {
  std::size_t rw = 3;  // rolling window size (paper best: 3)
  /// Below this speed the comparison is not evaluated: actuation divergence
  /// at standstill (hold-brake wobble, stop-latch timing) is not safety
  /// relevant, and evaluating it would trade availability for nothing.
  double min_eval_speed = 0.5;
  /// Consecutive threshold exceedances required before the alarm latches.
  /// Fault-free mode-change blips exceed for a window or two; genuine fault
  /// divergence persists (the corrupted agent carries the error in its
  /// private state).
  int debounce = 3;
};

/// Full dynamic detector state for checkpoint capture/adopt. The LUT and
/// config are construction-time inputs and deliberately excluded: a restored
/// detector is built from the same RunConfig and adopts only what time
/// evolved.
struct DetectorState {
  DivergenceState signal;
  bool alarmed = false;
  double alarm_time = -1.0;
  int streak = 0;
  double streak_start_time = -1.0;
};

class ErrorDetector {
 public:
  ErrorDetector(const ThresholdLut& lut, DetectorConfig cfg);

  /// Feed one observation; returns true if this observation raises (or has
  /// previously raised) the alarm. The alarm latches.
  bool observe(const StepObservation& obs);

  bool alarmed() const { return alarmed_; }
  double first_alarm_time() const { return alarm_time_; }
  void reset();

  DetectorState capture() const;
  void adopt(const DetectorState& s);

 private:
  const ThresholdLut& lut_;
  DetectorConfig cfg_;
  DivergenceSignal signal_;
  bool alarmed_ = false;
  double alarm_time_ = -1.0;
  int streak_ = 0;
  double streak_start_time_ = -1.0;
};

/// Offline replay of a recorded observation trace.
struct ReplayResult {
  bool alarmed = false;
  double alarm_time = -1.0;
};
ReplayResult replay_detector(const std::vector<StepObservation>& trace,
                             const ThresholdLut& lut, DetectorConfig cfg);

/// Train a LUT from fault-free observation traces (one vector per run) using
/// the same rw smoothing the detector will apply at runtime.
ThresholdLut train_lut(const std::vector<std::vector<StepObservation>>& runs,
                       std::size_t rw, LutConfig cfg = {});

}  // namespace dav
