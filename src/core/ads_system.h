// The redundant ADS: agents + sensor data distributor + control fusion.
//
// Wires the black-box Sensorimotor agents into the three evaluated
// configurations (paper Fig 2 / §VI):
//   kRoundRobin  — DiverseAV: both agents time-multiplexed on ONE engine set
//                  (shared processor); the agent that received the frame
//                  drives; adjacent outputs (from alternating agents) form
//                  the comparison stream.
//   kDuplicate   — FD-ADS: each agent on its OWN engine set (dedicated
//                  processors); agent 0 drives; same-step outputs compared.
//   kSingle      — one agent; previous output is the comparison reference
//                  (temporal-outlier baseline).
#pragma once

#include <memory>
#include <optional>

#include "agent/agent.h"
#include "core/distributor.h"
#include "core/divergence.h"

namespace dav {

class AdsSystem {
 public:
  /// `gpu1`/`cpu1` must be non-null iff mode == kDuplicate. `overlap_ratio`
  /// sends a fraction of frames to both round-robin agents (paper footnote 5).
  AdsSystem(AgentMode mode, const AgentConfig& agent_cfg, GpuEngine& gpu0,
            CpuEngine& cpu0, GpuEngine* gpu1, CpuEngine* cpu1,
            const RoadMap* map, double overlap_ratio = 0.0);

  struct StepResult {
    Actuation applied;          // the fused/selected actuation command
    int acting_agent = 0;
    bool have_delta = false;    // a comparison pair was available this step
    ActuationDelta delta;
  };

  /// One synchronous tick. Propagates CrashError/HangError from the engines.
  StepResult step(const SensorFrame& frame, double world_dt);

  void reset();
  AgentMode mode() const { return distributor_.mode(); }
  int num_agents() const { return distributor_.num_agents(); }
  const SensorimotorAgent& agent(int i) const;

  /// Aggregate private state bytes across agents (Table II accounting).
  std::size_t state_bytes() const;

 private:
  SensorDataDistributor distributor_;
  std::unique_ptr<SensorimotorAgent> agent0_;
  std::unique_ptr<SensorimotorAgent> agent1_;
  std::optional<Actuation> prev_output_;  // previous comparison reference
  int step_ = 0;
};

}  // namespace dav
