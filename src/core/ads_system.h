// The redundant ADS: agents + sensor data distributor + control fusion.
//
// Wires the black-box Sensorimotor agents into the three evaluated
// configurations (paper Fig 2 / §VI):
//   kRoundRobin  — DiverseAV: both agents time-multiplexed on ONE engine set
//                  (shared processor); the agent that received the frame
//                  drives; adjacent outputs (from alternating agents) form
//                  the comparison stream.
//   kDuplicate   — FD-ADS: each agent on its OWN engine set (dedicated
//                  processors); agent 0 drives; same-step outputs compared.
//   kSingle      — one agent; previous output is the comparison reference
//                  (temporal-outlier baseline).
#pragma once

#include <memory>
#include <optional>

#include "agent/agent.h"
#include "core/distributor.h"
#include "core/divergence.h"

namespace dav {

/// Full dynamic ADS state for checkpoint capture/adopt: both agents'
/// checkpoints, the comparison reference, and the tick counter. Engines are
/// owned by the driver and checkpointed separately (fi/engine.h
/// EngineState); construction wiring (mode, engines, map) is excluded.
///
/// A state captured from a freshly constructed AdsSystem is field-for-field
/// what fresh construction produces, so adopting it before the first step
/// reproduces the PR-5 warm-start path (the tick-0 special case) exactly.
struct AdsState {
  AgentCheckpoint agent0;
  bool has_agent1 = false;
  AgentCheckpoint agent1;
  bool has_prev_output = false;
  Actuation prev_output;
  int step = 0;
  int executing = 0;
};

class AdsSystem {
 public:
  /// `gpu1`/`cpu1` must be non-null iff mode == kDuplicate. `overlap_ratio`
  /// sends a fraction of frames to both round-robin agents (paper footnote 5).
  AdsSystem(AgentMode mode, const AgentConfig& agent_cfg, GpuEngine& gpu0,
            CpuEngine& cpu0, GpuEngine* gpu1, CpuEngine* cpu1,
            const RoadMap* map, double overlap_ratio = 0.0);

  struct StepResult {
    Actuation applied;          // the fused/selected actuation command
    int acting_agent = 0;
    bool have_delta = false;    // a comparison pair was available this step
    ActuationDelta delta;
  };

  /// One synchronous tick. Propagates CrashError/HangError from the engines.
  StepResult step(const SensorFrame& frame, double world_dt);

  // --- Fault-mitigation hooks (RecoveryManager) -----------------------------

  /// Arbitration probe tick: both agents receive the SAME frame and both
  /// outputs are returned, so the recovery manager can score each agent
  /// against the fused temporal reference and identify the outlier.
  /// Advances the tick counter; propagates CrashError/HangError.
  struct ProbeOutputs {
    Actuation u0;
    Actuation u1;
  };
  ProbeOutputs probe_step(const SensorFrame& frame, double world_dt);

  /// Degraded single-agent tick: `healthy` drives on every frame (temporal-
  /// outlier operation); the other, freshly restarted agent also consumes the
  /// frame to re-warm its filters but its output is discarded. Exceptions
  /// from either agent propagate — last_executing_agent() tells whose.
  Actuation degraded_step(int healthy, const SensorFrame& frame,
                          double world_dt);

  /// Restart agent `suspect`: clears any spent transient fault on its
  /// engines, constructs a fresh agent, resyncs its private state from the
  /// healthy replica and re-runs the ISA warmup (which re-manifests a
  /// permanent fault immediately — CrashError/HangError propagate).
  /// Requires a two-agent mode.
  void restart_agent(int suspect);

  /// The agent whose computation was in flight when the last engine
  /// exception was thrown (the platform knows which process crashed/hung).
  int last_executing_agent() const { return executing_; }

  /// Route spatiotemporal tensor bit-flips (SensorFaultModel::kTensorBitFlip)
  /// into the PRIMARY agent's perception. Non-owning; nullptr detaches.
  /// Survives restart_agent: a restart swaps compute state, but a sensor-path
  /// fault lives upstream of the agent and re-attaches to the replacement.
  void attach_sensor_fault_injector(SensorFaultInjector* injector);

  /// Symmetric checkpoint capture/adopt (campaign/checkpoint.h). adopt()
  /// requires an AdsSystem constructed with the same mode and AgentConfig as
  /// the one that captured the state; it overwrites every field time
  /// evolved, so a restored system continues bit-identically.
  AdsState capture() const;
  void adopt(const AdsState& s);

  /// Overwrite the adjacent-output comparison reference. The recovery
  /// manager applies a fused command during the arbitration probe; feeding it
  /// back keeps the comparison stream continuous across the recovery window.
  void set_comparison_reference(const Actuation& applied);

  void reset();
  AgentMode mode() const { return distributor_.mode(); }
  int num_agents() const { return distributor_.num_agents(); }
  const SensorimotorAgent& agent(int i) const;

  /// Aggregate private state bytes across agents (Table II accounting).
  std::size_t state_bytes() const;

 private:
  SensorimotorAgent& mutable_agent(int i);

  SensorDataDistributor distributor_;
  AgentConfig agent_cfg_;  // kept for fault-recovery reconstruction
  GpuEngine* gpu0_;
  CpuEngine* cpu0_;
  GpuEngine* gpu1_;  // null outside duplicate mode
  CpuEngine* cpu1_;
  const RoadMap* map_;
  std::unique_ptr<SensorimotorAgent> agent0_;
  std::unique_ptr<SensorimotorAgent> agent1_;
  std::optional<Actuation> prev_output_;  // previous comparison reference
  SensorFaultInjector* sensor_injector_ = nullptr;
  int step_ = 0;
  int executing_ = 0;
};

}  // namespace dav
