// Actuation divergence signal (paper §III-C).
//
// The detection signal is the per-channel absolute difference between the
// actuation commands of adjacent time steps, smoothed over a rolling window
// of size rw. In round-robin mode adjacent outputs come from the two diverse
// agents; in single mode from the same agent (the temporal-outlier baseline);
// in duplicate mode the two agents' same-step outputs are compared directly.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.h"
#include "util/stats.h"

namespace dav {

/// Per-channel absolute actuation difference.
struct ActuationDelta {
  double throttle = 0.0;
  double brake = 0.0;
  double steer = 0.0;
};

ActuationDelta abs_delta(const Actuation& a, const Actuation& b);

/// One observation of the comparison stream: the delta plus the vehicle state
/// under which it was produced (the detector's thresholds are state-indexed).
struct StepObservation {
  double time = 0.0;
  VehicleState state;
  ActuationDelta delta;
};

/// Rolling-window contents of one channel, as captured for a checkpoint.
/// The running sum is carried verbatim (float addition is order-dependent).
struct WindowState {
  std::vector<double> values;
  double running_sum = 0.0;
};

/// All three channel windows of a DivergenceSignal.
struct DivergenceState {
  WindowState throttle;
  WindowState brake;
  WindowState steer;
};

/// Three synchronized rolling windows, one per actuation channel.
class DivergenceSignal {
 public:
  explicit DivergenceSignal(std::size_t rw);

  void push(const ActuationDelta& d);
  void clear();
  bool full() const { return throttle_.full(); }

  /// Rolling means per channel.
  ActuationDelta smoothed() const;

  DivergenceState capture() const;
  void adopt(const DivergenceState& s);

 private:
  RollingWindow throttle_;
  RollingWindow brake_;
  RollingWindow steer_;
};

}  // namespace dav
