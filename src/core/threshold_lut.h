// State-indexed threshold lookup table (paper §III-D).
//
// theta_throttle(s) and theta_brake(s) are indexed by the discretized
// <speed, acceleration> tuple; theta_steer(s) by <yaw rate, yaw accel>.
// Training records the maximum smoothed divergence observed per bin across
// fault-free executions of the reference (long) driving scenarios; at runtime
// an alarm is raised when the smoothed divergence exceeds the learned
// threshold (times a safety margin) for the current vehicle-state bin.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/divergence.h"

namespace dav {

/// Uniform discretization of one state variable.
struct BinAxis {
  double lo = 0.0;
  double hi = 1.0;
  int bins = 1;

  int index(double v) const;
};

struct LutConfig {
  BinAxis speed{0.0, 24.0, 12};        // v, m/s
  BinAxis accel{-8.0, 4.0, 8};         // a, m/s^2
  BinAxis yaw_rate{-0.6, 0.6, 8};      // omega, rad/s
  BinAxis yaw_accel{-3.0, 3.0, 8};     // alpha, rad/s^2
  double margin = 1.3;                 // multiplier on trained maxima
  double floor_throttle = 0.12;        // absolute lower bounds on thresholds
  double floor_brake = 0.15;           // (fault-free mode-change blips reach
  double floor_steer = 0.10;           //  this level even in trained bins)
};

class ThresholdLut {
 public:
  explicit ThresholdLut(LutConfig cfg = {});

  /// Record one smoothed fault-free observation (training).
  void observe(const VehicleState& s, const ActuationDelta& smoothed);

  /// Thresholds for the given state: margin * trained bin maximum, falling
  /// back to the global maximum for unseen bins, floored per channel.
  ActuationDelta thresholds(const VehicleState& s) const;

  const LutConfig& config() const { return cfg_; }
  std::size_t trained_bins() const;
  std::uint64_t observations() const { return observations_; }

  /// Serialize the trained table (a deployable artifact: train offline on
  /// the long scenarios, ship the LUT to the vehicle). Text format.
  void save(std::ostream& out) const;
  /// Parse a table written by save(). Throws std::runtime_error on malformed
  /// input.
  static ThresholdLut load(std::istream& in);

 private:
  std::size_t lin_index(const BinAxis& a, const BinAxis& b, double va,
                        double vb) const;

  LutConfig cfg_;
  // Per-bin maxima; negative = bin never observed.
  std::vector<double> max_throttle_;
  std::vector<double> max_brake_;
  std::vector<double> max_steer_;
  double global_throttle_ = 0.0;
  double global_brake_ = 0.0;
  double global_steer_ = 0.0;
  std::uint64_t observations_ = 0;
};

}  // namespace dav
