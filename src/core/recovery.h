// Closed-loop fault mitigation (paper §I, §VII; DESIGN.md §8).
//
// DiverseAV's detection is valuable because it can invoke mitigation: instead
// of the paper's baseline failback (safe stop on any DUE), the RecoveryManager
// identifies the faulty agent, restarts it with state resynced from the
// healthy replica, drives degraded single-agent mode while it re-warms, and
// escalates to the safe stop only on presumed-permanent faults.
//
// State machine (kFailback is signalled to the driver via TickOutcome, the
// driver owns the safe-stop loop):
//
//   kNominal --alarm--> kProbing --suspect named--> restart --> kDegraded
//   kNominal --crash/hang/non-finite (culprit known)--> restart --> kDegraded
//   kDegraded --rewarm elapsed--> kNominal  (rejoin, episode closed)
//   kDegraded --replica dies again--> restart (window-counted)
//   any --healthy dies / degraded alarm / window exhausted--> kFailback
//
// With the sensor monitor armed (enable_sensor_monitor), a fifth state rides
// the ladder in kNominal's slot:
//
//   kNominal <--channel (un)healthy--> kSensorDegraded  (fusion drives on)
//   kSensorDegraded --detector alarm--> attributed to the sensor (no probe)
//   kSensorDegraded --ranging lost--> kFailback
//
// Every timer is tick-counted and every decision is a function of the run
// seed: same seed, identical recovery timeline (test_recovery.cpp pins this).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/ads_system.h"
#include "core/detector.h"
#include "fi/fault_model.h"
#include "sensors/sensor_health.h"

namespace dav {

/// Tuning for the restart-recovery loop. All counts are ticks (dt-invariant
/// decisions); validation lives in RunConfig::validate.
struct RecoveryConfig {
  /// Duplicated-frame arbitration probe length after a statistical alarm
  /// (a crash/hang/non-finite output names its culprit and skips the probe).
  int probe_ticks = 6;
  /// Degraded-mode ticks the restarted replica consumes live frames (output
  /// discarded) before rejoining the comparison stream.
  int rewarm_ticks = 40;
  /// Restarts tolerated inside recovery_window_ticks before the fault is
  /// presumed permanent and the safe-stop failback engages.
  int max_recoveries = 2;
  int recovery_window_ticks = 400;
};

/// One recovery episode: alarm -> restart -> rejoin. An escalated episode
/// stays open (rejoin_tick == -1).
struct RecoveryEvent {
  int suspect = -1;
  /// What implicated the suspect. kNone = statistical detector alarm routed
  /// through the arbitration probe (a DUE names its culprit directly).
  DueSource trigger = DueSource::kNone;
  double alarm_time = -1.0;
  double restart_time = -1.0;
  double rejoin_time = -1.0;
  int alarm_tick = -1;
  int restart_tick = -1;
  int rejoin_tick = -1;
};

/// One per-sensor degradation episode (kSensorDegraded residency): the
/// platform monitor saw a channel leave kHealthy, fusion drove around it,
/// and — if the sensor came back — the channel rejoined. Per-sensor MTTR
/// and availability in summarize_recovery come from these.
struct SensorDegradeEvent {
  int channel = -1;        // SensorChannel index
  int onset_tick = -1;
  double onset_time = -1.0;
  int rejoin_tick = -1;    // -1: still open at end of run
  double rejoin_time = -1.0;
  bool dropped = false;    // the ladder reached kDropped during the episode
  bool escalated = false;  // episode ended in a ranging-lost failback
};

/// Mitigation bookkeeping carried in RunResult (serialized; summarized by
/// summarize_recovery into availability / MTTR, paper §VII framing).
struct MitigationStats {
  int attempts = 0;    // restart attempts (incl. the one that escalated)
  int completed = 0;   // episodes that reached rejoin
  bool escalated = false;
  /// First in-run detector alarm (seconds), -1 when the detector stayed
  /// quiet. The driver mirrors it into RunResult::online_alarm_time.
  double first_detector_alarm_time = -1.0;
  std::vector<RecoveryEvent> events;
  /// Tick census: who controlled the vehicle, for availability accounting.
  int nominal_ticks = 0;
  int probe_ticks = 0;
  int degraded_ticks = 0;
  int failback_ticks = 0;  // filled by the driver's failback loop
  /// Ticks spent in kSensorDegraded: full redundancy, degraded sensing.
  /// The vehicle is still driving on fused perception, so these count as
  /// available in availability_fraction.
  int sensor_degraded_ticks = 0;
  std::vector<SensorDegradeEvent> sensor_events;
};

/// Full dynamic recovery state for checkpoint capture/adopt: the FSM
/// position, probe/degraded bookkeeping, restart window, mitigation stats,
/// and — when the sensor monitor is armed — its complete check state.
/// Construction inputs (ads ref, config, watchdog, detector pointer) are
/// excluded; a restored manager is rebuilt from the same RunConfig.
struct RecoveryState {
  int state = 0;  // RecoveryManager::State as int
  Actuation last_applied;
  int probe_left = 0;
  double probe_score0 = 0.0;
  double probe_score1 = 0.0;
  double probe_alarm_time = -1.0;
  int probe_alarm_tick = -1;
  int rewarm_left = 0;
  int healthy = 0;
  std::vector<int> restart_ticks;
  MitigationStats stats;
  bool has_sensor_monitor = false;
  SensorHealthMonitor::State sensor_monitor;
  std::array<int, kSensorChannelCount> open_sensor_event{};
};

/// Drives one AdsSystem tick under the restart-recovery policy, absorbing
/// engine errors and detector alarms. The driver calls tick() once per world
/// step until it reports failback == true, then owns the safe stop.
class RecoveryManager {
 public:
  /// `online` may be null (no statistical detection: only DUE-triggered
  /// recoveries run). The detector and the ADS must outlive the manager.
  /// `watchdog_sec` stamps hang alarms at the time the platform watchdog
  /// actually fires, matching the driver's DUE timestamps.
  RecoveryManager(AdsSystem& ads, const RecoveryConfig& cfg,
                  double watchdog_sec, ErrorDetector* online);

  /// Arm the platform-level sensor monitor (kSensorDegraded residency).
  /// Sensor faults are common-mode — both agents eat the same corrupted
  /// frames — so detector alarms raised while a channel is known-degraded
  /// are attributed to the sensor and do NOT trigger the restart ladder
  /// (restarting compute cannot fix a sensor). Call before the first tick.
  void enable_sensor_monitor(const SensorHealthConfig& cfg);

  struct TickOutcome {
    Actuation applied;       // command to drive the world with
    int acting_agent = 0;
    bool have_delta = false; // a comparison pair was produced this tick
    ActuationDelta delta;
    /// Platform DUE raised this tick (kNone when the tick was clean or the
    /// trigger was a statistical alarm, which is not a DUE).
    DueSource due = DueSource::kNone;
    bool hang = false;       // the driver coasts watchdog_sec on a hang
    bool failback = false;   // recovery gave up: engage the safe stop
  };

  /// One synchronous tick. `ego`/`time`/`step` come from the world and stamp
  /// the recovery timeline; `dt` is the world tick length.
  TickOutcome tick(const SensorFrame& frame, double dt,
                   const VehicleState& ego, double time, int step);

  const MitigationStats& stats() const { return stats_; }

  RecoveryState capture() const;
  /// Restore dynamic state. Requires the monitor arming to match the
  /// captured run (enable_sensor_monitor must already have been called iff
  /// the checkpoint carries monitor state).
  void adopt(const RecoveryState& s);

 private:
  enum class State { kNominal, kProbing, kDegraded, kFailback,
                     kSensorDegraded };

  TickOutcome nominal_tick(const SensorFrame& frame, double dt,
                           const VehicleState& ego, double time, int step);
  TickOutcome probe_tick(const SensorFrame& frame, double dt, double time,
                         int step);
  TickOutcome degraded_tick(const SensorFrame& frame, double dt,
                            const VehicleState& ego, double time, int step);

  /// Feed the monitor, maintain per-channel episodes, and move between
  /// kNominal and kSensorDegraded. Returns true when ranging is lost and the
  /// caller must escalate.
  bool observe_sensors(const SensorFrame& frame, double time, int step);

  /// Open an episode and restart `suspect`; escalates (returns false) when
  /// the window is exhausted or the replacement dies at birth.
  bool start_recovery(int suspect, DueSource trigger, double alarm_time,
                      int alarm_tick, double time, int step,
                      TickOutcome& out);
  void begin_probe(double alarm_time, int alarm_tick, double time);
  void escalate(TickOutcome& out);
  void record_state_counter() const;

  AdsSystem& ads_;
  RecoveryConfig cfg_;
  double watchdog_sec_;
  ErrorDetector* online_;
  MitigationStats stats_;

  State state_ = State::kNominal;
  Actuation last_applied_;

  // Probe bookkeeping: accumulated channel-max deviation of each agent's
  // output from the pre-fusion temporal reference.
  int probe_left_ = 0;
  double probe_score_[2] = {0.0, 0.0};
  double probe_alarm_time_ = -1.0;
  int probe_alarm_tick_ = -1;

  // Degraded bookkeeping.
  int rewarm_left_ = 0;
  int healthy_ = 0;

  /// Ticks at which restarts began, for the escalation window.
  std::vector<int> restart_ticks_;

  // Platform-level sensor health (present only after enable_sensor_monitor).
  std::optional<SensorHealthMonitor> sensor_monitor_;
  /// Index into stats_.sensor_events of each channel's open episode, -1 when
  /// the channel is healthy.
  std::array<int, kSensorChannelCount> open_sensor_event_;
};

}  // namespace dav
