#include "core/threshold_lut.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace dav {

int BinAxis::index(double v) const {
  if (bins <= 1) return 0;
  const double t = (v - lo) / (hi - lo);
  const int i = static_cast<int>(std::floor(t * bins));
  return std::clamp(i, 0, bins - 1);
}

ThresholdLut::ThresholdLut(LutConfig cfg) : cfg_(cfg) {
  const std::size_t n_va =
      static_cast<std::size_t>(cfg_.speed.bins) * cfg_.accel.bins;
  const std::size_t n_wa =
      static_cast<std::size_t>(cfg_.yaw_rate.bins) * cfg_.yaw_accel.bins;
  max_throttle_.assign(n_va, -1.0);
  max_brake_.assign(n_va, -1.0);
  max_steer_.assign(n_wa, -1.0);
}

std::size_t ThresholdLut::lin_index(const BinAxis& a, const BinAxis& b,
                                    double va, double vb) const {
  return static_cast<std::size_t>(a.index(va)) * b.bins + b.index(vb);
}

void ThresholdLut::observe(const VehicleState& s, const ActuationDelta& d) {
  // Smear each observation into the 3x3 bin neighborhood: the training
  // scenarios cannot visit every (v, a) (or (omega, alpha)) combination
  // densely, and a fault-free blip observed at one operating point is
  // evidence about adjacent operating points too. Without smearing, sparse
  // bins keep near-zero thresholds and fire on fault-free mode changes.
  const int vi = cfg_.speed.index(s.v);
  const int ai = cfg_.accel.index(s.a);
  const int wi = cfg_.yaw_rate.index(s.omega);
  const int li = cfg_.yaw_accel.index(s.alpha);
  for (int dv = -1; dv <= 1; ++dv) {
    for (int da = -1; da <= 1; ++da) {
      const int v = std::clamp(vi + dv, 0, cfg_.speed.bins - 1);
      const int a = std::clamp(ai + da, 0, cfg_.accel.bins - 1);
      const std::size_t idx =
          static_cast<std::size_t>(v) * cfg_.accel.bins + a;
      max_throttle_[idx] = std::max(max_throttle_[idx], d.throttle);
      max_brake_[idx] = std::max(max_brake_[idx], d.brake);
      const int w = std::clamp(wi + dv, 0, cfg_.yaw_rate.bins - 1);
      const int l = std::clamp(li + da, 0, cfg_.yaw_accel.bins - 1);
      const std::size_t widx =
          static_cast<std::size_t>(w) * cfg_.yaw_accel.bins + l;
      max_steer_[widx] = std::max(max_steer_[widx], d.steer);
    }
  }
  global_throttle_ = std::max(global_throttle_, d.throttle);
  global_brake_ = std::max(global_brake_, d.brake);
  global_steer_ = std::max(global_steer_, d.steer);
  ++observations_;
}

ActuationDelta ThresholdLut::thresholds(const VehicleState& s) const {
  const std::size_t iva = lin_index(cfg_.speed, cfg_.accel, s.v, s.a);
  const std::size_t iwa =
      lin_index(cfg_.yaw_rate, cfg_.yaw_accel, s.omega, s.alpha);
  const auto pick = [&](double bin_max, double global, double floor_v) {
    const double base = bin_max >= 0.0 ? bin_max : global;
    return std::max(cfg_.margin * base, floor_v);
  };
  return {pick(max_throttle_[iva], global_throttle_, cfg_.floor_throttle),
          pick(max_brake_[iva], global_brake_, cfg_.floor_brake),
          pick(max_steer_[iwa], global_steer_, cfg_.floor_steer)};
}

void ThresholdLut::save(std::ostream& out) const {
  out << "diverseav-lut 1\n";
  const auto axis = [&](const BinAxis& a) {
    out << a.lo << ' ' << a.hi << ' ' << a.bins << '\n';
  };
  axis(cfg_.speed);
  axis(cfg_.accel);
  axis(cfg_.yaw_rate);
  axis(cfg_.yaw_accel);
  out << cfg_.margin << ' ' << cfg_.floor_throttle << ' ' << cfg_.floor_brake
      << ' ' << cfg_.floor_steer << '\n';
  out << global_throttle_ << ' ' << global_brake_ << ' ' << global_steer_
      << ' ' << observations_ << '\n';
  const auto dump = [&](const std::vector<double>& v) {
    out << v.size();
    for (double x : v) out << ' ' << x;
    out << '\n';
  };
  dump(max_throttle_);
  dump(max_brake_);
  dump(max_steer_);
}

ThresholdLut ThresholdLut::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "diverseav-lut" || version != 1) {
    throw std::runtime_error("ThresholdLut::load: bad header");
  }
  LutConfig cfg;
  const auto axis = [&](BinAxis& a) { in >> a.lo >> a.hi >> a.bins; };
  axis(cfg.speed);
  axis(cfg.accel);
  axis(cfg.yaw_rate);
  axis(cfg.yaw_accel);
  in >> cfg.margin >> cfg.floor_throttle >> cfg.floor_brake >>
      cfg.floor_steer;
  ThresholdLut lut(cfg);
  in >> lut.global_throttle_ >> lut.global_brake_ >> lut.global_steer_ >>
      lut.observations_;
  const auto slurp = [&](std::vector<double>& v) {
    std::size_t n = 0;
    in >> n;
    if (n != v.size()) {
      throw std::runtime_error("ThresholdLut::load: bin count mismatch");
    }
    for (auto& x : v) in >> x;
  };
  slurp(lut.max_throttle_);
  slurp(lut.max_brake_);
  slurp(lut.max_steer_);
  if (!in) throw std::runtime_error("ThresholdLut::load: truncated input");
  return lut;
}

std::size_t ThresholdLut::trained_bins() const {
  std::size_t n = 0;
  for (double v : max_throttle_) n += v >= 0.0 ? 1 : 0;
  for (double v : max_steer_) n += v >= 0.0 ? 1 : 0;
  return n;
}

}  // namespace dav
