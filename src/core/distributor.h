// Sensor data distributor (paper §III-D, Fig 2 (1)).
//
// Round-robins the sensor stream between the two redundant agents: agent 0
// receives frames at even time steps, agent 1 at odd time steps, halving the
// per-agent sensing frequency while keeping the two agents semantically
// consistent and bit-level diverse. Also supports the baselines: duplicate
// (both agents get every frame — the FD-ADS of §VI-B) and single agent.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace dav {

/// Agent configuration of the ADS (paper §IV-B: "round-robin mode, duplicate
/// mode, or single mode").
enum class AgentMode : std::uint8_t {
  kSingle,     // only agent 0 is active
  kRoundRobin, // DiverseAV: alternate frames between agents
  kDuplicate,  // FD-ADS: both agents receive all frames
};

std::string to_string(AgentMode m);

class SensorDataDistributor {
 public:
  /// `overlap_ratio` implements the paper's footnote 5: "for an ADS with
  /// lower engineering margins, the sensor data distribution can be adjusted
  /// so that some input data is sent to both agents, thus resulting in a
  /// input data rate reduction less than 50%, albeit at the expense of
  /// greater performance overhead." A ratio r in [0,1] duplicates every
  /// round(1/r)-th frame to both agents (0 = pure round-robin, 1 = full
  /// duplication of the stream). Only meaningful in kRoundRobin mode.
  explicit SensorDataDistributor(AgentMode mode, double overlap_ratio = 0.0)
      : mode_(mode),
        overlap_period_(overlap_ratio <= 0.0
                            ? 0
                            : std::max(1, static_cast<int>(
                                              std::lround(1.0 / overlap_ratio)))) {}

  AgentMode mode() const { return mode_; }
  int num_agents() const { return mode_ == AgentMode::kSingle ? 1 : 2; }
  double overlap_ratio() const {
    return overlap_period_ > 0 ? 1.0 / overlap_period_ : 0.0;
  }

  /// Which agents receive the frame at time step `step`, and whose actuation
  /// decision drives the vehicle (the control fusion engine's lockstep
  /// selection: "DiverseAV can use the actuation decision of the agent that
  /// received the sensor data").
  struct Dispatch {
    bool to_agent0 = true;
    bool to_agent1 = false;
    int acting_agent = 0;
  };
  Dispatch dispatch(int step) const {
    switch (mode_) {
      case AgentMode::kSingle:
        return {true, false, 0};
      case AgentMode::kRoundRobin: {
        Dispatch d = step % 2 == 0 ? Dispatch{true, false, 0}
                                   : Dispatch{false, true, 1};
        if (overlap_period_ > 0 && step % overlap_period_ == 0) {
          d.to_agent0 = d.to_agent1 = true;  // overlap frame: both consume
        }
        return d;
      }
      case AgentMode::kDuplicate:
        // Both compute; the (potentially faulty) primary drives, the replica
        // is the reference for comparison (paper §VI-B).
        return {true, true, 0};
    }
    return {};
  }

  /// Per-agent sensing period in world ticks (2 in round-robin mode).
  int agent_period() const { return mode_ == AgentMode::kRoundRobin ? 2 : 1; }

 private:
  AgentMode mode_;
  int overlap_period_;  // duplicate every k-th frame; 0 = never
};

}  // namespace dav
