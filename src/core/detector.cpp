#include "core/detector.h"

#include "util/trace.h"

namespace dav {

ErrorDetector::ErrorDetector(const ThresholdLut& lut, DetectorConfig cfg)
    : lut_(lut), cfg_(cfg), signal_(cfg.rw) {}

void ErrorDetector::reset() {
  signal_.clear();
  alarmed_ = false;
  alarm_time_ = -1.0;
  streak_ = 0;
  streak_start_time_ = -1.0;
}

DetectorState ErrorDetector::capture() const {
  return {signal_.capture(), alarmed_, alarm_time_, streak_,
          streak_start_time_};
}

void ErrorDetector::adopt(const DetectorState& s) {
  signal_.adopt(s.signal);
  alarmed_ = s.alarmed;
  alarm_time_ = s.alarm_time;
  streak_ = s.streak;
  streak_start_time_ = s.streak_start_time;
}

bool ErrorDetector::observe(const StepObservation& obs) {
  // (the parameter shadows namespace dav::obs, hence the dav:: prefixes)
  const dav::obs::SpanScope span(dav::obs::Stage::kDetector);
  if (alarmed_) return true;
  if (obs.state.v < cfg_.min_eval_speed) return false;
  signal_.push(obs.delta);
  if (!signal_.full()) return false;  // warm-up: no decisions yet
  const ActuationDelta smoothed = signal_.smoothed();
  const ActuationDelta theta = lut_.thresholds(obs.state);
  if (dav::obs::recorder() != nullptr) {
    using dav::obs::Counter;
    dav::obs::counter(Counter::kDivergence, smoothed.throttle, 0);
    dav::obs::counter(Counter::kDivergence, smoothed.brake, 1);
    dav::obs::counter(Counter::kDivergence, smoothed.steer, 2);
    dav::obs::counter(Counter::kThreshold, theta.throttle, 0);
    dav::obs::counter(Counter::kThreshold, theta.brake, 1);
    dav::obs::counter(Counter::kThreshold, theta.steer, 2);
  }
  const bool exceeded = smoothed.throttle > theta.throttle ||
                        smoothed.brake > theta.brake ||
                        smoothed.steer > theta.steer;
  if (exceeded) {
    if (streak_ == 0) streak_start_time_ = obs.time;
    if (++streak_ >= cfg_.debounce) {
      alarmed_ = true;
      alarm_time_ = streak_start_time_;
      dav::obs::instant(dav::obs::Instant::kDetectorAlarm, alarm_time_);
    }
  } else {
    streak_ = 0;
  }
  dav::obs::counter(dav::obs::Counter::kAlarmStreak,
                    static_cast<double>(streak_));
  return alarmed_;
}

ReplayResult replay_detector(const std::vector<StepObservation>& trace,
                             const ThresholdLut& lut, DetectorConfig cfg) {
  ErrorDetector det(lut, cfg);
  for (const auto& obs : trace) {
    if (det.observe(obs)) break;
  }
  return {det.alarmed(), det.first_alarm_time()};
}

ThresholdLut train_lut(const std::vector<std::vector<StepObservation>>& runs,
                       std::size_t rw, LutConfig cfg) {
  ThresholdLut lut(cfg);
  const DetectorConfig det_cfg;  // keep the training gate == runtime gate
  for (const auto& run : runs) {
    DivergenceSignal signal(rw);
    for (const auto& obs : run) {
      if (obs.state.v < det_cfg.min_eval_speed) continue;
      signal.push(obs.delta);
      if (signal.full()) lut.observe(obs.state, signal.smoothed());
    }
  }
  return lut;
}

}  // namespace dav
