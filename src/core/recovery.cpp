#include "core/recovery.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/trace.h"

namespace dav {

namespace {

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

/// Channel-wise median of the two probe outputs and the temporal reference:
/// one corrupted stream cannot move the median far from the healthy pair.
Actuation fuse_probe(const Actuation& u0, const Actuation& u1,
                     const Actuation& ref) {
  Actuation out;
  out.throttle = median3(u0.throttle, u1.throttle, ref.throttle);
  out.brake = median3(u0.brake, u1.brake, ref.brake);
  out.steer = median3(u0.steer, u1.steer, ref.steer);
  return out;
}

double channel_max_dev(const Actuation& u, const Actuation& ref) {
  const ActuationDelta d = abs_delta(u, ref);
  return std::max(d.throttle, std::max(d.brake, d.steer));
}

bool finite(const Actuation& u) {
  return std::isfinite(u.throttle) && std::isfinite(u.brake) &&
         std::isfinite(u.steer);
}

}  // namespace

RecoveryManager::RecoveryManager(AdsSystem& ads, const RecoveryConfig& cfg,
                                 double watchdog_sec, ErrorDetector* online)
    : ads_(ads), cfg_(cfg), watchdog_sec_(watchdog_sec), online_(online) {
  open_sensor_event_.fill(-1);
}

void RecoveryManager::enable_sensor_monitor(const SensorHealthConfig& cfg) {
  sensor_monitor_.emplace(cfg);
}

bool RecoveryManager::observe_sensors(const SensorFrame& frame, double time,
                                      int step) {
  if (!sensor_monitor_) return false;
  sensor_monitor_->observe(frame);
  for (int c = 0; c < kSensorChannelCount; ++c) {
    const SensorStatus st =
        sensor_monitor_->status(static_cast<SensorChannel>(c));
    int& open = open_sensor_event_[static_cast<std::size_t>(c)];
    if (open < 0) {
      if (st != SensorStatus::kHealthy) {
        SensorDegradeEvent ev;
        ev.channel = c;
        ev.onset_tick = step;
        ev.onset_time = time;
        ev.dropped = st == SensorStatus::kDropped;
        open = static_cast<int>(stats_.sensor_events.size());
        stats_.sensor_events.push_back(ev);
        obs::instant(obs::Instant::kSensorDegraded, time, c);
      }
      continue;
    }
    SensorDegradeEvent& ev =
        stats_.sensor_events[static_cast<std::size_t>(open)];
    if (st == SensorStatus::kDropped) ev.dropped = true;
    if (st == SensorStatus::kHealthy) {
      ev.rejoin_tick = step;
      ev.rejoin_time = time;
      open = -1;
      obs::instant(obs::Instant::kSensorRejoin, time, c);
    }
  }
  // Sensor degradation occupies kNominal's slot only: an in-flight compute
  // recovery (probe / restart / rewarm) takes precedence and the monitor
  // keeps tracking episodes underneath it.
  const bool unhealthy = sensor_monitor_->any_unhealthy();
  if (state_ == State::kNominal && unhealthy) {
    state_ = State::kSensorDegraded;
  } else if (state_ == State::kSensorDegraded && !unhealthy) {
    state_ = State::kNominal;
  }
  if (sensor_monitor_->ranging_lost() && state_ != State::kFailback) {
    // No channel left that can bound the obstacle distance: limping on
    // fusion is no longer safe, stop the vehicle.
    for (int idx : open_sensor_event_) {
      if (idx >= 0) {
        stats_.sensor_events[static_cast<std::size_t>(idx)].escalated = true;
      }
    }
    return true;
  }
  return false;
}

void RecoveryManager::record_state_counter() const {
  obs::counter(obs::Counter::kRecoveryState,
               static_cast<double>(static_cast<int>(state_)));
}

RecoveryManager::TickOutcome RecoveryManager::tick(const SensorFrame& frame,
                                                   double dt,
                                                   const VehicleState& ego,
                                                   double time, int step) {
  obs::SpanScope span(obs::Stage::kRecoveryTick);
  record_state_counter();
  if (observe_sensors(frame, time, step)) {
    TickOutcome out;
    escalate(out);
    out.applied = last_applied_;
    return out;
  }
  switch (state_) {
    case State::kNominal:
    case State::kSensorDegraded:
      return nominal_tick(frame, dt, ego, time, step);
    case State::kProbing:
      return probe_tick(frame, dt, time, step);
    case State::kDegraded:
      return degraded_tick(frame, dt, ego, time, step);
    case State::kFailback:
      break;
  }
  // The driver owns the failback loop and stops calling tick(); answering a
  // spurious call with the safe-stop command keeps the contract total.
  TickOutcome out;
  out.applied = Actuation{0.0, 0.45, 0.0};
  out.failback = true;
  return out;
}

RecoveryManager::TickOutcome RecoveryManager::nominal_tick(
    const SensorFrame& frame, double dt, const VehicleState& ego, double time,
    int step) {
  TickOutcome out;
  try {
    const AdsSystem::StepResult sr = ads_.step(frame, dt);
    if (!finite(sr.applied)) {
      // Output plausibility validation: the producer is known, skip the probe.
      out.due = DueSource::kOutputValidator;
      start_recovery(sr.acting_agent, DueSource::kOutputValidator, time, step,
                     time, step, out);
      out.applied = last_applied_;
      out.acting_agent = sr.acting_agent;
      return out;
    }
    out.applied = sr.applied.clamped();
    out.acting_agent = sr.acting_agent;
    out.have_delta = sr.have_delta;
    out.delta = sr.delta;
    last_applied_ = out.applied;
    const bool sensor_mode = state_ == State::kSensorDegraded;
    if (sensor_mode) {
      ++stats_.sensor_degraded_ticks;
    } else {
      ++stats_.nominal_ticks;
    }
    if (online_ != nullptr && sr.have_delta && !online_->alarmed() &&
        online_->observe(StepObservation{time, ego, sr.delta})) {
      if (stats_.first_detector_alarm_time < 0.0) {
        stats_.first_detector_alarm_time = online_->first_alarm_time();
      }
      if (sensor_mode) {
        // Common-mode input: both agents ate the same corrupted frames, so
        // the alarm is explained by the known-degraded sensor. Restarting
        // compute cannot fix a sensor — re-arm the detector and let fusion
        // keep driving. This no-restart attribution is the availability win
        // over whole-agent recovery (bench_sensor_fusion).
        online_->reset();
      } else {
        // A statistical alarm cannot name the culprit: arbitrate.
        begin_probe(online_->first_alarm_time(), step, time);
      }
    }
  } catch (const CrashError&) {
    out.due = DueSource::kEngineCrash;
    start_recovery(ads_.last_executing_agent(), DueSource::kEngineCrash, time,
                   step, time, step, out);
    out.applied = last_applied_;
  } catch (const HangError&) {
    // The platform watchdog fires watchdog_sec after the hang began; the
    // driver coasts the world accordingly (TickOutcome::hang).
    out.due = DueSource::kHangWatchdog;
    out.hang = true;
    start_recovery(ads_.last_executing_agent(), DueSource::kHangWatchdog,
                   time + watchdog_sec_, step, time, step, out);
    out.applied = last_applied_;
  }
  return out;
}

void RecoveryManager::begin_probe(double alarm_time, int alarm_tick,
                                  double time) {
  state_ = State::kProbing;
  probe_left_ = cfg_.probe_ticks;
  probe_score_[0] = 0.0;
  probe_score_[1] = 0.0;
  probe_alarm_time_ = alarm_time;
  probe_alarm_tick_ = alarm_tick;
  obs::instant(obs::Instant::kRecoveryProbe, time);
}

RecoveryManager::TickOutcome RecoveryManager::probe_tick(
    const SensorFrame& frame, double dt, double time, int step) {
  TickOutcome out;
  out.acting_agent = -1;  // fused command: no single agent is driving
  ++stats_.probe_ticks;
  try {
    const AdsSystem::ProbeOutputs po = ads_.probe_step(frame, dt);
    // Score against the PRE-fusion temporal reference: the last command the
    // vehicle actually received before this probe tick.
    const Actuation ref = last_applied_;
    const bool ok0 = finite(po.u0);
    const bool ok1 = finite(po.u1);
    if (!ok0 || !ok1) {
      const int suspect = ok0 ? 1 : 0;
      out.due = DueSource::kOutputValidator;
      start_recovery(suspect, DueSource::kOutputValidator, probe_alarm_time_,
                     probe_alarm_tick_, time, step, out);
      out.applied = last_applied_;
      return out;
    }
    probe_score_[0] += channel_max_dev(po.u0.clamped(), ref);
    probe_score_[1] += channel_max_dev(po.u1.clamped(), ref);
    out.applied = fuse_probe(po.u0.clamped(), po.u1.clamped(), ref);
    last_applied_ = out.applied;
    // Feed the fused command back so the comparison stream stays continuous
    // across the recovery window.
    ads_.set_comparison_reference(out.applied);
    if (--probe_left_ <= 0) {
      const int suspect = probe_score_[0] > probe_score_[1] ? 0 : 1;
      start_recovery(suspect, DueSource::kNone, probe_alarm_time_,
                     probe_alarm_tick_, time, step, out);
    }
  } catch (const CrashError&) {
    out.due = DueSource::kEngineCrash;
    start_recovery(ads_.last_executing_agent(), DueSource::kEngineCrash,
                   probe_alarm_time_, probe_alarm_tick_, time, step, out);
    out.applied = last_applied_;
  } catch (const HangError&) {
    out.due = DueSource::kHangWatchdog;
    out.hang = true;
    start_recovery(ads_.last_executing_agent(), DueSource::kHangWatchdog,
                   probe_alarm_time_, probe_alarm_tick_, time, step, out);
    out.applied = last_applied_;
  }
  return out;
}

bool RecoveryManager::start_recovery(int suspect, DueSource trigger,
                                     double alarm_time, int alarm_tick,
                                     double time, int step, TickOutcome& out) {
  ++stats_.attempts;
  RecoveryEvent ev;
  ev.suspect = suspect;
  ev.trigger = trigger;
  ev.alarm_time = alarm_time;
  ev.alarm_tick = alarm_tick;
  ev.restart_time = time;
  ev.restart_tick = step;
  stats_.events.push_back(ev);
  obs::instant(obs::Instant::kRecoveryRestart,
               static_cast<double>(static_cast<int>(trigger)), suspect);

  // Escalation window: this many restarts this close together is a permanent
  // fault re-manifesting — stop the restart loop before it livelocks.
  restart_ticks_.push_back(step);
  const int window_start = step - cfg_.recovery_window_ticks;
  const auto in_window = [&](int t) { return t > window_start; };
  const int recent = static_cast<int>(
      std::count_if(restart_ticks_.begin(), restart_ticks_.end(), in_window));
  if (recent > cfg_.max_recoveries) {
    escalate(out);
    return false;
  }

  try {
    // Clears a spent transient, reconstructs the agent, resyncs state from
    // the healthy replica and re-runs warmup (a permanent fault re-manifests
    // here: "replacement dies at birth").
    ads_.restart_agent(suspect);
  } catch (const CrashError&) {
    if (out.due == DueSource::kNone) out.due = DueSource::kEngineCrash;
    escalate(out);
    return false;
  } catch (const HangError&) {
    if (out.due == DueSource::kNone) out.due = DueSource::kHangWatchdog;
    out.hang = true;
    escalate(out);
    return false;
  }

  state_ = State::kDegraded;
  healthy_ = 1 - suspect;
  rewarm_left_ = cfg_.rewarm_ticks;
  // With redundancy suspended the only cross-check left is the single-agent
  // temporal-outlier detector; re-arm it for the degraded stream.
  if (online_ != nullptr) online_->reset();
  return true;
}

RecoveryManager::TickOutcome RecoveryManager::degraded_tick(
    const SensorFrame& frame, double dt, const VehicleState& ego, double time,
    int step) {
  TickOutcome out;
  out.acting_agent = healthy_;
  ++stats_.degraded_ticks;
  try {
    const Actuation raw = ads_.degraded_step(healthy_, frame, dt);
    if (!finite(raw)) {
      // The healthy agent produced garbage: the isolation decision was wrong
      // or the fault is common-mode.
      out.due = DueSource::kOutputValidator;
      escalate(out);
      out.applied = last_applied_;
      return out;
    }
    out.applied = raw.clamped();
    // Single-agent temporal-outlier check (§VI-C): an alarm with redundancy
    // suspended means the wrong agent was restarted — escalate.
    const ActuationDelta temporal = abs_delta(out.applied, last_applied_);
    last_applied_ = out.applied;
    if (online_ != nullptr &&
        online_->observe(StepObservation{time, ego, temporal})) {
      escalate(out);
      return out;
    }
    if (--rewarm_left_ <= 0) {
      // Rejoin: full redundancy restored; close the episode.
      RecoveryEvent& ev = stats_.events.back();
      ev.rejoin_time = time;
      ev.rejoin_tick = step;
      ++stats_.completed;
      state_ = State::kNominal;
      if (online_ != nullptr) online_->reset();
      obs::instant(obs::Instant::kRecoveryRejoin, time, healthy_);
    }
  } catch (const CrashError&) {
    out.due = DueSource::kEngineCrash;
    const int culprit = ads_.last_executing_agent();
    if (culprit == healthy_) {
      escalate(out);  // the driving agent died: nothing left to resync from
    } else {
      // The replacement died mid-rewarm (permanent fault re-manifesting):
      // re-trigger the restart; the escalation window bounds the loop.
      start_recovery(culprit, DueSource::kEngineCrash, time, step, time, step,
                     out);
    }
    out.applied = last_applied_;
  } catch (const HangError&) {
    out.due = DueSource::kHangWatchdog;
    out.hang = true;
    const int culprit = ads_.last_executing_agent();
    if (culprit == healthy_) {
      escalate(out);
    } else {
      start_recovery(culprit, DueSource::kHangWatchdog, time + watchdog_sec_,
                     step, time, step, out);
    }
    out.applied = last_applied_;
  }
  return out;
}

void RecoveryManager::escalate(TickOutcome& out) {
  stats_.escalated = true;
  state_ = State::kFailback;
  out.failback = true;
  obs::instant(obs::Instant::kRecoveryEscalated);
}

RecoveryState RecoveryManager::capture() const {
  RecoveryState s;
  s.state = static_cast<int>(state_);
  s.last_applied = last_applied_;
  s.probe_left = probe_left_;
  s.probe_score0 = probe_score_[0];
  s.probe_score1 = probe_score_[1];
  s.probe_alarm_time = probe_alarm_time_;
  s.probe_alarm_tick = probe_alarm_tick_;
  s.rewarm_left = rewarm_left_;
  s.healthy = healthy_;
  s.restart_ticks = restart_ticks_;
  s.stats = stats_;
  s.has_sensor_monitor = sensor_monitor_.has_value();
  if (sensor_monitor_) s.sensor_monitor = sensor_monitor_->capture();
  s.open_sensor_event = open_sensor_event_;
  return s;
}

void RecoveryManager::adopt(const RecoveryState& s) {
  if (s.has_sensor_monitor != sensor_monitor_.has_value()) {
    throw std::invalid_argument(
        "RecoveryManager::adopt: sensor monitor arming mismatch");
  }
  state_ = static_cast<State>(s.state);
  last_applied_ = s.last_applied;
  probe_left_ = s.probe_left;
  probe_score_[0] = s.probe_score0;
  probe_score_[1] = s.probe_score1;
  probe_alarm_time_ = s.probe_alarm_time;
  probe_alarm_tick_ = s.probe_alarm_tick;
  rewarm_left_ = s.rewarm_left;
  healthy_ = s.healthy;
  restart_ticks_ = s.restart_ticks;
  stats_ = s.stats;
  if (sensor_monitor_) sensor_monitor_->adopt(s.sensor_monitor);
  open_sensor_event_ = s.open_sensor_event;
}

}  // namespace dav
