#include "core/ads_system.h"

#include <stdexcept>

#include "util/trace.h"

namespace dav {

std::string to_string(AgentMode m) {
  switch (m) {
    case AgentMode::kSingle: return "single";
    case AgentMode::kRoundRobin: return "diverseav";
    case AgentMode::kDuplicate: return "fd";
  }
  return "?";
}

AdsSystem::AdsSystem(AgentMode mode, const AgentConfig& agent_cfg,
                     GpuEngine& gpu0, CpuEngine& cpu0, GpuEngine* gpu1,
                     CpuEngine* cpu1, const RoadMap* map, double overlap_ratio)
    : distributor_(mode, overlap_ratio),
      agent_cfg_(agent_cfg),
      gpu0_(&gpu0),
      cpu0_(&cpu0),
      gpu1_(gpu1),
      cpu1_(cpu1),
      map_(map) {
  agent0_ = std::make_unique<SensorimotorAgent>("agent0", agent_cfg, gpu0,
                                                cpu0, map);
  if (mode == AgentMode::kRoundRobin) {
    // Time-multiplexed on the SAME engines: a permanent hardware fault
    // affects both agents; a transient affects whichever agent executes the
    // targeted dynamic instruction.
    agent1_ = std::make_unique<SensorimotorAgent>("agent1", agent_cfg, gpu0,
                                                  cpu0, map);
  } else if (mode == AgentMode::kDuplicate) {
    if (gpu1 == nullptr || cpu1 == nullptr) {
      throw std::invalid_argument(
          "AdsSystem: duplicate mode needs a second engine set");
    }
    agent1_ = std::make_unique<SensorimotorAgent>("agent1", agent_cfg, *gpu1,
                                                  *cpu1, map);
  }
}

void AdsSystem::attach_sensor_fault_injector(SensorFaultInjector* injector) {
  sensor_injector_ = injector;
  agent0_->attach_sensor_fault_injector(injector);
}

AdsState AdsSystem::capture() const {
  AdsState s;
  s.agent0 = agent0_->capture();
  if (agent1_) {
    s.has_agent1 = true;
    s.agent1 = agent1_->capture();
  }
  if (prev_output_) {
    s.has_prev_output = true;
    s.prev_output = *prev_output_;
  }
  s.step = step_;
  s.executing = executing_;
  return s;
}

void AdsSystem::adopt(const AdsState& s) {
  if (s.has_agent1 != (agent1_ != nullptr)) {
    throw std::invalid_argument(
        "AdsSystem::adopt: agent count mismatch (checkpoint from a "
        "different mode?)");
  }
  agent0_->adopt(s.agent0);
  if (agent1_) agent1_->adopt(s.agent1);
  if (s.has_prev_output) {
    prev_output_ = s.prev_output;
  } else {
    prev_output_.reset();
  }
  step_ = s.step;
  executing_ = s.executing;
}

void AdsSystem::reset() {
  agent0_->reset();
  if (agent1_) agent1_->reset();
  prev_output_.reset();
  step_ = 0;
}

const SensorimotorAgent& AdsSystem::agent(int i) const {
  return i == 0 ? *agent0_ : *agent1_;
}

SensorimotorAgent& AdsSystem::mutable_agent(int i) {
  return i == 0 ? *agent0_ : *agent1_;
}

AdsSystem::ProbeOutputs AdsSystem::probe_step(const SensorFrame& frame,
                                              double world_dt) {
  if (num_agents() < 2) {
    throw std::logic_error("AdsSystem::probe_step: needs two agents");
  }
  // Duplicated-frame arbitration: both agents see the same data, so their
  // outputs are directly comparable regardless of the round-robin schedule.
  ProbeOutputs out;
  executing_ = 0;
  out.u0 = agent0_->act(frame, world_dt);
  executing_ = 1;
  out.u1 = agent1_->act(frame, world_dt);
  ++step_;
  return out;
}

void AdsSystem::set_comparison_reference(const Actuation& applied) {
  prev_output_ = applied;
}

Actuation AdsSystem::degraded_step(int healthy, const SensorFrame& frame,
                                   double world_dt) {
  if (num_agents() < 2) {
    throw std::logic_error("AdsSystem::degraded_step: needs two agents");
  }
  executing_ = healthy;
  const Actuation applied = mutable_agent(healthy).act(frame, world_dt);
  prev_output_ = applied;
  // The restarted replica re-warms on the same frames; its output is
  // discarded until the rewarm window elapses and nominal operation resumes.
  const int rewarming = 1 - healthy;
  executing_ = rewarming;
  mutable_agent(rewarming).act(frame, world_dt);
  executing_ = healthy;
  ++step_;
  return applied;
}

void AdsSystem::restart_agent(int suspect) {
  if (num_agents() < 2) {
    throw std::logic_error("AdsSystem::restart_agent: needs two agents");
  }
  const bool dup = mode() == AgentMode::kDuplicate;
  GpuEngine& gpu = (suspect == 1 && dup) ? *gpu1_ : *gpu0_;
  CpuEngine& cpu = (suspect == 1 && dup) ? *cpu1_ : *cpu0_;
  // A spent transient strike leaves clean hardware behind; permanent faults
  // remain armed and will re-manifest.
  gpu.clear_transient_fault();
  cpu.clear_transient_fault();
  auto& slot = suspect == 0 ? agent0_ : agent1_;
  const std::string name = slot->name();
  slot = std::make_unique<SensorimotorAgent>(name, agent_cfg_, gpu, cpu, map_);
  slot->restore(mutable_agent(1 - suspect).snapshot());
  if (suspect == 0) slot->attach_sensor_fault_injector(sensor_injector_);
  executing_ = suspect;
  slot->rewarm();
  obs::instant(obs::Instant::kAgentRestart, 0.0, suspect);
}

AdsSystem::StepResult AdsSystem::step(const SensorFrame& frame,
                                      double world_dt) {
  const auto dispatch = distributor_.dispatch(step_);
  const double agent_dt = world_dt * distributor_.agent_period();
  StepResult result;
  result.acting_agent = dispatch.acting_agent;

  switch (distributor_.mode()) {
    case AgentMode::kSingle: {
      executing_ = 0;
      result.applied = agent0_->act(frame, agent_dt);
      if (prev_output_) {
        result.have_delta = true;
        result.delta = abs_delta(result.applied, *prev_output_);
      }
      prev_output_ = result.applied;
      break;
    }
    case AgentMode::kRoundRobin: {
      if (dispatch.to_agent0 && dispatch.to_agent1) {
        // Overlap frame (partial duplication, footnote 5): both agents
        // consume it; the scheduled owner drives and the same-step pair is
        // directly comparable.
        executing_ = 0;
        const Actuation u0 = agent0_->act(frame, agent_dt);
        executing_ = 1;
        const Actuation u1 = agent1_->act(frame, agent_dt);
        executing_ = dispatch.acting_agent;
        result.applied = dispatch.acting_agent == 0 ? u0 : u1;
        result.have_delta = true;
        result.delta = abs_delta(u0, u1);
      } else {
        SensorimotorAgent& acting =
            dispatch.acting_agent == 0 ? *agent0_ : *agent1_;
        executing_ = dispatch.acting_agent;
        result.applied = acting.act(frame, agent_dt);
        if (prev_output_) {
          // Adjacent outputs come from the two diverse agents.
          result.have_delta = true;
          result.delta = abs_delta(result.applied, *prev_output_);
        }
      }
      prev_output_ = result.applied;
      break;
    }
    case AgentMode::kDuplicate: {
      executing_ = 0;
      const Actuation u0 = agent0_->act(frame, agent_dt);
      executing_ = 1;
      const Actuation u1 = agent1_->act(frame, agent_dt);
      executing_ = 0;
      result.applied = u0;  // the (faulty) primary drives; replica = reference
      result.have_delta = true;
      result.delta = abs_delta(u0, u1);
      break;
    }
  }
  ++step_;
  return result;
}

std::size_t AdsSystem::state_bytes() const {
  std::size_t bytes = agent0_->state_bytes();
  if (agent1_) bytes += agent1_->state_bytes();
  return bytes;
}

}  // namespace dav
