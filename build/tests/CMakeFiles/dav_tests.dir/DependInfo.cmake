
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ads_system.cpp" "tests/CMakeFiles/dav_tests.dir/test_ads_system.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_ads_system.cpp.o.d"
  "/root/repo/tests/test_agent.cpp" "tests/CMakeFiles/dav_tests.dir/test_agent.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_agent.cpp.o.d"
  "/root/repo/tests/test_bits.cpp" "tests/CMakeFiles/dav_tests.dir/test_bits.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_bits.cpp.o.d"
  "/root/repo/tests/test_calc_warmup.cpp" "tests/CMakeFiles/dav_tests.dir/test_calc_warmup.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_calc_warmup.cpp.o.d"
  "/root/repo/tests/test_camera.cpp" "tests/CMakeFiles/dav_tests.dir/test_camera.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_camera.cpp.o.d"
  "/root/repo/tests/test_campaign.cpp" "tests/CMakeFiles/dav_tests.dir/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_campaign.cpp.o.d"
  "/root/repo/tests/test_control.cpp" "tests/CMakeFiles/dav_tests.dir/test_control.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_control.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/dav_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/dav_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_divergence_mechanism.cpp" "tests/CMakeFiles/dav_tests.dir/test_divergence_mechanism.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_divergence_mechanism.cpp.o.d"
  "/root/repo/tests/test_diversity.cpp" "tests/CMakeFiles/dav_tests.dir/test_diversity.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_diversity.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/dav_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/dav_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/dav_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_inertial.cpp" "tests/CMakeFiles/dav_tests.dir/test_inertial.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_inertial.cpp.o.d"
  "/root/repo/tests/test_integration_golden.cpp" "tests/CMakeFiles/dav_tests.dir/test_integration_golden.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_integration_golden.cpp.o.d"
  "/root/repo/tests/test_kitti_synth.cpp" "tests/CMakeFiles/dav_tests.dir/test_kitti_synth.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_kitti_synth.cpp.o.d"
  "/root/repo/tests/test_npc.cpp" "tests/CMakeFiles/dav_tests.dir/test_npc.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_npc.cpp.o.d"
  "/root/repo/tests/test_opcodes.cpp" "tests/CMakeFiles/dav_tests.dir/test_opcodes.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_opcodes.cpp.o.d"
  "/root/repo/tests/test_perception.cpp" "tests/CMakeFiles/dav_tests.dir/test_perception.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_perception.cpp.o.d"
  "/root/repo/tests/test_plan_generator.cpp" "tests/CMakeFiles/dav_tests.dir/test_plan_generator.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_plan_generator.cpp.o.d"
  "/root/repo/tests/test_platform_monitors.cpp" "tests/CMakeFiles/dav_tests.dir/test_platform_monitors.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_platform_monitors.cpp.o.d"
  "/root/repo/tests/test_ppm_and_edges.cpp" "tests/CMakeFiles/dav_tests.dir/test_ppm_and_edges.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_ppm_and_edges.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dav_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/dav_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_road.cpp" "tests/CMakeFiles/dav_tests.dir/test_road.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_road.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/dav_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_sensor_rig.cpp" "tests/CMakeFiles/dav_tests.dir/test_sensor_rig.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_sensor_rig.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/dav_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/dav_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_text_report.cpp" "tests/CMakeFiles/dav_tests.dir/test_text_report.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_text_report.cpp.o.d"
  "/root/repo/tests/test_trajectory.cpp" "tests/CMakeFiles/dav_tests.dir/test_trajectory.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_trajectory.cpp.o.d"
  "/root/repo/tests/test_uav.cpp" "tests/CMakeFiles/dav_tests.dir/test_uav.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_uav.cpp.o.d"
  "/root/repo/tests/test_vec2.cpp" "tests/CMakeFiles/dav_tests.dir/test_vec2.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_vec2.cpp.o.d"
  "/root/repo/tests/test_vehicle.cpp" "tests/CMakeFiles/dav_tests.dir/test_vehicle.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_vehicle.cpp.o.d"
  "/root/repo/tests/test_waypoint_head.cpp" "tests/CMakeFiles/dav_tests.dir/test_waypoint_head.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_waypoint_head.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/dav_tests.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/dav_tests.dir/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/campaign/CMakeFiles/dav_campaign.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dav_core.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/dav_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/dav_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/dav_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dav_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/dav_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
