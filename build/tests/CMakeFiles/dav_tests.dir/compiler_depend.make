# Empty compiler generated dependencies file for dav_tests.
# This may be replaced when dependencies are built.
