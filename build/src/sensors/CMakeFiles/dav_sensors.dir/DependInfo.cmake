
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/camera.cpp" "src/sensors/CMakeFiles/dav_sensors.dir/camera.cpp.o" "gcc" "src/sensors/CMakeFiles/dav_sensors.dir/camera.cpp.o.d"
  "/root/repo/src/sensors/diversity.cpp" "src/sensors/CMakeFiles/dav_sensors.dir/diversity.cpp.o" "gcc" "src/sensors/CMakeFiles/dav_sensors.dir/diversity.cpp.o.d"
  "/root/repo/src/sensors/inertial.cpp" "src/sensors/CMakeFiles/dav_sensors.dir/inertial.cpp.o" "gcc" "src/sensors/CMakeFiles/dav_sensors.dir/inertial.cpp.o.d"
  "/root/repo/src/sensors/kitti_synth.cpp" "src/sensors/CMakeFiles/dav_sensors.dir/kitti_synth.cpp.o" "gcc" "src/sensors/CMakeFiles/dav_sensors.dir/kitti_synth.cpp.o.d"
  "/root/repo/src/sensors/ppm.cpp" "src/sensors/CMakeFiles/dav_sensors.dir/ppm.cpp.o" "gcc" "src/sensors/CMakeFiles/dav_sensors.dir/ppm.cpp.o.d"
  "/root/repo/src/sensors/sensor_rig.cpp" "src/sensors/CMakeFiles/dav_sensors.dir/sensor_rig.cpp.o" "gcc" "src/sensors/CMakeFiles/dav_sensors.dir/sensor_rig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dav_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
