file(REMOVE_RECURSE
  "libdav_sensors.a"
)
