file(REMOVE_RECURSE
  "CMakeFiles/dav_sensors.dir/camera.cpp.o"
  "CMakeFiles/dav_sensors.dir/camera.cpp.o.d"
  "CMakeFiles/dav_sensors.dir/diversity.cpp.o"
  "CMakeFiles/dav_sensors.dir/diversity.cpp.o.d"
  "CMakeFiles/dav_sensors.dir/inertial.cpp.o"
  "CMakeFiles/dav_sensors.dir/inertial.cpp.o.d"
  "CMakeFiles/dav_sensors.dir/kitti_synth.cpp.o"
  "CMakeFiles/dav_sensors.dir/kitti_synth.cpp.o.d"
  "CMakeFiles/dav_sensors.dir/ppm.cpp.o"
  "CMakeFiles/dav_sensors.dir/ppm.cpp.o.d"
  "CMakeFiles/dav_sensors.dir/sensor_rig.cpp.o"
  "CMakeFiles/dav_sensors.dir/sensor_rig.cpp.o.d"
  "libdav_sensors.a"
  "libdav_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
