# Empty compiler generated dependencies file for dav_sensors.
# This may be replaced when dependencies are built.
