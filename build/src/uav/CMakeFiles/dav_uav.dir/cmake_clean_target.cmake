file(REMOVE_RECURSE
  "libdav_uav.a"
)
