file(REMOVE_RECURSE
  "CMakeFiles/dav_uav.dir/uav.cpp.o"
  "CMakeFiles/dav_uav.dir/uav.cpp.o.d"
  "libdav_uav.a"
  "libdav_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
