# Empty dependencies file for dav_uav.
# This may be replaced when dependencies are built.
