
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/npc.cpp" "src/sim/CMakeFiles/dav_sim.dir/npc.cpp.o" "gcc" "src/sim/CMakeFiles/dav_sim.dir/npc.cpp.o.d"
  "/root/repo/src/sim/road.cpp" "src/sim/CMakeFiles/dav_sim.dir/road.cpp.o" "gcc" "src/sim/CMakeFiles/dav_sim.dir/road.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/dav_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/dav_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/sim/CMakeFiles/dav_sim.dir/trajectory.cpp.o" "gcc" "src/sim/CMakeFiles/dav_sim.dir/trajectory.cpp.o.d"
  "/root/repo/src/sim/vehicle.cpp" "src/sim/CMakeFiles/dav_sim.dir/vehicle.cpp.o" "gcc" "src/sim/CMakeFiles/dav_sim.dir/vehicle.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/dav_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/dav_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
