file(REMOVE_RECURSE
  "libdav_sim.a"
)
