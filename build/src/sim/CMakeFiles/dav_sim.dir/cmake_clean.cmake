file(REMOVE_RECURSE
  "CMakeFiles/dav_sim.dir/npc.cpp.o"
  "CMakeFiles/dav_sim.dir/npc.cpp.o.d"
  "CMakeFiles/dav_sim.dir/road.cpp.o"
  "CMakeFiles/dav_sim.dir/road.cpp.o.d"
  "CMakeFiles/dav_sim.dir/scenario.cpp.o"
  "CMakeFiles/dav_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/dav_sim.dir/trajectory.cpp.o"
  "CMakeFiles/dav_sim.dir/trajectory.cpp.o.d"
  "CMakeFiles/dav_sim.dir/vehicle.cpp.o"
  "CMakeFiles/dav_sim.dir/vehicle.cpp.o.d"
  "CMakeFiles/dav_sim.dir/world.cpp.o"
  "CMakeFiles/dav_sim.dir/world.cpp.o.d"
  "libdav_sim.a"
  "libdav_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
