# Empty dependencies file for dav_sim.
# This may be replaced when dependencies are built.
