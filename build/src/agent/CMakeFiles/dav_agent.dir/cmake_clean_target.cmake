file(REMOVE_RECURSE
  "libdav_agent.a"
)
