file(REMOVE_RECURSE
  "CMakeFiles/dav_agent.dir/agent.cpp.o"
  "CMakeFiles/dav_agent.dir/agent.cpp.o.d"
  "CMakeFiles/dav_agent.dir/control.cpp.o"
  "CMakeFiles/dav_agent.dir/control.cpp.o.d"
  "CMakeFiles/dav_agent.dir/perception.cpp.o"
  "CMakeFiles/dav_agent.dir/perception.cpp.o.d"
  "CMakeFiles/dav_agent.dir/tensor.cpp.o"
  "CMakeFiles/dav_agent.dir/tensor.cpp.o.d"
  "CMakeFiles/dav_agent.dir/warmup.cpp.o"
  "CMakeFiles/dav_agent.dir/warmup.cpp.o.d"
  "CMakeFiles/dav_agent.dir/waypoint_head.cpp.o"
  "CMakeFiles/dav_agent.dir/waypoint_head.cpp.o.d"
  "libdav_agent.a"
  "libdav_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
