
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cpp" "src/agent/CMakeFiles/dav_agent.dir/agent.cpp.o" "gcc" "src/agent/CMakeFiles/dav_agent.dir/agent.cpp.o.d"
  "/root/repo/src/agent/control.cpp" "src/agent/CMakeFiles/dav_agent.dir/control.cpp.o" "gcc" "src/agent/CMakeFiles/dav_agent.dir/control.cpp.o.d"
  "/root/repo/src/agent/perception.cpp" "src/agent/CMakeFiles/dav_agent.dir/perception.cpp.o" "gcc" "src/agent/CMakeFiles/dav_agent.dir/perception.cpp.o.d"
  "/root/repo/src/agent/tensor.cpp" "src/agent/CMakeFiles/dav_agent.dir/tensor.cpp.o" "gcc" "src/agent/CMakeFiles/dav_agent.dir/tensor.cpp.o.d"
  "/root/repo/src/agent/warmup.cpp" "src/agent/CMakeFiles/dav_agent.dir/warmup.cpp.o" "gcc" "src/agent/CMakeFiles/dav_agent.dir/warmup.cpp.o.d"
  "/root/repo/src/agent/waypoint_head.cpp" "src/agent/CMakeFiles/dav_agent.dir/waypoint_head.cpp.o" "gcc" "src/agent/CMakeFiles/dav_agent.dir/waypoint_head.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fi/CMakeFiles/dav_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/dav_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dav_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
