# Empty dependencies file for dav_agent.
# This may be replaced when dependencies are built.
