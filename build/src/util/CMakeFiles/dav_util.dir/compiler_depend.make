# Empty compiler generated dependencies file for dav_util.
# This may be replaced when dependencies are built.
