file(REMOVE_RECURSE
  "CMakeFiles/dav_util.dir/csv.cpp.o"
  "CMakeFiles/dav_util.dir/csv.cpp.o.d"
  "CMakeFiles/dav_util.dir/geometry.cpp.o"
  "CMakeFiles/dav_util.dir/geometry.cpp.o.d"
  "CMakeFiles/dav_util.dir/stats.cpp.o"
  "CMakeFiles/dav_util.dir/stats.cpp.o.d"
  "CMakeFiles/dav_util.dir/text_report.cpp.o"
  "CMakeFiles/dav_util.dir/text_report.cpp.o.d"
  "libdav_util.a"
  "libdav_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
