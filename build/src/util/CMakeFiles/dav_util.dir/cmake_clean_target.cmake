file(REMOVE_RECURSE
  "libdav_util.a"
)
