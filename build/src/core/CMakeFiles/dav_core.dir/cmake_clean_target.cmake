file(REMOVE_RECURSE
  "libdav_core.a"
)
