file(REMOVE_RECURSE
  "CMakeFiles/dav_core.dir/ads_system.cpp.o"
  "CMakeFiles/dav_core.dir/ads_system.cpp.o.d"
  "CMakeFiles/dav_core.dir/detector.cpp.o"
  "CMakeFiles/dav_core.dir/detector.cpp.o.d"
  "CMakeFiles/dav_core.dir/divergence.cpp.o"
  "CMakeFiles/dav_core.dir/divergence.cpp.o.d"
  "CMakeFiles/dav_core.dir/threshold_lut.cpp.o"
  "CMakeFiles/dav_core.dir/threshold_lut.cpp.o.d"
  "libdav_core.a"
  "libdav_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
