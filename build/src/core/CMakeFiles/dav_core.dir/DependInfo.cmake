
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ads_system.cpp" "src/core/CMakeFiles/dav_core.dir/ads_system.cpp.o" "gcc" "src/core/CMakeFiles/dav_core.dir/ads_system.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/dav_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/dav_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/divergence.cpp" "src/core/CMakeFiles/dav_core.dir/divergence.cpp.o" "gcc" "src/core/CMakeFiles/dav_core.dir/divergence.cpp.o.d"
  "/root/repo/src/core/threshold_lut.cpp" "src/core/CMakeFiles/dav_core.dir/threshold_lut.cpp.o" "gcc" "src/core/CMakeFiles/dav_core.dir/threshold_lut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agent/CMakeFiles/dav_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/dav_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/dav_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dav_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
