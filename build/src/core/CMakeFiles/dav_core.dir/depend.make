# Empty dependencies file for dav_core.
# This may be replaced when dependencies are built.
