# Empty dependencies file for dav_fi.
# This may be replaced when dependencies are built.
