file(REMOVE_RECURSE
  "libdav_fi.a"
)
