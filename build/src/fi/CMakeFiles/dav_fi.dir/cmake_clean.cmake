file(REMOVE_RECURSE
  "CMakeFiles/dav_fi.dir/fault_model.cpp.o"
  "CMakeFiles/dav_fi.dir/fault_model.cpp.o.d"
  "CMakeFiles/dav_fi.dir/opcodes.cpp.o"
  "CMakeFiles/dav_fi.dir/opcodes.cpp.o.d"
  "CMakeFiles/dav_fi.dir/plan_generator.cpp.o"
  "CMakeFiles/dav_fi.dir/plan_generator.cpp.o.d"
  "libdav_fi.a"
  "libdav_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
