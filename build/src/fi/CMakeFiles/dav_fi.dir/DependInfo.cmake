
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fi/fault_model.cpp" "src/fi/CMakeFiles/dav_fi.dir/fault_model.cpp.o" "gcc" "src/fi/CMakeFiles/dav_fi.dir/fault_model.cpp.o.d"
  "/root/repo/src/fi/opcodes.cpp" "src/fi/CMakeFiles/dav_fi.dir/opcodes.cpp.o" "gcc" "src/fi/CMakeFiles/dav_fi.dir/opcodes.cpp.o.d"
  "/root/repo/src/fi/plan_generator.cpp" "src/fi/CMakeFiles/dav_fi.dir/plan_generator.cpp.o" "gcc" "src/fi/CMakeFiles/dav_fi.dir/plan_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
