# Empty dependencies file for dav_campaign.
# This may be replaced when dependencies are built.
