file(REMOVE_RECURSE
  "libdav_campaign.a"
)
