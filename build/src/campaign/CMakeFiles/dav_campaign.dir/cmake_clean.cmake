file(REMOVE_RECURSE
  "CMakeFiles/dav_campaign.dir/campaign.cpp.o"
  "CMakeFiles/dav_campaign.dir/campaign.cpp.o.d"
  "CMakeFiles/dav_campaign.dir/driver.cpp.o"
  "CMakeFiles/dav_campaign.dir/driver.cpp.o.d"
  "CMakeFiles/dav_campaign.dir/metrics.cpp.o"
  "CMakeFiles/dav_campaign.dir/metrics.cpp.o.d"
  "CMakeFiles/dav_campaign.dir/resources.cpp.o"
  "CMakeFiles/dav_campaign.dir/resources.cpp.o.d"
  "libdav_campaign.a"
  "libdav_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
