file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_comparison.dir/bench_sec6_comparison.cpp.o"
  "CMakeFiles/bench_sec6_comparison.dir/bench_sec6_comparison.cpp.o.d"
  "bench_sec6_comparison"
  "bench_sec6_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
