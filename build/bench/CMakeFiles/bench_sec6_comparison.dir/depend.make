# Empty dependencies file for bench_sec6_comparison.
# This may be replaced when dependencies are built.
