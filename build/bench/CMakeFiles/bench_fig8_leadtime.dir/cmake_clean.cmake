file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_leadtime.dir/bench_fig8_leadtime.cpp.o"
  "CMakeFiles/bench_fig8_leadtime.dir/bench_fig8_leadtime.cpp.o.d"
  "bench_fig8_leadtime"
  "bench_fig8_leadtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_leadtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
