# Empty dependencies file for bench_overlap_ablation.
# This may be replaced when dependencies are built.
