# Empty compiler generated dependencies file for bench_table1_fi_summary.
# This may be replaced when dependencies are built.
