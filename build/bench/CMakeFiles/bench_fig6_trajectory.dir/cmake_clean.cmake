file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_trajectory.dir/bench_fig6_trajectory.cpp.o"
  "CMakeFiles/bench_fig6_trajectory.dir/bench_fig6_trajectory.cpp.o.d"
  "bench_fig6_trajectory"
  "bench_fig6_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
