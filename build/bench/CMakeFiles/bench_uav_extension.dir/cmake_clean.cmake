file(REMOVE_RECURSE
  "CMakeFiles/bench_uav_extension.dir/bench_uav_extension.cpp.o"
  "CMakeFiles/bench_uav_extension.dir/bench_uav_extension.cpp.o.d"
  "bench_uav_extension"
  "bench_uav_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uav_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
