# Empty compiler generated dependencies file for bench_uav_extension.
# This may be replaced when dependencies are built.
