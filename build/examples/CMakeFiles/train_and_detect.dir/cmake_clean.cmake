file(REMOVE_RECURSE
  "CMakeFiles/train_and_detect.dir/train_and_detect.cpp.o"
  "CMakeFiles/train_and_detect.dir/train_and_detect.cpp.o.d"
  "train_and_detect"
  "train_and_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
