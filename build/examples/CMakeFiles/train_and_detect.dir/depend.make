# Empty dependencies file for train_and_detect.
# This may be replaced when dependencies are built.
