file(REMOVE_RECURSE
  "CMakeFiles/lead_slowdown_demo.dir/lead_slowdown_demo.cpp.o"
  "CMakeFiles/lead_slowdown_demo.dir/lead_slowdown_demo.cpp.o.d"
  "lead_slowdown_demo"
  "lead_slowdown_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lead_slowdown_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
