# Empty compiler generated dependencies file for lead_slowdown_demo.
# This may be replaced when dependencies are built.
