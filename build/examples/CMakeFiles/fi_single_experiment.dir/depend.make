# Empty dependencies file for fi_single_experiment.
# This may be replaced when dependencies are built.
