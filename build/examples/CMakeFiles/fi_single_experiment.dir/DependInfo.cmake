
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fi_single_experiment.cpp" "examples/CMakeFiles/fi_single_experiment.dir/fi_single_experiment.cpp.o" "gcc" "examples/CMakeFiles/fi_single_experiment.dir/fi_single_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/campaign/CMakeFiles/dav_campaign.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dav_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/dav_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/dav_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/dav_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dav_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
