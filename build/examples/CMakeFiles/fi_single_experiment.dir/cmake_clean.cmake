file(REMOVE_RECURSE
  "CMakeFiles/fi_single_experiment.dir/fi_single_experiment.cpp.o"
  "CMakeFiles/fi_single_experiment.dir/fi_single_experiment.cpp.o.d"
  "fi_single_experiment"
  "fi_single_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_single_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
