// davcamp — run one fault-injection campaign from the command line.
//
// The primary consumer is the CI crash/resume smoke job: launched with
// DAV_JOBS + DAV_JOURNAL, hard-killed partway, relaunched, and its output
// diffed against an uninterrupted reference run. The summary is therefore
// fully deterministic (no wall-clock, no hostnames) and published with an
// error-checked writer, so a byte-level diff is meaningful.
//
// Usage:
//   davcamp [--scenario=lead|cutin|front] [--mode=single|rr|dup]
//           [--domain=gpu|cpu] [--kind=transient|permanent]
//           [--faults=register|sensor|both]
//           [--td=<meters>] [--out=<path>] [--workers=EP,...] [--checkpoint]
//           [--env-help]
//   davcamp serve [--listen=host:port|unix:/path]
//
// --faults selects the injection surface: "register" (default) is the
// classic compute-fault sweep and prints byte-identical output to earlier
// davcamp versions; "sensor" sweeps the sensor-path models selected by
// DAV_SENSOR_FAULTS (all of them when unset) with fail-degraded fusion
// enabled; "both" appends the sensor section after the register one.
//
// Environment: every DAV_* variable is parsed by dav::EnvOptions (the only
// env-reading entry point); `davcamp --env-help` prints the full table.
// DAV_SCALE scales run counts; DAV_JOBS / DAV_JOURNAL select the
// process-isolated executor (persistent pool by default, DESIGN.md §9/§11).
// DAV_WORKERS / --workers route the campaign through the distributed
// coordinator, and `davcamp serve` (listen address from --listen or
// DAV_SERVE) runs this process as a worker daemon (DESIGN.md §13).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/env_options.h"
#include "campaign/metrics.h"
#include "campaign/transport.h"
#include "util/trace.h"

namespace {

using namespace dav;

struct Args {
  enum class Faults { kRegister, kSensor, kBoth };
  ScenarioId scenario = ScenarioId::kLeadSlowdown;
  AgentMode mode = AgentMode::kRoundRobin;
  FaultDomain domain = FaultDomain::kGpu;
  FaultModelKind kind = FaultModelKind::kTransient;
  Faults faults = Faults::kRegister;
  double td = 2.0;
  std::string out;      // empty = stdout
  std::string workers;  // --workers override of DAV_WORKERS
  std::string metrics;  // --metrics override of DAV_METRICS
  bool checkpoint = false;  // --checkpoint: fork-point prefix sharing
  bool env_help = false;
  bool serve = false;    // `davcamp serve`: run as a worker daemon
  std::string listen;    // --listen override of DAV_SERVE
};

[[noreturn]] void usage_error(const std::string& what) {
  throw std::runtime_error(
      "davcamp: " + what +
      "\nusage: davcamp [--scenario=lead|cutin|front] [--mode=single|rr|dup]"
      " [--domain=gpu|cpu] [--kind=transient|permanent]"
      " [--faults=register|sensor|both] [--td=<meters>]"
      " [--out=<path>] [--workers=EP,...] [--metrics=<path>] [--checkpoint]"
      " [--env-help]"
      "\n       davcamp serve [--listen=host:port|unix:/path]");
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "serve" && i == 1) {
      a.serve = true;
      continue;
    }
    if (arg == "--env-help") {
      a.env_help = true;
      continue;
    }
    if (arg == "--checkpoint") {
      a.checkpoint = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-' ||
        eq == std::string::npos) {
      usage_error("unrecognized argument '" + arg + "'");
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    if (key == "scenario") {
      if (val == "lead") a.scenario = ScenarioId::kLeadSlowdown;
      else if (val == "cutin") a.scenario = ScenarioId::kGhostCutIn;
      else if (val == "front") a.scenario = ScenarioId::kFrontAccident;
      else usage_error("unknown scenario '" + val + "'");
    } else if (key == "mode") {
      if (val == "single") a.mode = AgentMode::kSingle;
      else if (val == "rr") a.mode = AgentMode::kRoundRobin;
      else if (val == "dup") a.mode = AgentMode::kDuplicate;
      else usage_error("unknown mode '" + val + "'");
    } else if (key == "domain") {
      if (val == "gpu") a.domain = FaultDomain::kGpu;
      else if (val == "cpu") a.domain = FaultDomain::kCpu;
      else usage_error("unknown domain '" + val + "'");
    } else if (key == "kind") {
      if (val == "transient") a.kind = FaultModelKind::kTransient;
      else if (val == "permanent") a.kind = FaultModelKind::kPermanent;
      else usage_error("unknown kind '" + val + "'");
    } else if (key == "faults") {
      if (val == "register") a.faults = Args::Faults::kRegister;
      else if (val == "sensor") a.faults = Args::Faults::kSensor;
      else if (val == "both") a.faults = Args::Faults::kBoth;
      else usage_error("unknown --faults surface '" + val + "'");
    } else if (key == "td") {
      char* end = nullptr;
      a.td = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || a.td <= 0.0) {
        usage_error("--td expects a positive number, got '" + val + "'");
      }
    } else if (key == "out") {
      a.out = val;
    } else if (key == "workers") {
      a.workers = val;
    } else if (key == "metrics") {
      a.metrics = val;
    } else if (key == "listen") {
      a.listen = val;
    } else {
      usage_error("unrecognized option '--" + key + "'");
    }
  }
  return a;
}

std::string render_summary(const Args& a, const CampaignSummary& s,
                           const std::vector<RunResult>& runs,
                           const std::vector<CampaignManager::Quarantine>& q) {
  std::ostringstream out;
  out << "davcamp campaign summary\n";
  out << "scenario=" << to_string(a.scenario) << " mode=" << to_string(a.mode)
      << " domain=" << to_string(a.domain) << " kind=" << to_string(a.kind)
      << " td=" << a.td << "\n";
  out << "total=" << s.total << " active=" << s.active
      << " hang_crash=" << s.hang_crash << " accidents=" << s.accidents
      << " traj_violations=" << s.traj_violations
      << " harness_errors=" << s.harness_errors << "\n";
  out << "per-run outcomes:\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << "  run " << i << " seed=" << runs[i].run_seed << " outcome="
        << to_string(runs[i].outcome) << "\n";
  }
  out << "quarantined=" << q.size() << "\n";
  for (const auto& e : q) {
    out << "  seed=" << e.cfg.run_seed << " what=" << e.what << "\n";
  }
  return out.str();
}

/// The sensor-sweep section. Deterministic like render_summary: every value
/// is a pure function of campaign seed + plans, and the doubles are printed
/// with fixed precision so the CI determinism diff is byte-meaningful.
std::string render_sensor_summary(
    const Args& a, const EnvOptions& env,
    const std::vector<SensorFaultModel>& models,
    const std::vector<RunResult>& runs, std::size_t quarantined) {
  std::ostringstream out;
  out << "davcamp sensor campaign summary\n";
  out << "scenario=" << to_string(a.scenario) << " mode=" << to_string(a.mode)
      << " onset=" << env.sensor_onset_tick
      << " duration=" << env.sensor_duration_ticks << " models=";
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (i > 0) out << ",";
    out << to_string(models[i]);
  }
  out << "\n";
  const RecoverySummary rs = summarize_recovery(runs);
  char fixed[160];
  std::snprintf(fixed, sizeof(fixed),
                "mean_sensor_mttr_sec=%.3f mean_availability=%.4f",
                rs.mean_sensor_mttr_sec, rs.mean_availability);
  out << "total=" << rs.total
      << " sensor_degraded_runs=" << rs.sensor_degraded_runs
      << " sensor_episodes=" << rs.sensor_episodes
      << " sensor_rejoins=" << rs.sensor_rejoins
      << " hazard_after_degrade=" << rs.hazard_after_sensor_degrade
      << " escalated=" << rs.escalated_runs
      << " harness_errors=" << rs.harness_errors << "\n";
  out << fixed << "\n";
  out << "per-run outcomes:\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << "  run " << i << " model=" << to_string(runs[i].sensor_fault.model)
        << " seed=" << runs[i].run_seed
        << " outcome=" << to_string(runs[i].outcome)
        << " corruptions=" << runs[i].sensor_corruptions
        << " degraded_ticks=" << runs[i].recovery.sensor_degraded_ticks
        << "\n";
  }
  out << "quarantined=" << quarantined << "\n";
  return out.str();
}

/// The generated DAV_* reference (EnvOptions::docs()): the same definitions
/// the parser uses, so this table and the README one cannot drift from the
/// code.
void print_env_help() {
  std::printf("DAV_* environment variables (parsed by dav::EnvOptions):\n");
  for (const EnvOptions::VarDoc& d : EnvOptions::docs()) {
    std::printf("  %-22s default %-8s %s\n", d.name, d.fallback, d.summary);
  }
}

/// Executor telemetry: per-worker utilization, retries, journal traffic, and
/// a quarantine-reason histogram. Wall-clock data, so it goes to STDERR —
/// the published summary stays byte-deterministic for the CI resume diff.
void print_telemetry(const CampaignManager& mgr) {
  if (!mgr.executor_used()) return;
  const ExecutorStats& s = mgr.executor_stats();
  std::fprintf(stderr,
               "davcamp executor telemetry (stderr only, nondeterministic)\n"
               "  workers=%d launched=%d retries=%d signal_deaths=%d "
               "timeouts=%d quarantined=%d\n"
               "  journal: hits=%d appends=%d bytes=%llu torn_bytes=%llu\n"
               "  wall=%.2fs\n",
               s.jobs, s.launched, s.retries, s.signal_deaths, s.timeouts,
               s.quarantined, s.journal_hits, s.journal_appends,
               static_cast<unsigned long long>(s.journal_bytes),
               static_cast<unsigned long long>(s.torn_bytes_discarded),
               s.wall_sec);
  if (s.remote_endpoints > 0) {
    std::fprintf(stderr,
                 "  distributed: endpoints=%d reconnects=%d redispatches=%d "
                 "duplicate_discards=%d\n",
                 s.remote_endpoints, s.reconnects, s.redispatches,
                 s.duplicate_discards);
  }
  if (s.pool_workers > 0) {
    const std::uint64_t lookups = s.checkpoint_hits + s.checkpoint_misses;
    std::fprintf(
        stderr,
        "  pool: workers=%d respawns=%d checkpoint_hits=%llu "
        "checkpoint_misses=%llu checkpoint_evictions=%llu hit_rate=%.0f%%\n",
        s.pool_workers, s.respawns,
        static_cast<unsigned long long>(s.checkpoint_hits),
        static_cast<unsigned long long>(s.checkpoint_misses),
        static_cast<unsigned long long>(s.checkpoint_evictions),
        lookups > 0 ? 100.0 * static_cast<double>(s.checkpoint_hits) /
                          static_cast<double>(lookups)
                    : 0.0);
  }
  for (std::size_t i = 0; i < s.slot_busy_sec.size(); ++i) {
    const double util =
        s.wall_sec > 0.0 ? 100.0 * s.slot_busy_sec[i] / s.wall_sec : 0.0;
    const int served = i < s.slot_runs_served.size()
                           ? s.slot_runs_served[i]
                           : 0;
    std::fprintf(stderr,
                 "  worker %zu: busy=%.2fs utilization=%.0f%% served=%d\n",
                 i, s.slot_busy_sec[i], util, served);
  }
  for (const EndpointTelemetry& et : s.endpoints) {
    std::fprintf(stderr,
                 "  endpoint %d (%s): state=%s slots=%u runs=%llu "
                 "reconnects=%d clock_offset=%.3fms\n",
                 et.index, et.spec.c_str(), et.state.c_str(), et.slots,
                 static_cast<unsigned long long>(et.runs_done), et.reconnects,
                 et.clock_offset_sec * 1e3);
  }
  // Flight-recorder health + per-stage latency (eviction-proof histograms).
  // The drop count is load-bearing for CI: trace smoke fails when any run's
  // ring evicted events, so published traces are always complete.
  if (s.stage_hist.total_count() > 0 || s.trace_dropped > 0) {
    std::fprintf(stderr, "  trace: dropped_events=%llu\n",
                 static_cast<unsigned long long>(s.trace_dropped));
    for (std::size_t i = 0; i < s.stage_hist.stages.size(); ++i) {
      const obs::StageHistogram& h = s.stage_hist.stages[i];
      if (h.count() == 0) continue;
      std::fprintf(stderr,
                   "  stage %-14s n=%-7llu p50=%lluns p95=%lluns p99=%lluns\n",
                   to_string(static_cast<obs::Stage>(i)),
                   static_cast<unsigned long long>(h.count()),
                   static_cast<unsigned long long>(h.percentile_ns(50.0)),
                   static_cast<unsigned long long>(h.percentile_ns(95.0)),
                   static_cast<unsigned long long>(h.percentile_ns(99.0)));
    }
  }
  // Quarantine reasons, deduplicated into a histogram.
  std::map<std::string, int> reasons;
  for (const auto& q : mgr.quarantined()) ++reasons[q.what];
  for (const auto& [what, n] : reasons) {
    std::fprintf(stderr, "  quarantine x%d: %s\n", n, what.c_str());
  }
}

void publish(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("davcamp: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  out << text;
  out.flush();
  if (!out) {
    throw std::runtime_error("davcamp: write failed for " + path + ": " +
                             std::strerror(errno));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    if (a.env_help) {
      print_env_help();
      return 0;
    }
    EnvOptions env = EnvOptions::from_env();
    if (a.serve) {
      ServeOptions sopts;
      sopts.listen_spec = a.listen.empty() ? env.serve : a.listen;
      if (sopts.listen_spec.empty()) {
        usage_error("serve needs a listen address (--listen or DAV_SERVE)");
      }
      sopts.heartbeat_sec = env.heartbeat_sec;
      return serve_campaign(sopts, env.executor_options());
    }
    if (!a.workers.empty()) {
      env.workers = split_worker_list(a.workers);
      env.validate();
    }
    if (!a.metrics.empty()) env.metrics_path = a.metrics;
    if (a.checkpoint) env.checkpoint = true;
    CampaignManager mgr(env, /*seed=*/2022);
    std::string text;
    if (a.faults != Args::Faults::kSensor) {
      const std::vector<RunResult> golden =
          mgr.golden(a.scenario, a.mode, mgr.scale().golden_runs);
      const Trajectory baseline = golden_baseline(golden);
      const std::vector<RunResult> runs =
          mgr.fi_campaign(a.scenario, a.mode, a.domain, a.kind);
      const CampaignSummary s = summarize_campaign(runs, baseline, a.td);
      text += render_summary(a, s, runs, mgr.quarantined());
    }
    if (a.faults != Args::Faults::kRegister) {
      const std::vector<SensorFaultModel> models =
          env.sensor_faults.empty() ? all_sensor_fault_models()
                                    : env.sensor_faults;
      // Restart-recovery arms the platform sensor monitor alongside fusion;
      // single mode has no replica, so it keeps the safe-stop baseline.
      MitigationSetup mit;
      mit.policy = a.mode == AgentMode::kSingle
                       ? MitigationPolicy::kSafeStopOnly
                       : MitigationPolicy::kRestartRecovery;
      const std::size_t quarantined_before = mgr.quarantined().size();
      const std::vector<RunResult> runs = mgr.sensor_fi_campaign(
          a.scenario, a.mode, models, /*runs_per_model=*/0,
          env.sensor_onset_tick, env.sensor_duration_ticks, &mit);
      text += render_sensor_summary(
          a, env, models, runs,
          mgr.quarantined().size() - quarantined_before);
    }
    publish(a.out, text);
    print_telemetry(mgr);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
