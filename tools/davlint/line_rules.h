// The eight PR-1 per-line rules (rand, random-device, wall-clock,
// unordered-iter, float-eq, uninit-pod, obs-clock, env-read), running on the
// stripped code lines the lexer produces. Behaviour is unchanged from the
// line-regex davlint; only the stripping underneath got real (raw strings,
// cross-line block comments).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace davlint {

void run_line_rules(const SourceFile& f, const std::set<std::string>& enabled,
                    std::vector<Finding>& findings);

}  // namespace davlint
