#include "semantic_rules.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace davlint {

namespace {

// ---- signal-safety / fork-safety -----------------------------------------

/// External free calls legal in a signal handler or a fork() child branch:
/// the POSIX async-signal-safe set this codebase actually needs, plus pure
/// helpers (memcpy/strlen/min/max) that touch no global state. Everything
/// not listed and not defined in the project is a violation — default deny.
const std::set<std::string>& sigsafe_allowlist() {
  static const std::set<std::string> allow = {
      // syscalls / POSIX async-signal-safe
      "write",    "read",     "close",       "open",       "openat",
      "dup",      "dup2",     "pipe",        "pipe2",      "poll",
      "_exit",    "_Exit",    "abort",       "raise",      "kill",
      "getpid",   "getppid",  "waitpid",     "wait",       "signal",
      "sigaction", "sigemptyset", "sigfillset", "sigaddset", "sigdelset",
      "sigprocmask", "pthread_sigmask", "setrlimit", "getrlimit",
      "getrusage", "alarm",   "execve",      "execv",      "execvp",
      "execl",    "execle",   "execlp",      "fork",       "unlink",
      "fsync",    "fdatasync", "ftruncate",  "lseek",      "chdir",
      "umask",
      // sockets (async-signal-safe per POSIX; used by the fork-safety walk
      // over the transport/daemon TUs)
      "socket",   "socketpair", "bind",      "listen",     "accept",
      "accept4",  "connect",  "send",        "recv",       "sendto",
      "recvfrom", "shutdown", "setsockopt",  "getsockopt", "getsockname",
      // pure / no-global-state helpers
      "memcpy",   "memmove",  "memset",      "memcmp",     "strlen",
      "strcmp",   "strncmp",  "strcpy",      "strncpy",    "stpcpy",
      "strcat",   "strchr",   "strrchr",     "min",        "max"};
  return allow;
}

/// Member-call names known to allocate, lock, or grow buffers — banned in
/// async-signal-safe contexts regardless of the object. Unknown member
/// calls (accessors like .size()/.data()) are assumed safe; project-defined
/// methods are traversed through the call graph instead.
const std::set<std::string>& alloc_members() {
  static const std::set<std::string> deny = {
      "push_back", "emplace_back", "append",  "assign", "insert",
      "emplace",   "resize",       "reserve", "substr", "str",
      "lock",      "unlock",       "try_lock", "flush", "push"};
  return deny;
}

bool looks_like_macro(const std::string& name) {
  return !name.empty() &&
         std::none_of(name.begin(), name.end(), [](unsigned char c) {
           return std::islower(c) != 0;
         });
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string hop(const FunctionDef& def) {
  return def.name + " (" + basename_of(def.file->path) + ":" +
         std::to_string(def.line) + ")";
}

bool line_suppressed(const SourceFile& f, int line, const std::string& rule) {
  if (line < 1 || line > static_cast<int>(f.raw_lines.size())) return false;
  return is_suppressed(f.raw_lines[static_cast<std::size_t>(line) - 1], rule);
}

/// One reachability sweep: from a root context (handler body or fork-child
/// branch) walk the call graph and flag everything outside the allowlist.
/// Findings anchor at the first hop (the call written in the root context),
/// so one justified allow() there cuts the whole sanctioned subtree; deeper
/// allow()s cut at any intermediate hop.
class SafetyWalk {
 public:
  SafetyWalk(const CallGraph& graph, std::string rule, std::string root_desc,
             std::vector<Finding>& out)
      : graph_(graph),
        rule_(std::move(rule)),
        root_desc_(std::move(root_desc)),
        out_(out) {}

  /// Check one call made in the root context.
  void check_root_call(const FunctionDef& root, const CallSite& call,
                       const std::string& chain0) {
    anchor_file_ = root.file->path;
    anchor_line_ = call.line;
    check_call(root, call, chain0);
  }

  void flag_root_expr(const FunctionDef& root, int line, const char* what,
                      const std::string& chain0) {
    if (line_suppressed(*root.file, line, rule_)) return;
    anchor_file_ = root.file->path;
    anchor_line_ = line;
    emit(chain0 + " -> " + what + " at " + basename_of(root.file->path) + ":" +
         std::to_string(line));
  }

 private:
  void emit(const std::string& chain) {
    out_.push_back({anchor_file_, anchor_line_, rule_,
                    root_desc_ + ": " + chain +
                        " — not on the async-signal-safe allowlist"});
  }

  void check_call(const FunctionDef& in, const CallSite& call,
                  const std::string& chain) {
    if (line_suppressed(*in.file, call.line, rule_)) return;
    const std::string at = basename_of(in.file->path) + ":" +
                           std::to_string(call.line);
    if (call.member) {
      // Member calls: deny-list only. Resolving `.close()`/`.data()` by
      // simple name across every class would chain into unrelated types,
      // so unknown members are assumed safe (accessors) — the deny list
      // names the allocating/locking growth methods that matter here.
      if (alloc_members().count(call.callee)) {
        emit(chain + " -> " +
             (call.object.empty() ? call.callee : call.object + "." +
                                                      call.callee) +
             "() at " + at + " (allocating/locking member call)");
      }
      return;
    }
    if (call.global_scope) {
      // `::name(...)` bypasses project symbols by construction.
      if (sigsafe_allowlist().count(call.callee)) return;
      emit(chain + " -> ::" + call.callee + "() at " + at);
      return;
    }
    if (call.qualifier == "std" || call.qualifier == "chrono") {
      // The handful of std facilities that are pure casts/comparisons.
      static const std::set<std::string> std_safe = {
          "move", "forward", "min", "max", "begin", "end", "data", "size"};
      if (std_safe.count(call.callee)) return;
      emit(chain + " -> std::" + call.callee + "() at " + at);
      return;
    }
    const auto& defs = graph_.defs(call.callee);
    if (!defs.empty()) {
      descend(call.callee, chain);
      return;
    }
    if (sigsafe_allowlist().count(call.callee)) return;
    if (looks_like_macro(call.callee)) return;  // WIFEXITED & friends
    emit(chain + " -> " + call.callee + "() at " + at);
  }

  void descend(const std::string& name, const std::string& chain) {
    for (const FunctionDef* def : graph_.defs(name)) {
      if (!visited_.insert(def).second) continue;
      const std::string chain2 = chain + " -> " + hop(*def);
      // Everything in a reached body counts, including its own fork-child
      // lines: we are already in an async-signal-safe context.
      for (int ln : def->new_lines) flag_expr(*def, ln, "new expression", chain);
      for (int ln : def->fork_child_new_lines)
        flag_expr(*def, ln, "new expression", chain);
      for (int ln : def->throw_lines)
        flag_expr(*def, ln, "throw expression", chain);
      for (int ln : def->fork_child_throw_lines)
        flag_expr(*def, ln, "throw expression", chain);
      for (const CallSite& c : def->calls) check_call(*def, c, chain2);
    }
  }

  void flag_expr(const FunctionDef& def, int line, const char* what,
                 const std::string& chain) {
    if (line_suppressed(*def.file, line, rule_)) return;
    emit(chain + " -> " + hop(def) + " -> " + what + " at " +
         basename_of(def.file->path) + ":" + std::to_string(line));
  }

  const CallGraph& graph_;
  std::string rule_;
  std::string root_desc_;
  std::vector<Finding>& out_;
  std::set<const FunctionDef*> visited_;
  std::string anchor_file_;
  int anchor_line_ = 0;
};

void run_signal_safety(const std::vector<TuIndex>& tus, const CallGraph& graph,
                       std::vector<Finding>& out) {
  // Collect registered handler names (dedup: one walk per handler name).
  std::set<std::string> handler_names;
  for (const TuIndex& tu : tus) {
    for (const FunctionDef& fn : tu.functions) {
      for (const auto& reg : fn.handlers_registered) {
        handler_names.insert(reg.first);
      }
    }
  }
  for (const std::string& name : handler_names) {
    for (const FunctionDef* h : graph.defs(name)) {
      SafetyWalk walk(graph, "signal-safety", "signal handler '" + name + "'",
                      out);
      const std::string chain0 = hop(*h);
      for (int ln : h->new_lines) walk.flag_root_expr(*h, ln, "new expression", chain0);
      for (int ln : h->fork_child_new_lines)
        walk.flag_root_expr(*h, ln, "new expression", chain0);
      for (int ln : h->throw_lines)
        walk.flag_root_expr(*h, ln, "throw expression", chain0);
      for (int ln : h->fork_child_throw_lines)
        walk.flag_root_expr(*h, ln, "throw expression", chain0);
      for (const CallSite& c : h->calls) walk.check_root_call(*h, c, chain0);
    }
  }
}

void run_fork_safety(const std::vector<TuIndex>& tus, const CallGraph& graph,
                     std::vector<Finding>& out) {
  for (const TuIndex& tu : tus) {
    for (const FunctionDef& fn : tu.functions) {
      const bool has_child_work = !fn.fork_child_new_lines.empty() ||
                                  !fn.fork_child_throw_lines.empty() ||
                                  std::any_of(fn.calls.begin(), fn.calls.end(),
                                              [](const CallSite& c) {
                                                return c.in_fork_child;
                                              });
      if (!has_child_work) continue;
      SafetyWalk walk(graph, "fork-safety",
                      "fork() child branch in '" + fn.name + "'", out);
      const std::string chain0 = hop(fn);
      for (int ln : fn.fork_child_new_lines)
        walk.flag_root_expr(fn, ln, "new expression", chain0);
      for (int ln : fn.fork_child_throw_lines)
        walk.flag_root_expr(fn, ln, "throw expression", chain0);
      for (const CallSite& c : fn.calls) {
        if (c.in_fork_child) walk.check_root_call(fn, c, chain0);
      }
    }
  }
}

// ---- layering -------------------------------------------------------------

/// Layer of a directory path (filename already removed): the deepest
/// component naming a module wins. -1 = not part of the layered tree
/// (tests/bench/examples and unscoped fixture files are unconstrained).
int dir_layer(const std::string& dir) {
  int layer = -1;
  std::size_t start = 0;
  while (start <= dir.size()) {
    std::size_t slash = dir.find('/', start);
    const std::string comp =
        dir.substr(start, (slash == std::string::npos ? dir.size() : slash) -
                              start);
    if (comp == "util") layer = 0;
    else if (comp == "sim" || comp == "fi") layer = 1;
    else if (comp == "sensors") layer = 2;
    else if (comp == "agent") layer = 3;
    else if (comp == "core") layer = 4;
    else if (comp == "uav") layer = 5;
    else if (comp == "obs") layer = 6;
    else if (comp == "campaign") layer = 7;
    else if (comp == "tools") layer = 8;
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return layer;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

const char* layer_name(int layer) {
  switch (layer) {
    case 0: return "util";
    case 1: return "sim/fi";
    case 2: return "sensors";
    case 3: return "agent";
    case 4: return "core";
    case 5: return "uav";
    case 6: return "obs";
    case 7: return "campaign";
    case 8: return "tools";
    default: return "?";
  }
}

void run_layering(const std::vector<TuIndex>& tus,
                  std::vector<Finding>& out) {
  // Back-edges against the module DAG.
  for (const TuIndex& tu : tus) {
    const int mine = dir_layer(dirname_of(tu.file->path));
    if (mine < 0) continue;
    for (const Include& inc : tu.includes) {
      const int target = dir_layer(dirname_of(inc.target));
      if (target < 0 || target <= mine) continue;
      if (line_suppressed(*tu.file, inc.line, "layering")) continue;
      out.push_back(
          {tu.file->path, inc.line, "layering",
           "include \"" + inc.target + "\" (layer " +
               layer_name(target) + ") from a " + layer_name(mine) +
               "-layer file is a back-edge against util -> {sim,fi} -> "
               "sensors -> agent -> core -> uav -> obs -> campaign -> "
               "tools"});
    }
  }

  // Include cycles among the scanned files.
  std::map<std::string, const TuIndex*> by_path;
  for (const TuIndex& tu : tus) by_path[tu.file->path] = &tu;
  const auto resolve = [&](const std::string& target) -> const TuIndex* {
    for (const auto& [path, tu] : by_path) {
      if (path == target || (path.size() > target.size() + 1 &&
                             path.compare(path.size() - target.size() - 1, 1,
                                          "/") == 0 &&
                             path.compare(path.size() - target.size(),
                                          target.size(), target) == 0)) {
        return tu;
      }
    }
    return nullptr;
  };

  std::set<std::string> reported;
  for (const TuIndex& root : tus) {
    // Iterative DFS with an explicit path stack; the graph is tiny.
    std::vector<std::pair<const TuIndex*, std::size_t>> stack;
    std::set<const TuIndex*> on_path;
    stack.emplace_back(&root, 0);
    on_path.insert(&root);
    std::set<const TuIndex*> seen;  // per-root visited (bounded work)
    while (!stack.empty()) {
      auto& [tu, next] = stack.back();
      if (next >= tu->includes.size()) {
        on_path.erase(tu);
        stack.pop_back();
        continue;
      }
      const Include& inc = tu->includes[next++];
      const TuIndex* target = resolve(inc.target);
      if (target == nullptr) continue;
      if (on_path.count(target)) {
        if (target == &root) {  // report each cycle once, at its lowest file
          std::string cyc = basename_of(root.file->path);
          for (const auto& [t, n] : stack) {
            if (t != &root) cyc += " -> " + basename_of(t->file->path);
          }
          cyc += " -> " + basename_of(root.file->path);
          if (reported.insert(cyc).second &&
              !line_suppressed(*tu->file, inc.line, "layering")) {
            out.push_back({tu->file->path, inc.line, "layering",
                           "include cycle: " + cyc});
          }
        }
        continue;
      }
      if (!seen.insert(target).second) continue;
      stack.emplace_back(target, 0);
      on_path.insert(target);
    }
  }
}

// ---- taint ----------------------------------------------------------------

const std::set<std::string>& taint_sources() {
  static const std::set<std::string> src = {
      "steady_clock", "high_resolution_clock", "system_clock", "dur_ns",
      "wall_sec",     "elapsed_sec",           "getrusage",    "ru_utime",
      "ru_stime",     "slot_busy_sec"};
  return src;
}

const std::set<std::string>& taint_sinks() {
  static const std::set<std::string> sinks = {
      "serialize_run_result", "run_config_digest", "journal_append"};
  return sinks;
}

bool is_punct_tok(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

/// Per-function forward dataflow over `;`-separated statements: an
/// assignment whose RHS mentions a source (or an already-tainted ident)
/// taints every ident on its LHS. Two sweeps give a cheap fixpoint.
class TaintPass {
 public:
  TaintPass(const TuIndex& tu, const std::set<std::string>& extra_sources)
      : tu_(tu), sources_(taint_sources()) {
    // TU-local clock aliases: `using Clock = std::chrono::steady_clock;`
    const auto& T = tu.file->tokens;
    for (std::size_t i = 0; i + 3 < T.size(); ++i) {
      if (T[i].kind != Token::Kind::kIdent || T[i].text != "using") continue;
      if (T[i + 1].kind != Token::Kind::kIdent || !is_punct_tok(T[i + 2], "="))
        continue;
      for (std::size_t j = i + 3; j < T.size() && !is_punct_tok(T[j], ";");
           ++j) {
        if (T[j].kind == Token::Kind::kIdent && sources_.count(T[j].text)) {
          sources_.insert(T[i + 1].text);
          break;
        }
      }
    }
    for (const std::string& s : extra_sources) sources_.insert(s);
  }

  /// Analyze one function; appends sink findings and reports whether the
  /// function returns a tainted value (for the TU-level second pass).
  bool analyze(const FunctionDef& fn, std::vector<Finding>* out) {
    const auto& T = tu_.file->tokens;
    std::set<std::string> tainted;

    // Statement list: token index ranges split at ';'.
    std::vector<std::pair<std::size_t, std::size_t>> stmts;
    std::size_t begin = fn.tok_begin;
    for (std::size_t i = fn.tok_begin; i < fn.tok_end; ++i) {
      if (is_punct_tok(T[i], ";")) {
        stmts.emplace_back(begin, i);
        begin = i + 1;
      }
    }
    if (begin < fn.tok_end) stmts.emplace_back(begin, fn.tok_end);

    const auto mentions_taint = [&](std::size_t from, std::size_t to) {
      for (std::size_t i = from; i < to; ++i) {
        if (T[i].kind == Token::Kind::kIdent &&
            (sources_.count(T[i].text) || tainted.count(T[i].text))) {
          return true;
        }
      }
      return false;
    };

    for (int sweep = 0; sweep < 2; ++sweep) {
      for (const auto& [s, e] : stmts) {
        // First simple-assignment operator in the statement ('=' that is
        // not ==, <=, >=, !=; '+=' style compounds count via their '=').
        std::size_t op = 0;
        for (std::size_t i = s; i < e; ++i) {
          if (!is_punct_tok(T[i], "=")) continue;
          if (i + 1 < e && is_punct_tok(T[i + 1], "=")) {
            ++i;
            continue;
          }
          if (i > s && (is_punct_tok(T[i - 1], "<") ||
                        is_punct_tok(T[i - 1], ">") ||
                        is_punct_tok(T[i - 1], "!") ||
                        is_punct_tok(T[i - 1], "="))) {
            continue;
          }
          op = i;
          break;
        }
        if (op == 0) continue;
        if (!mentions_taint(op + 1, e)) continue;
        // Idents inside [...] / (...) on the LHS are indices/arguments, not
        // assignment targets (a[w.slot] += dur must not taint `w`).
        int nest = 0;
        for (std::size_t i = s; i < op; ++i) {
          if (is_punct_tok(T[i], "[") || is_punct_tok(T[i], "(")) ++nest;
          else if (is_punct_tok(T[i], "]") || is_punct_tok(T[i], ")")) --nest;
          else if (nest == 0 && T[i].kind == Token::Kind::kIdent) {
            tainted.insert(T[i].text);
          }
        }
      }
    }

    if (out != nullptr) {
      for (const CallSite& c : fn.calls) {
        const bool member_journal_sink =
            c.member && c.callee == "append" &&
            c.object.find("journal") != std::string::npos;
        if (!member_journal_sink &&
            (c.member || !taint_sinks().count(c.callee))) {
          continue;
        }
        // Argument tokens: from the '(' after the callee to its match.
        std::size_t close = c.tok + 1;
        int depth = 0;
        for (std::size_t i = c.tok + 1; i < fn.tok_end; ++i) {
          if (is_punct_tok(T[i], "(")) ++depth;
          if (is_punct_tok(T[i], ")") && --depth == 0) {
            close = i;
            break;
          }
        }
        bool dirty = false;
        std::string via;
        for (std::size_t i = c.tok + 2; i < close; ++i) {
          if (T[i].kind == Token::Kind::kIdent &&
              (sources_.count(T[i].text) || tainted.count(T[i].text))) {
            dirty = true;
            via = T[i].text;
            break;
          }
        }
        if (!dirty) continue;
        if (line_suppressed(*tu_.file, c.line, "taint")) continue;
        out->push_back(
            {tu_.file->path, c.line, "taint",
             "'" + via + "' derives from a wall-clock/trace source and "
             "reaches '" + c.callee + "' — serialized/journaled state must "
             "be a function of the run seed only"});
      }
    }

    // Does a `return` statement mention taint?
    for (const auto& [s, e] : stmts) {
      if (s < e && T[s].kind == Token::Kind::kIdent && T[s].text == "return" &&
          mentions_taint(s + 1, e)) {
        return true;
      }
    }
    return false;
  }

 private:
  const TuIndex& tu_;
  std::set<std::string> sources_;
};

void run_taint(const std::vector<TuIndex>& tus, std::vector<Finding>& out) {
  for (const TuIndex& tu : tus) {
    // Pass 1: which functions in this TU return tainted values?
    std::set<std::string> tainted_fns;
    {
      TaintPass pass(tu, {});
      for (const FunctionDef& fn : tu.functions) {
        if (pass.analyze(fn, nullptr)) tainted_fns.insert(fn.name);
      }
    }
    // Pass 2: sink detection with tainted-returning functions as sources.
    TaintPass pass(tu, tainted_fns);
    for (const FunctionDef& fn : tu.functions) pass.analyze(fn, &out);
  }
}

}  // namespace

void run_semantic_rules(const std::vector<TuIndex>& tus, const CallGraph& graph,
                        const std::set<std::string>& enabled,
                        std::vector<Finding>& findings) {
  if (enabled.count("signal-safety")) run_signal_safety(tus, graph, findings);
  if (enabled.count("fork-safety")) run_fork_safety(tus, graph, findings);
  if (enabled.count("layering")) run_layering(tus, findings);
  if (enabled.count("taint")) run_taint(tus, findings);
}

}  // namespace davlint
