// davlint — project lint gate for the determinism & safety conventions the
// campaign layer depends on (see DESIGN.md §12 and README "Static analysis").
//
// v2: a project-wide semantic analyzer. One lexer pass strips comments and
// literals and produces a token stream per file; per-TU indexes record
// function definitions, call sites, includes, fork-child regions and signal
// handler registrations; a cross-TU call graph drives the semantic rules
// (signal-safety, fork-safety, layering, taint) while the original eight
// line rules run on the stripped lines.
//
// Usage:   davlint [--list-rules] [--rules-md] [--rules=a,b,...]
//                  [--baseline=FILE] [--write-baseline=FILE] [--sarif=FILE]
//                  <file-or-dir>...
// Exit:    0 clean, 1 findings, 2 usage or I/O error
// Silence: append "davlint: allow(<rule>)" in a comment on the same line.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "callgraph.h"
#include "lexer.h"
#include "line_rules.h"
#include "rules.h"
#include "sarif.h"
#include "semantic_rules.h"
#include "tu_index.h"

namespace fs = std::filesystem;
using namespace davlint;

namespace {

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> enabled;
  for (const auto& r : rules()) enabled.insert(r.name);
  std::vector<std::string> inputs;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rules()) {
        std::cout << r.name << ": " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--rules-md") {
      std::cout << rules_markdown();
      return 0;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      enabled.clear();
      std::stringstream ss(arg.substr(8));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!is_known_rule(item)) {
          std::cerr << "davlint: unknown rule '" << item << "'\n";
          return 2;
        }
        enabled.insert(item);
      }
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      continue;
    }
    if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
      continue;
    }
    if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "davlint: unknown option " << arg << "\n";
      return 2;
    }
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    std::cerr << "usage: davlint [--list-rules] [--rules-md] [--rules=a,b] "
                 "[--baseline=FILE] [--write-baseline=FILE] [--sarif=FILE] "
                 "<file-or-dir>...\n";
    return 2;
  }

  std::vector<std::string> paths;
  for (const auto& input : inputs) {
    fs::path p(input);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && has_cxx_extension(entry.path())) {
          paths.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      paths.push_back(p.string());
    } else {
      std::cerr << "davlint: no such file or directory: " << input << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // Lex everything up front: the line rules reuse the stripped lines, the
  // semantic rules the token streams.
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    SourceFile f;
    if (!lex_file(p, f)) {
      std::cerr << "davlint: cannot read " << p << "\n";
      return 2;
    }
    files.push_back(std::move(f));
  }

  std::vector<Finding> findings;
  for (const SourceFile& f : files) run_line_rules(f, enabled, findings);

  std::vector<TuIndex> tus;
  tus.reserve(files.size());
  for (const SourceFile& f : files) tus.push_back(index_tu(f));
  CallGraph graph(tus);
  run_semantic_rules(tus, graph, enabled, findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());

  if (!write_baseline_path.empty()) {
    std::vector<const SourceFile*> file_ptrs;
    for (const SourceFile& f : files) file_ptrs.push_back(&f);
    if (!write_text_file(write_baseline_path,
                         make_baseline(findings, file_ptrs))) {
      std::cerr << "davlint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    std::cout << "davlint: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::vector<BaselineEntry> baseline;
    std::string err;
    if (!load_baseline(baseline_path, baseline, err)) {
      std::cerr << "davlint: " << err << "\n";
      return 2;
    }
    if (!err.empty()) std::cerr << "davlint: " << err;
    std::vector<Finding> kept;
    for (const Finding& f : findings) {
      const SourceFile* src = nullptr;
      for (const SourceFile& s : files) {
        if (s.path == f.file) {
          src = &s;
          break;
        }
      }
      if (src != nullptr && baseline_matches(baseline, f, *src)) continue;
      kept.push_back(f);
    }
    findings.swap(kept);
  }

  if (!sarif_path.empty() && !write_text_file(sarif_path, to_sarif(findings))) {
    std::cerr << "davlint: cannot write " << sarif_path << "\n";
    return 2;
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "davlint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in " << files.size()
              << " files\n";
    return 1;
  }
  return 0;
}
