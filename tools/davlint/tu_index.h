// Per-TU structural index built on the token stream: quoted includes,
// function definitions (free functions, methods, and named lambdas), the
// call sites inside each body, and two context annotations the semantic
// rules need — "this call happens in a fork() child branch" and "this body
// registers X as a signal handler".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"

namespace davlint {

struct Include {
  std::string target;  // the quoted path, verbatim
  int line = 0;
};

struct CallSite {
  std::string callee;  // simple name (last :: component)
  int line = 0;
  std::size_t tok = 0;     // index of the callee token in SourceFile::tokens
  bool member = false;     // obj.callee(...) / obj->callee(...)
  std::string object;      // token left of '.'/'->' when member
  bool global_scope = false;   // ::callee(...) — always the libc/syscall
  std::string qualifier;       // ns::callee(...) — "std", "dav", a class, ...
  bool in_fork_child = false;  // lexically inside an `if (pid == 0)` branch
};

struct FunctionDef {
  std::string name;
  const SourceFile* file = nullptr;
  int line = 0;                 // definition line
  std::size_t tok_begin = 0;    // body token range [tok_begin, tok_end)
  std::size_t tok_end = 0;
  std::vector<CallSite> calls;
  std::vector<int> new_lines;          // `new` expressions in the body
  std::vector<int> throw_lines;        // `throw` expressions in the body
  std::vector<int> fork_child_new_lines;
  std::vector<int> fork_child_throw_lines;
  /// Handler idents registered in this body via signal(SIG, h) or
  /// sa.sa_handler/sa_sigaction = h (SIG_IGN/SIG_DFL excluded), with the
  /// registration line.
  std::vector<std::pair<std::string, int>> handlers_registered;
};

struct TuIndex {
  const SourceFile* file = nullptr;
  std::vector<Include> includes;
  std::vector<FunctionDef> functions;
};

TuIndex index_tu(const SourceFile& f);

}  // namespace davlint
