#include "rules.h"

#include <algorithm>
#include <sstream>

namespace davlint {

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"rand",
       "process-global C RNG (rand/srand/rand_r) is banned; use dav::Rng "
       "seeded from the campaign seed"},
      {"random-device",
       "std::random_device is nondeterministic by design; seed dav::Rng from "
       "the campaign seed"},
      {"wall-clock",
       "wall-clock reads (time/clock/gettimeofday/std::chrono::system_clock) "
       "are banned outside the campaign metrics/resources layer"},
      {"unordered-iter",
       "iterating an unordered container has unspecified order; anything "
       "serialized from it is nondeterministic"},
      {"float-eq",
       "exact ==/!= against a floating-point literal; use an epsilon or "
       "integer state instead"},
      {"uninit-pod",
       "uninitialized POD member in a struct; value-initialize so golden "
       "traces never read indeterminate bytes"},
      {"obs-clock",
       "std::chrono::steady_clock / high_resolution_clock are wall clocks; "
       "only the util/trace span primitives, src/obs/ exporters and the "
       "campaign executor/metrics/resources layer may read them"},
      {"env-read",
       "std::getenv is banned outside campaign/env_options: all DAV_* "
       "parsing goes through the dav::EnvOptions facade"},
      {"signal-safety",
       "code reachable from a signal()/sigaction()-registered handler may "
       "only call the async-signal-safe allowlist (no malloc/new, no "
       "stdio/iostream, no locks or string growth); the violating call chain "
       "is printed hop by hop"},
      {"fork-safety",
       "the child branch between fork() and exec*/_exit (worker bootstrap "
       "and death paths) may only call the async-signal-safe allowlist; "
       "sanctioned workload handoffs carry a justified allow()"},
      {"layering",
       "quoted includes must respect the module DAG util -> {sim,fi} -> "
       "sensors -> agent -> core -> uav -> obs -> campaign -> tools; "
       "back-edges and include cycles are rejected"},
      {"taint",
       "wall-clock/trace-derived values (steady_clock reads, elapsed_sec, "
       "dur_ns, wall_sec) must not flow into serialize_run_result, "
       "run_config_digest or journal writes"},
  };
  return kRules;
}

bool is_known_rule(const std::string& name) {
  const auto& r = rules();
  return std::any_of(r.begin(), r.end(),
                     [&](const RuleInfo& ri) { return ri.name == name; });
}

bool is_suppressed(const std::string& raw, const std::string& rule) {
  std::size_t pos = raw.find("davlint:");
  while (pos != std::string::npos) {
    std::size_t open = raw.find("allow(", pos);
    if (open == std::string::npos) return false;
    std::size_t close = raw.find(')', open);
    if (close == std::string::npos) return false;
    std::string listed = raw.substr(open + 6, close - open - 6);
    std::stringstream ss(listed);
    std::string item;
    while (std::getline(ss, item, ',')) {
      item.erase(std::remove_if(item.begin(), item.end(), ::isspace),
                 item.end());
      if (item == rule || item == "all") return true;
    }
    pos = raw.find("davlint:", close);
  }
  return false;
}

std::string rules_markdown() {
  std::ostringstream out;
  out << "| Rule | Checks |\n|---|---|\n";
  for (const RuleInfo& r : rules()) {
    out << "| `" << r.name << "` | " << r.summary << " |\n";
  }
  return out.str();
}

}  // namespace davlint
