#include "callgraph.h"

namespace davlint {

CallGraph::CallGraph(const std::vector<TuIndex>& tus) : tus_(tus) {
  for (const TuIndex& tu : tus) {
    for (const FunctionDef& def : tu.functions) {
      by_name_[def.name].push_back(&def);
    }
  }
}

const std::vector<const FunctionDef*>& CallGraph::defs(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? empty_ : it->second;
}

}  // namespace davlint
