#include "tu_index.h"

#include <algorithm>
#include <set>

namespace davlint {

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",    "for",    "while",  "switch",        "catch",
      "sizeof", "alignof", "decltype", "static_assert", "noexcept",
      "new",   "delete", "return", "else",          "do",
      "case",  "throw",  "goto"};
  return kw;
}

/// Keywords that may directly precede a call expression — an identifier
/// before `name(` otherwise reads as a declaration ("ByteReader req(...)").
const std::set<std::string>& call_prefix_keywords() {
  static const std::set<std::string> kw = {"return",    "else", "do",
                                           "case",      "throw", "goto",
                                           "co_return", "co_await"};
  return kw;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

/// Index one past the token matching the opener at `i`, or `n` when
/// unbalanced.
std::size_t skip_matched(const std::vector<Token>& T, std::size_t i,
                         const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < T.size(); ++j) {
    if (is_punct(T[j], open)) ++depth;
    if (is_punct(T[j], close)) {
      if (--depth == 0) return j + 1;
    }
  }
  return T.size();
}

struct OpenFn {
  FunctionDef def;
  int open_depth = 0;
  std::vector<std::size_t> new_toks;
  std::vector<std::size_t> throw_toks;
};

/// Try to recognise a function definition whose name token is at `i`
/// (name '(' params ')' [cv/ref/noexcept/trailing-return/ctor-init] '{').
/// Returns the index of the body '{' or 0 when this is not a definition.
std::size_t match_definition(const std::vector<Token>& T, std::size_t i) {
  if (T[i].kind != Token::Kind::kIdent || control_keywords().count(T[i].text))
    return 0;
  if (i + 1 >= T.size() || !is_punct(T[i + 1], "(")) return 0;
  if (i > 0 && (is_punct(T[i - 1], ".") || is_punct(T[i - 1], "->"))) return 0;
  std::size_t k = skip_matched(T, i + 1, "(", ")");
  if (k >= T.size()) return 0;

  for (int guard = 0; guard < 64 && k < T.size(); ++guard) {
    const Token& t = T[k];
    if (is_punct(t, "{")) return k;
    if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ",") ||
        is_punct(t, ")") || is_punct(t, "}")) {
      return 0;
    }
    if (is_punct(t, ":")) {
      // Constructor init list: ident ('|'{' args ')'|'}' [, ...] then body.
      ++k;
      for (int g2 = 0; g2 < 64 && k < T.size(); ++g2) {
        while (k < T.size() && (T[k].kind == Token::Kind::kIdent ||
                                is_punct(T[k], "::"))) {
          ++k;
        }
        if (k < T.size() && is_punct(T[k], "<"))
          k = skip_matched(T, k, "<", ">");
        if (k >= T.size()) return 0;
        if (is_punct(T[k], "("))
          k = skip_matched(T, k, "(", ")");
        else if (is_punct(T[k], "{"))
          k = skip_matched(T, k, "{", "}");
        else
          return 0;
        if (k < T.size() && is_punct(T[k], ",")) {
          ++k;
          continue;
        }
        return (k < T.size() && is_punct(T[k], "{")) ? k : 0;
      }
      return 0;
    }
    if (is_punct(t, "(")) {
      k = skip_matched(T, k, "(", ")");  // noexcept(...), attribute args
      continue;
    }
    if (is_punct(t, "<")) {
      k = skip_matched(T, k, "<", ">");  // trailing-return template args
      continue;
    }
    // cv/ref qualifiers, noexcept, override/final, trailing return type.
    if (t.kind == Token::Kind::kIdent || is_punct(t, "&") ||
        is_punct(t, "*") || is_punct(t, "->") || is_punct(t, "::") ||
        is_punct(t, "[") || is_punct(t, "]") || is_punct(t, ">")) {
      ++k;
      continue;
    }
    return 0;
  }
  return 0;
}

/// Token ranges lexically inside an `if (pid == 0)` / `if (!pid)` /
/// `if (fork() == 0)` child branch, where pid was assigned from fork().
std::vector<std::pair<std::size_t, std::size_t>> fork_child_regions(
    const std::vector<Token>& T, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  std::set<std::string> fork_vars;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!is_ident(T[i], "fork") || !is_punct(T[i + 1], "(")) continue;
    std::size_t lhs = i;
    if (lhs > begin && is_punct(T[lhs - 1], "::")) --lhs;
    if (lhs > begin + 1 && is_punct(T[lhs - 1], "=") &&
        T[lhs - 2].kind == Token::Kind::kIdent) {
      fork_vars.insert(T[lhs - 2].text);
    }
  }
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!is_ident(T[i], "if") || !is_punct(T[i + 1], "(")) continue;
    const std::size_t close = skip_matched(T, i + 1, "(", ")");
    if (close > end) continue;
    // Condition tokens [i+2, close-1).
    std::vector<const Token*> c;
    for (std::size_t j = i + 2; j + 1 < close; ++j) c.push_back(&T[j]);
    const auto is_zero = [](const Token* t) {
      return t->kind == Token::Kind::kNumber && t->text == "0";
    };
    const auto is_fork_var = [&](const Token* t) {
      return t->kind == Token::Kind::kIdent && fork_vars.count(t->text) > 0;
    };
    bool child = false;
    if (c.size() == 4 && is_fork_var(c[0]) && is_punct(*c[1], "=") &&
        is_punct(*c[2], "=") && is_zero(c[3])) {
      child = true;  // if (pid == 0)
    } else if (c.size() == 4 && is_zero(c[0]) && is_punct(*c[1], "=") &&
               is_punct(*c[2], "=") && is_fork_var(c[3])) {
      child = true;  // if (0 == pid)
    } else if (c.size() == 2 && is_punct(*c[0], "!") && is_fork_var(c[1])) {
      child = true;  // if (!pid)
    } else if (c.size() >= 6 && is_ident(*c[0], "fork")) {
      // if (fork() == 0) — with or without leading ::, ending in == 0.
      if (is_punct(*c[c.size() - 3], "=") && is_punct(*c[c.size() - 2], "=") &&
          is_zero(c[c.size() - 1])) {
        child = true;
      }
    } else if (c.size() >= 6 && is_punct(*c[0], "::") &&
               is_ident(*c[1], "fork") && is_punct(*c[c.size() - 3], "=") &&
               is_punct(*c[c.size() - 2], "=") && is_zero(c[c.size() - 1])) {
      child = true;
    }
    if (!child) continue;
    if (close < end && is_punct(T[close], "{")) {
      regions.emplace_back(close + 1, skip_matched(T, close, "{", "}") - 1);
    } else {
      std::size_t stop = close;
      while (stop < end && !is_punct(T[stop], ";")) ++stop;
      regions.emplace_back(close, stop);
    }
  }
  return regions;
}

/// Record registrations of signal handlers in a body: signal(SIG, h) and
/// sa.sa_handler = h / sa.sa_sigaction = h.
void scan_handler_registrations(const std::vector<Token>& T, std::size_t begin,
                                std::size_t end, FunctionDef& def) {
  const auto is_disposition_constant = [](const std::string& s) {
    return s == "SIG_IGN" || s == "SIG_DFL" || s == "nullptr" || s == "NULL";
  };
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (is_ident(T[i], "signal") && is_punct(T[i + 1], "(")) {
      const std::size_t close = skip_matched(T, i + 1, "(", ")");
      // Second top-level argument.
      int depth = 0;
      std::size_t arg2 = 0;
      for (std::size_t j = i + 1; j + 1 < close; ++j) {
        if (is_punct(T[j], "(")) ++depth;
        if (is_punct(T[j], ")")) --depth;
        if (depth == 1 && is_punct(T[j], ",")) {
          arg2 = j + 1;
          break;
        }
      }
      if (arg2 != 0) {
        if (arg2 < close && is_punct(T[arg2], "&")) ++arg2;
        if (arg2 < close && T[arg2].kind == Token::Kind::kIdent &&
            !is_disposition_constant(T[arg2].text)) {
          def.handlers_registered.emplace_back(T[arg2].text, T[arg2].line);
        }
      }
    }
    if ((is_ident(T[i], "sa_handler") || is_ident(T[i], "sa_sigaction")) &&
        i + 2 < end && is_punct(T[i + 1], "=") && !is_punct(T[i + 2], "=")) {
      std::size_t h = i + 2;
      if (is_punct(T[h], "&")) ++h;
      if (h < end && T[h].kind == Token::Kind::kIdent &&
          !is_disposition_constant(T[h].text)) {
        def.handlers_registered.emplace_back(T[h].text, T[h].line);
      }
    }
  }
}

void finalize(const std::vector<Token>& T, OpenFn& open) {
  FunctionDef& def = open.def;
  const auto regions = fork_child_regions(T, def.tok_begin, def.tok_end);
  const auto in_child = [&](std::size_t tok) {
    return std::any_of(regions.begin(), regions.end(), [&](const auto& r) {
      return tok >= r.first && tok < r.second;
    });
  };
  for (CallSite& c : def.calls) c.in_fork_child = in_child(c.tok);
  for (std::size_t t : open.new_toks) {
    (in_child(t) ? def.fork_child_new_lines : def.new_lines)
        .push_back(T[t].line);
  }
  for (std::size_t t : open.throw_toks) {
    (in_child(t) ? def.fork_child_throw_lines : def.throw_lines)
        .push_back(T[t].line);
  }
  scan_handler_registrations(T, def.tok_begin, def.tok_end, def);
}

}  // namespace

TuIndex index_tu(const SourceFile& f) {
  TuIndex tu;
  tu.file = &f;

  // Quoted includes, from the raw text (the stripped code has no strings).
  for (std::size_t li = 0; li < f.raw_lines.size(); ++li) {
    const std::string& raw = f.raw_lines[li];
    std::size_t h = raw.find_first_not_of(" \t");
    if (h == std::string::npos || raw[h] != '#') continue;
    std::size_t inc = raw.find("include", h);
    if (inc == std::string::npos) continue;
    std::size_t q1 = raw.find('"', inc);
    if (q1 == std::string::npos) continue;
    std::size_t q2 = raw.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    tu.includes.push_back(
        {raw.substr(q1 + 1, q2 - q1 - 1), static_cast<int>(li) + 1});
  }

  const std::vector<Token>& T = f.tokens;
  int depth = 0;
  std::vector<OpenFn> stack;

  for (std::size_t i = 0; i < T.size(); ++i) {
    const Token& t = T[i];
    if (is_punct(t, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!stack.empty() && stack.back().open_depth == depth) {
        stack.back().def.tok_end = i;
        finalize(T, stack.back());
        tu.functions.push_back(std::move(stack.back().def));
        stack.pop_back();
      }
      --depth;
      continue;
    }

    if (stack.empty()) {
      // File/class scope: look for function definitions.
      const std::size_t body = match_definition(T, i);
      if (body != 0) {
        OpenFn open;
        open.def.name = t.text;
        open.def.file = &f;
        open.def.line = t.line;
        open.def.tok_begin = body + 1;
        open.open_depth = depth + 1;
        stack.push_back(std::move(open));
        // Skip ahead to the body '{'; the loop's '{' branch bumps depth.
        i = body - 1;
      }
      continue;
    }

    OpenFn& top = stack.back();

    // Named lambda: `name = [...](...)... {` opens a nested function so the
    // executor's launch/spawn child branches index under their own names.
    if (is_punct(t, "=") && i + 1 < T.size() && is_punct(T[i + 1], "[") &&
        i > 0 && T[i - 1].kind == Token::Kind::kIdent) {
      std::size_t k = skip_matched(T, i + 1, "[", "]");
      if (k < T.size() && is_punct(T[k], "("))
        k = skip_matched(T, k, "(", ")");
      for (int guard = 0; guard < 16 && k < T.size(); ++guard) {
        if (is_punct(T[k], "{")) break;
        if (T[k].kind == Token::Kind::kIdent || is_punct(T[k], "->") ||
            is_punct(T[k], "::") || is_punct(T[k], "&") ||
            is_punct(T[k], "*") || is_punct(T[k], "<") ||
            is_punct(T[k], ">")) {
          ++k;
          continue;
        }
        k = T.size();
      }
      if (k < T.size() && is_punct(T[k], "{")) {
        OpenFn open;
        open.def.name = T[i - 1].text;
        open.def.file = &f;
        open.def.line = T[i - 1].line;
        open.def.tok_begin = k + 1;
        open.open_depth = depth + 1;
        stack.push_back(std::move(open));
        i = k - 1;
        continue;
      }
    }

    if (is_ident(t, "new")) {
      top.new_toks.push_back(i);
      continue;
    }
    if (is_ident(t, "throw")) {
      top.throw_toks.push_back(i);
      continue;
    }

    // Call site: ident '(' that is neither a control keyword nor a
    // declaration ("ByteReader req(...)": preceding identifier, or a
    // preceding '>' closing a template type).
    if (t.kind == Token::Kind::kIdent && i + 1 < T.size() &&
        is_punct(T[i + 1], "(") && !control_keywords().count(t.text)) {
      CallSite cs;
      cs.callee = t.text;
      cs.line = t.line;
      cs.tok = i;
      if (i > 0) {
        const Token& p = T[i - 1];
        if (is_punct(p, ".") || is_punct(p, "->")) {
          cs.member = true;
          if (i > 1 && T[i - 2].kind == Token::Kind::kIdent)
            cs.object = T[i - 2].text;
        } else if (is_punct(p, "::")) {
          // `::write(...)` is the libc symbol; `std::move(...)` carries its
          // namespace so the safety walk can treat std specially.
          if (i > 1 && T[i - 2].kind == Token::Kind::kIdent) {
            cs.qualifier = T[i - 2].text;
          } else {
            cs.global_scope = true;
          }
        } else if (p.kind == Token::Kind::kIdent &&
                   !call_prefix_keywords().count(p.text)) {
          continue;  // declaration
        } else if (is_punct(p, ">")) {
          continue;  // templated declaration
        }
      }
      top.def.calls.push_back(std::move(cs));
    }
  }

  return tu;
}

}  // namespace davlint
