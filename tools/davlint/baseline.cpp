#include "baseline.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace davlint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool path_suffix_match(const std::string& full, const std::string& suffix) {
  if (full == suffix) return true;
  if (full.size() <= suffix.size()) return false;
  return full.compare(full.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         full[full.size() - suffix.size() - 1] == '/';
}

std::string stripped_line(const SourceFile& src, int line) {
  if (line < 1 || line > static_cast<int>(src.code_lines.size())) return "";
  return trim(src.code_lines[static_cast<std::size_t>(line) - 1]);
}

}  // namespace

bool load_baseline(const std::string& path, std::vector<BaselineEntry>& out,
                   std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open baseline file: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const std::size_t p1 = t.find('|');
    const std::size_t p2 = p1 == std::string::npos ? std::string::npos
                                                   : t.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      err += "baseline line " + std::to_string(lineno) +
             " malformed (want rule|path|content)\n";
      continue;
    }
    out.push_back({trim(t.substr(0, p1)), trim(t.substr(p1 + 1, p2 - p1 - 1)),
                   trim(t.substr(p2 + 1))});
  }
  return true;
}

bool baseline_matches(const std::vector<BaselineEntry>& baseline,
                      const Finding& f, const SourceFile& src) {
  const std::string content = stripped_line(src, f.line);
  for (const BaselineEntry& e : baseline) {
    if (e.rule == f.rule && path_suffix_match(f.file, e.path) &&
        e.content == content) {
      return true;
    }
  }
  return false;
}

std::string make_baseline(const std::vector<Finding>& findings,
                          const std::vector<const SourceFile*>& files) {
  std::set<std::string> lines;
  for (const Finding& f : findings) {
    const SourceFile* src = nullptr;
    for (const SourceFile* s : files) {
      if (s->path == f.file) {
        src = s;
        break;
      }
    }
    // Emit repo-relative paths when the invocation used absolute ones, so
    // the committed baseline is machine-independent.
    std::string path = f.file;
    const std::size_t src_at = path.rfind("/src/");
    const std::size_t tools_at = path.rfind("/tools/");
    std::size_t cut = std::string::npos;
    if (src_at != std::string::npos) cut = src_at;
    if (tools_at != std::string::npos &&
        (cut == std::string::npos || tools_at > cut)) {
      cut = tools_at;
    }
    if (cut != std::string::npos) path = path.substr(cut + 1);
    lines.insert(f.rule + "|" + path + "|" +
                 (src ? stripped_line(*src, f.line) : std::string()));
  }
  std::ostringstream out;
  out << "# davlint baseline: tolerated findings, one per line as\n"
      << "#   rule|path|trimmed stripped line content\n"
      << "# Regenerate with: davlint --write-baseline=<path> <files...>\n";
  for (const std::string& l : lines) out << l << "\n";
  return out.str();
}

}  // namespace davlint
