// Baseline file support: known findings checked into the repo that the
// cross-TU gate tolerates. Format, one finding per line:
//
//   rule|path|trimmed stripped line content
//
// '#' starts a comment. Matching is by rule + path *suffix* (so the same
// baseline works whether davlint is invoked with relative or absolute
// paths) + the trimmed content of the stripped source line, which survives
// line-number drift from unrelated edits.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace davlint {

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string content;
};

/// Parse a baseline file. Returns false (and sets err) on I/O failure;
/// malformed lines are reported in err but do not fail the load.
bool load_baseline(const std::string& path, std::vector<BaselineEntry>& out,
                   std::string& err);

/// True when the finding matches some baseline entry (rule equal, entry
/// path a path-suffix match, stripped-line content equal after trimming).
bool baseline_matches(const std::vector<BaselineEntry>& baseline,
                      const Finding& f, const SourceFile& src);

/// Serialize findings into baseline format (sorted, deduplicated).
std::string make_baseline(const std::vector<Finding>& findings,
                          const std::vector<const SourceFile*>& files);

}  // namespace davlint
