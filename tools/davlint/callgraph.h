// Cross-TU call graph: all indexed function definitions keyed by simple
// name. Resolution is name-based (no overload or qualifier analysis): a call
// to `f` edges into every definition of `f` anywhere in the scanned set —
// an over-approximation, which is the safe direction for the reachability
// rules built on top.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tu_index.h"

namespace davlint {

class CallGraph {
 public:
  explicit CallGraph(const std::vector<TuIndex>& tus);

  /// Every definition of `name` across the scanned TUs (empty when the name
  /// is external to the project).
  const std::vector<const FunctionDef*>& defs(const std::string& name) const;

  const std::vector<TuIndex>& tus() const { return tus_; }

 private:
  const std::vector<TuIndex>& tus_;
  std::map<std::string, std::vector<const FunctionDef*>> by_name_;
  std::vector<const FunctionDef*> empty_;
};

}  // namespace davlint
