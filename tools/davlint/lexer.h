// davlint lexer: one pass over a whole file strips comments, string/char
// literals (including multi-line raw strings — R"delim(...)delim") and
// produces (a) per-line stripped code for the line rules and (b) a token
// stream with line provenance for the TU index / call-graph passes.
//
// This is a lexical approximation of C++, not a compiler frontend; the rule
// passes built on it are heuristics with allow() escape hatches.
#pragma once

#include <string>
#include <vector>

namespace davlint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind = Kind::kPunct;
  /// Identifier/number text, punctuation ("::" and "->" are fused, every
  /// other punctuator is a single char), or "" for stripped literals.
  std::string text;
  int line = 0;  // 1-based
};

struct SourceFile {
  std::string path;
  std::vector<std::string> raw_lines;   // verbatim; suppressions live here
  std::vector<std::string> code_lines;  // stripped; literals reduced to ""/''
  std::vector<Token> tokens;            // lexed from the stripped code
};

/// Strip + tokenize an in-memory buffer (the path only labels findings).
SourceFile lex_buffer(std::string path, const std::string& content);

/// Load, strip and tokenize one file. Returns false when unreadable.
bool lex_file(const std::string& path, SourceFile& out);

bool is_ident_char(char c);

}  // namespace davlint
