#include "sarif.h"

#include <sstream>

namespace davlint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"davlint\",\n"
      << "      \"informationUri\": \"tools/davlint\",\n"
      << "      \"rules\": [\n";
  const auto& reg = rules();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    out << "        {\"id\": \"" << json_escape(reg[i].name)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(reg[i].summary) << "\"}}"
        << (i + 1 < reg.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }},\n"
      << "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"warning\", \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": {"
        << "\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n"
      << "  }]\n"
      << "}\n";
  return out.str();
}

}  // namespace davlint
