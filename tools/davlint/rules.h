// Rule registry + finding/suppression plumbing shared by the line rules and
// the cross-TU semantic rules.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace davlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Every rule, in the order they are listed and documented. The first eight
/// are the PR-1 line rules; the last four are the cross-TU semantic rules.
const std::vector<RuleInfo>& rules();

bool is_known_rule(const std::string& name);

/// True if the raw (unstripped) line suppresses `rule` via
/// "davlint: allow(<rule>)" or "davlint: allow(all)".
bool is_suppressed(const std::string& raw, const std::string& rule);

/// The markdown rule-reference table (README.md embeds this verbatim between
/// the davlint-rules markers, same pattern as EnvOptions::docs()).
std::string rules_markdown();

}  // namespace davlint
