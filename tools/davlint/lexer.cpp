#include "lexer.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace davlint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

/// Splits verbatim lines ('\n' separated; a trailing partial line counts).
std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      if (!cur.empty() && cur.back() == '\r') cur.pop_back();
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Whole-file strip pass. Operating on the full buffer (not line by line) is
/// what lets raw strings and block comments span lines without miscounting —
/// the PR-1 scanner stripped per line and treated the interior of
/// R"(...)" as code.
std::vector<std::string> strip(const std::string& content,
                               std::size_t n_lines) {
  std::vector<std::string> code(n_lines);
  std::string cur;
  std::size_t line = 0;
  const auto flush_line = [&]() {
    if (line < n_lines) code[line] = cur;
    cur.clear();
    ++line;
  };

  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  std::string raw_close;  // ")delim\"" that terminates the raw literal

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      // An unterminated plain literal does not continue past the newline
      // (matches the old per-line behaviour; real code never hits this).
      if (st == St::kString || st == St::kChar) st = St::kCode;
      flush_line();
      continue;
    }
    switch (st) {
      case St::kLineComment:
        break;
      case St::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          st = St::kCode;
          ++i;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          cur.push_back('"');
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          cur.push_back('\'');
          st = St::kCode;
        }
        break;
      case St::kRaw:
        if (c == ')' && content.compare(i, raw_close.size(), raw_close) == 0) {
          cur.push_back('"');
          i += raw_close.size() - 1;
          st = St::kCode;
        }
        break;
      case St::kCode:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; the R (and any encoding prefix) has
          // already been emitted as code, which is harmless.
          if (!cur.empty() && cur.back() == 'R') {
            std::size_t j = i + 1;
            std::string delim;
            while (j < n && content[j] != '(' && content[j] != '\n' &&
                   delim.size() <= 16) {
              delim.push_back(content[j++]);
            }
            if (j < n && content[j] == '(') {
              raw_close = ")" + delim + "\"";
              cur.push_back('"');
              i = j;  // resume after '('
              st = St::kRaw;
              break;
            }
          }
          cur.push_back('"');
          st = St::kString;
        } else if (c == '\'') {
          // Skip digit separators (1'000'000): a quote directly between
          // alphanumerics inside a number is not a char literal.
          const bool sep =
              !cur.empty() &&
              std::isdigit(static_cast<unsigned char>(cur.back())) &&
              i + 1 < n &&
              std::isalnum(static_cast<unsigned char>(content[i + 1]));
          if (sep) break;
          cur.push_back('\'');
          st = St::kChar;
        } else {
          cur.push_back(c);
        }
        break;
    }
  }
  flush_line();
  return code;
}

void tokenize(SourceFile& f) {
  for (std::size_t li = 0; li < f.code_lines.size(); ++li) {
    const std::string& s = f.code_lines[li];
    const int line = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.line = line;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < s.size() && is_ident_char(s[j])) ++j;
        t.kind = Token::Kind::kIdent;
        t.text = s.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && i + 1 < s.size() &&
                  std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
        std::size_t j = i;
        while (j < s.size() &&
               (is_ident_char(s[j]) || s[j] == '.' ||
                ((s[j] == '+' || s[j] == '-') && j > i &&
                 (s[j - 1] == 'e' || s[j - 1] == 'E')))) {
          ++j;
        }
        t.kind = Token::Kind::kNumber;
        t.text = s.substr(i, j - i);
        i = j;
      } else if (c == '"') {
        t.kind = Token::Kind::kString;
        i += (i + 1 < s.size() && s[i + 1] == '"') ? 2 : 1;
      } else if (c == '\'') {
        t.kind = Token::Kind::kChar;
        i += (i + 1 < s.size() && s[i + 1] == '\'') ? 2 : 1;
      } else {
        t.kind = Token::Kind::kPunct;
        if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
          t.text = "::";
          i += 2;
        } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
          t.text = "->";
          i += 2;
        } else {
          t.text = std::string(1, c);
          ++i;
        }
      }
      f.tokens.push_back(std::move(t));
    }
  }
}

}  // namespace

SourceFile lex_buffer(std::string path, const std::string& content) {
  SourceFile f;
  f.path = std::move(path);
  f.raw_lines = split_lines(content);
  f.code_lines = strip(content, f.raw_lines.size());
  tokenize(f);
  return f;
}

bool lex_file(const std::string& path, SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = lex_buffer(path, ss.str());
  return true;
}

}  // namespace davlint
