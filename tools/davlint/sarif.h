// Minimal SARIF 2.1.0 emitter so CI can upload davlint findings as a code
// scanning artifact. One run, one tool.driver with the full rule registry,
// one result per finding with ruleId / message / physicalLocation.
#pragma once

#include <string>
#include <vector>

#include "rules.h"

namespace davlint {

std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace davlint
