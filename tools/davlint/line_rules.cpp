#include "line_rules.h"

#include <cctype>

namespace davlint {

namespace {

/// Token immediately left of position `pos` (exclusive), identifier chars
/// plus '.' and ':' so "std::chrono" and "obj.field" read as one token.
std::string token_left_of(const std::string& s, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  std::size_t begin = end;
  while (begin > 0 && (is_ident_char(s[begin - 1]) || s[begin - 1] == '.' ||
                       s[begin - 1] == ':')) {
    --begin;
  }
  return s.substr(begin, end - begin);
}

const std::set<std::string> kDeclPrefixTokens = {
    "void",   "auto",  "int",      "double", "float",    "bool",
    "long",   "short", "unsigned", "signed", "virtual",  "constexpr",
    "inline", "static"};

/// True if `text` contains `name(` as a free-function call: not preceded by
/// an identifier character, '.', '>' (member access), and not a function
/// *declaration* (preceding token is a type keyword, e.g. "double time()").
bool has_free_call(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = text.find(name + "(", pos)) != std::string::npos) {
    const bool at_start = pos == 0;
    char before = at_start ? ' ' : text[pos - 1];
    // std::time( and ::time( are still wall-clock calls; skip only member
    // access (obj.time(), ptr->time()) and identifier suffixes (due_time().
    if (at_start || (!is_ident_char(before) && before != '.' && before != '>')) {
      const std::string prev = token_left_of(text, pos);
      if (!kDeclPrefixTokens.count(prev)) return true;
    }
    pos += name.size();
  }
  return false;
}

/// Skip matched angle brackets starting at `pos` (which must point at '<').
/// Returns the index one past the matching '>', or npos.
std::size_t skip_template_args(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Extract the identifier being declared after a type ending at `pos`.
std::string read_identifier(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         (std::isspace(static_cast<unsigned char>(s[pos])) || s[pos] == '&' ||
          s[pos] == '*')) {
    ++pos;
  }
  std::string ident;
  while (pos < s.size() && is_ident_char(s[pos])) ident.push_back(s[pos++]);
  return ident;
}

bool is_float_literal(const std::string& tok) {
  if (tok.empty()) return false;
  std::string t = tok;
  if (t.back() == 'f' || t.back() == 'F') t.pop_back();
  bool saw_dot = false, saw_digit = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    char c = t[i];
    if (c == '.') {
      if (saw_dot) return false;
      saw_dot = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      saw_digit = true;
    } else if ((c == 'e' || c == 'E') && saw_digit && i + 1 < t.size()) {
      // exponent: rest must be optional sign + digits
      std::size_t j = i + 1;
      if (t[j] == '+' || t[j] == '-') ++j;
      if (j >= t.size()) return false;
      for (; j < t.size(); ++j) {
        if (!std::isdigit(static_cast<unsigned char>(t[j]))) return false;
      }
      return saw_dot;
    } else {
      return false;
    }
  }
  return saw_dot && saw_digit;
}

/// Token immediately left of position `pos` (exclusive).
std::string token_left(const std::string& s, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  std::size_t begin = end;
  while (begin > 0 && (is_ident_char(s[begin - 1]) || s[begin - 1] == '.')) {
    --begin;
  }
  return s.substr(begin, end - begin);
}

/// Token immediately right of position `pos`.
std::string token_right(const std::string& s, std::size_t pos) {
  std::size_t begin = pos;
  while (begin < s.size() &&
         (std::isspace(static_cast<unsigned char>(s[begin])) ||
          s[begin] == '-' || s[begin] == '+')) {
    ++begin;
  }
  std::size_t end = begin;
  while (end < s.size() && (is_ident_char(s[end]) || s[end] == '.')) ++end;
  return s.substr(begin, end - begin);
}

const std::set<std::string> kPodTypes = {
    "int",      "unsigned", "long",     "short",    "char",     "bool",
    "float",    "double",   "size_t",   "int8_t",   "int16_t",  "int32_t",
    "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
    "intptr_t", "ptrdiff_t"};

bool is_pod_type_token(std::string tok) {
  if (tok.rfind("std::", 0) == 0) tok = tok.substr(5);
  return kPodTypes.count(tok) > 0;
}

class LineScanner {
 public:
  LineScanner(const SourceFile& f, const std::set<std::string>& enabled)
      : f_(f), enabled_(enabled) {
    const std::string& path = f.path;
    // The campaign metrics/resources layer legitimately reads the wall
    // clock (it reports real elapsed time and RSS, paper Table 2).
    wall_clock_exempt_ = path.find("campaign/metrics") != std::string::npos ||
                         path.find("campaign/resources") != std::string::npos;
    // obs-clock carve-outs: the util/trace span primitives and the src/obs/
    // exporters measure span durations (that is their job; the determinism
    // contract in util/trace.h confines wall time to dur_ns), and the
    // executor/metrics/resources layer times real worker processes. No
    // per-line suppressions needed there.
    obs_clock_exempt_ = path.find("/obs/") != std::string::npos ||
                        path.rfind("obs/", 0) == 0 ||
                        path.find("util/trace") != std::string::npos ||
                        path.find("campaign/executor") != std::string::npos ||
                        path.find("campaign/transport") != std::string::npos ||
                        wall_clock_exempt_;
    // The EnvOptions facade is the single sanctioned env-reading TU; every
    // other layer takes a validated EnvOptions value instead of peeking at
    // the process environment (hidden inputs break run reproducibility).
    env_read_exempt_ = path.find("campaign/env_options") != std::string::npos;
  }

  void scan(std::vector<Finding>& findings) {
    for (std::size_t i = 0; i < f_.raw_lines.size(); ++i) {
      const std::string& raw = f_.raw_lines[i];
      const std::string& code = f_.code_lines[i];
      const int lineno = static_cast<int>(i) + 1;
      check_line(raw, code, lineno, findings);
      update_struct_state(code);
    }
  }

 private:
  void report(std::vector<Finding>& findings, const std::string& raw,
              int lineno, const std::string& rule, const std::string& msg) {
    if (!enabled_.count(rule) || is_suppressed(raw, rule)) return;
    findings.push_back({f_.path, lineno, rule, msg});
  }

  void check_line(const std::string& raw, const std::string& code, int lineno,
                  std::vector<Finding>& findings) {
    check_rand(raw, code, lineno, findings);
    check_random_device(raw, code, lineno, findings);
    check_wall_clock(raw, code, lineno, findings);
    check_obs_clock(raw, code, lineno, findings);
    check_unordered(raw, code, lineno, findings);
    check_float_eq(raw, code, lineno, findings);
    check_uninit_pod(raw, code, lineno, findings);
    check_env_read(raw, code, lineno, findings);
  }

  void check_rand(const std::string& raw, const std::string& code, int lineno,
                  std::vector<Finding>& findings) {
    for (const char* fn : {"rand", "srand", "rand_r", "drand48", "random"}) {
      if (has_free_call(code, fn)) {
        report(findings, raw, lineno, "rand",
               std::string(fn) + "() uses process-global state; use dav::Rng "
                                 "seeded from the campaign seed");
      }
    }
  }

  void check_random_device(const std::string& raw, const std::string& code,
                           int lineno, std::vector<Finding>& findings) {
    if (code.find("std::random_device") != std::string::npos ||
        has_free_call(code, "random_device")) {
      report(findings, raw, lineno, "random-device",
             "std::random_device is nondeterministic; seed dav::Rng from the "
             "campaign seed");
    }
  }

  void check_wall_clock(const std::string& raw, const std::string& code,
                        int lineno, std::vector<Finding>& findings) {
    if (wall_clock_exempt_) return;
    if (code.find("system_clock") != std::string::npos) {
      report(findings, raw, lineno, "wall-clock",
             "std::chrono::system_clock reads the wall clock; simulated time "
             "must come from World::time()");
      return;
    }
    for (const char* fn :
         {"time", "clock", "gettimeofday", "clock_gettime", "localtime",
          "gmtime", "ftime"}) {
      if (has_free_call(code, fn)) {
        report(findings, raw, lineno, "wall-clock",
               std::string(fn) + "() reads the wall clock; simulated time "
                                 "must come from World::time()");
        return;
      }
    }
  }

  void check_obs_clock(const std::string& raw, const std::string& code,
                       int lineno, std::vector<Finding>& findings) {
    if (obs_clock_exempt_) return;
    for (const char* clk : {"steady_clock", "high_resolution_clock"}) {
      if (code.find(clk) != std::string::npos) {
        report(findings, raw, lineno, "obs-clock",
               std::string(clk) + " is a wall clock; profiling belongs in "
                                  "the util/trace span primitives "
                                  "(SpanScope), never in simulation state");
        return;
      }
    }
  }

  void check_unordered(const std::string& raw, const std::string& code,
                       int lineno, std::vector<Finding>& findings) {
    // Remember identifiers declared with an unordered container type.
    std::size_t pos = 0;
    while (pos < code.size()) {
      std::size_t hit = code.find("unordered_map", pos);
      std::size_t hit2 = code.find("unordered_set", pos);
      hit = std::min(hit, hit2);
      if (hit == std::string::npos) break;
      std::size_t after = hit + 13;  // both names are 13 chars
      if (after < code.size() && code[after] == '<') {
        std::size_t end = skip_template_args(code, after);
        if (end != std::string::npos) {
          std::string ident = read_identifier(code, end);
          if (!ident.empty()) unordered_idents_.insert(ident);
          pos = end;
          continue;
        }
      }
      pos = after;
    }
    // Range-for over a tracked identifier.
    pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
      const bool boundary_l = pos == 0 || !is_ident_char(code[pos - 1]);
      const bool boundary_r =
          pos + 3 >= code.size() || !is_ident_char(code[pos + 3]);
      if (!boundary_l || !boundary_r) {
        pos += 3;
        continue;
      }
      std::size_t open = code.find('(', pos);
      std::size_t colon =
          open == std::string::npos ? std::string::npos : code.find(':', open);
      if (colon != std::string::npos && colon + 1 < code.size() &&
          code[colon + 1] != ':' && (colon == 0 || code[colon - 1] != ':')) {
        std::string range = read_identifier(code, colon + 1);
        if (unordered_idents_.count(range)) {
          report(findings, raw, lineno, "unordered-iter",
                 "range-for over unordered container '" + range +
                     "' has unspecified order; use a sorted container or sort "
                     "before serializing");
        }
      }
      pos += 3;
    }
  }

  void check_float_eq(const std::string& raw, const std::string& code,
                      int lineno, std::vector<Finding>& findings) {
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
      if ((code[i] != '=' && code[i] != '!') || code[i + 1] != '=') continue;
      // Skip ==/!= that are part of <= >= === or assignment.
      if (i + 2 < code.size() && code[i + 2] == '=') continue;
      if (i > 0 && (code[i - 1] == '=' || code[i - 1] == '<' ||
                    code[i - 1] == '>' || code[i - 1] == '!')) {
        continue;
      }
      const std::string lhs = token_left(code, i);
      const std::string rhs = token_right(code, i + 2);
      if (is_float_literal(lhs) || is_float_literal(rhs)) {
        report(findings, raw, lineno, "float-eq",
               "exact floating-point comparison against literal; use an "
               "epsilon tolerance or integer state");
        i += 1;
      }
    }
  }

  void check_env_read(const std::string& raw, const std::string& code,
                      int lineno, std::vector<Finding>& findings) {
    if (env_read_exempt_) return;
    for (const char* fn : {"getenv", "secure_getenv", "setenv", "putenv"}) {
      if (has_free_call(code, fn)) {
        report(findings, raw, lineno, "env-read",
               std::string(fn) + "() outside campaign/env_options; route "
                                 "configuration through dav::EnvOptions");
        return;
      }
    }
  }

  /// Track struct/class scopes so member declarations can be told apart from
  /// locals inside inline methods: members sit exactly one brace level inside
  /// the struct's opening brace.
  void update_struct_state(const std::string& code) {
    for (std::size_t i = 0; i < code.size(); ++i) {
      // Only `struct` scopes count: the uninit-pod rule targets aggregates;
      // a `class` is assumed to initialize members in its constructors, and
      // `enum class` must not open a member scope at all.
      const char* kw = "struct";
      const std::size_t n = 6;
      if (code.compare(i, n, kw) == 0 &&
          (i == 0 || !is_ident_char(code[i - 1])) &&
          (i + n >= code.size() || !is_ident_char(code[i + n])) &&
          token_left_of(code, i) != "enum") {
        // Declaration only counts if this statement opens a brace before a
        // ';' (forward declarations don't).
        std::size_t brace = code.find('{', i);
        std::size_t semi = code.find(';', i);
        if (brace != std::string::npos &&
            (semi == std::string::npos || brace < semi)) {
          pending_struct_ = true;
        }
      }
      if (code[i] == '{') {
        ++depth_;
        if (pending_struct_) {
          struct_depths_.push_back(depth_);
          pending_struct_ = false;
        }
      } else if (code[i] == '}') {
        if (!struct_depths_.empty() && struct_depths_.back() == depth_) {
          struct_depths_.pop_back();
        }
        --depth_;
      }
    }
  }

  void check_uninit_pod(const std::string& raw, const std::string& code,
                        int lineno, std::vector<Finding>& findings) {
    if (struct_depths_.empty() || struct_depths_.back() != depth_) return;
    // Member lines look like "  int foo;" — a POD type token, an identifier,
    // then ';', with no initializer, parens (functions) or "static".
    std::size_t i = 0;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    std::size_t type_end = i;
    while (type_end < code.size() &&
           (is_ident_char(code[type_end]) || code[type_end] == ':')) {
      ++type_end;
    }
    std::string type_tok = code.substr(i, type_end - i);
    // "unsigned int" / "long long" style two-token types.
    if ((type_tok == "unsigned" || type_tok == "long" ||
         type_tok == "signed" || type_tok == "short") &&
        type_end < code.size()) {
      std::string second = read_identifier(code, type_end);
      if (is_pod_type_token(second)) {
        type_end = code.find(second, type_end) + second.size();
      }
    }
    if (!is_pod_type_token(type_tok)) return;
    std::string ident = read_identifier(code, type_end);
    if (ident.empty()) return;
    std::size_t rest_pos = code.find(ident, type_end) + ident.size();
    std::string rest = code.substr(rest_pos);
    if (rest.find('=') != std::string::npos ||
        rest.find('{') != std::string::npos) {
      return;  // has an initializer
    }
    if (rest.find(';') == std::string::npos) return;  // not a declaration
    // Parens anywhere mean a function declaration or a continuation of a
    // multi-line parameter list, never a plain member.
    if (code.find('(') != std::string::npos ||
        code.find(')') != std::string::npos) {
      return;
    }
    if (code.find("static") != std::string::npos) return;
    report(findings, raw, lineno, "uninit-pod",
           "POD member '" + ident + "' has no initializer; golden traces must "
           "never read indeterminate bytes");
  }

  const SourceFile& f_;
  const std::set<std::string>& enabled_;
  bool wall_clock_exempt_ = false;
  bool obs_clock_exempt_ = false;
  bool env_read_exempt_ = false;
  std::set<std::string> unordered_idents_;
  std::vector<int> struct_depths_;
  int depth_ = 0;
  bool pending_struct_ = false;
};

}  // namespace

void run_line_rules(const SourceFile& f, const std::set<std::string>& enabled,
                    std::vector<Finding>& findings) {
  LineScanner scanner(f, enabled);
  scanner.scan(findings);
}

}  // namespace davlint
