// Cross-TU semantic rules built on the TU index and call graph:
//
//   signal-safety — functions reachable from a signal()/sigaction()-
//       registered handler may only call an async-signal-safe allowlist;
//       violations print the call chain hop by hop.
//   fork-safety  — the lexical child branch after fork() (worker bootstrap
//       and death paths) is held to the same allowlist; sanctioned workload
//       handoffs are cut with a justified same-line allow().
//   layering     — quoted includes must respect the module DAG
//       util -> {sim,fi} -> sensors -> agent -> core -> uav -> obs ->
//       campaign -> tools; include cycles are rejected.
//   taint        — values derived from wall-clock/trace sources must not
//       flow (per-TU assignment/call dataflow) into serialize_run_result,
//       run_config_digest or journal writes.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "rules.h"
#include "tu_index.h"

namespace davlint {

void run_semantic_rules(const std::vector<TuIndex>& tus, const CallGraph& graph,
                        const std::set<std::string>& enabled,
                        std::vector<Finding>& findings);

}  // namespace davlint
