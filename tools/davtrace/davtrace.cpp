// davtrace — inspect and convert flight-recorder traces (src/obs/).
//
// Subcommands:
//   davtrace summarize <trace.json>...   span breakdown (count, total, p50/
//                                        p95/p99 per stage), counter ranges,
//                                        and the alarm/recovery timeline
//   davtrace csv <trace.json> [--out=<path>]
//                                        re-derive the tick-indexed CSV
//                                        (same columns run_experiment writes)
//
// Reads the Chrome trace-event JSON emitted by export_run_trace (and the
// campaign telemetry trace): nothing here depends on which process wrote the
// file, so traces from forked campaign workers summarize identically.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"
#include "util/stats.h"

namespace {

using dav::obs::ChromeEvent;
using dav::obs::ChromeTrace;

[[noreturn]] void usage_error(const std::string& what) {
  throw std::runtime_error(
      "davtrace: " + what +
      "\nusage: davtrace summarize <trace.json>...\n"
      "       davtrace csv <trace.json> [--out=<path>]");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("davtrace: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct SpanAgg {
  std::vector<double> dur_us;
  double total_us = 0.0;
};

void summarize_one(const std::string& path) {
  const ChromeTrace trace = dav::obs::parse_chrome_trace(read_file(path));
  std::printf("=== %s ===\n", path.c_str());
  for (const auto& [key, value] : trace.other_data) {
    std::printf("  %s: %s\n", key.c_str(), value.c_str());
  }
  std::printf("  events: %zu\n", trace.events.size());

  // Span breakdown per stage name.
  std::map<std::string, SpanAgg> spans;
  std::map<std::string, std::pair<double, double>> counter_range;
  std::vector<const ChromeEvent*> marks;
  double last_ts = 0.0;
  for (const ChromeEvent& e : trace.events) {
    last_ts = std::max(last_ts, e.ts_us);
    if (e.ph == 'X') {
      SpanAgg& agg = spans[e.name];
      agg.dur_us.push_back(e.dur_us);
      agg.total_us += e.dur_us;
    } else if (e.ph == 'C') {
      auto it = counter_range.find(e.name);
      if (it == counter_range.end()) {
        counter_range.emplace(e.name, std::make_pair(e.value, e.value));
      } else {
        it->second.first = std::min(it->second.first, e.value);
        it->second.second = std::max(it->second.second, e.value);
      }
    } else if (e.ph == 'i') {
      marks.push_back(&e);
    }
  }

  if (!spans.empty()) {
    std::printf("  %-16s %8s %12s %10s %10s %10s\n", "stage", "count",
                "total_ms", "p50_us", "p95_us", "p99_us");
    for (auto& [name, agg] : spans) {
      const std::vector<double>& d = agg.dur_us;
      std::printf("  %-16s %8zu %12.3f %10.1f %10.1f %10.1f\n", name.c_str(),
                  d.size(), agg.total_us / 1e3, dav::percentile(d, 50.0),
                  dav::percentile(d, 95.0), dav::percentile(d, 99.0));
    }
  }
  if (!counter_range.empty()) {
    std::printf("  counters (min..max):\n");
    for (const auto& [name, range] : counter_range) {
      std::printf("    %-20s %g .. %g\n", name.c_str(), range.first,
                  range.second);
    }
  }
  // Alarm / recovery timeline: semantic marks in timestamp order.
  if (!marks.empty()) {
    std::stable_sort(marks.begin(), marks.end(),
                     [](const ChromeEvent* a, const ChromeEvent* b) {
                       return a->ts_us < b->ts_us;
                     });
    std::printf("  timeline:\n");
    for (const ChromeEvent* m : marks) {
      std::printf("    t=%9.3fs tick=%-6d %-20s value=%g\n", m->ts_us / 1e6,
                  m->tick, m->name.c_str(), m->value);
    }
  } else {
    std::printf("  timeline: (no semantic marks — clean run)\n");
  }
  std::printf("  span of trace: %.3f s\n", last_ts / 1e6);
}

int run(int argc, char** argv) {
  if (argc < 2) usage_error("missing subcommand");
  const std::string cmd = argv[1];
  std::vector<std::string> inputs;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unrecognized option '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) usage_error("no input trace files");

  if (cmd == "summarize") {
    for (const std::string& path : inputs) summarize_one(path);
    return 0;
  }
  if (cmd == "csv") {
    if (inputs.size() != 1) usage_error("csv takes exactly one trace file");
    const ChromeTrace trace =
        dav::obs::parse_chrome_trace(read_file(inputs[0]));
    const std::string csv = dav::obs::run_csv(trace.events);
    if (out_path.empty()) {
      std::fputs(csv.c_str(), stdout);
    } else {
      dav::obs::write_text_file(out_path, csv);
    }
    return 0;
  }
  usage_error("unknown subcommand '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
